"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    adjacency_bitmap,
    box_downsample_reference,
    channel_planes,
    clustered_points,
    count_triangles_reference,
    key_value_table,
    labeled_points_2d,
    linear_points,
    random_graph,
    random_int_matrix,
    random_int_vector,
    synthetic_image,
)


class TestVectors:
    def test_deterministic_by_seed(self):
        assert np.array_equal(
            random_int_vector(100, seed=1), random_int_vector(100, seed=1)
        )
        assert not np.array_equal(
            random_int_vector(100, seed=1), random_int_vector(100, seed=2)
        )

    def test_dtype_and_shape(self):
        v = random_int_vector(50, dtype="int16")
        assert v.shape == (50,)
        assert v.dtype == np.int16

    def test_matrix_shape(self):
        m = random_int_matrix(8, 12)
        assert m.shape == (8, 12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            random_int_vector(0)
        with pytest.raises(ValueError):
            random_int_matrix(0, 5)


class TestGraphs:
    def test_exact_edge_count(self):
        graph = random_graph(50, 120, seed=3)
        assert graph.number_of_edges() == 120

    def test_bitmap_symmetry(self):
        graph = random_graph(40, 100, seed=4)
        bitmap = adjacency_bitmap(graph)
        for u, v in graph.edges():
            assert bitmap[u, v // 32] >> (v % 32) & 1
            assert bitmap[v, u // 32] >> (u % 32) & 1

    def test_bitmap_popcount_equals_degrees(self):
        graph = random_graph(40, 100, seed=5)
        bitmap = adjacency_bitmap(graph)
        total_bits = sum(
            bin(int(word)).count("1") for word in bitmap.reshape(-1)
        )
        assert total_bits == 2 * graph.number_of_edges()

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            random_graph(4, 100)

    def test_triangle_reference_on_known_graph(self):
        import networkx as nx
        assert count_triangles_reference(nx.complete_graph(4)) == 4


class TestImages:
    def test_shape_and_dtype(self):
        image = synthetic_image(16, 12)
        assert image.shape == (12, 16, 3)
        assert image.dtype == np.uint8

    def test_channel_planes(self):
        image = synthetic_image(8, 8)
        planes = channel_planes(image)
        assert len(planes) == 3
        assert np.array_equal(planes[1], image[:, :, 1].reshape(-1))

    def test_box_downsample_reference(self):
        image = np.zeros((2, 2, 3), dtype=np.uint8)
        image[:, :, 0] = [[10, 20], [30, 40]]
        out = box_downsample_reference(image)
        assert out.shape == (1, 1, 3)
        assert out[0, 0, 0] == 25

    def test_downsample_requires_even(self):
        with pytest.raises(ValueError):
            box_downsample_reference(synthetic_image(7, 8))


class TestTables:
    def test_selectivity_approximate(self):
        workload = key_value_table(200_000, selectivity=0.05, seed=6)
        observed = (workload.keys < workload.threshold).mean()
        assert observed == pytest.approx(0.05, abs=0.01)

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError):
            key_value_table(100, selectivity=1.5)


class TestPoints:
    def test_clustered_shapes(self):
        points, labels = clustered_points(1000, 5, seed=7)
        assert points.shape == (1000, 2)
        assert labels.shape == (1000,)
        assert labels.max() < 5

    def test_linear_points_fit_roughly(self):
        x, y = linear_points(5000, slope=3.0, intercept=40.0, seed=8)
        slope = np.polyfit(x.astype(float), y.astype(float), 1)[0]
        assert slope == pytest.approx(3.0, abs=0.1)

    def test_labeled_points(self):
        _, labels = labeled_points_2d(100, 4, seed=9)
        assert set(np.unique(labels)) <= {0, 1, 2, 3}
