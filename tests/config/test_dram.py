"""Tests for DRAM geometry and timing."""

import dataclasses

import pytest

from repro.config.dram import DramGeometry, DramSpec, DramTiming


class TestDramTiming:
    def test_defaults_match_listing3(self):
        timing = DramTiming()
        assert timing.row_read_ns == 28.5
        assert timing.row_write_ns == 43.5
        assert timing.tccd_ns == 3.0
        assert timing.rank_bandwidth_gbps == 25.6

    def test_bandwidth_units(self):
        # 1 GB/s is exactly 1 byte per nanosecond.
        assert DramTiming().rank_bandwidth_bytes_per_ns == pytest.approx(25.6)

    @pytest.mark.parametrize("field", [f.name for f in dataclasses.fields(DramTiming)])
    def test_rejects_non_positive(self, field):
        with pytest.raises(ValueError):
            DramTiming(**{field: 0})
        with pytest.raises(ValueError):
            DramTiming(**{field: -1.0})


class TestDramGeometry:
    def test_paper_counts(self):
        geometry = DramGeometry(num_ranks=32)
        assert geometry.num_banks == 32 * 128
        assert geometry.num_subarrays == 32 * 128 * 32
        assert geometry.subarray_bits == 1024 * 8192

    def test_total_capacity(self):
        geometry = DramGeometry(num_ranks=1)
        # 128 banks x 32 subarrays x 1 MiB per subarray = 4 GiB per rank.
        assert geometry.total_capacity_bytes == 4 * 2**30

    def test_aggregate_bandwidth_scales_with_ranks(self):
        assert DramGeometry(num_ranks=2).aggregate_bandwidth_gbps == pytest.approx(
            2 * DramGeometry(num_ranks=1).aggregate_bandwidth_gbps
        )

    def test_scaled_returns_modified_copy(self):
        base = DramGeometry()
        wide = base.scaled(cols_per_subarray=4096)
        assert wide.cols_per_subarray == 4096
        assert base.cols_per_subarray == 8192

    def test_rejects_bad_chip_multiple(self):
        with pytest.raises(ValueError):
            DramGeometry(banks_per_rank=100, chips_per_rank=8)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            DramGeometry(num_ranks=0)


class TestDramSpec:
    def test_transfer_time_linear_in_bytes(self):
        spec = DramSpec(geometry=DramGeometry(num_ranks=4))
        one = spec.data_transfer_ns(1024)
        two = spec.data_transfer_ns(2048)
        assert two == pytest.approx(2 * one)

    def test_transfer_time_anchor(self):
        # Listing 3: 24576 bytes over 4 ranks ~ 0.00024 ms.
        spec = DramSpec(geometry=DramGeometry(num_ranks=4))
        assert spec.data_transfer_ns(24576) / 1e6 == pytest.approx(0.00024, rel=0.01)

    def test_zero_bytes_zero_time(self):
        assert DramSpec().data_transfer_ns(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DramSpec().data_transfer_ns(-1)
