"""Tests for the Table II presets."""

import pytest

from repro.config.device import PimDeviceType
from repro.config.presets import (
    CPU_BASELINE,
    GPU_BASELINE,
    all_pim_configs,
    bank_level_config,
    bitserial_config,
    fulcrum_config,
    paper_geometry,
)


def test_cpu_baseline_table2():
    assert CPU_BASELINE.num_cores == 16
    assert CPU_BASELINE.freq_ghz == 3.71
    assert CPU_BASELINE.tdp_w == 200.0
    assert CPU_BASELINE.mem_bandwidth_gbps == 460.8


def test_gpu_baseline_table2():
    assert GPU_BASELINE.tdp_w == 300.0
    assert GPU_BASELINE.mem_bandwidth_gbps == 1935.0
    assert GPU_BASELINE.peak_fp32_tflops == 19.5
    assert GPU_BASELINE.peak_ops_per_ns == pytest.approx(19500.0)


def test_cpu_peak_throughput():
    # 16 cores x 3.71 GHz x 8 int32 lanes.
    assert CPU_BASELINE.peak_int32_ops_per_ns == pytest.approx(16 * 3.71 * 8)


def test_paper_geometry_table2():
    geometry = paper_geometry(32)
    assert geometry.num_ranks == 32
    assert geometry.banks_per_rank == 128
    assert geometry.subarrays_per_bank == 32
    assert geometry.cols_per_subarray == 8192


def test_factories_pick_device_types():
    assert bitserial_config().device_type is PimDeviceType.BITSIMD_V_AP
    assert fulcrum_config().device_type is PimDeviceType.FULCRUM
    assert bank_level_config().device_type is PimDeviceType.BANK_LEVEL


def test_all_pim_configs_covers_the_paper_variants():
    from repro.config.presets import PAPER_DEVICE_TYPES
    configs = all_pim_configs(8)
    assert set(configs) == set(PAPER_DEVICE_TYPES)
    assert PimDeviceType.ANALOG_BITSIMD_V not in configs
    assert all(c.dram.geometry.num_ranks == 8 for c in configs.values())
