"""Tests for the power-model parameters."""

import pytest

from repro.config.power import (
    ComputeEnergyParams,
    HostPowerParams,
    MicronPowerParams,
    PowerConfig,
)


class TestMicronPowerParams:
    def test_read_power_equation1(self):
        params = MicronPowerParams()
        expected = params.vdd * (params.idd4r - params.idd3n)
        assert params.read_power_w() == pytest.approx(expected)
        assert params.read_power_w() > 0

    def test_write_power_below_read(self):
        params = MicronPowerParams()
        assert 0 < params.write_power_w() < params.read_power_w()

    def test_activate_precharge_energy_equation2(self):
        params = MicronPowerParams()
        energy = params.activate_precharge_energy_nj(tras_ns=32.0, trp_ns=14.0)
        # Calibrated against the paper's published anchors (DESIGN.md):
        # one subarray activate-precharge costs ~0.4 nJ.
        assert energy == pytest.approx(0.40, abs=0.05)

    def test_background_power_is_standby_difference(self):
        params = MicronPowerParams()
        expected = params.vdd * (params.idd3n - params.idd2n)
        assert params.background_power_w() == pytest.approx(expected)

    def test_rejects_inverted_currents(self):
        with pytest.raises(ValueError):
            MicronPowerParams(idd4r=0.01)


class TestComputeEnergyParams:
    def test_bit_serial_lane_energy_tiny(self):
        params = ComputeEnergyParams()
        # A lane gate event must be orders of magnitude below a word ALU op.
        assert params.bitserial_logic_pj < params.fulcrum_alu_op_pj / 10

    def test_bank_alpu_costs_more_than_fulcrum(self):
        params = ComputeEnergyParams()
        assert params.bank_alu_op_pj > params.fulcrum_alu_op_pj


class TestHostPowerParams:
    def test_table2_values(self):
        host = HostPowerParams()
        assert host.cpu_tdp_w == 200.0
        assert host.gpu_tdp_w == 300.0
        assert host.cpu_idle_w == 10.0


def test_power_config_bundles_defaults():
    config = PowerConfig()
    assert isinstance(config.micron, MicronPowerParams)
    assert isinstance(config.compute, ComputeEnergyParams)
    assert isinstance(config.host, HostPowerParams)
