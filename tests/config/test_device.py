"""Tests for device configuration and data types."""

import pytest

from repro.config.device import (
    DeviceConfig,
    PimAllocType,
    PimArchParams,
    PimDataType,
    PimDeviceType,
)
from repro.config.presets import make_device_config


class TestPimDeviceType:
    def test_display_names(self):
        assert PimDeviceType.BITSIMD_V_AP.display_name == "Bit-Serial"
        assert PimDeviceType.FULCRUM.display_name == "Fulcrum"
        assert PimDeviceType.BANK_LEVEL.display_name == "Bank-level"

    def test_classification(self):
        assert PimDeviceType.BITSIMD_V_AP.is_bit_serial
        assert not PimDeviceType.FULCRUM.is_bit_serial
        assert PimDeviceType.FULCRUM.is_subarray_level
        assert not PimDeviceType.BANK_LEVEL.is_subarray_level


class TestPimDataType:
    @pytest.mark.parametrize("dtype,bits,nbytes", [
        (PimDataType.INT8, 8, 1),
        (PimDataType.INT32, 32, 4),
        (PimDataType.UINT64, 64, 8),
        (PimDataType.BOOL, 1, 1),
    ])
    def test_widths(self, dtype, bits, nbytes):
        assert dtype.bits == bits
        assert dtype.bytes == nbytes

    def test_from_bits(self):
        assert PimDataType.from_bits(32) is PimDataType.INT32
        assert PimDataType.from_bits(16, signed=False) is PimDataType.UINT16
        assert PimDataType.from_bits(1) is PimDataType.BOOL

    def test_from_bits_unknown(self):
        with pytest.raises(ValueError):
            PimDataType.from_bits(24)


class TestCoreCounts:
    """Listing 3: 4 ranks give 8192 Fulcrum cores of 2048 x 8192."""

    def test_fulcrum_cores(self):
        config = make_device_config(PimDeviceType.FULCRUM, 4)
        assert config.num_cores == 8192
        assert config.rows_per_core == 2048
        assert config.cols_per_core == 8192

    def test_bitserial_cores_one_per_subarray(self):
        config = make_device_config(PimDeviceType.BITSIMD_V_AP, 4)
        assert config.num_cores == 4 * 128 * 32
        assert config.rows_per_core == 1024

    def test_bank_level_cores_one_per_bank(self):
        config = make_device_config(PimDeviceType.BANK_LEVEL, 4)
        assert config.num_cores == 4 * 128
        assert config.rows_per_core == 1024 * 32

    def test_native_layouts(self):
        assert (
            make_device_config(PimDeviceType.BITSIMD_V_AP, 1).native_layout
            is PimAllocType.VERTICAL
        )
        assert (
            make_device_config(PimDeviceType.FULCRUM, 1).native_layout
            is PimAllocType.HORIZONTAL
        )

    def test_with_geometry_override(self):
        config = make_device_config(PimDeviceType.FULCRUM, 4)
        narrow = config.with_geometry(cols_per_subarray=1024)
        assert narrow.cols_per_core == 1024
        assert config.cols_per_core == 8192


class TestPimArchParams:
    def test_cycle_times(self):
        params = PimArchParams()
        assert params.fulcrum_cycle_ns == pytest.approx(1e3 / 164.0)
        assert params.bank_cycle_ns == pytest.approx(1e3 / 164.0)

    def test_rejects_bad_alu_width(self):
        with pytest.raises(ValueError):
            PimArchParams(fulcrum_alu_bits=48)
        with pytest.raises(ValueError):
            PimArchParams(bank_alu_bits=7)

    def test_default_config_is_bitserial(self):
        assert DeviceConfig().device_type is PimDeviceType.BITSIMD_V_AP
