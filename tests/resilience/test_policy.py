"""Tests for RetryPolicy: validation, backoff determinism, env resolution."""

import json
import os
import subprocess
import sys

import pytest

from repro.resilience import (
    CELL_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    RetryPolicy,
    deterministic_jitter,
)


class TestValidation:
    def test_defaults_do_nothing(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert not policy.needs_isolation
        assert not policy.fail_fast

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"cell_timeout_s": 0},
        {"cell_timeout_s": -1.0},
        {"backoff_factor": 0.5},
        {"jitter_fraction": 1.5},
        {"backoff_base_s": -0.1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_timeout_forces_isolation(self):
        assert RetryPolicy(cell_timeout_s=5.0).needs_isolation

    def test_policy_is_picklable(self):
        import pickle

        policy = RetryPolicy(max_retries=2, cell_timeout_s=1.0)
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_retries=9, backoff_base_s=0.1, backoff_factor=2.0,
            backoff_max_s=0.5, jitter_fraction=0.0,
        )
        delays = [policy.backoff_s("cell", n) for n in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.backoff_s("k", 2) == policy.backoff_s("k", 2)
        # distinct cells/attempts spread out
        assert deterministic_jitter("a", 1) != deterministic_jitter("a", 2)
        assert deterministic_jitter("a", 1) != deterministic_jitter("b", 1)

    def test_jitter_range(self):
        for key in ("x", "y", "z"):
            for attempt in (1, 2, 3):
                assert 0.0 <= deterministic_jitter(key, attempt) < 1.0

    def test_rejects_attempt_zero(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s("k", 0)

    def test_jitter_is_deterministic_across_processes(self):
        # Reproducibility extends to the failure path: a retried run in
        # a *fresh interpreter* (different hash randomization, different
        # process) must sleep the exact same delays.  This is what lets
        # the serve chaos tests and a re-run batch suite line up.
        cases = [("cell-a", 1), ("cell-a", 2), ("cell-b", 1), ("", 7)]
        probe = (
            "import json, sys\n"
            "from repro.resilience import RetryPolicy, deterministic_jitter\n"
            "cases = json.load(sys.stdin)\n"
            "policy = RetryPolicy(max_retries=3)\n"
            "print(json.dumps([\n"
            "    [deterministic_jitter(k, a), policy.backoff_s(k, a)]\n"
            "    for k, a in cases\n"
            "]))\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", probe], input=json.dumps(cases),
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        remote = json.loads(proc.stdout)
        policy = RetryPolicy(max_retries=3)
        local = [
            [deterministic_jitter(k, a), policy.backoff_s(k, a)]
            for k, a in cases
        ]
        assert remote == local


class TestFromEnv:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "60")
        policy = RetryPolicy.from_env(max_retries=1, cell_timeout_s=2.0)
        assert policy.max_retries == 1
        assert policy.cell_timeout_s == 2.0

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "3")
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "1.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 3
        assert policy.cell_timeout_s == 1.5

    def test_unset_env_means_do_nothing(self, monkeypatch):
        monkeypatch.delenv(MAX_RETRIES_ENV, raising=False)
        monkeypatch.delenv(CELL_TIMEOUT_ENV, raising=False)
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 0
        assert policy.cell_timeout_s is None

    def test_rejects_garbage_env(self, monkeypatch):
        from repro.core.errors import PimConfigError, PimStatus

        monkeypatch.setenv(MAX_RETRIES_ENV, "several")
        with pytest.raises(PimConfigError, match=MAX_RETRIES_ENV):
            RetryPolicy.from_env()
        monkeypatch.setenv(MAX_RETRIES_ENV, "1")
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "soon")
        with pytest.raises(PimConfigError, match=CELL_TIMEOUT_ENV) as info:
            RetryPolicy.from_env()
        # The coded form carries the offending variable and value.
        assert info.value.status is PimStatus.ERR_CONFIG
        assert info.value.context["env_var"] == CELL_TIMEOUT_ENV
        assert info.value.context["value"] == "soon"
