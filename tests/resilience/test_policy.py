"""Tests for RetryPolicy: validation, backoff determinism, env resolution."""

import pytest

from repro.resilience import (
    CELL_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    RetryPolicy,
    deterministic_jitter,
)


class TestValidation:
    def test_defaults_do_nothing(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert not policy.needs_isolation
        assert not policy.fail_fast

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"cell_timeout_s": 0},
        {"cell_timeout_s": -1.0},
        {"backoff_factor": 0.5},
        {"jitter_fraction": 1.5},
        {"backoff_base_s": -0.1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_timeout_forces_isolation(self):
        assert RetryPolicy(cell_timeout_s=5.0).needs_isolation

    def test_policy_is_picklable(self):
        import pickle

        policy = RetryPolicy(max_retries=2, cell_timeout_s=1.0)
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_retries=9, backoff_base_s=0.1, backoff_factor=2.0,
            backoff_max_s=0.5, jitter_fraction=0.0,
        )
        delays = [policy.backoff_s("cell", n) for n in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.backoff_s("k", 2) == policy.backoff_s("k", 2)
        # distinct cells/attempts spread out
        assert deterministic_jitter("a", 1) != deterministic_jitter("a", 2)
        assert deterministic_jitter("a", 1) != deterministic_jitter("b", 1)

    def test_jitter_range(self):
        for key in ("x", "y", "z"):
            for attempt in (1, 2, 3):
                assert 0.0 <= deterministic_jitter(key, attempt) < 1.0

    def test_rejects_attempt_zero(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s("k", 0)


class TestFromEnv:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "60")
        policy = RetryPolicy.from_env(max_retries=1, cell_timeout_s=2.0)
        assert policy.max_retries == 1
        assert policy.cell_timeout_s == 2.0

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "3")
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "1.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 3
        assert policy.cell_timeout_s == 1.5

    def test_unset_env_means_do_nothing(self, monkeypatch):
        monkeypatch.delenv(MAX_RETRIES_ENV, raising=False)
        monkeypatch.delenv(CELL_TIMEOUT_ENV, raising=False)
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 0
        assert policy.cell_timeout_s is None

    def test_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "several")
        with pytest.raises(ValueError, match=MAX_RETRIES_ENV):
            RetryPolicy.from_env()
        monkeypatch.setenv(MAX_RETRIES_ENV, "1")
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError, match=CELL_TIMEOUT_ENV):
            RetryPolicy.from_env()
