"""Tests for CellFailure records and the failure-summary table."""

from repro.config.device import PimDeviceType
from repro.core.errors import FailureKind, PimAllocationError, PimStatus
from repro.engine import CellSpec
from repro.resilience import (
    failure_from_exception,
    format_failure_summary,
    skipped_failure,
)


def make_exc():
    try:
        raise PimAllocationError("no rows", rows_requested=9, rows_total=4)
    except PimAllocationError as exc:
        return exc


class TestFailureFromException:
    def test_packages_taxonomy_and_context(self):
        failure = failure_from_exception(make_exc(), attempts=3)
        assert failure.kind is FailureKind.ERROR
        assert failure.status is PimStatus.ERR_ALLOC
        assert failure.error_type == "PimAllocationError"
        assert failure.attempts == 3
        assert failure.context == (("rows_requested", 9), ("rows_total", 4))
        assert "no rows" in failure.message
        assert "PimAllocationError" in failure.traceback

    def test_traceback_optional(self):
        failure = failure_from_exception(
            make_exc(), attempts=1, with_traceback=False
        )
        assert failure.traceback == ""

    def test_to_dict(self):
        record = failure_from_exception(make_exc(), attempts=2).to_dict()
        assert record["kind"] == "error"
        assert record["status"] == "err_alloc"
        assert record["context"] == {"rows_requested": 9, "rows_total": 4}

    def test_brief_is_one_line(self):
        brief = failure_from_exception(make_exc(), attempts=2).brief()
        assert "\n" not in brief
        assert "2 attempt(s)" in brief

    def test_skipped(self):
        failure = skipped_failure()
        assert failure.kind is FailureKind.SKIPPED
        assert failure.attempts == 0
        assert not failure.transient


class TestSummaryTable:
    def test_empty(self):
        assert format_failure_summary({}) == "All cells completed."

    def test_one_row_per_failure(self):
        spec_a = CellSpec("vecadd", PimDeviceType.FULCRUM)
        spec_b = CellSpec("axpy", PimDeviceType.BANK_LEVEL)
        table = format_failure_summary({
            spec_a: failure_from_exception(make_exc(), attempts=2),
            spec_b: skipped_failure(),
        })
        lines = table.splitlines()
        assert lines[0] == "=== 2 cell(s) failed ==="
        assert "vecadd" in table and "axpy" in table
        assert "error" in table and "skipped" in table
        assert "PimAllocationError" in table

    def test_long_messages_truncated(self):
        spec = CellSpec("vecadd", PimDeviceType.FULCRUM)
        failure = failure_from_exception(ValueError("x" * 500), attempts=1)
        table = format_failure_summary({spec: failure})
        assert all(len(line) < 160 for line in table.splitlines())
