"""Tests for the persistent, content-addressed result store."""

import pickle

import pytest

from repro.config.device import PimDeviceType
from repro.engine import CellSpec, DiskCache, cell_cache_key, default_cache_dir
from repro.engine.cells import run_cell

SPEC = CellSpec(
    "vecadd", PimDeviceType.FULCRUM, num_ranks=4,
    paper_scale=False, functional=True,
)


@pytest.fixture(scope="module")
def outcome():
    return run_cell(SPEC)


class TestCacheKey:
    def test_deterministic(self):
        assert cell_cache_key(SPEC) == cell_cache_key(SPEC)

    def test_config_field_changes_key(self):
        import dataclasses

        wider = dataclasses.replace(SPEC, num_ranks=8)
        geometry = dataclasses.replace(
            SPEC, geometry_overrides=(("gdl_width_bits", 256),)
        )
        keys = {cell_cache_key(SPEC), cell_cache_key(wider),
                cell_cache_key(geometry)}
        assert len(keys) == 3

    def test_mode_flags_change_key(self):
        import dataclasses

        analytic = dataclasses.replace(SPEC, functional=False)
        lax = dataclasses.replace(SPEC, enforce_capacity=False)
        keys = {cell_cache_key(SPEC), cell_cache_key(analytic),
                cell_cache_key(lax)}
        assert len(keys) == 3

    def test_model_version_changes_key(self, monkeypatch):
        from repro.engine import version

        before = cell_cache_key(SPEC)
        monkeypatch.setattr(version, "CACHE_SCHEMA", version.CACHE_SCHEMA + 1)
        assert cell_cache_key(SPEC) != before


class TestDiskCache:
    def test_roundtrip_across_instances(self, tmp_path, outcome):
        # Two DiskCache objects over one root model a process restart.
        key = cell_cache_key(SPEC)
        DiskCache(tmp_path).put(key, outcome)
        loaded = DiskCache(tmp_path).get(key)
        assert loaded is not None
        assert loaded.result.to_dict() == outcome.result.to_dict()
        assert loaded.sim_dur_ns == outcome.sim_dur_ns
        assert loaded.tracker.total_command_count == (
            outcome.tracker.total_command_count
        )

    def test_missing_entry_is_none(self, tmp_path):
        assert DiskCache(tmp_path).get("0" * 64) is None

    def test_events_never_persisted(self, tmp_path):
        recorded = run_cell(SPEC, record_events=True)
        assert recorded.events  # sanity: the run really was observed
        cache = DiskCache(tmp_path)
        cache.put("a" * 64, recorded)
        assert cache.get("a" * 64).events is None
        # the in-memory outcome is untouched
        assert recorded.events is not None

    def test_corrupted_entry_warns_and_deletes(self, tmp_path, outcome):
        cache = DiskCache(tmp_path)
        key = cell_cache_key(SPEC)
        cache.put(key, outcome)
        cache.path_for(key).write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
            assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_wrong_payload_type_warns(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.path_for("b" * 64)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "an outcome"}))
        with pytest.warns(RuntimeWarning):
            assert cache.get("b" * 64) is None

    def test_clear_and_stats(self, tmp_path, outcome):
        cache = DiskCache(tmp_path)
        for fake in ("c" * 64, "d" * 64):
            cache.put(fake, outcome)
        entries, size = cache.stats()
        assert entries == 2 and size > 0
        assert cache.clear() == 2
        assert cache.stats() == (0, 0)
        assert cache.clear() == 0  # idempotent on an empty store

    def test_no_temp_files_left_behind(self, tmp_path, outcome):
        cache = DiskCache(tmp_path)
        cache.put("e" * 64, outcome)
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp" in p.name]
        assert leftovers == []


class TestCacheDirResolution:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        assert default_cache_dir() == tmp_path / "via-env"
        assert DiskCache().root == tmp_path / "via-env"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"

    def test_explicit_argument_wins(self, tmp_path):
        assert DiskCache(tmp_path / "explicit").root == tmp_path / "explicit"
