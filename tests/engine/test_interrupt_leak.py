"""Ctrl-C must not leak worker processes out of ``run_cells``.

Regression test for the supervisor's KeyboardInterrupt path: the
isolated scheduling loop spawns one single-worker pool per running
cell, and an interrupt that lands between spawns used to abandon those
pools -- live children outliving the run.  The fix kills every
still-checked-out pool on the way out of ``_run_isolated``, so a
driver process that catches Ctrl-C ends with zero surviving workers.

The scenario needs a real interrupt against real worker processes, so
it runs in a subprocess: hang two cells (WorkerHangFault), SIGINT the
driver mid-run, and audit ``/proc`` for survivors.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

DRIVER = textwrap.dedent("""
    import json, os, signal, sys

    from repro.arch import resolve_backend
    from repro.engine import CellSpec, run_cells
    from repro.faults.models import FaultPlan, WorkerHangFault
    from repro.resilience.policy import RetryPolicy

    def live_children():
        # Scan /proc directly (spawning ps would list itself).  Zombies
        # are already dead -- reaped at interpreter exit, not leaked --
        # so only R/S/D children count as survivors.
        me, pids = str(os.getpid()), []
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                with open(f"/proc/{entry}/stat") as fh:
                    fields = fh.read().rsplit(")", 1)[1].split()
            except OSError:
                continue
            state, ppid = fields[0], fields[1]
            if ppid == me and state != "Z":
                pids.append(int(entry))
        return pids

    # Two cells that hang forever in their workers; a watchdog-free
    # policy with isolation forced via cell_timeout keeps them running
    # until the interrupt arrives.
    backend = resolve_backend("bank")
    plan = FaultPlan(seed=1, faults=(WorkerHangFault(seconds=120.0),))
    specs = [
        CellSpec(
            benchmark_key="vecadd", device_type=backend.device_type,
            num_ranks=32 + i, paper_scale=True, functional=False,
            fault_plan=plan,
        )
        for i in range(2)
    ]
    signal.alarm(2)  # SIGALRM -> KeyboardInterrupt while cells hang
    signal.signal(signal.SIGALRM, signal.default_int_handler)
    interrupted = False
    try:
        run_cells(
            specs, jobs=2, use_cache=False,
            policy=RetryPolicy(max_retries=0, cell_timeout_s=60.0),
        )
    except KeyboardInterrupt:
        interrupted = True
    survivors = live_children()
    print(json.dumps({"interrupted": interrupted, "survivors": survivors}))
""")


def test_keyboard_interrupt_kills_all_workers():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    record = json.loads(proc.stdout.strip().splitlines()[-1])
    assert record["interrupted"], "the driver was never interrupted"
    # ps can race a dying process; only a worker still alive now counts.
    alive = [
        pid for pid in record["survivors"]
        if os.path.exists(f"/proc/{pid}")
    ]
    assert alive == [], f"workers outlived the interrupted run: {alive}"
