"""Engine integration of the vectorized pricing path.

Covers the seams docs/VECTORIZATION.md documents: cache-key
separation (vector and scalar cells can never share an entry), the
``REPRO_VECTOR_CHECK`` strict-equivalence gate (it passes on honest
cost tables and *fails loudly* on perturbed ones), the scalar
fallback for functional/observed/fault cells, telemetry stamping, and
suite-level byte identity of the exported JSON.
"""

import dataclasses
import json

import pytest

from repro.arch import resolve_backend
from repro.engine import CellSpec
from repro.engine.cache import cell_cache_key
from repro.engine.cells import run_cell

FULCRUM = resolve_backend("fulcrum").device_type


def _spec(**overrides):
    defaults = dict(
        benchmark_key="vecadd",
        device_type=FULCRUM,
        num_ranks=2,
        paper_scale=False,
        functional=False,
        vector=True,
    )
    defaults.update(overrides)
    return CellSpec(**defaults)


class TestCacheKeySeparation:
    def test_vector_and_scalar_keys_differ(self):
        assert cell_cache_key(_spec()) != cell_cache_key(_spec(vector=False))

    def test_vector_key_is_deterministic(self):
        assert cell_cache_key(_spec()) == cell_cache_key(_spec())

    def test_vector_stamp_is_the_engine_digest(self):
        from repro.engine.version import vector_stamp

        stamp = vector_stamp()
        assert len(stamp) == 12
        assert stamp == vector_stamp()


class TestRunCellVector:
    def test_vector_cell_matches_scalar_cell(self):
        from repro.perf.vector import tracker_mismatches

        vec = run_cell(_spec())
        ref = run_cell(_spec(vector=False))
        assert vec.ok and ref.ok
        assert tracker_mismatches(vec.tracker, ref.tracker) == []
        assert json.dumps(vec.result.to_dict()) == json.dumps(
            ref.result.to_dict()
        )

    def test_vector_tracker_is_sealed_and_pickleable(self):
        import pickle

        outcome = run_cell(_spec())
        assert outcome.tracker.sealed
        clone = pickle.loads(pickle.dumps(outcome))
        assert (
            clone.tracker.total_command_count
            == outcome.tracker.total_command_count
        )

    def test_telemetry_stamped_vector(self):
        outcome = run_cell(_spec())
        assert outcome.telemetry.vector is True
        assert outcome.telemetry.to_dict()["vector"] is True

    def test_memo_shapes_match_histogram(self):
        # The histogram dedupes by the scalar memo's own key, so the
        # priced-shape census keeps its meaning in vector mode.
        vec = run_cell(_spec())
        ref = run_cell(_spec(vector=False))
        assert vec.telemetry.memo_shapes == ref.telemetry.memo_shapes


class TestScalarFallback:
    def test_functional_cell_falls_back(self):
        from repro.core.stats import StatsTracker

        outcome = run_cell(_spec(functional=True, vector=True))
        assert outcome.ok
        assert outcome.telemetry.vector is False
        assert type(outcome.tracker) is StatsTracker

    def test_fault_cell_falls_back(self):
        from repro.faults.models import BitFlipFault, FaultPlan

        plan = FaultPlan(seed=3, faults=(BitFlipFault(rate=1e-4),))
        outcome = run_cell(
            _spec(functional=True, vector=True, fault_plan=plan)
        )
        assert outcome.ok
        assert outcome.telemetry.vector is False

    def test_observed_cell_falls_back(self):
        outcome = run_cell(_spec(vector=True), record_events=True)
        assert outcome.ok
        assert outcome.telemetry.vector is False
        assert outcome.events is not None


class TestVectorCheckGate:
    def test_check_passes_on_honest_tables(self, monkeypatch):
        from repro.perf.vector import VECTOR_CHECK_ENV, vector_check_enabled

        monkeypatch.setenv(VECTOR_CHECK_ENV, "1")
        assert vector_check_enabled()
        outcome = run_cell(_spec())
        assert outcome.ok

    def test_check_off_when_unset_or_empty(self, monkeypatch):
        # Same convention as REPRO_NO_COST_MEMO: any non-empty value
        # arms the check; unset or empty leaves it off.
        from repro.perf.vector import VECTOR_CHECK_ENV, vector_check_enabled

        monkeypatch.delenv(VECTOR_CHECK_ENV, raising=False)
        assert not vector_check_enabled()
        monkeypatch.setenv(VECTOR_CHECK_ENV, "")
        assert not vector_check_enabled()

    def test_check_catches_perturbed_cost_table(self, monkeypatch):
        from repro.arch.base import ArchBackend
        from repro.perf.vector import VECTOR_CHECK_ENV, VectorEquivalenceError

        monkeypatch.setenv(VECTOR_CHECK_ENV, "1")
        original = ArchBackend.cost_table

        def perturbed(self, pipeline, shapes):
            table = original(self, pipeline, shapes)
            return dataclasses.replace(
                table, latency_ns=table.latency_ns * (1.0 + 1e-9)
            )

        monkeypatch.setattr(ArchBackend, "cost_table", perturbed)
        with pytest.raises(VectorEquivalenceError, match="vecadd"):
            run_cell(_spec())


class TestSuiteByteIdentity:
    def test_exported_suite_json_identical(self):
        from repro.experiments.runner import export_suite_json, run_suite

        keys = ("vecadd", "histogram")
        scalar = run_suite(
            num_ranks=4, paper_scale=True, keys=keys,
            enforce_capacity=False, use_cache=False,
        )
        vector = run_suite(
            num_ranks=4, paper_scale=True, keys=keys,
            enforce_capacity=False, use_cache=False, vector=True,
        )
        assert export_suite_json(scalar) == export_suite_json(vector)

    def test_vector_suite_round_trips_disk_cache(self, tmp_path):
        from repro.experiments.runner import _CACHE, run_suite

        keys = ("vecadd",)
        kwargs = dict(
            num_ranks=2, paper_scale=False, keys=keys,
            cache_dir=tmp_path, vector=True,
        )
        first = run_suite(**kwargs)
        _CACHE.clear()  # force the second pass to the disk tier
        second = run_suite(**kwargs)
        a = first.result("vecadd", FULCRUM)
        b = second.result("vecadd", FULCRUM)
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())
