"""Tests for the parallel experiment engine: determinism, warm cache,
invalidation, corruption recovery, and observability replay."""

import dataclasses

import pytest

from repro.config.device import PimDeviceType
from repro.engine import CellSpec, DiskCache, cell_cache_key, run_cells
from repro.engine import engine as engine_mod
from repro.experiments.runner import (
    clear_cache,
    export_suite_json,
    run_suite,
)
from repro.obs import EventBus, RingBufferSink

#: Small functional cells: fast, and data generation is seeded, so every
#: process computes bit-identical results.
KEYS = ("vecadd", "axpy")


def specs_for(keys=KEYS, **overrides):
    base = dict(num_ranks=4, paper_scale=False, functional=True)
    base.update(overrides)
    return [
        CellSpec(key, device_type, **base)
        for key in keys
        for device_type in (PimDeviceType.FULCRUM, PimDeviceType.BANK_LEVEL)
    ]


def result_dicts(execution, specs):
    return [execution.outcome(spec).result.to_dict() for spec in specs]


class TestDeterminism:
    def test_parallel_equals_serial(self, tmp_path):
        specs = specs_for()
        serial = run_cells(specs, jobs=1, use_cache=False)
        parallel = run_cells(specs, jobs=2, use_cache=False)
        assert serial.jobs == 1 and parallel.jobs == 2
        assert result_dicts(serial, specs) == result_dicts(parallel, specs)

    def test_suite_export_byte_identical(self):
        serial = run_suite(num_ranks=4, paper_scale=False, keys=KEYS,
                           functional=True, use_cache=False)
        parallel = run_suite(num_ranks=4, paper_scale=False, keys=KEYS,
                             functional=True, use_cache=False, jobs=2)
        assert export_suite_json(serial) == export_suite_json(parallel)

    def test_merge_preserves_spec_order(self, tmp_path):
        specs = specs_for()
        execution = run_cells(specs, jobs=2, use_cache=False)
        assert list(execution.outcomes) == specs


class TestWarmCache:
    def test_second_run_simulates_nothing(self, tmp_path):
        specs = specs_for()
        cold = run_cells(specs, cache_dir=tmp_path)
        assert (cold.hits, cold.misses) == (0, len(specs))
        warm = run_cells(specs, cache_dir=tmp_path)
        assert (warm.hits, warm.misses) == (len(specs), 0)
        assert result_dicts(cold, specs) == result_dicts(warm, specs)

    def test_warm_hit_survives_process_restart(self, tmp_path, monkeypatch):
        # A fresh DiskCache over the same directory models a restart; to
        # prove the warm run simulates nothing, make simulating fatal.
        specs = specs_for()
        run_cells(specs, cache_dir=tmp_path)

        def boom(*_args, **_kwargs):
            raise AssertionError("warm run re-simulated a cached cell")

        monkeypatch.setattr(engine_mod, "run_cell", boom)
        warm = run_cells(specs, cache_dir=tmp_path)
        assert warm.misses == 0

    def test_warm_suite_after_memory_cache_clear(self, tmp_path, monkeypatch):
        run_suite(num_ranks=4, paper_scale=False, keys=KEYS,
                  functional=True, cache_dir=tmp_path)
        clear_cache(disk=False)  # forget the assembled suite, keep disk

        def boom(*_args, **_kwargs):
            raise AssertionError("warm suite re-simulated a cached cell")

        monkeypatch.setattr(engine_mod, "run_cell", boom)
        suite = run_suite(num_ranks=4, paper_scale=False, keys=KEYS,
                          functional=True, cache_dir=tmp_path)
        assert suite.result("vecadd", PimDeviceType.FULCRUM).verified is True

    def test_no_cache_never_writes(self, tmp_path):
        specs = specs_for()
        run_cells(specs, use_cache=False, cache_dir=tmp_path)
        assert DiskCache(tmp_path).stats() == (0, 0)


class TestInvalidation:
    def test_config_change_misses(self, tmp_path):
        specs = specs_for()
        run_cells(specs, cache_dir=tmp_path)
        wider = [dataclasses.replace(s, num_ranks=8) for s in specs]
        execution = run_cells(wider, cache_dir=tmp_path)
        assert execution.misses == len(wider)

    def test_model_version_change_misses(self, tmp_path, monkeypatch):
        from repro.engine import version

        specs = specs_for()
        run_cells(specs, cache_dir=tmp_path)
        monkeypatch.setattr(version, "CACHE_SCHEMA", version.CACHE_SCHEMA + 1)
        execution = run_cells(specs, cache_dir=tmp_path)
        assert execution.misses == len(specs)

    def test_corruption_degrades_to_rerun(self, tmp_path):
        specs = specs_for()
        cold = run_cells(specs, cache_dir=tmp_path)
        victim = specs[0]
        path = DiskCache(tmp_path).path_for(cell_cache_key(victim))
        path.write_bytes(b"\x80garbage")
        with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
            recovered = run_cells(specs, cache_dir=tmp_path)
        assert (recovered.hits, recovered.misses) == (len(specs) - 1, 1)
        assert recovered.outcome(victim).result.to_dict() == (
            cold.outcome(victim).result.to_dict()
        )
        # the re-run healed the entry
        healed = run_cells(specs, cache_dir=tmp_path)
        assert healed.misses == 0

    def test_corruption_is_diagnosed_and_counted(self, tmp_path):
        from repro.obs import global_registry

        specs = specs_for()
        run_cells(specs, cache_dir=tmp_path)
        path = DiskCache(tmp_path).path_for(cell_cache_key(specs[0]))
        path.write_bytes(b"\x80garbage")
        before = global_registry().value("cache.corrupt_entries")
        with pytest.warns(RuntimeWarning) as caught:
            run_cells(specs, cache_dir=tmp_path)
        message = str(caught[0].message)
        # Names the file and the exception class, for bug reports.
        assert str(path) in message
        assert "Error" in message  # e.g. UnpicklingError
        assert global_registry().value("cache.corrupt_entries") == before + 1


class TestObservabilityReplay:
    def run_observed(self, specs, jobs):
        bus = EventBus()
        sink = bus.subscribe(RingBufferSink(capacity=1 << 16))
        execution = run_cells(specs, jobs=jobs, bus=bus)
        return bus, sink, execution

    def test_clock_invariant_parallel(self):
        specs = specs_for()
        bus, _, execution = self.run_observed(specs, jobs=2)
        modeled = sum(
            execution.outcome(spec).result.stats.total_time_ns
            for spec in specs
        )
        assert bus.now_ns == pytest.approx(modeled)

    def test_replay_stream_matches_serial_stream(self):
        specs = specs_for()
        serial_bus, serial_sink, _ = self.run_observed(specs, jobs=1)
        parallel_bus, parallel_sink, _ = self.run_observed(specs, jobs=2)
        assert parallel_bus.now_ns == pytest.approx(serial_bus.now_ns)

        def shape(events):
            # Everything except wall_us, which is honest wall time and
            # legitimately differs between live and replayed streams.
            return [
                (e.name, e.cat, e.ph, e.ts_ns, e.dur_ns, e.track, e.process)
                for e in events
            ]

        assert shape(parallel_sink.events) == shape(serial_sink.events)

    def test_observed_runs_bypass_cache(self, tmp_path):
        specs = specs_for()
        bus = EventBus()
        bus.subscribe(RingBufferSink())
        run_cells(specs, bus=bus, cache_dir=tmp_path)
        assert DiskCache(tmp_path).stats() == (0, 0)


class TestJobsResolution:
    def test_env_default(self, monkeypatch):
        from repro.engine import resolve_jobs

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit beats env

    def test_rejects_bad_values(self, monkeypatch):
        from repro.engine import resolve_jobs

        with pytest.raises(ValueError):
            resolve_jobs(0)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            resolve_jobs(None)
