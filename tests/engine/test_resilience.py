"""Engine resilience tests: crash isolation, timeouts, retries, fail-fast.

These use the injectable engine faults (raise / hang / hard-exit) to
exercise the paths a healthy suite never takes.  Cells are functional
small-scale, so even the process-isolated runs stay fast.
"""

import dataclasses

import pytest

from repro.config.device import PimDeviceType
from repro.core.errors import FailureKind
from repro.engine import (
    CellExecutionError,
    CellSpec,
    DiskCache,
    cell_cache_key,
    run_cells,
)
from repro.faults import (
    FaultPlan,
    WorkerCrashFault,
    WorkerExceptionFault,
    WorkerHangFault,
)
from repro.resilience import RetryPolicy, format_failure_summary

COMMON = dict(
    num_ranks=2, paper_scale=False, functional=True, enforce_capacity=False
)


def cell(key, *faults, seed=1):
    plan = FaultPlan(seed=seed, faults=tuple(faults)) if faults else None
    return CellSpec(key, PimDeviceType.FULCRUM, fault_plan=plan, **COMMON)


#: A policy with snappy backoff so retry tests stay fast.
FAST = dict(backoff_base_s=0.01, backoff_max_s=0.05)


class TestSerialFailures:
    def test_raising_cell_degrades_not_aborts(self):
        bad = cell("vecadd", WorkerExceptionFault(fail_attempts=99))
        good = cell("axpy")
        execution = run_cells([bad, good], use_cache=False)
        assert not execution.ok
        assert execution.outcome(good).ok
        failure = execution.failures[bad]
        assert failure.kind is FailureKind.ERROR
        assert failure.error_type == "PimFaultInjectionError"
        assert failure.attempts == 1

    def test_transient_failure_retries_to_success(self):
        flaky = cell("vecadd", WorkerExceptionFault(fail_attempts=1))
        execution = run_cells(
            [flaky], use_cache=False,
            policy=RetryPolicy(max_retries=2, **FAST),
        )
        assert execution.ok
        assert execution.retries == 1
        assert execution.outcome(flaky).result.verified is True

    def test_retry_budget_exhausts(self):
        bad = cell("vecadd", WorkerExceptionFault(fail_attempts=99))
        execution = run_cells(
            [bad], use_cache=False, policy=RetryPolicy(max_retries=2, **FAST)
        )
        assert execution.failures[bad].attempts == 3
        assert execution.retries == 2

    def test_fail_fast_skips_the_rest(self):
        bad = cell("vecadd", WorkerExceptionFault(fail_attempts=99))
        never = cell("axpy")
        execution = run_cells(
            [bad, never], use_cache=False,
            policy=RetryPolicy(fail_fast=True),
        )
        assert execution.failures[bad].kind is FailureKind.ERROR
        assert execution.failures[never].kind is FailureKind.SKIPPED
        assert execution.failures[never].attempts == 0

    def test_fail_fast_with_zero_retries_attempts_exactly_once(self):
        # max_retries=0 + fail_fast is the strictest policy: a fault
        # that one retry would have healed still stops the suite after
        # a single attempt, and nothing later is even tried.
        healable = cell("vecadd", WorkerExceptionFault(fail_attempts=1))
        never = cell("axpy")
        execution = run_cells(
            [healable, never], use_cache=False,
            policy=RetryPolicy(max_retries=0, fail_fast=True),
        )
        assert not execution.ok
        assert execution.retries == 0
        assert execution.failures[healable].kind is FailureKind.ERROR
        assert execution.failures[healable].attempts == 1
        assert execution.failures[never].kind is FailureKind.SKIPPED
        assert execution.failures[never].attempts == 0

    def test_crash_fault_refuses_to_kill_the_parent(self):
        # In-process execution must never hard-exit the test runner.
        bad = cell("vecadd", WorkerCrashFault(fail_attempts=99))
        execution = run_cells([bad], use_cache=False)
        assert execution.failures[bad].error_type == "PimFaultInjectionError"

    def test_strict_callers_get_an_exception(self):
        bad = cell("vecadd", WorkerExceptionFault(fail_attempts=99))
        execution = run_cells([bad], use_cache=False)
        with pytest.raises(CellExecutionError):
            execution.raise_first_failure()


class TestFailureCaching:
    def test_failures_are_never_cached(self, tmp_path):
        bad = cell("vecadd", WorkerExceptionFault(fail_attempts=1))
        first = run_cells([bad], cache_dir=tmp_path)
        assert not first.ok
        assert DiskCache(tmp_path).stats() == (0, 0)
        # The transient fault only fires on attempt 1 of each run, but a
        # failure must re-simulate -- and this one heals.
        second = run_cells(
            [bad], cache_dir=tmp_path, policy=RetryPolicy(max_retries=1, **FAST)
        )
        assert second.ok
        assert second.misses == 1
        assert DiskCache(tmp_path).stats()[0] == 1

    def test_fault_plan_is_part_of_the_cache_key(self):
        clean = cell("vecadd")
        faulted = cell("vecadd", WorkerExceptionFault(fail_attempts=1))
        planless_key = cell_cache_key(clean)
        assert cell_cache_key(faulted) != planless_key
        # and a faultless plan keys differently from no plan at all
        empty_plan = dataclasses.replace(clean, fault_plan=FaultPlan(seed=0))
        assert cell_cache_key(empty_plan) != planless_key


class TestIsolatedFailures:
    """Worker-process paths: timeouts and hard crashes. Marked by the
    process spawns they require; kept to the minimum that proves the
    acceptance scenario."""

    def test_hang_and_crash_do_not_stop_the_suite(self):
        # The ISSUE's acceptance scenario: one cell hangs past its
        # timeout, one worker dies, the rest completes, both failures
        # are reported, and the summary table names them.
        hang = cell("vecadd", WorkerHangFault(seconds=60.0))
        crash = cell("axpy", WorkerCrashFault(fail_attempts=99))
        good = cell("gemv")
        execution = run_cells(
            [hang, crash, good], jobs=2, use_cache=False,
            policy=RetryPolicy(cell_timeout_s=5.0, **FAST),
        )
        assert execution.outcome(good).ok
        assert execution.failures[hang].kind is FailureKind.TIMEOUT
        assert execution.failures[crash].kind is FailureKind.CRASH
        table = format_failure_summary(execution.failures)
        assert "timeout" in table and "crash" in table
        assert "vecadd" in table and "axpy" in table

    def test_transient_failure_retries_to_success_isolated(self):
        flaky = cell("vecadd", WorkerExceptionFault(fail_attempts=1))
        execution = run_cells(
            [flaky], jobs=2, use_cache=False,
            policy=RetryPolicy(max_retries=2, cell_timeout_s=60.0, **FAST),
        )
        assert execution.ok
        assert execution.retries == 1

    def test_fail_fast_zero_retries_skips_unstarted_isolated_cells(self):
        # The isolated scheduler has its own fail-fast bookkeeping;
        # with no retry budget the first worker failure must both stop
        # new dispatches and mark never-started cells SKIPPED.
        bad = cell("vecadd", WorkerExceptionFault(fail_attempts=99))
        rest = [cell(key) for key in ("axpy", "gemv", "dot")]
        execution = run_cells(
            [bad] + rest, jobs=1, use_cache=False,
            policy=RetryPolicy(
                max_retries=0, fail_fast=True, cell_timeout_s=60.0, **FAST
            ),
        )
        assert execution.failures[bad].kind is FailureKind.ERROR
        assert execution.failures[bad].attempts == 1
        kinds = {execution.failures[spec].kind for spec in rest}
        assert kinds == {FailureKind.SKIPPED}

    def test_timeout_policy_isolates_even_serial_jobs(self):
        # jobs=1 + a timeout still runs in a killable worker process.
        hang = cell("vecadd", WorkerHangFault(seconds=60.0))
        execution = run_cells(
            [hang], jobs=1, use_cache=False,
            policy=RetryPolicy(cell_timeout_s=3.0),
        )
        assert execution.failures[hang].kind is FailureKind.TIMEOUT


class TestObservedFailures:
    def test_failed_cells_leave_clock_invariant_intact(self):
        from repro.obs import EventBus, RingBufferSink

        bad = cell("vecadd", WorkerExceptionFault(fail_attempts=99))
        good = cell("axpy")
        bus = EventBus()
        bus.subscribe(RingBufferSink())
        execution = run_cells([bad, good], jobs=2, bus=bus)
        assert not execution.ok
        modeled = execution.outcome(good).result.stats.total_time_ns
        assert bus.now_ns == pytest.approx(modeled)

    def test_retry_and_failure_events_reach_the_bus(self):
        from repro.obs import EventBus, MetricsSink, RecordingSink

        bad = cell("vecadd", WorkerExceptionFault(fail_attempts=99))
        bus = EventBus()
        sink = bus.subscribe(RecordingSink())
        metrics = bus.subscribe(MetricsSink())
        run_cells(
            [bad], bus=bus, policy=RetryPolicy(max_retries=1, **FAST)
        )
        names = [e.name for e in sink.events if e.cat == "engine"]
        assert "cell.retry:vecadd" in names
        assert "cell.failed:vecadd" in names
        assert metrics.registry.value("engine.retry") == 1
        assert metrics.registry.value("engine.failed") == 1
