"""Cache keys for the paper architectures are byte-identical to PR 3.

``tests/engine/fixtures/cache_keys_pr3.json`` was generated *before* the
architecture-registry refactor, with ``_digest_entries`` replaced by a
fake that hashes the entry tuple itself instead of file contents.  That
pins everything about the key *schema* -- the canonical material dict,
the stamp format, and the exact stamp-source tuples each device
declares -- while staying independent of incidental source edits.

If this test fails, cached results from before the refactor would be
silently invalidated (or worse, mis-shared).  Regenerate the fixture
only for a deliberate, documented schema change (and bump
``CACHE_SCHEMA`` when the payload layout moves too).
"""

import hashlib
import json
import pathlib

import pytest

import repro.engine.version as version_module
from repro.config.device import PimDeviceType
from repro.engine import CellSpec, cell_cache_key, model_version

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "cache_keys_pr3.json"

PAPER_DEVICES = (
    PimDeviceType.BITSIMD_V_AP,
    PimDeviceType.FULCRUM,
    PimDeviceType.BANK_LEVEL,
)
BENCHMARKS = ("vecadd", "gemv", "histogram")


def fake_digest(entries):
    """Digest the entry tuple itself, not file contents (schema-only)."""
    return hashlib.sha256(repr(tuple(entries)).encode()).hexdigest()


@pytest.fixture
def schema_digests(monkeypatch):
    monkeypatch.setattr(version_module, "_digest_entries", fake_digest)


def _current_keys() -> dict:
    keys = {}
    for device_type in PAPER_DEVICES:
        for bench in BENCHMARKS:
            spec = CellSpec(benchmark_key=bench, device_type=device_type)
            keys[f"{device_type.value}:{bench}:32:paper"] = cell_cache_key(spec)
        functional = CellSpec(
            benchmark_key="vecadd",
            device_type=device_type,
            num_ranks=4,
            paper_scale=False,
            functional=True,
        )
        keys[f"{device_type.value}:vecadd:4:functional"] = cell_cache_key(
            functional
        )
        keys[f"stamp:{device_type.value}:vecadd"] = model_version(
            device_type, "vecadd"
        )
    return keys


def test_fixture_covers_all_fifteen_keys():
    fixture = json.loads(FIXTURE.read_text())
    assert len(fixture) == 15
    assert set(fixture) == set(_keys_expected())


def _keys_expected():
    names = []
    for device_type in PAPER_DEVICES:
        names += [
            f"{device_type.value}:{bench}:32:paper" for bench in BENCHMARKS
        ]
        names.append(f"{device_type.value}:vecadd:4:functional")
        names.append(f"stamp:{device_type.value}:vecadd")
    return names


def test_cache_keys_byte_identical_to_pr3(schema_digests):
    fixture = json.loads(FIXTURE.read_text())
    current = _current_keys()
    mismatched = {
        name: (fixture[name], current[name])
        for name in fixture
        if current.get(name) != fixture[name]
    }
    assert not mismatched, (
        "cache keys drifted from the pre-refactor fixture "
        f"(old, new): {mismatched}"
    )


def test_stamp_schema_unchanged(schema_digests):
    """The stamp keeps its schema-common-device-bench shape and the
    builtin backends keep the exact stamp-source tuples of PR 3."""
    for device_type in PAPER_DEVICES:
        stamp = model_version(device_type, "vecadd")
        parts = stamp.split("-")
        assert parts[0] == str(version_module.CACHE_SCHEMA)
        assert len(parts) == 4
        assert all(len(p) == 12 for p in parts[1:])
    # Distinct per-device digests: no two paper devices share a stamp.
    digests = {
        model_version(d, "vecadd").split("-")[2] for d in PAPER_DEVICES
    }
    assert len(digests) == len(PAPER_DEVICES)


def test_handwritten_stamp_entries_never_contain_pseudo_entries():
    """The byte-identity guarantee for hand-written backends rests on
    real source paths never containing ``=`` (the pseudo-entry marker
    parametric knob digests use).  Pin it for every non-transient
    backend."""
    from repro.arch import iter_backends

    for backend in iter_backends():
        if getattr(backend, "transient", False):
            continue
        assert not any("=" in entry for entry in backend.stamp_entries()), (
            f"{backend.id} stamp entries contain '='; hand-written keys "
            "would collide with the pseudo-entry namespace"
        )


class TestParametricKeys:
    """Cache-key soundness of derived (transient parametric) backends.

    The knob content enters the key twice -- via the ParametricDeviceType
    dataclass fields in the config material and via the ``knobs=<digest>``
    stamp pseudo-entry -- so distinct knob dicts can never share a key
    and key-order/numeric-spelling variants of the same dict always do.
    """

    def _key_for(self, backend) -> str:
        spec = CellSpec(
            benchmark_key="vecadd", device_type=backend.device_type
        )
        return cell_cache_key(spec)

    def test_distinct_knob_dicts_get_distinct_keys(self, schema_digests):
        from repro.arch import derive_backend, unregister_backend

        variants = [
            derive_backend("bank", {"banks_per_rank": banks})
            for banks in (16, 32, 64, 128)
        ]
        try:
            keys = {self._key_for(backend) for backend in variants}
            assert len(keys) == len(variants)
        finally:
            # cell_cache_key resolves the backend via arch_for, whose
            # self-heal path registers the derived type; clean up.
            for backend in variants:
                unregister_backend(backend.id)

    def test_dict_order_variants_share_one_key(self, schema_digests):
        from repro.arch import derive_backend, unregister_backend

        a = derive_backend(
            "bank", {"pe_width_bits": 128, "pe_freq_mhz": 250}
        )
        b = derive_backend(
            "bank", {"pe_freq_mhz": 250.0, "bank_alu_bits": 128}
        )
        try:
            assert self._key_for(a) == self._key_for(b)
        finally:
            unregister_backend(a.id)

    def test_parametric_stamp_differs_from_base(self, schema_digests):
        from repro.arch import derive_backend, unregister_backend

        backend = derive_backend("bank", {"banks_per_rank": 64})
        try:
            derived = model_version(backend.device_type, "vecadd")
            base = model_version(PimDeviceType.BANK_LEVEL, "vecadd")
            # Same schema and common/bench digests; the device digest
            # (position 2) must differ -- the knob pseudo-entry moved it.
            assert derived.split("-")[2] != base.split("-")[2]
            assert derived.split("-")[1] == base.split("-")[1]
            assert derived.split("-")[3] == base.split("-")[3]
        finally:
            unregister_backend(backend.id)
