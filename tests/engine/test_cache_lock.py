"""The usage ledger survives concurrent writers.

``DiskCache.flush_usage`` read-modify-writes ``usage.json``; a serve
process and a CLI run sharing a cache directory race on it.  The
advisory ``_UsageLock`` serializes those merges -- these tests pin
both halves of that contract: no increment is lost under two-process
contention, and the wait stays bounded (a dead peer degrades the flush
to best-effort instead of wedging it).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro.engine.cache import DiskCache, _UsageLock

fcntl = pytest.importorskip("fcntl", reason="advisory locking is POSIX-only")

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

ROUNDS = 150

#: One contending writer: tally a miss, flush, repeat.  Every round is
#: a full read-modify-write of the shared ledger, so two copies running
#: back-to-back hammer the lock window ~300 times.
WRITER = textwrap.dedent("""
    import sys, time

    from repro.engine.cache import DiskCache

    root, rounds, start_at = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])
    cache = DiskCache(root)
    time.sleep(max(0.0, start_at - time.time()))  # aligned start
    for index in range(rounds):
        cache.get("%064d" % index)  # absent entry -> one session miss
        cache.flush_usage()
    print("done")
""")


class TestTwoProcessStress:
    def test_no_increment_lost_under_contention(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [SRC] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        start_at = time.time() + 1.0
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER,
                 str(tmp_path), str(ROUNDS), str(start_at)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        for proc in writers:
            stdout, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr
            assert stdout.strip() == "done"
        ledger = DiskCache(tmp_path).usage()
        assert ledger["misses"] == 2 * ROUNDS
        assert ledger["hits"] == 0
        # The ledger itself stays a well-formed single document.
        with open(tmp_path / "usage.json", encoding="utf-8") as fh:
            assert json.load(fh)["schema"] == 1


class TestBoundedWait:
    def test_lock_acquires_when_free(self, tmp_path):
        with _UsageLock(tmp_path / "usage.lock") as lock:
            assert lock.held
        assert not lock.held  # released on exit

    def test_contended_lock_gives_up_within_the_bound(self, tmp_path):
        path = tmp_path / "usage.lock"
        holder = open(path, "ab")
        try:
            fcntl.flock(holder, fcntl.LOCK_EX)
            began = time.monotonic()
            with _UsageLock(path, wait_s=0.2) as lock:
                waited = time.monotonic() - began
                assert not lock.held
            assert 0.2 <= waited < 2.0
        finally:
            holder.close()

    def test_flush_usage_degrades_to_best_effort(self, tmp_path, monkeypatch):
        import repro.engine.cache as cache_module

        cache = DiskCache(tmp_path)
        cache.get("0" * 64)  # one session miss to flush
        monkeypatch.setattr(
            cache_module, "_UsageLock",
            lambda path: _UsageLock(path, wait_s=0.1),
        )
        holder = open(cache.usage_lock_path, "ab")
        try:
            fcntl.flock(holder, fcntl.LOCK_EX)
            totals = cache.flush_usage()
        finally:
            holder.close()
        # The unlocked fallback still merged and wrote the ledger.
        assert totals["misses"] == 1
        assert DiskCache(tmp_path).usage()["misses"] == 1

    def test_reentry_resets_state(self, tmp_path):
        lock = _UsageLock(tmp_path / "usage.lock")
        with lock:
            assert lock.held
        with lock:
            assert lock.held
        assert lock._fh is None
