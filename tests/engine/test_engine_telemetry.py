"""Telemetry through the engine: worker survival, deterministic merge,
cache-served cells, and the persistent usage ledger."""

import json

from repro.config.device import PimDeviceType
from repro.engine import CellSpec, DiskCache, run_cells
from repro.obs.metrics import global_registry

KEYS = ("vecadd", "axpy")

#: The merged counters the ISSUE pins byte-equal across --jobs values.
MERGED_COUNTERS = (
    "telemetry.cells",
    "telemetry.commands_simulated",
    "cost_memo.hits",
    "cost_memo.misses",
)


def specs_for(keys=KEYS, **overrides):
    base = dict(num_ranks=4, paper_scale=False, functional=True)
    base.update(overrides)
    return [
        CellSpec(key, device_type, **base)
        for key in keys
        for device_type in (PimDeviceType.FULCRUM, PimDeviceType.BANK_LEVEL)
    ]


def run_with_deltas(specs, **kwargs):
    """run_cells plus the global-registry counter deltas it caused.

    Deltas (not absolute values) keep the test independent of whatever
    other tests already folded into the process-wide registry.
    """
    registry = global_registry()
    before = {name: registry.value(name) for name in MERGED_COUNTERS}
    execution = run_cells(specs, **kwargs)
    deltas = {
        name: registry.value(name) - before[name]
        for name in MERGED_COUNTERS
    }
    return execution, deltas


class TestWorkerSurvival:
    def test_parallel_outcomes_carry_telemetry(self):
        specs = specs_for()
        execution, _ = run_with_deltas(specs, jobs=2, use_cache=False)
        for spec in specs:
            telemetry = execution.outcome(spec).telemetry
            assert telemetry is not None
            assert telemetry.benchmark == spec.benchmark_key
            assert telemetry.num_ranks == spec.num_ranks
            assert telemetry.commands_simulated > 0
            assert telemetry.wall_s > 0.0
            assert telemetry.peak_rss_kb > 0
            assert not telemetry.from_cache

    def test_telemetries_property_in_spec_order(self):
        specs = specs_for()
        execution, _ = run_with_deltas(specs, jobs=2, use_cache=False)
        assert [t.benchmark for t in execution.telemetries] == [
            spec.benchmark_key for spec in specs
        ]


class TestDeterministicMerge:
    def test_serial_and_parallel_deltas_byte_equal(self):
        specs = specs_for()
        _, serial = run_with_deltas(specs, jobs=1, use_cache=False)
        _, parallel = run_with_deltas(specs, jobs=2, use_cache=False)
        assert serial["telemetry.cells"] == len(specs)
        assert serial["telemetry.commands_simulated"] > 0
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )


class TestCacheServedTelemetry:
    def test_cache_hit_marks_from_cache(self, tmp_path):
        specs = specs_for()
        cold, _ = run_with_deltas(specs, cache_dir=tmp_path)
        warm, _ = run_with_deltas(specs, cache_dir=tmp_path)
        for spec in specs:
            original = cold.outcome(spec).telemetry
            served = warm.outcome(spec).telemetry
            assert not original.from_cache
            assert served.from_cache
            # Deterministic figures survive the round trip exactly;
            # the wall/RSS figures describe the original simulation.
            assert served.commands_simulated == original.commands_simulated
            assert served.memo_hits == original.memo_hits
            assert served.wall_s == original.wall_s

    def test_cached_cells_still_merge_counters(self, tmp_path):
        specs = specs_for()
        _, cold = run_with_deltas(specs, cache_dir=tmp_path)
        _, warm = run_with_deltas(specs, cache_dir=tmp_path)
        # Command/memo tallies are identical whether simulated or served.
        assert warm == cold
        registry = global_registry()
        assert registry.value("telemetry.cells_from_cache") >= len(specs)


class TestUsageLedger:
    def test_ledger_accumulates_across_instances(self, tmp_path):
        specs = specs_for(keys=("vecadd",))
        run_cells(specs, cache_dir=tmp_path)   # misses + writes
        run_cells(specs, cache_dir=tmp_path)   # hits
        usage = DiskCache(tmp_path).usage()
        assert usage["misses"] == len(specs)
        assert usage["writes"] == len(specs)
        assert usage["hits"] == len(specs)
        assert usage["corrupt"] == 0

    def test_ledger_is_valid_json_on_disk(self, tmp_path):
        run_cells(specs_for(keys=("vecadd",)), cache_dir=tmp_path)
        cache = DiskCache(tmp_path)
        with open(cache.usage_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["schema"] == 1
        assert payload["writes"] >= 1

    def test_absent_ledger_reads_zeros(self, tmp_path):
        usage = DiskCache(tmp_path).usage()
        assert usage == {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}

    def test_entries_lists_key_size_mtime(self, tmp_path):
        specs = specs_for(keys=("vecadd",))
        run_cells(specs, cache_dir=tmp_path)
        entries = DiskCache(tmp_path).entries()
        assert len(entries) == len(specs)
        for key, size, mtime in entries:
            assert len(key) == 64 and size > 0 and mtime > 0
