"""Tests for the model-version stamps behind cache invalidation."""

from repro.config.device import PimDeviceType
from repro.engine import version
from repro.engine.version import model_version


class TestModelVersion:
    def test_stable_across_calls(self):
        a = model_version(PimDeviceType.FULCRUM, "vecadd")
        b = model_version(PimDeviceType.FULCRUM, "vecadd")
        assert a == b

    def test_schema_prefix(self):
        stamp = model_version(PimDeviceType.FULCRUM, "vecadd")
        assert stamp.startswith(f"{version.CACHE_SCHEMA}-")
        # schema + three 12-hex-digit group digests
        assert len(stamp.split("-")) == 4

    def test_differs_per_device_type(self):
        stamps = {
            model_version(device_type, "vecadd")
            for device_type in PimDeviceType
        }
        # Analog shares the bit-serial sources plus its own, so all four
        # must still be distinct.
        assert len(stamps) == 4

    def test_differs_per_benchmark(self):
        assert model_version(PimDeviceType.FULCRUM, "vecadd") != model_version(
            PimDeviceType.FULCRUM, "gemm"
        )

    def test_same_module_benchmarks_share_stamp(self):
        # VGG-13/16/19 live in one module: an edit there invalidates all
        # three, and only those.
        assert model_version(PimDeviceType.FULCRUM, "vgg-13") == model_version(
            PimDeviceType.FULCRUM, "vgg-16"
        )

    def test_schema_bump_changes_stamp(self, monkeypatch):
        before = model_version(PimDeviceType.BANK_LEVEL, "vecadd")
        monkeypatch.setattr(version, "CACHE_SCHEMA", version.CACHE_SCHEMA + 1)
        assert model_version(PimDeviceType.BANK_LEVEL, "vecadd") != before

    def test_extension_kernels_resolve(self):
        stamp = model_version(PimDeviceType.FULCRUM, "stringmatch")
        assert stamp != model_version(PimDeviceType.FULCRUM, "vecadd")
