"""WarmExecutor: persistent workers with the engine's isolation story."""

from __future__ import annotations

import os
import queue

import pytest

from repro.arch import resolve_backend
from repro.engine import CellSpec, run_cells
from repro.engine.warm import WarmExecutor, WarmSlot
from repro.serve.protocol import canonical_json, result_payload


def _spec(ranks: int = 32) -> CellSpec:
    backend = resolve_backend("bank")
    return CellSpec(
        benchmark_key="vecadd", device_type=backend.device_type,
        num_ranks=ranks, paper_scale=True, functional=False,
    )


class TestWarmSlot:
    def test_warm_slot_result_is_byte_identical_to_run_cells(self):
        spec = _spec()
        slot = WarmSlot(0)
        try:
            warm_outcome = slot.submit(spec).result(timeout=120)
        finally:
            slot.shutdown()
        direct = run_cells([spec], use_cache=False).outcome(spec)
        assert canonical_json(
            result_payload(spec, warm_outcome)
        ) == canonical_json(result_payload(spec, direct))

    def test_worker_survives_across_cells(self):
        slot = WarmSlot(0)
        try:
            slot.warm_up()
            for _ in range(2):
                outcome = slot.submit(_spec()).result(timeout=120)
                assert outcome.error is None
            assert slot.cells_run == 2
            assert slot.respawns == 0
        finally:
            slot.shutdown()

    def test_respawn_replaces_the_worker(self):
        slot = WarmSlot(0)
        try:
            slot.warm_up()
            before = list(
                getattr(slot._pool, "_processes", {}).keys()
            )
            slot.respawn()
            slot.warm_up()
            after = list(getattr(slot._pool, "_processes", {}).keys())
            assert slot.respawns == 1
            assert before != after
            # The old worker is actually dead.
            for pid in before:
                assert not _alive(pid)
            outcome = slot.submit(_spec()).result(timeout=120)
            assert outcome.error is None
        finally:
            slot.shutdown()

    def test_shutdown_is_terminal_and_idempotent(self):
        slot = WarmSlot(0)
        slot.warm_up()
        pids = list(getattr(slot._pool, "_processes", {}).keys())
        slot.shutdown()
        slot.shutdown()
        assert not slot.alive
        for pid in pids:
            assert not _alive(pid)
        with pytest.raises(RuntimeError):
            slot.submit(_spec())
        with pytest.raises(RuntimeError):
            slot.respawn()


class TestWarmExecutor:
    def test_checkout_discipline(self):
        executor = WarmExecutor(workers=2)
        try:
            a = executor.acquire()
            b = executor.acquire()
            with pytest.raises(queue.Empty):
                executor.acquire(timeout=0.05)
            executor.release(a)
            assert executor.acquire() is a
            executor.release(b)
        finally:
            executor.shutdown()

    def test_shutdown_kills_every_worker(self):
        executor = WarmExecutor(workers=2)
        executor.warm_up()
        pids = executor.worker_pids()
        assert len(pids) == 2
        executor.shutdown()
        for pid in pids:
            assert not _alive(pid)
        assert executor.worker_pids() == []

    def test_respawns_aggregate_across_slots(self):
        executor = WarmExecutor(workers=2)
        try:
            executor.slots[0].respawn()
            executor.slots[1].respawn()
            executor.slots[1].respawn()
            assert executor.respawns == 3
        finally:
            executor.shutdown()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WarmExecutor(workers=0)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True
