"""Functional-engine tests: every command vs its numpy semantics.

Runs on all three architectures (the functional result must be identical
regardless of the simulation target -- the portability claim of the PIM
API).
"""

import numpy as np
import pytest

from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.errors import PimTypeError


def setup_pair(device, rng, n=257, lo=-1000, hi=1000, dtype=PimDataType.INT32):
    a = rng.integers(lo, hi, n).astype(dtype.numpy_name)
    b = rng.integers(lo, hi, n).astype(dtype.numpy_name)
    obj_a = device.alloc(n, dtype)
    obj_b = device.alloc_associated(obj_a)
    device.copy_host_to_device(a, obj_a)
    device.copy_host_to_device(b, obj_b)
    return a, b, obj_a, obj_b


BINARY_CASES = [
    (PimCmdKind.ADD, lambda a, b: a + b),
    (PimCmdKind.SUB, lambda a, b: a - b),
    (PimCmdKind.MUL, lambda a, b: a * b),
    (PimCmdKind.AND, np.bitwise_and),
    (PimCmdKind.OR, np.bitwise_or),
    (PimCmdKind.XOR, np.bitwise_xor),
    (PimCmdKind.XNOR, lambda a, b: ~(a ^ b)),
    (PimCmdKind.MIN, np.minimum),
    (PimCmdKind.MAX, np.maximum),
]

COMPARE_CASES = [
    (PimCmdKind.LT, np.less),
    (PimCmdKind.GT, np.greater),
    (PimCmdKind.EQ, np.equal),
    (PimCmdKind.NE, np.not_equal),
]


class TestBinaryCommands:
    @pytest.mark.parametrize("kind,func", BINARY_CASES,
                             ids=[k.name for k, _ in BINARY_CASES])
    def test_matches_numpy(self, device, rng, kind, func):
        a, b, obj_a, obj_b = setup_pair(device, rng)
        dest = device.alloc_associated(obj_a)
        device.execute(kind, (obj_a, obj_b), dest)
        with np.errstate(over="ignore"):
            expected = func(a, b)
        assert np.array_equal(device.copy_device_to_host(dest), expected)

    @pytest.mark.parametrize("kind,func", COMPARE_CASES,
                             ids=[k.name for k, _ in COMPARE_CASES])
    def test_comparisons_produce_bool(self, device, rng, kind, func):
        a, b, obj_a, obj_b = setup_pair(device, rng, lo=-3, hi=3)
        dest = device.alloc_associated(obj_a, PimDataType.BOOL)
        device.execute(kind, (obj_a, obj_b), dest)
        assert np.array_equal(device.copy_device_to_host(dest), func(a, b))

    def test_int32_multiplication_wraps(self, device):
        a = np.array([2**30, -(2**30)], dtype=np.int32)
        obj_a = device.alloc(2)
        obj_b = device.alloc_associated(obj_a)
        dest = device.alloc_associated(obj_a)
        device.copy_host_to_device(a, obj_a)
        device.copy_host_to_device(a, obj_b)
        device.execute(PimCmdKind.MUL, (obj_a, obj_b), dest)
        with np.errstate(over="ignore"):
            expected = a * a
        assert np.array_equal(device.copy_device_to_host(dest), expected)


class TestScalarCommands:
    @pytest.mark.parametrize("kind,func,scalar", [
        (PimCmdKind.ADD_SCALAR, np.add, 37),
        (PimCmdKind.SUB_SCALAR, np.subtract, 11),
        (PimCmdKind.MUL_SCALAR, np.multiply, -3),
        (PimCmdKind.MIN_SCALAR, np.minimum, 12),
        (PimCmdKind.MAX_SCALAR, np.maximum, -5),
        (PimCmdKind.AND_SCALAR, np.bitwise_and, 0xFF),
        (PimCmdKind.OR_SCALAR, np.bitwise_or, 0x0F),
        (PimCmdKind.XOR_SCALAR, np.bitwise_xor, 0x55),
    ], ids=lambda x: x.name if isinstance(x, PimCmdKind) else "")
    def test_matches_numpy(self, device, rng, kind, func, scalar):
        a, _, obj_a, _ = setup_pair(device, rng, lo=-100, hi=100)
        dest = device.alloc_associated(obj_a)
        device.execute(kind, (obj_a,), dest, scalar=scalar)
        expected = func(a, np.int32(scalar))
        assert np.array_equal(device.copy_device_to_host(dest), expected)

    def test_eq_scalar(self, device, rng):
        a, _, obj_a, _ = setup_pair(device, rng, lo=0, hi=4)
        dest = device.alloc_associated(obj_a, PimDataType.BOOL)
        device.execute(PimCmdKind.EQ_SCALAR, (obj_a,), dest, scalar=2)
        assert np.array_equal(device.copy_device_to_host(dest), a == 2)

    def test_shifts(self, device, rng):
        a, _, obj_a, _ = setup_pair(device, rng, lo=0, hi=1 << 20)
        dest = device.alloc_associated(obj_a)
        device.execute(PimCmdKind.SHIFT_LEFT, (obj_a,), dest, scalar=3)
        assert np.array_equal(device.copy_device_to_host(dest), a << 3)
        device.execute(PimCmdKind.SHIFT_RIGHT, (obj_a,), dest, scalar=2)
        assert np.array_equal(device.copy_device_to_host(dest), a >> 2)

    def test_scalar_wraps_into_dtype(self, device, rng):
        a = rng.integers(0, 100, 16).astype(np.uint8)
        obj = device.alloc(16, PimDataType.UINT8)
        device.copy_host_to_device(a, obj)
        dest = device.alloc_associated(obj)
        device.execute(PimCmdKind.ADD_SCALAR, (obj,), dest, scalar=300)
        assert np.array_equal(
            device.copy_device_to_host(dest), (a + np.uint8(300 % 256))
        )


class TestSpecialCommands:
    def test_scaled_add(self, device, rng):
        a, b, obj_a, obj_b = setup_pair(device, rng, lo=-100, hi=100)
        dest = device.alloc_associated(obj_a)
        device.execute(PimCmdKind.SCALED_ADD, (obj_a, obj_b), dest, scalar=7)
        assert np.array_equal(device.copy_device_to_host(dest), a * 7 + b)

    def test_select(self, device, rng):
        a, b, obj_a, obj_b = setup_pair(device, rng)
        cond = device.alloc_associated(obj_a, PimDataType.BOOL)
        device.execute(PimCmdKind.GT, (obj_a, obj_b), cond)
        dest = device.alloc_associated(obj_a)
        device.execute(PimCmdKind.SELECT, (cond, obj_a, obj_b), dest)
        assert np.array_equal(
            device.copy_device_to_host(dest), np.maximum(a, b)
        )

    def test_broadcast(self, device):
        obj = device.alloc(100)
        device.execute(PimCmdKind.BROADCAST, (), obj, scalar=-42)
        assert np.array_equal(
            device.copy_device_to_host(obj), np.full(100, -42, dtype=np.int32)
        )

    def test_redsum_returns_int64_sum(self, device, rng):
        a = rng.integers(-(2**30), 2**30, 1000).astype(np.int32)
        obj = device.alloc(1000)
        device.copy_host_to_device(a, obj)
        total = device.execute(PimCmdKind.REDSUM, (obj,))
        assert total == int(a.sum(dtype=np.int64))

    def test_redsum_over_bool_counts(self, device, rng):
        flags = rng.integers(0, 2, 500).astype(bool)
        obj = device.alloc(500, PimDataType.BOOL)
        device.copy_host_to_device(flags, obj)
        assert device.execute(PimCmdKind.REDSUM, (obj,)) == int(flags.sum())

    def test_popcount(self, device, rng):
        a = rng.integers(0, 2**31, 64).astype(np.int32)
        obj = device.alloc(64)
        dest = device.alloc_associated(obj)
        device.copy_host_to_device(a, obj)
        device.execute(PimCmdKind.POPCOUNT, (obj,), dest)
        expected = [bin(int(x) & 0xFFFFFFFF).count("1") for x in a]
        assert np.array_equal(device.copy_device_to_host(dest), expected)

    def test_copy_and_not_and_abs(self, device, rng):
        a, _, obj_a, _ = setup_pair(device, rng)
        dest = device.alloc_associated(obj_a)
        device.execute(PimCmdKind.COPY, (obj_a,), dest)
        assert np.array_equal(device.copy_device_to_host(dest), a)
        device.execute(PimCmdKind.NOT, (obj_a,), dest)
        assert np.array_equal(device.copy_device_to_host(dest), ~a)
        device.execute(PimCmdKind.ABS, (obj_a,), dest)
        assert np.array_equal(device.copy_device_to_host(dest), np.abs(a))


class TestDataMovement:
    def test_roundtrip(self, device, rng):
        a = rng.integers(-100, 100, 64).astype(np.int32)
        obj = device.alloc(64)
        device.copy_host_to_device(a, obj)
        assert np.array_equal(device.copy_device_to_host(obj), a)

    def test_d2d_copy_and_shift(self, device, rng):
        a = rng.integers(-100, 100, 64).astype(np.int32)
        src = device.alloc(64)
        dst = device.alloc_associated(src)
        device.copy_host_to_device(a, src)
        device.copy_device_to_device(src, dst, shift_elements=3)
        assert np.array_equal(device.copy_device_to_host(dst), np.roll(a, -3))

    def test_d2d_size_mismatch(self, device):
        src = device.alloc(10)
        dst = device.alloc(20)
        with pytest.raises(PimTypeError):
            device.copy_device_to_device(src, dst)

    def test_copy_stats_recorded(self, device, rng):
        a = rng.integers(0, 10, 100).astype(np.int32)
        obj = device.alloc(100)
        device.copy_host_to_device(a, obj)
        device.copy_device_to_host(obj)
        assert device.stats.host_to_device.num_bytes == 400
        assert device.stats.device_to_host.num_bytes == 400


class TestErrors:
    def test_wrong_arity(self, device):
        obj = device.alloc(10)
        with pytest.raises(PimTypeError):
            device.execute(PimCmdKind.ADD, (obj,), obj)

    def test_missing_scalar(self, device):
        obj = device.alloc(10)
        with pytest.raises(PimTypeError):
            device.execute(PimCmdKind.ADD_SCALAR, (obj,), obj)

    def test_missing_dest(self, device):
        obj = device.alloc(10)
        with pytest.raises(PimTypeError):
            device.execute(PimCmdKind.ADD, (obj, obj))

    def test_bad_repeat(self, device):
        obj = device.alloc(10)
        with pytest.raises(PimTypeError):
            device.execute(PimCmdKind.NOT, (obj,), obj, repeat=0)

    def test_mismatched_operand_sizes(self, device, rng):
        a = device.alloc(10)
        b = device.alloc(20)
        dest = device.alloc(10)
        with pytest.raises(PimTypeError):
            device.execute(PimCmdKind.ADD, (a, b), dest)


class TestAnalyticMode:
    def test_no_data_needed(self, device_type):
        from tests.conftest import make_device
        device = make_device(device_type, functional=False)
        obj_a = device.alloc(10_000)
        obj_b = device.alloc_associated(obj_a)
        dest = device.alloc_associated(obj_a)
        device.copy_host_to_device(None, obj_a)
        device.copy_host_to_device(None, obj_b)
        device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
        assert device.copy_device_to_host(dest) is None
        assert device.stats.kernel_time_ns > 0
        assert device.stats.copy_bytes == 3 * 40_000

    def test_repeat_scales_stats_linearly(self, device_type):
        from tests.conftest import make_device
        one = make_device(device_type, functional=False)
        many = make_device(device_type, functional=False)
        for dev, repeat in ((one, 1), (many, 10)):
            obj_a = dev.alloc(10_000)
            obj_b = dev.alloc_associated(obj_a)
            dest = dev.alloc_associated(obj_a)
            dev.execute(PimCmdKind.ADD, (obj_a, obj_b), dest, repeat=repeat)
        assert many.stats.kernel_time_ns == pytest.approx(
            10 * one.stats.kernel_time_ns
        )
        assert many.stats.kernel_energy_nj == pytest.approx(
            10 * one.stats.kernel_energy_nj
        )
