"""Tests for the resource manager and PIM objects."""

import numpy as np
import pytest

from repro.config.device import PimDataType, PimDeviceType
from repro.config.presets import make_device_config
from repro.core.errors import (
    PimAllocationError,
    PimInvalidObjectError,
    PimTypeError,
)
from repro.core.resource import ResourceManager


@pytest.fixture
def manager():
    return ResourceManager(make_device_config(PimDeviceType.BITSIMD_V_AP, 4))


class TestAllocation:
    def test_ids_increment(self, manager):
        first = manager.alloc(100)
        second = manager.alloc(100)
        assert second.obj_id == first.obj_id + 1

    def test_lookup_by_id(self, manager):
        obj = manager.alloc(100)
        assert manager.get(obj.obj_id) is obj

    def test_lookup_unknown(self, manager):
        with pytest.raises(PimInvalidObjectError):
            manager.get(999)

    def test_free_releases_rows(self, manager):
        obj = manager.alloc(100)
        used = manager.rows_in_use
        manager.free(obj)
        assert manager.rows_in_use == used - 32
        assert manager.num_live_objects == 0

    def test_use_after_free(self, manager):
        obj = manager.alloc(100)
        manager.free(obj)
        with pytest.raises(PimInvalidObjectError):
            obj.require_live()

    def test_free_all(self, manager):
        for _ in range(5):
            manager.alloc(10)
        manager.free_all()
        assert manager.num_live_objects == 0
        assert manager.rows_in_use == 0

    def test_row_exhaustion(self, manager):
        # 1024 rows per core; 32-bit vertical objects take 32 rows each.
        for _ in range(32):
            manager.alloc(100)
        with pytest.raises(PimAllocationError):
            manager.alloc(100)


class TestAssociation:
    def test_associated_matches_placement(self, manager):
        ref = manager.alloc(5000)
        buddy = manager.alloc_associated(ref)
        assert buddy.layout.num_cores_used == ref.layout.num_cores_used
        assert buddy.layout.elements_per_core == ref.layout.elements_per_core
        assert buddy.row_start != ref.row_start

    def test_associated_with_other_dtype(self, manager):
        ref = manager.alloc(5000, PimDataType.INT32)
        mask = manager.alloc_associated(ref, PimDataType.BOOL)
        assert mask.dtype is PimDataType.BOOL
        assert mask.num_elements == ref.num_elements
        assert mask.layout.rows_per_core == 1  # one bit row per group

    def test_compat_check_rejects_mismatched_sizes(self, manager):
        a = manager.alloc(100)
        b = manager.alloc(200)
        with pytest.raises(PimTypeError):
            manager.check_layout_compatible(a, b)

    def test_compat_check_rejects_mixed_layouts(self, manager):
        from repro.config.device import PimAllocType
        a = manager.alloc(100, layout=PimAllocType.VERTICAL)
        b = manager.alloc(100, layout=PimAllocType.HORIZONTAL)
        with pytest.raises(PimTypeError):
            manager.check_layout_compatible(a, b)


class TestObjectData:
    def test_set_data_casts_dtype(self, manager):
        obj = manager.alloc(4, PimDataType.INT16)
        obj.set_data(np.array([1.0, 2.0, 3.0, 4.0]))
        assert obj.data.dtype == np.int16

    def test_set_data_shape_checked(self, manager):
        obj = manager.alloc(4)
        with pytest.raises(PimTypeError):
            obj.set_data(np.zeros(5))

    def test_require_data_before_copy(self, manager):
        obj = manager.alloc(4)
        with pytest.raises(PimTypeError):
            obj.require_data()

    def test_nbytes_bit_packing(self, manager):
        ints = manager.alloc(100, PimDataType.INT32)
        bools = manager.alloc_associated(ints, PimDataType.BOOL)
        assert ints.nbytes == 400
        assert bools.nbytes == 13  # ceil(100 / 8)
