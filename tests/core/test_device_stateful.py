"""Stateful property testing of the device (hypothesis state machine).

Drives random interleavings of allocation, data movement, command
execution, and freeing against a live device, asserting the global
invariants after every step: allocator bookkeeping stays consistent,
modeled time/energy never decrease or go negative, functional shadows
always match an independently maintained numpy model, and freed objects
are really gone.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.config.device import PimDeviceType
from repro.config.presets import make_device_config
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.core.errors import PimError

N = 64  # element count of every object in the machine

BINARY_KINDS = [
    (PimCmdKind.ADD, np.add),
    (PimCmdKind.SUB, np.subtract),
    (PimCmdKind.MUL, np.multiply),
    (PimCmdKind.AND, np.bitwise_and),
    (PimCmdKind.XOR, np.bitwise_xor),
    (PimCmdKind.MIN, np.minimum),
    (PimCmdKind.MAX, np.maximum),
]


class DeviceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.device = PimDevice(
            make_device_config(PimDeviceType.BITSIMD_V_AP, 4), functional=True
        )
        self.live = {}  # obj_id -> (object, numpy shadow model)
        self.last_time = 0.0
        self.last_energy = 0.0
        self.rng = np.random.default_rng(0)

    # -- rules -----------------------------------------------------------

    @rule(seed=st.integers(0, 2**31))
    def allocate_and_fill(self, seed):
        if len(self.live) >= 12:
            return
        values = np.random.default_rng(seed).integers(
            -1000, 1000, N
        ).astype(np.int32)
        obj = self.device.alloc(N)
        self.device.copy_host_to_device(values, obj)
        self.live[obj.obj_id] = (obj, values.copy())

    @precondition(lambda self: len(self.live) >= 3)
    @rule(pick=st.randoms(use_true_random=False),
          case=st.sampled_from(BINARY_KINDS))
    def run_binary_command(self, pick, case):
        kind, func = case
        ka, kb, kd = pick.sample(list(self.live), 3)
        (a, va), (b, vb), (dest, _) = self.live[ka], self.live[kb], self.live[kd]
        self.device.execute(kind, (a, b), dest)
        with np.errstate(over="ignore"):
            self.live[kd] = (dest, func(va, vb))

    @precondition(lambda self: self.live)
    @rule(pick=st.randoms(use_true_random=False),
          scalar=st.integers(-100, 100))
    def run_scalar_command(self, pick, scalar):
        key = pick.choice(list(self.live))
        obj, values = self.live[key]
        self.device.execute(PimCmdKind.ADD_SCALAR, (obj,), obj, scalar=scalar)
        with np.errstate(over="ignore"):
            self.live[key] = (obj, values + np.int32(scalar))

    @precondition(lambda self: self.live)
    @rule(pick=st.randoms(use_true_random=False))
    def reduce(self, pick):
        key = pick.choice(list(self.live))
        obj, values = self.live[key]
        total = self.device.execute(PimCmdKind.REDSUM, (obj,))
        assert total == int(values.sum(dtype=np.int64))

    @precondition(lambda self: self.live)
    @rule(pick=st.randoms(use_true_random=False))
    def readback_matches_model(self, pick):
        key = pick.choice(list(self.live))
        obj, values = self.live[key]
        assert np.array_equal(self.device.copy_device_to_host(obj), values)

    @precondition(lambda self: self.live)
    @rule(pick=st.randoms(use_true_random=False))
    def free_object(self, pick):
        key = pick.choice(list(self.live))
        obj, _ = self.live[key]
        self.device.free(obj)
        del self.live[key]
        try:
            self.device.copy_device_to_host(obj)
            raise AssertionError("freed object still usable")
        except PimError:
            pass

    # -- invariants -----------------------------------------------------------

    @invariant()
    def allocator_bookkeeping_consistent(self):
        assert self.device.resources.num_live_objects == len(self.live)
        expected_rows = sum(obj.layout.rows_per_core for obj, _ in self.live.values())
        assert self.device.resources.rows_in_use == expected_rows

    @invariant()
    def modeled_costs_monotone(self):
        stats = self.device.stats
        time = stats.kernel_time_ns + stats.copy_time_ns
        energy = (stats.kernel_energy_nj + stats.copy_energy_nj
                  + stats.background_energy_nj)
        assert time >= self.last_time
        assert energy >= self.last_energy
        self.last_time = time
        self.last_energy = energy

    @invariant()
    def counts_match_commands(self):
        stats = self.device.stats
        assert sum(stats.op_counts.values()) == stats.total_command_count


DeviceMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestDeviceStateMachine = DeviceMachine.TestCase
