"""Tests for the coded error hierarchy and the failure taxonomy."""

import pickle

import pytest

from repro.core.errors import (
    FailureKind,
    PimAllocationError,
    PimError,
    PimFaultInjectionError,
    PimInvalidObjectError,
    PimStateError,
    PimStatus,
    PimTimeoutError,
    PimWorkerCrashError,
    classify_exception,
    status_of,
)


class TestStatusCodes:
    def test_every_error_class_pins_a_code(self):
        assert PimAllocationError.status is PimStatus.ERR_ALLOC
        assert PimInvalidObjectError.status is PimStatus.ERR_INVALID_OBJECT
        assert PimStateError.status is PimStatus.ERR_STATE
        assert PimTimeoutError.status is PimStatus.ERR_TIMEOUT
        assert PimWorkerCrashError.status is PimStatus.ERR_WORKER_CRASH
        assert PimFaultInjectionError.status is PimStatus.ERR_FAULT_INJECTED
        assert PimError.status is PimStatus.ERR_RUNTIME

    def test_codes_are_unique(self):
        values = [s.value for s in PimStatus]
        assert len(values) == len(set(values))


class TestContext:
    def test_context_kwargs_are_captured(self):
        exc = PimAllocationError(
            "cannot allocate", rows_requested=128, rows_total=64
        )
        assert exc.context == {"rows_requested": 128, "rows_total": 64}
        assert exc.message == "cannot allocate"

    def test_str_appends_context(self):
        exc = PimAllocationError("nope", rows_requested=128)
        assert str(exc) == "nope [rows_requested=128]"
        assert str(PimAllocationError("bare")) == "bare"

    def test_to_dict_is_machine_readable(self):
        exc = PimTimeoutError("too slow", timeout_s=3.0, benchmark="vecadd")
        record = exc.to_dict()
        assert record == {
            "status": "err_timeout",
            "type": "PimTimeoutError",
            "message": "too slow",
            "context": {"timeout_s": 3.0, "benchmark": "vecadd"},
        }

    def test_context_survives_pickling(self):
        # Failures cross process boundaries; the payload must too.
        exc = PimAllocationError("nope", rows_requested=128)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.context == {"rows_requested": 128}
        assert clone.status is PimStatus.ERR_ALLOC


class TestClassification:
    @pytest.mark.parametrize("exc,kind", [
        (ValueError("x"), FailureKind.ERROR),
        (PimAllocationError("x"), FailureKind.ERROR),
        (MemoryError(), FailureKind.OOM),
        (TimeoutError(), FailureKind.TIMEOUT),
        (PimTimeoutError("x"), FailureKind.TIMEOUT),
        (PimWorkerCrashError("x"), FailureKind.CRASH),
    ])
    def test_classify(self, exc, kind):
        assert classify_exception(exc) is kind

    def test_broken_pool_classifies_as_crash_structurally(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_exception(BrokenProcessPool()) is FailureKind.CRASH

    def test_transient_kinds(self):
        assert FailureKind.TIMEOUT.transient
        assert FailureKind.CRASH.transient
        assert FailureKind.OOM.transient
        assert not FailureKind.ERROR.transient
        assert not FailureKind.SKIPPED.transient

    def test_status_of(self):
        assert status_of(PimAllocationError("x")) is PimStatus.ERR_ALLOC
        assert status_of(TimeoutError()) is PimStatus.ERR_TIMEOUT
        assert status_of(ValueError("x")) is PimStatus.ERR_RUNTIME


class TestRaiseSiteContext:
    def test_allocation_exhaustion_carries_diagnostics(self):
        from repro.config.device import PimAllocType
        from repro.config.presets import fulcrum_config
        from repro.core.layout import plan_layout

        config = fulcrum_config(1)
        with pytest.raises(PimAllocationError) as info:
            plan_layout(config, 1 << 34, 32, PimAllocType.AUTO)
        context = info.value.context
        assert context["num_elements"] == 1 << 34
        assert context["bits"] == 32
        assert context["rows_needed"] > context["rows_available"]
        assert context["bits_requested"] > context["bits_capacity"]

    def test_row_allocator_exhaustion_carries_diagnostics(self):
        from repro.core.layout import RowAllocator

        allocator = RowAllocator(num_rows=8)
        allocator.allocate(1, 8)
        with pytest.raises(PimAllocationError) as info:
            allocator.allocate(2, 1)
        assert info.value.context == {
            "rows_requested": 1, "rows_in_use": 8, "rows_total": 8,
        }

    def test_invalid_object_carries_id(self):
        from repro.config.presets import fulcrum_config
        from repro.core.resource import ResourceManager

        resources = ResourceManager(fulcrum_config(1))
        with pytest.raises(PimInvalidObjectError) as info:
            resources.get(42)
        assert info.value.context["obj_id"] == 42
