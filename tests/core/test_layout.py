"""Tests for layout planning and the row allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.device import PimAllocType, PimDeviceType
from repro.config.presets import make_device_config
from repro.core.errors import PimAllocationError
from repro.core.layout import RowAllocator, plan_layout


@pytest.fixture
def bitserial():
    return make_device_config(PimDeviceType.BITSIMD_V_AP, 4)


@pytest.fixture
def fulcrum():
    return make_device_config(PimDeviceType.FULCRUM, 4)


class TestPlanLayout:
    def test_vertical_small_object(self, bitserial):
        plan = plan_layout(bitserial, 100, 32, PimAllocType.AUTO)
        assert plan.layout is PimAllocType.VERTICAL
        assert plan.elements_per_core == 1
        assert plan.num_cores_used == 100
        assert plan.groups_per_core == 1
        assert plan.rows_per_core == 32

    def test_vertical_multi_group(self, bitserial):
        num_cores = bitserial.num_cores  # 16384
        n = num_cores * 8192 * 2 + 1  # forces a third row group
        plan = plan_layout(bitserial, n, 32, PimAllocType.VERTICAL)
        assert plan.groups_per_core == 3
        assert plan.rows_per_core == 96

    def test_horizontal_elements_per_row(self, fulcrum):
        plan = plan_layout(fulcrum, 1000, 32, PimAllocType.AUTO)
        assert plan.layout is PimAllocType.HORIZONTAL
        assert plan.elements_per_group == 8192 // 32

    def test_horizontal_row_count(self, fulcrum):
        n = fulcrum.num_cores * 256 * 3  # exactly three full rows per core
        plan = plan_layout(fulcrum, n, 32, PimAllocType.HORIZONTAL)
        assert plan.groups_per_core == 3
        assert plan.rows_per_core == 3

    def test_spreads_across_all_cores(self, fulcrum):
        n = fulcrum.num_cores * 10
        plan = plan_layout(fulcrum, n, 32, PimAllocType.HORIZONTAL)
        assert plan.num_cores_used == fulcrum.num_cores
        assert plan.elements_per_core == 10

    def test_capacity_exceeded(self, bitserial):
        too_big = bitserial.num_cores * 8192 * 33  # needs 33 groups of 32 rows
        with pytest.raises(PimAllocationError):
            plan_layout(bitserial, too_big, 32, PimAllocType.VERTICAL)

    def test_rejects_degenerate_inputs(self, bitserial):
        with pytest.raises(PimAllocationError):
            plan_layout(bitserial, 0, 32, PimAllocType.AUTO)
        with pytest.raises(PimAllocationError):
            plan_layout(bitserial, 10, 0, PimAllocType.AUTO)

    def test_total_bytes_packs_bits(self, bitserial):
        plan = plan_layout(bitserial, 100, 1, PimAllocType.VERTICAL)
        assert plan.total_bytes == 100  # bool elements: one byte floor each


class TestRowAllocator:
    def test_first_fit(self):
        allocator = RowAllocator(100)
        assert allocator.allocate(1, 30) == 0
        assert allocator.allocate(2, 30) == 30
        assert allocator.allocate(3, 40) == 60

    def test_free_and_reuse_gap(self):
        allocator = RowAllocator(100)
        allocator.allocate(1, 30)
        allocator.allocate(2, 30)
        allocator.allocate(3, 30)
        allocator.free(2)
        assert allocator.allocate(4, 20) == 30  # fits in the freed gap

    def test_exhaustion(self):
        allocator = RowAllocator(64)
        allocator.allocate(1, 64)
        with pytest.raises(PimAllocationError):
            allocator.allocate(2, 1)

    def test_double_allocate_same_id(self):
        allocator = RowAllocator(64)
        allocator.allocate(1, 8)
        with pytest.raises(PimAllocationError):
            allocator.allocate(1, 8)

    def test_free_unknown(self):
        with pytest.raises(PimAllocationError):
            RowAllocator(64).free(7)

    def test_rows_in_use(self):
        allocator = RowAllocator(64)
        allocator.allocate(1, 10)
        allocator.allocate(2, 20)
        assert allocator.rows_in_use == 30
        allocator.free(1)
        assert allocator.rows_in_use == 20

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.booleans(), st.integers(1, 20)),
        max_size=40,
    ))
    def test_never_overlaps(self, actions):
        """Property: live allocations never overlap and stay in bounds."""
        allocator = RowAllocator(200)
        live = {}
        next_id = 0
        for is_alloc, count in actions:
            if is_alloc or not live:
                next_id += 1
                try:
                    start = allocator.allocate(next_id, count)
                except PimAllocationError:
                    continue
                live[next_id] = (start, count)
            else:
                victim = next(iter(live))
                allocator.free(victim)
                del live[victim]
            intervals = sorted(live.values())
            for (s1, c1), (s2, c2) in zip(intervals, intervals[1:]):
                assert s1 + c1 <= s2
            assert all(s + c <= 200 for s, c in intervals)
