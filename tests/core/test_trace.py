"""Tests for trace recording, serialization, and cross-target replay."""

import numpy as np
import pytest

from repro.config.device import PimDeviceType
from repro.core.commands import PimCmdKind
from repro.core.errors import PimError
from repro.trace import TraceEvent, TraceRecorder, load_trace, replay_trace

from tests.conftest import make_device


def record_axpy(recorder, n=2048, scale=5):
    x = np.arange(n, dtype=np.int32) if recorder.functional else None
    y = np.ones(n, dtype=np.int32) if recorder.functional else None
    obj_x = recorder.alloc(n)
    obj_y = recorder.alloc_associated(obj_x)
    recorder.copy_host_to_device(x, obj_x)
    recorder.copy_host_to_device(y, obj_y)
    recorder.execute(PimCmdKind.SCALED_ADD, (obj_x, obj_y), obj_y, scalar=scale)
    result = recorder.copy_device_to_host(obj_y)
    recorder.free(obj_x)
    recorder.free(obj_y)
    return result


class TestRecording:
    def test_captures_event_sequence(self):
        recorder = TraceRecorder(make_device(PimDeviceType.FULCRUM))
        record_axpy(recorder)
        actions = [event.action for event in recorder.events]
        assert actions == [
            "alloc", "alloc_assoc", "h2d", "h2d", "execute", "d2h",
            "free", "free",
        ]

    def test_forwarding_preserves_function(self):
        recorder = TraceRecorder(make_device(PimDeviceType.FULCRUM))
        result = record_axpy(recorder, n=128, scale=3)
        assert np.array_equal(result, 3 * np.arange(128) + 1)

    def test_stats_accumulate_on_wrapped_device(self):
        recorder = TraceRecorder(make_device(PimDeviceType.FULCRUM))
        record_axpy(recorder)
        assert recorder.stats.total_command_count == 1
        assert recorder.stats.copy_bytes > 0


class TestSerialization:
    def test_json_roundtrip(self):
        recorder = TraceRecorder(make_device(PimDeviceType.FULCRUM))
        record_axpy(recorder)
        events = load_trace(recorder.to_json())
        assert events == recorder.events

    def test_event_dict_drops_empty_fields(self):
        event = TraceEvent(action="free", obj_ids=(3,))
        data = event.to_dict()
        assert "kind" not in data
        assert data["obj_ids"] == [3] or data["obj_ids"] == (3,)

    def test_roundtrip_replays_to_identical_costs(self):
        # JSON round-trip must preserve enough to reproduce the model
        # exactly: record, serialize, parse, replay, compare stats.
        recorder = TraceRecorder(make_device(PimDeviceType.FULCRUM))
        record_axpy(recorder)
        events = load_trace(recorder.to_json())
        replayed = replay_trace(
            events, make_device(PimDeviceType.FULCRUM, functional=False)
        )
        assert replayed.stats.snapshot() == recorder.stats.snapshot()


class TestReplay:
    def test_replay_reproduces_costs_on_same_target(self):
        recorder = TraceRecorder(
            make_device(PimDeviceType.FULCRUM, functional=False)
        )
        record_axpy(recorder)
        replayed = replay_trace(
            recorder.events, make_device(PimDeviceType.FULCRUM, functional=False)
        )
        assert replayed.stats.kernel_time_ns == pytest.approx(
            recorder.stats.kernel_time_ns
        )
        assert replayed.stats.copy_bytes == recorder.stats.copy_bytes

    @pytest.mark.parametrize("target", list(PimDeviceType),
                             ids=lambda d: d.value)
    def test_cross_architecture_replay(self, target):
        """One recorded program costs out on every simulation target."""
        recorder = TraceRecorder(
            make_device(PimDeviceType.FULCRUM, functional=False)
        )
        record_axpy(recorder, n=100_000)
        replayed = replay_trace(recorder.events, make_device(target,
                                                             functional=False))
        assert replayed.stats.kernel_time_ns > 0
        assert replayed.resources.num_live_objects == 0

    def test_replay_resolves_auto_layout_per_target(self):
        recorder = TraceRecorder(
            make_device(PimDeviceType.FULCRUM, functional=False)
        )
        obj = recorder.alloc(1000)
        recorder.execute(PimCmdKind.BROADCAST, (), obj, scalar=1)
        recorder.free(obj)
        bitserial = make_device(PimDeviceType.BITSIMD_V_AP, functional=False)
        replay_trace(recorder.events, bitserial)
        # The bit-serial device must have used its native vertical layout:
        # a 32-bit broadcast writes 32 rows, not one.
        assert "broadcast.int32.v" in bitserial.stats.commands

    def test_replay_requires_analytic_device(self):
        recorder = TraceRecorder(
            make_device(PimDeviceType.FULCRUM, functional=False)
        )
        record_axpy(recorder)
        with pytest.raises(PimError):
            replay_trace(recorder.events, make_device(PimDeviceType.FULCRUM))

    def test_gather_and_shift_events_replay(self):
        source = TraceRecorder(
            make_device(PimDeviceType.BITSIMD_V_AP, functional=False)
        )
        a = source.alloc(4096)
        b = source.alloc_associated(a)
        source.copy_device_to_device(a, b, shift_elements=4)
        source.model_gather(b)
        replayed = replay_trace(
            source.events, make_device(PimDeviceType.BANK_LEVEL,
                                       functional=False)
        )
        assert replayed.stats.device_to_device.num_bytes > 0
