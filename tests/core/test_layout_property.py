"""Property-based tests on layout planning invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.device import PimAllocType, PimDeviceType
from repro.config.presets import make_device_config
from repro.core.errors import PimAllocationError
from repro.core.layout import plan_layout

CONFIGS = {
    device_type: make_device_config(device_type, 4)
    for device_type in PimDeviceType
}


@st.composite
def layout_case(draw):
    device_type = draw(st.sampled_from(sorted(CONFIGS, key=lambda d: d.value)))
    num_elements = draw(st.integers(1, 1 << 24))
    bits = draw(st.sampled_from([1, 8, 16, 32, 64]))
    layout = draw(st.sampled_from([
        PimAllocType.AUTO, PimAllocType.HORIZONTAL, PimAllocType.VERTICAL,
    ]))
    return CONFIGS[device_type], num_elements, bits, layout


@settings(max_examples=200, deadline=None)
@given(layout_case())
def test_layout_invariants(case):
    config, num_elements, bits, layout = case
    try:
        plan = plan_layout(config, num_elements, bits, layout)
    except PimAllocationError:
        # Overflow is only acceptable when the demand really exceeds
        # what the per-core row budget can hold.
        return

    # 1. Every element is placed: cores x elements-per-core covers N.
    assert plan.num_cores_used * plan.elements_per_core >= num_elements
    # 2. No phantom cores: one fewer core would not suffice.
    assert (plan.num_cores_used - 1) * plan.elements_per_core < num_elements
    # 3. Core count bounded by the device.
    assert 1 <= plan.num_cores_used <= config.num_cores
    # 4. Row budget respected.
    assert 1 <= plan.rows_per_core <= config.rows_per_core
    # 5. Groups cover the per-core elements.
    assert plan.groups_per_core * plan.elements_per_group >= plan.elements_per_core
    # 6. Row math is consistent with the layout style.
    if plan.layout is PimAllocType.VERTICAL:
        assert plan.rows_per_core == bits * plan.groups_per_core
        assert plan.elements_per_group == config.cols_per_core
    else:
        assert plan.rows_per_core == plan.groups_per_core
        assert plan.elements_per_group == max(1, config.cols_per_core // bits)
    # 7. AUTO resolved to the device's native layout.
    if layout is PimAllocType.AUTO:
        assert plan.layout is config.native_layout


@settings(max_examples=100, deadline=None)
@given(layout_case())
def test_footprint_accounting(case):
    config, num_elements, bits, layout = case
    try:
        plan = plan_layout(config, num_elements, bits, layout)
    except PimAllocationError:
        return
    assert plan.total_bits == num_elements * bits
    assert plan.total_bytes == num_elements * max(1, bits // 8)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 1 << 20), st.sampled_from([8, 16, 32]))
def test_monotone_rows_in_elements(num_elements, bits):
    """More elements never need fewer rows per core."""
    config = CONFIGS[PimDeviceType.BITSIMD_V_AP]
    try:
        small = plan_layout(config, num_elements, bits, PimAllocType.VERTICAL)
        large = plan_layout(config, num_elements * 2, bits, PimAllocType.VERTICAL)
    except PimAllocationError:
        return
    assert large.rows_per_core >= small.rows_per_core
