"""Tests for the fused saturating-add operation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.microcode.programs import get_program
from repro.microcode.simulator import run_unary_op

from tests.conftest import make_device


class TestMicroprogram:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8),
           st.integers(0, 255))
    def test_matches_saturating_semantics(self, values, scalar):
        out = run_unary_op(
            get_program("sat_add_scalar", 8, scalar),
            np.array(values), 8, signed_result=False,
        )
        expected = np.minimum(255, np.array(values) + scalar)
        assert np.array_equal(out, expected)

    def test_cheaper_than_min_plus_add(self):
        fused = get_program("sat_add_scalar", 8, 40).cost
        portable = (
            get_program("min", 8, 0).cost.num_row_ops
            + get_program("add_scalar", 8, 40).cost.num_row_ops
        )
        assert fused.num_row_ops < portable


class TestDeviceCommand:
    def test_functional_saturation(self, device_type, rng):
        device = make_device(device_type)
        values = rng.integers(0, 256, 256).astype(np.uint8)
        obj = device.alloc(256, PimDataType.UINT8)
        dest = device.alloc_associated(obj)
        device.copy_host_to_device(values, obj)
        device.execute(PimCmdKind.SAT_ADD_SCALAR, (obj,), dest, scalar=40)
        expected = np.minimum(255, values.astype(np.int64) + 40).astype(np.uint8)
        assert np.array_equal(device.copy_device_to_host(dest), expected)

    def test_equivalent_to_brightness_pair(self, device_type, rng):
        """The fused op computes exactly what min+add does."""
        device = make_device(device_type)
        values = rng.integers(0, 256, 128).astype(np.uint8)
        obj = device.alloc(128, PimDataType.UINT8)
        fused = device.alloc_associated(obj)
        pair = device.alloc_associated(obj)
        device.copy_host_to_device(values, obj)
        device.execute(PimCmdKind.SAT_ADD_SCALAR, (obj,), fused, scalar=35)
        device.execute(PimCmdKind.MIN_SCALAR, (obj,), pair, scalar=255 - 35)
        device.execute(PimCmdKind.ADD_SCALAR, (pair,), pair, scalar=35)
        assert np.array_equal(
            device.copy_device_to_host(fused), device.copy_device_to_host(pair)
        )

    def test_api_wrapper(self, rng):
        from repro import api
        from repro.config.device import PimDeviceType
        with api.pim_device(PimDeviceType.BITSIMD_V_AP, num_ranks=4):
            values = rng.integers(0, 256, 64).astype(np.uint8)
            obj = api.pim_alloc(64, PimDataType.UINT8)
            dest = api.pim_alloc_associated(obj)
            api.pim_copy_host_to_device(values, obj)
            api.pim_sat_add_scalar(obj, 100, dest)
            expected = np.minimum(255, values.astype(int) + 100)
            assert np.array_equal(api.pim_copy_device_to_host(dest), expected)
