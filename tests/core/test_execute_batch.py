"""``execute_batch``: N single executes == one batch, bit for bit.

The batching contract (docs/PERFORMANCE.md §5): for any command and any
``count``, one ``execute_batch`` call must be indistinguishable from
``count`` individual ``execute`` calls -- same stats snapshot, same
per-signature tables, same event census, same bus event stream, same
functional results, same fault-injection behavior.  Exact equality
throughout: the batch path bills by iterated addition, not
multiplication, precisely so these floats match.
"""

import numpy as np
import pytest

from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.core.errors import PimTypeError
from repro.config import fulcrum_config
from repro.faults import DroppedCommandFault, FaultPlan
from repro.obs import EventBus, RingBufferSink

from tests.conftest import make_device

COUNT = 7


def _vectors(device, n=256):
    obj_a = device.alloc(n)
    obj_b = device.alloc_associated(obj_a)
    dest = device.alloc_associated(obj_a)
    if device.functional:
        device.copy_host_to_device(np.arange(n, dtype=np.int32), obj_a)
        device.copy_host_to_device(np.arange(n, dtype=np.int32) * 3, obj_b)
    return obj_a, obj_b, dest


def _issue_single(device, count=COUNT):
    obj_a, obj_b, dest = _vectors(device)
    for _ in range(count):
        device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
        device.execute(PimCmdKind.ADD_SCALAR, (dest,), dest, scalar=5)
    value = 0
    for _ in range(count):
        value = device.execute(PimCmdKind.REDSUM, (dest,))
    return dest, value


def _issue_batched(device, count=COUNT):
    obj_a, obj_b, dest = _vectors(device)
    for _ in range(count):
        device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
        device.execute(PimCmdKind.ADD_SCALAR, (dest,), dest, scalar=5)
    value = device.execute_batch(PimCmdKind.REDSUM, (dest,), count=count)
    return dest, value


class TestBatchEquivalence:
    def test_snapshot_and_tables_identical(self, device_type):
        single = make_device(device_type, functional=False)
        batched = make_device(device_type, functional=False)
        obj = _vectors(single)
        for _ in range(COUNT):
            single.execute(PimCmdKind.ADD, (obj[0], obj[1]), obj[2])
        obj_b = _vectors(batched)
        batched.execute_batch(
            PimCmdKind.ADD, (obj_b[0], obj_b[1]), obj_b[2], count=COUNT
        )
        # Dataclass equality is exact float equality -- no approx.
        assert batched.stats.snapshot() == single.stats.snapshot()
        assert batched.stats.commands == single.stats.commands
        assert batched.stats.op_counts == single.stats.op_counts
        assert batched.stats.events == single.stats.events

    def test_mixed_command_sequence_identical(self, device_type):
        single = make_device(device_type, functional=False)
        batched = make_device(device_type, functional=False)
        _issue_single(single)
        _issue_batched(batched)
        assert batched.stats.snapshot() == single.stats.snapshot()
        assert batched.stats.commands == single.stats.commands

    def test_scalar_command_batch(self, fulcrum_device):
        device = fulcrum_device
        reference = make_device(device.config.device_type)
        obj_a, _, dest = _vectors(device)
        ref_a, _, ref_dest = _vectors(reference)
        device.execute_batch(
            PimCmdKind.MUL_SCALAR, (obj_a,), dest, scalar=9, count=3
        )
        for _ in range(3):
            reference.execute(PimCmdKind.MUL_SCALAR, (ref_a,), ref_dest, scalar=9)
        assert device.stats.snapshot() == reference.stats.snapshot()
        assert np.array_equal(dest.require_data(), ref_dest.require_data())

    def test_functional_results_and_return_value(self, device):
        single_dest, single_value = _issue_single(device)
        other = make_device(device.config.device_type)
        batch_dest, batch_value = _issue_batched(other)
        assert batch_value == single_value
        assert np.array_equal(
            batch_dest.require_data(), single_dest.require_data()
        )

    def test_analytic_return_values(self, fulcrum_device):
        device = PimDevice(fulcrum_config(4), functional=False)
        obj_a, obj_b, dest = _vectors(device)
        assert device.execute_batch(
            PimCmdKind.ADD, (obj_a, obj_b), dest, count=3
        ) is None
        assert device.execute_batch(PimCmdKind.REDSUM, (dest,), count=3) == 0

    def test_count_below_one_rejected(self, fulcrum_device):
        obj_a, obj_b, dest = _vectors(fulcrum_device)
        with pytest.raises(PimTypeError, match="count"):
            fulcrum_device.execute_batch(
                PimCmdKind.ADD, (obj_a, obj_b), dest, count=0
            )

    def test_validation_still_applies(self, fulcrum_device):
        obj_a, _, dest = _vectors(fulcrum_device)
        with pytest.raises(PimTypeError):
            fulcrum_device.execute_batch(PimCmdKind.ADD, (obj_a,), dest, count=2)
        with pytest.raises(PimTypeError):
            fulcrum_device.execute_batch(
                PimCmdKind.ADD_SCALAR, (obj_a,), dest, count=2
            )


class TestBatchBusStream:
    @staticmethod
    def _stream(device_factory, issue):
        bus = EventBus()
        sink = bus.subscribe(RingBufferSink())
        device = device_factory(bus)
        issue(device)
        return [
            (e.name, e.cat, e.ph, e.ts_ns, e.dur_ns, e.args)
            for e in sink.events
        ]

    def test_event_stream_identical(self):
        def factory(bus):
            return PimDevice(fulcrum_config(4), functional=False, bus=bus)

        def singles(device):
            obj_a, obj_b, dest = _vectors(device)
            for _ in range(COUNT):
                device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)

        def batch(device):
            obj_a, obj_b, dest = _vectors(device)
            device.execute_batch(
                PimCmdKind.ADD, (obj_a, obj_b), dest, count=COUNT
            )

        assert self._stream(factory, batch) == self._stream(factory, singles)


class TestBatchFaultInjection:
    """Dropped-command billing stays per-issue and per-issue RNG order."""

    @staticmethod
    def _run(use_batch: bool):
        from repro.config import bitserial_config

        plan = FaultPlan(seed=23, faults=(DroppedCommandFault(rate=0.4),))
        device = PimDevice(bitserial_config(4), functional=True, faults=plan)
        obj = device.alloc(64)
        device.copy_host_to_device(np.zeros(64, dtype=np.int32), obj)
        if use_batch:
            device.execute_batch(
                PimCmdKind.ADD_SCALAR, (obj,), obj, scalar=1, count=20
            )
        else:
            for _ in range(20):
                device.execute(PimCmdKind.ADD_SCALAR, (obj,), obj, scalar=1)
        return device, obj

    def test_same_drops_same_data_same_billing(self):
        loop_device, loop_obj = self._run(use_batch=False)
        batch_device, batch_obj = self._run(use_batch=True)
        # Same seeded RNG order -> the same issues drop.
        assert (
            batch_device.faults.injected == loop_device.faults.injected
        )
        assert np.array_equal(
            batch_obj.require_data(), loop_obj.require_data()
        )
        # Some commands dropped, yet every issue was billed.
        assert loop_device.faults.injected["dropped_command"] > 0
        assert batch_device.stats.snapshot() == loop_device.stats.snapshot()
        assert batch_device.stats.op_counts[PimCmdKind.ADD_SCALAR] == 20
