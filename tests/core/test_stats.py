"""Tests for statistics tracking."""

import dataclasses

import pytest

from repro.core.commands import PimCmdKind
from repro.core.stats import (
    COPY_DIRECTIONS,
    EventCounts,
    StatsSnapshot,
    StatsTracker,
)


@pytest.fixture
def tracker():
    return StatsTracker()


class TestCommandRecording:
    def test_aggregates_by_signature(self, tracker):
        tracker.record_command(PimCmdKind.ADD, "add.int32.v", 100.0, 5.0)
        tracker.record_command(PimCmdKind.ADD, "add.int32.v", 200.0, 7.0)
        stats = tracker.commands["add.int32.v"]
        assert stats.count == 2
        assert stats.latency_ns == pytest.approx(300.0)
        assert stats.energy_nj == pytest.approx(12.0)

    def test_repeat_counts(self, tracker):
        tracker.record_command(PimCmdKind.MUL, "mul.int32.h", 50.0, 1.0, count=10)
        assert tracker.commands["mul.int32.h"].count == 10
        assert tracker.op_counts[PimCmdKind.MUL] == 10

    def test_background_energy_accumulates(self, tracker):
        tracker.record_command(PimCmdKind.ADD, "a", 1.0, 1.0, background_energy_nj=3.0)
        tracker.record_command(PimCmdKind.ADD, "a", 1.0, 1.0, background_energy_nj=4.0)
        assert tracker.background_energy_nj == pytest.approx(7.0)

    def test_kernel_totals(self, tracker):
        tracker.record_command(PimCmdKind.ADD, "a", 10.0, 1.0)
        tracker.record_command(PimCmdKind.MUL, "b", 20.0, 2.0)
        assert tracker.kernel_time_ns == pytest.approx(30.0)
        assert tracker.kernel_energy_nj == pytest.approx(3.0)
        assert tracker.total_command_count == 2


class TestCopyRecording:
    def test_directions(self, tracker):
        tracker.record_copy("h2d", 100, 1.0, 2.0)
        tracker.record_copy("d2h", 50, 0.5, 1.0)
        tracker.record_copy("d2d", 10, 0.1, 0.2)
        assert tracker.host_to_device.num_bytes == 100
        assert tracker.device_to_host.num_bytes == 50
        assert tracker.device_to_device.num_bytes == 10
        assert tracker.copy_bytes == 160
        assert tracker.copy_time_ns == pytest.approx(1.6)
        assert tracker.copy_energy_nj == pytest.approx(3.2)

    def test_unknown_direction(self, tracker):
        with pytest.raises(ValueError):
            tracker.record_copy("sideways", 1, 1.0, 1.0)

    def test_direction_table_covers_all_buckets(self, tracker):
        for direction, attr in COPY_DIRECTIONS.items():
            tracker.record_copy(direction, 8, 1.0, 1.0)
            assert getattr(tracker, attr).num_bytes == 8


class TestHostRecording:
    def test_accumulates(self, tracker):
        tracker.record_host(100.0, 5.0)
        tracker.record_host(50.0, 2.0)
        assert tracker.host_time_ns == pytest.approx(150.0)
        assert tracker.host_energy_nj == pytest.approx(7.0)


class TestSnapshots:
    def test_delta_isolates_interval(self, tracker):
        tracker.record_command(PimCmdKind.ADD, "a", 10.0, 1.0)
        before = tracker.snapshot()
        tracker.record_command(PimCmdKind.ADD, "a", 25.0, 2.0)
        tracker.record_copy("h2d", 64, 3.0, 0.5)
        tracker.record_host(7.0, 0.1)
        delta = tracker.snapshot() - before
        assert delta.kernel_time_ns == pytest.approx(25.0)
        assert delta.copy_time_ns == pytest.approx(3.0)
        assert delta.copy_bytes == 64
        assert delta.host_time_ns == pytest.approx(7.0)

    def test_totals(self):
        snap = StatsSnapshot(
            kernel_time_ns=1.0, kernel_energy_nj=2.0, copy_time_ns=3.0,
            copy_energy_nj=4.0, copy_bytes=5, background_energy_nj=6.0,
            host_time_ns=7.0, host_energy_nj=8.0,
        )
        assert snap.total_time_ns == pytest.approx(11.0)
        assert snap.total_energy_nj == pytest.approx(20.0)

    def test_reset_clears_everything(self, tracker):
        tracker.record_command(PimCmdKind.ADD, "a", 1.0, 1.0)
        tracker.record_copy("h2d", 1, 1.0, 1.0)
        tracker.reset()
        assert tracker.kernel_time_ns == 0.0
        assert tracker.copy_bytes == 0
        assert not tracker.commands

    def test_reset_clears_every_accumulator(self, tracker):
        tracker.record_command(
            PimCmdKind.ADD, "a", 1.0, 1.0, background_energy_nj=2.0,
            events=EventCounts(row_activations=4.0),
        )
        tracker.record_host(3.0, 0.5)
        tracker.reset()
        assert tracker.op_counts == {}
        assert tracker.background_energy_nj == 0.0
        assert tracker.host_time_ns == 0.0
        assert tracker.host_energy_nj == 0.0
        assert tracker.events == EventCounts()
        assert tracker.snapshot() == StatsSnapshot()

    def test_reset_preserves_attached_bus(self, tracker):
        from repro.obs import EventBus

        bus = EventBus()
        tracker.bus = bus
        tracker.record_command(PimCmdKind.ADD, "a", 1.0, 1.0)
        tracker.reset()
        assert tracker.bus is bus


class TestDeltaArithmetic:
    def test_event_counts_sub_fieldwise(self):
        a = EventCounts(row_activations=10.0, lane_logic_ops=8.0,
                        alu_word_ops=6.0, walker_bits=4.0, gdl_bits=2.0)
        b = EventCounts(row_activations=1.0, lane_logic_ops=2.0,
                        alu_word_ops=3.0, walker_bits=4.0, gdl_bits=5.0)
        delta = a - b
        assert delta == EventCounts(row_activations=9.0, lane_logic_ops=6.0,
                                    alu_word_ops=3.0, walker_bits=0.0,
                                    gdl_bits=-3.0)

    def test_event_counts_add_sub_roundtrip(self):
        a = EventCounts(row_activations=5.0, gdl_bits=7.0)
        b = EventCounts(lane_logic_ops=2.0, walker_bits=1.0)
        assert (a + b) - b == a

    def test_event_counts_scaled_every_field(self):
        counts = EventCounts(row_activations=1.0, lane_logic_ops=2.0,
                             alu_word_ops=3.0, walker_bits=4.0, gdl_bits=5.0)
        scaled = counts.scaled(2.5)
        for field in dataclasses.fields(EventCounts):
            assert getattr(scaled, field.name) == pytest.approx(
                2.5 * getattr(counts, field.name)
            )

    def test_snapshot_sub_covers_every_field(self):
        a = StatsSnapshot(
            kernel_time_ns=10.0, kernel_energy_nj=9.0, copy_time_ns=8.0,
            copy_energy_nj=7.0, copy_bytes=6, background_energy_nj=5.0,
            host_time_ns=4.0, host_energy_nj=3.0,
            events=EventCounts(row_activations=2.0),
        )
        b = StatsSnapshot(
            kernel_time_ns=1.0, kernel_energy_nj=1.0, copy_time_ns=1.0,
            copy_energy_nj=1.0, copy_bytes=1, background_energy_nj=1.0,
            host_time_ns=1.0, host_energy_nj=1.0,
            events=EventCounts(row_activations=1.0),
        )
        delta = a - b
        assert delta.kernel_time_ns == pytest.approx(9.0)
        assert delta.kernel_energy_nj == pytest.approx(8.0)
        assert delta.copy_time_ns == pytest.approx(7.0)
        assert delta.copy_energy_nj == pytest.approx(6.0)
        assert delta.copy_bytes == 5
        assert delta.background_energy_nj == pytest.approx(4.0)
        assert delta.host_time_ns == pytest.approx(3.0)
        assert delta.host_energy_nj == pytest.approx(2.0)
        assert delta.events.row_activations == pytest.approx(1.0)

    def test_snapshot_sub_of_itself_is_zero(self):
        snap = StatsSnapshot(kernel_time_ns=3.0, copy_bytes=2,
                             events=EventCounts(gdl_bits=1.0))
        assert snap - snap == StatsSnapshot()
