"""StatsTracker trace record/replay: the batching tool behind benchmarks.

``recorded_trace()`` captures the ``record_*`` calls a code region makes;
``replay_trace(trace, times=N)`` re-dispatches them, which must be
indistinguishable -- in every accumulator and on an attached bus -- from
running the region ``N`` more times.
"""

import pytest

from repro.config import bitserial_config
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.core.stats import RecordedTrace, StatsTracker
from repro.obs import EventBus, RingBufferSink


def _region(device, objs):
    obj_a, obj_b, dest = objs
    device.copy_host_to_device(None, obj_a)
    device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
    device.execute(PimCmdKind.MUL_SCALAR, (obj_a,), dest, scalar=3)
    device.stats.record_host(120.0, 44.0, label="unit-host")


def _device(bus=None):
    device = PimDevice(bitserial_config(4), functional=False, bus=bus)
    obj_a = device.alloc(512)
    objs = (obj_a, device.alloc_associated(obj_a), device.alloc_associated(obj_a))
    return device, objs


class TestRecordReplay:
    def test_replay_equals_rerunning(self):
        looped, looped_objs = _device()
        for _ in range(4):
            _region(looped, looped_objs)

        replayed, replayed_objs = _device()
        with replayed.stats.recorded_trace() as trace:
            _region(replayed, replayed_objs)
        replayed.stats.replay_trace(trace, times=3)

        assert len(trace) == 4  # copy + two commands + host kernel
        assert replayed.stats.snapshot() == looped.stats.snapshot()
        assert replayed.stats.commands == looped.stats.commands
        assert replayed.stats.op_counts == looped.stats.op_counts
        assert replayed.stats.host_to_device == looped.stats.host_to_device

    def test_replay_zero_times_is_noop(self):
        device, objs = _device()
        with device.stats.recorded_trace() as trace:
            _region(device, objs)
        before = device.stats.snapshot()
        device.stats.replay_trace(trace, times=0)
        assert device.stats.snapshot() == before

    def test_bus_stream_matches_rerunning(self):
        looped_bus = EventBus()
        looped_sink = looped_bus.subscribe(RingBufferSink())
        looped, looped_objs = _device(bus=looped_bus)
        for _ in range(3):
            _region(looped, looped_objs)

        replayed_bus = EventBus()
        replayed_sink = replayed_bus.subscribe(RingBufferSink())
        replayed, replayed_objs = _device(bus=replayed_bus)
        with replayed.stats.recorded_trace() as trace:
            _region(replayed, replayed_objs)
        replayed.stats.replay_trace(trace, times=2)

        def shape(events):
            return [
                (e.name, e.cat, e.ph, e.ts_ns, e.dur_ns, e.args)
                for e in events
            ]

        assert shape(replayed_sink.events) == shape(looped_sink.events)

    def test_batch_records_replay_too(self):
        looped = StatsTracker()
        for _ in range(3):
            looped.record_command_batch(
                PimCmdKind.ADD, "add.int32.v", 10.5, 2.25, 0.125, count=4
            )
        replayed = StatsTracker()
        with replayed.recorded_trace() as trace:
            replayed.record_command_batch(
                PimCmdKind.ADD, "add.int32.v", 10.5, 2.25, 0.125, count=4
            )
        replayed.replay_trace(trace, times=2)
        assert replayed.snapshot() == looped.snapshot()
        assert replayed.commands == looped.commands


class TestRecordingGuards:
    def test_recording_does_not_nest(self):
        tracker = StatsTracker()
        with tracker.recorded_trace():
            with pytest.raises(RuntimeError, match="already"):
                with tracker.recorded_trace():
                    pass  # pragma: no cover - the guard raises first

    def test_replay_while_recording_rejected(self):
        tracker = StatsTracker()
        with tracker.recorded_trace() as trace:
            tracker.record_host(5.0, 1.0)
            with pytest.raises(RuntimeError, match="replay"):
                tracker.replay_trace(trace)

    def test_negative_times_rejected(self):
        tracker = StatsTracker()
        with pytest.raises(ValueError, match="times"):
            tracker.replay_trace(RecordedTrace(), times=-1)

    def test_recording_cleared_after_exception(self):
        tracker = StatsTracker()
        with pytest.raises(RuntimeError, match="boom"):
            with tracker.recorded_trace():
                raise RuntimeError("boom")
        # The tap must not leak: subsequent records go nowhere special.
        tracker.record_host(1.0, 1.0)
        with tracker.recorded_trace() as trace:
            pass
        assert len(trace) == 0
