"""Performance-model validation: the paper's published anchors.

Mirrors Section V-E(ii): the model is validated against the quantitative
anchors the paper publishes -- the Listing 3 Fulcrum vector-add run and
the Section V-D bit-serial vector-add energy.
"""

import numpy as np
import pytest

from repro.config.device import PimDeviceType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.config.presets import bitserial_config, fulcrum_config, make_device_config

from tests.conftest import make_device


def run_vecadd(device, n):
    obj_x = device.alloc(n)
    obj_y = device.alloc_associated(obj_x)
    obj_z = device.alloc_associated(obj_x)
    if device.functional:
        device.copy_host_to_device(np.arange(n, dtype=np.int32), obj_x)
        device.copy_host_to_device(np.arange(n, dtype=np.int32), obj_y)
    else:
        device.copy_host_to_device(None, obj_x)
        device.copy_host_to_device(None, obj_y)
    device.execute(PimCmdKind.ADD, (obj_x, obj_y), obj_z)
    device.copy_device_to_host(obj_z)
    return device.stats


class TestListing3Anchors:
    """Fulcrum, 4 ranks, 2048-element int32 vector add (Listing 3)."""

    @pytest.fixture(scope="class")
    def stats(self):
        device = PimDevice(fulcrum_config(4), functional=True)
        return run_vecadd(device, 2048)

    def test_kernel_time(self, stats):
        assert stats.kernel_time_ns / 1e6 == pytest.approx(0.001660, rel=0.02)

    def test_kernel_energy(self, stats):
        assert stats.kernel_energy_nj / 1e6 == pytest.approx(0.004197, rel=0.05)

    def test_copy_bytes(self, stats):
        assert stats.copy_bytes == 24576

    def test_copy_time(self, stats):
        assert stats.copy_time_ns / 1e6 == pytest.approx(0.000224, rel=0.1)

    def test_copy_energy(self, stats):
        assert stats.copy_energy_nj / 1e6 == pytest.approx(0.001602, rel=0.1)

    def test_command_signature(self, stats):
        assert "add.int32.h" in stats.commands
        assert stats.commands["add.int32.h"].count == 1


class TestBitSerialEnergyAnchor:
    """Section V-D: 13.26 mJ for the Table I bit-serial vector add."""

    def test_vecadd_energy(self):
        device = PimDevice(bitserial_config(32), functional=False)
        stats = run_vecadd(device, 2_035_544_320)
        assert stats.kernel_energy_nj / 1e6 == pytest.approx(13.26, rel=0.05)

    def test_cpu_idle_energy_share_is_small(self):
        # The paper reports CPU idle energy at ~1% of total for vector add.
        device = PimDevice(bitserial_config(32), functional=False)
        stats = run_vecadd(device, 2_035_544_320)
        idle = device.energy.cpu_idle_energy_nj(stats.kernel_time_ns)
        assert idle < 0.05 * stats.kernel_energy_nj


class TestModelMonotonicity:
    def test_more_elements_never_faster(self, device_type):
        small = make_device(device_type, functional=False)
        large = make_device(device_type, functional=False)
        run_vecadd(small, 10_000)
        run_vecadd(large, 50_000_000)
        assert large.stats.kernel_time_ns >= small.stats.kernel_time_ns

    def test_more_ranks_never_slower(self, device_type):
        few = PimDevice(
            make_device_config(device_type, 4), functional=False
        )
        many = PimDevice(
            make_device_config(device_type, 32), functional=False
        )
        run_vecadd(few, 50_000_000)
        run_vecadd(many, 50_000_000)
        assert many.stats.kernel_time_ns <= few.stats.kernel_time_ns

    def test_architecture_ordering_for_streaming_add(self):
        """Paper Section VII: bit-serial wins addition at scale."""
        times = {}
        for device_type in PimDeviceType:
            device = PimDevice(
                make_device_config(device_type, 32), functional=False
            )
            run_vecadd(device, 2_035_544_320)
            times[device_type] = device.stats.kernel_time_ns
        assert times[PimDeviceType.BITSIMD_V_AP] < times[PimDeviceType.FULCRUM]
        assert times[PimDeviceType.FULCRUM] < times[PimDeviceType.BANK_LEVEL]

    def test_mul_favors_fulcrum_at_scale(self):
        """Paper Section VII: Fulcrum wins multiplication."""
        times = {}
        for device_type in PimDeviceType:
            device = PimDevice(
                make_device_config(device_type, 32), functional=False
            )
            obj_a = device.alloc(2_035_544_320)
            obj_b = device.alloc_associated(obj_a)
            dest = device.alloc_associated(obj_a)
            device.execute(PimCmdKind.MUL, (obj_a, obj_b), dest)
            times[device_type] = device.stats.kernel_time_ns
        assert times[PimDeviceType.FULCRUM] < times[PimDeviceType.BITSIMD_V_AP]
        assert times[PimDeviceType.BITSIMD_V_AP] < times[PimDeviceType.BANK_LEVEL]

    def test_background_energy_positive(self, device_type):
        device = make_device(device_type, functional=False)
        run_vecadd(device, 1_000_000)
        assert device.stats.background_energy_nj > 0
