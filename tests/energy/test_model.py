"""Tests for the per-device energy model."""

import pytest

from repro.config.power import PowerConfig
from repro.config.presets import (
    bank_level_config,
    bitserial_config,
    fulcrum_config,
)
from repro.energy.model import EnergyModel
from repro.perf.base import CmdCost


def cost(**kwargs):
    defaults = dict(latency_ns=1000.0, cores_active=100)
    defaults.update(kwargs)
    return CmdCost(**defaults)


class TestCommandEnergy:
    def test_row_activation_pricing(self):
        model = EnergyModel(bitserial_config(4))
        energy = model.command_energy(cost(row_activations=1000))
        per_row = model.micron.row_activation_energy_nj()
        expected = 1000 * per_row
        assert energy.execution_nj == pytest.approx(expected)

    def test_alu_pricing_differs_by_device(self):
        fulcrum = EnergyModel(fulcrum_config(4))
        bank = EnergyModel(bank_level_config(4))
        f = fulcrum.command_energy(cost(alu_word_ops=1e6)).execution_nj
        b = bank.command_energy(cost(alu_word_ops=1e6)).execution_nj
        assert b > f

    def test_lane_logic_pricing(self):
        model = EnergyModel(bitserial_config(4))
        power = PowerConfig()
        energy = model.command_energy(cost(lane_logic_ops=1e9))
        assert energy.execution_nj == pytest.approx(
            1e9 * power.compute.bitserial_logic_pj * 1e-3
        )

    def test_background_scales_with_time(self):
        model = EnergyModel(bitserial_config(4))
        short = model.command_energy(cost(latency_ns=100.0))
        long = model.command_energy(cost(latency_ns=200.0))
        assert long.background_nj == pytest.approx(2 * short.background_nj)

    def test_background_scales_with_module_chips(self):
        small = EnergyModel(bitserial_config(4))
        large = EnergyModel(bitserial_config(32))
        s = small.command_energy(cost()).background_nj
        l = large.command_energy(cost()).background_nj
        assert l == pytest.approx(8 * s)

    def test_background_power_watt_scale(self):
        """32 ranks x 8 chips x the ~8 mW standby delta: a few watts."""
        model = EnergyModel(bitserial_config(32))
        assert 0.5 < model.background_power_w() < 10.0

    def test_total_combines_parts(self):
        model = EnergyModel(bitserial_config(4))
        energy = model.command_energy(cost(row_activations=10))
        assert energy.total_nj == pytest.approx(
            energy.execution_nj + energy.background_nj
        )


class TestHostEnergy:
    def test_host_kernel_at_tdp(self):
        model = EnergyModel(bitserial_config(4))
        assert model.host_energy_nj(1e6) == pytest.approx(200.0 * 1e6)

    def test_idle_at_idle_power(self):
        model = EnergyModel(bitserial_config(4))
        assert model.cpu_idle_energy_nj(1e6) == pytest.approx(10.0 * 1e6)
