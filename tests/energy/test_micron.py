"""Tests for the Micron-derived energy primitives."""

import pytest

from repro.config.dram import DramSpec
from repro.config.power import MicronPowerParams
from repro.energy.micron import MicronEnergyModel


@pytest.fixture
def model():
    return MicronEnergyModel(MicronPowerParams(), DramSpec())


class TestTransferEnergy:
    def test_read_costs_more_than_write(self, model):
        assert model.transfer_pj_per_byte("d2h") > model.transfer_pj_per_byte("h2d")

    def test_d2d_burns_both_bursts(self, model):
        d2d = model.transfer_pj_per_byte("d2d")
        assert d2d > model.transfer_pj_per_byte("d2h")
        assert d2d > model.transfer_pj_per_byte("h2d")

    def test_listing3_anchor(self, model):
        """24576 bytes (16K h2d + 8K d2h) ~ 1.6 uJ."""
        energy = (
            model.transfer_energy_nj(16384, "h2d")
            + model.transfer_energy_nj(8192, "d2h")
        )
        assert energy / 1e6 == pytest.approx(0.001602, rel=0.1)

    def test_energy_linear_in_bytes(self, model):
        assert model.transfer_energy_nj(2000, "h2d") == pytest.approx(
            2 * model.transfer_energy_nj(1000, "h2d")
        )


class TestRowActivation:
    def test_anchor_value(self, model):
        assert model.row_activation_energy_nj() == pytest.approx(0.40, abs=0.05)

    def test_uses_configured_timing(self):
        from repro.config.dram import DramTiming
        import dataclasses
        slow = MicronEnergyModel(
            MicronPowerParams(),
            dataclasses.replace(DramSpec(), timing=DramTiming(tras_ns=64.0)),
        )
        fast = MicronEnergyModel(MicronPowerParams(), DramSpec())
        assert slow.row_activation_energy_nj() > fast.row_activation_energy_nj()


def test_background_power_matches_params(model):
    params = MicronPowerParams()
    assert model.background_power_w_per_subarray() == pytest.approx(
        params.background_power_w()
    )
