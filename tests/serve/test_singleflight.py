"""Single-flight coalescing semantics."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.singleflight import SingleFlight


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_concurrent_same_key_runs_once(self):
        async def main():
            sf = SingleFlight()
            calls = 0

            async def work():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.02)
                return "answer"

            results = await asyncio.gather(
                *(sf.run("k", work) for _ in range(5))
            )
            assert calls == 1
            assert all(value == "answer" for value, _ in results)
            assert sum(1 for _, leader in results if leader) == 1
            assert sf.coalesced == 4
            assert sf.flights == 1

        run(main())

    def test_different_keys_do_not_coalesce(self):
        async def main():
            sf = SingleFlight()

            async def work():
                await asyncio.sleep(0.01)
                return "x"

            await asyncio.gather(sf.run("a", work), sf.run("b", work))
            assert sf.flights == 2
            assert sf.coalesced == 0

        run(main())

    def test_failure_reaches_every_waiter_and_clears_key(self):
        async def main():
            sf = SingleFlight()

            async def boom():
                await asyncio.sleep(0.01)
                raise RuntimeError("dead")

            results = await asyncio.gather(
                *(sf.run("k", boom) for _ in range(3)),
                return_exceptions=True,
            )
            assert all(isinstance(r, RuntimeError) for r in results)
            assert sf.inflight_count == 0
            # A retry after failure starts a fresh flight.
            async def fine():
                return 42

            value, leader = await sf.run("k", fine)
            assert value == 42 and leader

        run(main())

    def test_sequential_calls_do_not_coalesce(self):
        async def main():
            sf = SingleFlight()

            async def work():
                return 1

            await sf.run("k", work)
            await sf.run("k", work)
            assert sf.flights == 2
            assert sf.coalesced == 0

        run(main())

    def test_abandoned_waiter_does_not_cancel_the_flight(self):
        async def main():
            sf = SingleFlight()
            finished = asyncio.Event()

            async def slow():
                await asyncio.sleep(0.05)
                finished.set()
                return "late"

            task, leader = sf.flight("k", slow)
            assert leader
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.shield(task), timeout=0.01)
            # The flight survives the deadline-abandoned waiter.
            assert await task == "late"
            assert finished.is_set()

        run(main())

    def test_cancel_all_cancels_inflight(self):
        async def main():
            sf = SingleFlight()

            async def forever():
                await asyncio.sleep(30)

            task, _ = sf.flight("k", forever)
            await asyncio.sleep(0)
            assert sf.cancel_all() == 1
            with pytest.raises(asyncio.CancelledError):
                await task

        run(main())
