"""EvaluationService behavior: identity, degradation, drain.

Everything here runs the real service in-process (real worker
processes, real cache) except where a test patches the execution path
to manufacture slowness -- wall-clock hangs would make the suite crawl.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.arch import resolve_backend
from repro.engine import CellSpec, run_cells
from repro.faults.chaos import ChaosPolicy
from repro.obs.metrics import MetricsRegistry
from repro.resilience.policy import RetryPolicy
from repro.serve.protocol import canonical_json, result_payload
from repro.serve.service import EvaluationService, ServiceConfig


def _body(**fields) -> bytes:
    return json.dumps(fields).encode()


def _config(tmp_path, **overrides) -> ServiceConfig:
    fields = dict(
        workers=1,
        cache_dir=str(tmp_path / "cache"),
        policy=RetryPolicy(max_retries=2, cell_timeout_s=30.0),
        drain_grace_s=1.0,
    )
    fields.update(overrides)
    return ServiceConfig(**fields)


async def _started(config) -> EvaluationService:
    service = EvaluationService(config, registry=MetricsRegistry())
    await service.start()
    return service


def _direct_bytes(benchmark: str, device: str, ranks: int,
                  vector: bool = False) -> bytes:
    backend = resolve_backend(device)
    spec = CellSpec(
        benchmark_key=benchmark, device_type=backend.device_type,
        num_ranks=ranks, paper_scale=True, functional=False, vector=vector,
    )
    execution = run_cells([spec], use_cache=False)
    outcome = execution.outcome(spec)
    assert outcome.error is None, outcome.error
    return canonical_json(result_payload(spec, outcome))


class TestByteIdentity:
    def test_served_scalar_equals_direct_run(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path))
            try:
                status, payload = await service.evaluate(_body(
                    benchmark="vecadd", device="bank", ranks=32
                ))
                assert status == 200
                return canonical_json(payload)
            finally:
                await service.drain(grace_s=0.5)

        assert asyncio.run(main()) == _direct_bytes("vecadd", "bank", 32)

    def test_served_vector_equals_direct_run(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path))
            try:
                status, payload = await service.evaluate(_body(
                    benchmark="vecadd", device="bank", ranks=32, vector=True
                ))
                assert status == 200
                assert payload["vector"] is True
                return canonical_json(payload)
            finally:
                await service.drain(grace_s=0.5)

        assert asyncio.run(main()) == _direct_bytes(
            "vecadd", "bank", 32, vector=True
        )

    def test_cache_hit_serves_identical_bytes(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path))
            try:
                body = _body(benchmark="vecadd", device="bank", ranks=32)
                _, first = await service.evaluate(body)
                _, second = await service.evaluate(body)
                assert service.registry.value("serve.cache_hits") >= 1
                return canonical_json(first), canonical_json(second)
            finally:
                await service.drain(grace_s=0.5)

        first, second = asyncio.run(main())
        assert first == second == _direct_bytes("vecadd", "bank", 32)

    def test_chaos_crash_recovers_to_identical_bytes(self, tmp_path):
        async def main():
            service = await _started(_config(
                tmp_path,
                chaos=ChaosPolicy(seed=1, crash_rate=1.0),
            ))
            try:
                status, payload = await service.evaluate(_body(
                    benchmark="vecadd", device="bank", ranks=32,
                    no_cache=True,
                ))
                assert status == 200
                assert service.registry.value("serve.chaos_injected") == 1
                assert service.registry.value("serve.retries") >= 1
                assert service.registry.value("serve.worker_respawns") >= 1
                return canonical_json(payload)
            finally:
                await service.drain(grace_s=0.5)

        assert asyncio.run(main()) == _direct_bytes("vecadd", "bank", 32)

    def test_chaos_hang_is_killed_and_recovers(self, tmp_path):
        async def main():
            service = await _started(_config(
                tmp_path,
                policy=RetryPolicy(
                    max_retries=2, cell_timeout_s=1.0,
                    backoff_base_s=0.01,
                ),
                chaos=ChaosPolicy(seed=1, hang_rate=1.0, hang_s=30.0),
            ))
            try:
                status, payload = await service.evaluate(_body(
                    benchmark="vecadd", device="bank", ranks=32,
                    no_cache=True, deadline_s=25.0,
                ))
                assert status == 200
                assert service.registry.value("serve.worker_respawns") >= 1
                return canonical_json(payload)
            finally:
                await service.drain(grace_s=0.5)

        assert asyncio.run(main()) == _direct_bytes("vecadd", "bank", 32)


class TestCoalescing:
    def test_concurrent_duplicates_share_one_flight(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path, workers=2))
            try:
                body = _body(benchmark="vecadd", device="fulcrum", ranks=32)
                answers = await asyncio.gather(
                    *(service.evaluate(body) for _ in range(6))
                )
                bodies = {canonical_json(p) for _, p in answers}
                assert all(status == 200 for status, _ in answers)
                assert len(bodies) == 1
                assert service.flights.coalesced >= 1
                assert service.registry.value("serve.coalesced") >= 1
            finally:
                await service.drain(grace_s=0.5)

        asyncio.run(main())


class TestDegradation:
    def test_deadline_refuses_but_flight_survives(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path))
            release = asyncio.Event()
            real_attempt = service._run_attempt

            async def slow_attempt(spec, attempt):
                await release.wait()
                return await real_attempt(spec, attempt)

            service._run_attempt = slow_attempt
            try:
                body = _body(
                    benchmark="vecadd", device="bank", ranks=32,
                    deadline_s=0.05,
                )
                status, payload = await service.evaluate(body)
                assert status == 504
                assert payload["code"] == "ERR_DEADLINE"
                assert service.registry.value("serve.deadline_exceeded") == 1
                # The abandoned flight keeps running and lands in cache.
                release.set()
                for _ in range(200):
                    if service.flights.inflight_count == 0:
                        break
                    await asyncio.sleep(0.01)
                service._run_attempt = real_attempt
                status, payload = await service.evaluate(_body(
                    benchmark="vecadd", device="bank", ranks=32,
                ))
                assert status == 200
                assert service.registry.value("serve.cache_hits") >= 1
            finally:
                release.set()
                await service.drain(grace_s=0.5)

        asyncio.run(main())

    def test_overload_sheds_with_bounded_queue(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path, queue_limit=1))
            release = asyncio.Event()

            async def stuck_attempt(spec, attempt):
                await release.wait()
                raise RuntimeError("never reached")

            service._run_attempt = stuck_attempt
            try:
                body = _body(benchmark="vecadd", device="bank", ranks=32,
                             no_cache=True)
                first = asyncio.create_task(service.evaluate(body))
                await asyncio.sleep(0.05)
                status, payload = await service.evaluate(body)
                assert status == 429
                assert payload["code"] == "ERR_OVERLOAD"
                assert payload["retry_after_s"] > 0
                assert payload["queue_depth"] == 1
                assert service.admission.max_inflight == 1  # bounded
                first.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await first
            finally:
                release.set()
                service.flights.cancel_all()
                await service.drain(grace_s=0.2)

        asyncio.run(main())

    def test_tenant_quota_sheds(self, tmp_path):
        async def main():
            service = await _started(_config(
                tmp_path, quota_rps=0.001, quota_burst=1.0,
            ))
            try:
                body = _body(benchmark="vecadd", device="bank", ranks=32,
                             tenant="alice")
                status, _ = await service.evaluate(body)
                assert status == 200
                status, payload = await service.evaluate(body)
                assert status == 429
                assert payload["code"] == "ERR_QUOTA"
                assert payload["retry_after_s"] > 0
                # Another tenant is unaffected.
                status, _ = await service.evaluate(_body(
                    benchmark="vecadd", device="bank", ranks=32,
                    tenant="bob",
                ))
                assert status == 200
            finally:
                await service.drain(grace_s=0.5)

        asyncio.run(main())

    def test_bad_requests_are_coded(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path))
            try:
                for body in (b"{nope", _body(device="bank"),
                             _body(benchmark="vecadd", device="zzz"),
                             _body(benchmark="zzz", device="bank")):
                    status, payload = await service.evaluate(body)
                    assert status == 400
                    assert payload["code"] == "ERR_BAD_REQUEST"
                assert service.registry.value("serve.bad_requests") == 4
            finally:
                await service.drain(grace_s=0.5)

        asyncio.run(main())

    def test_persistent_failure_opens_the_breaker(self, tmp_path):
        async def main():
            # ranks=4 paper-scale vecadd deterministically dies with an
            # allocation error; threshold 1 opens the circuit on the
            # first ultimate failure.
            service = await _started(_config(
                tmp_path,
                policy=RetryPolicy(max_retries=0, cell_timeout_s=30.0),
                breaker_threshold=1,
            ))
            try:
                body = _body(benchmark="vecadd", device="bank", ranks=4,
                             no_cache=True)
                status, payload = await service.evaluate(body)
                assert status == 500
                assert payload["code"] == "ERR_CELL_FAILED"
                assert payload["failure"]["error_type"] == (
                    "PimAllocationError"
                )
                status, payload = await service.evaluate(body)
                assert status == 503
                assert payload["code"] == "ERR_CIRCUIT_OPEN"
                # A healthy backend still serves.
                status, _ = await service.evaluate(_body(
                    benchmark="vecadd", device="fulcrum", ranks=32,
                ))
                assert status == 200
            finally:
                await service.drain(grace_s=0.5)

        asyncio.run(main())


class TestDrain:
    def test_drain_refuses_new_work_and_rejects_stuck_flights(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path))
            release = asyncio.Event()

            async def stuck_attempt(spec, attempt):
                await release.wait()
                raise RuntimeError("never reached")

            service._run_attempt = stuck_attempt
            body = _body(benchmark="vecadd", device="bank", ranks=32,
                         no_cache=True)
            stuck = asyncio.create_task(service.evaluate(body))
            await asyncio.sleep(0.05)
            forced = await service.drain(grace_s=0.1)
            assert forced == 1
            status, payload = await stuck
            assert status == 503
            assert payload["code"] == "ERR_DRAINING"
            status, payload = await service.evaluate(body)
            assert status == 503
            assert payload["code"] == "ERR_DRAINING"
            assert service.registry.gauge("serve.draining").value == 1.0
            assert service.executor.worker_pids() == []

        asyncio.run(main())

    def test_drain_lets_inflight_finish_within_grace(self, tmp_path):
        async def main():
            service = await _started(_config(tmp_path))
            body = _body(benchmark="vecadd", device="bank", ranks=32)
            task = asyncio.create_task(service.evaluate(body))
            await asyncio.sleep(0)
            forced = await service.drain(grace_s=10.0)
            assert forced == 0
            status, payload = await task
            assert status == 200
            return canonical_json(payload)

        assert asyncio.run(main()) == _direct_bytes("vecadd", "bank", 32)
