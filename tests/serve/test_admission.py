"""Admission gates: quotas, bounded queueing, shed hints, drain."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.protocol import (
    ERR_DRAINING,
    ERR_OVERLOAD,
    ERR_QUOTA,
    ServeError,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_then_refusal_with_exact_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.try_take() is None

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1, 1), (1, 0)])
    def test_invalid_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestAdmissionGates:
    def test_admit_and_finish_track_inflight(self):
        ctrl = AdmissionController(queue_limit=2)
        decision = ctrl.admit("a")
        assert decision.queue_depth == 1
        assert ctrl.inflight == 1
        ctrl.finish()
        assert ctrl.inflight == 0

    def test_finish_without_admit_is_a_bug(self):
        ctrl = AdmissionController()
        with pytest.raises(RuntimeError):
            ctrl.finish()

    def test_queue_bound_sheds_with_depth_and_hint(self):
        ctrl = AdmissionController(queue_limit=2)
        ctrl.admit()
        ctrl.admit()
        with pytest.raises(ServeError) as info:
            ctrl.admit()
        assert info.value.code == ERR_OVERLOAD
        assert info.value.retry_after_s >= 0.05
        assert info.value.context["queue_depth"] == 2
        ctrl.finish()
        ctrl.admit()  # a freed slot admits again

    def test_draining_sheds_first(self):
        ctrl = AdmissionController(queue_limit=1)
        ctrl.draining = True
        with pytest.raises(ServeError) as info:
            ctrl.admit()
        assert info.value.code == ERR_DRAINING

    def test_tenant_quota_is_per_tenant(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            queue_limit=100, quota_rate=1.0, quota_burst=1.0, clock=clock
        )
        ctrl.admit("alice")
        with pytest.raises(ServeError) as info:
            ctrl.admit("alice")
        assert info.value.code == ERR_QUOTA
        assert info.value.retry_after_s == pytest.approx(1.0)
        ctrl.admit("bob")  # bob's bucket is untouched
        clock.advance(1.0)
        ctrl.admit("alice")

    def test_quota_burst_defaults_to_rate(self):
        ctrl = AdmissionController(quota_rate=5.0)
        assert ctrl.quota_burst == 5.0

    def test_max_inflight_high_water_mark(self):
        ctrl = AdmissionController(queue_limit=8)
        for _ in range(5):
            ctrl.admit()
        for _ in range(5):
            ctrl.finish()
        assert ctrl.max_inflight == 5

    def test_retry_after_tracks_service_time(self):
        ctrl = AdmissionController(queue_limit=100, workers=1)
        for _ in range(10):
            ctrl.admit()
        for _ in range(50):
            ctrl.observe_service_time(0.2)
        slow_hint = ctrl.retry_after_hint()
        for _ in range(100):
            ctrl.observe_service_time(0.001)
        fast_hint = ctrl.retry_after_hint()
        assert slow_hint > fast_hint
        assert fast_hint >= 0.05  # floor: never tell a client to hammer
