"""Sweeps inside a long-lived serving process leave no registry residue.

``run_sweep`` registers one transient parametric backend per design
point for the duration of the evaluation.  Under ``repro serve`` the
process lives for days and may run many sweeps, so any leaked
registration is a slow leak of registry entries *and* a correctness
hazard (a later sweep could silently resolve a stale backend id).  The
contract: a completed sweep -- successful or not -- restores the
registry to its pre-sweep size, and the service keeps answering with
byte-identical payloads afterwards.
"""

import asyncio
import json

import pytest

from repro.arch import derive_backend, iter_backends, temporary_backend
from repro.core.errors import PimConfigError
from repro.dse import SweepSpec, run_sweep
from repro.obs.metrics import MetricsRegistry
from repro.resilience.policy import RetryPolicy
from repro.serve.protocol import canonical_json
from repro.serve.service import EvaluationService, ServiceConfig

_SPEC = SweepSpec.from_dict({
    "name": "hygiene",
    "base": "bank",
    "benchmarks": ["vecadd"],
    "num_ranks": 2,
    "axes": {"banks_per_rank": [32, 64]},
})


def _config(tmp_path) -> ServiceConfig:
    return ServiceConfig(
        workers=1,
        cache_dir=str(tmp_path / "cache"),
        policy=RetryPolicy(max_retries=2, cell_timeout_s=30.0),
        drain_grace_s=1.0,
    )


def _registry_ids() -> "tuple[str, ...]":
    return tuple(backend.id for backend in iter_backends())


def test_completed_sweep_restores_registry_size(tmp_path):
    """The satellite contract, inside a live service process."""
    async def main():
        service = EvaluationService(
            _config(tmp_path), registry=MetricsRegistry()
        )
        await service.start()
        try:
            before = _registry_ids()
            result = run_sweep(_SPEC, jobs=1, use_cache=False)
            assert not any(o.failed for o in result.outcomes)
            assert _registry_ids() == before

            # The service still resolves the hand-written backends and
            # serves the same bytes as before the sweep ran.
            body = json.dumps(
                {"benchmark": "vecadd", "device": "bank", "ranks": 32}
            ).encode()
            status, first = await service.evaluate(body)
            assert status == 200
            run_sweep(_SPEC, jobs=1, use_cache=False)
            status, second = await service.evaluate(body)
            assert status == 200
            assert canonical_json(first) == canonical_json(second)
            assert _registry_ids() == before
        finally:
            await service.drain(grace_s=0.5)

    asyncio.run(main())


def test_failed_sweep_still_unwinds_registrations():
    """The finally-path: an exception mid-sweep unregisters everything."""
    before = _registry_ids()
    spec = SweepSpec.from_dict({
        "name": "doomed",
        "base": "bank",
        "benchmarks": ["no-such-benchmark"],
        "num_ranks": 2,
        "axes": {"banks_per_rank": [32, 64]},
    })
    result = run_sweep(spec, jobs=1, use_cache=False)
    assert all(o.failed for o in result.outcomes)
    assert _registry_ids() == before

    with pytest.raises(PimConfigError):
        run_sweep(
            SweepSpec.from_dict({
                "name": "bad-base",
                "base": "hal9000",
                "benchmarks": ["vecadd"],
                "num_ranks": 2,
                "axes": {"banks_per_rank": [32]},
            }),
            jobs=1, use_cache=False,
        )
    assert _registry_ids() == before


def test_sweep_leaves_foreign_registrations_alone():
    """First owner wins: a pre-registered point id survives the sweep."""
    point = _SPEC.compile_points()[0]
    owned = derive_backend(point.base, point.knobs_dict())
    with temporary_backend(owned):
        before = _registry_ids()
        assert owned.id in before
        run_sweep(_SPEC, jobs=1, use_cache=False)
        assert _registry_ids() == before
