"""The wire contract: request validation and canonical payloads."""

from __future__ import annotations

import json

import pytest

from repro.arch import resolve_backend
from repro.engine import CellSpec, run_cells
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERROR_HTTP_STATUS,
    CellRequest,
    ServeError,
    canonical_json,
    error_payload,
    result_payload,
)


def _body(**fields) -> bytes:
    return json.dumps(fields).encode()


class TestCellRequestParsing:
    def test_minimal_request(self):
        req = CellRequest.from_json(_body(benchmark="vecadd", device="bank"))
        assert req.benchmark == "vecadd"
        assert req.device == "bank"
        assert req.ranks == 32
        assert req.paper_scale is True
        assert req.tenant == "default"
        assert req.deadline_s is None

    def test_full_request(self):
        req = CellRequest.from_json(_body(
            benchmark="gemv", device="fulcrum", ranks=8, paper_scale=True,
            vector=True, tenant="alice", deadline_s=2.5, no_cache=True,
        ))
        assert req.ranks == 8
        assert req.vector is True
        assert req.tenant == "alice"
        assert req.deadline_s == 2.5
        assert req.no_cache is True

    def test_not_json(self):
        with pytest.raises(ServeError) as info:
            CellRequest.from_json(b"{nope")
        assert info.value.code == ERR_BAD_REQUEST

    def test_not_an_object(self):
        with pytest.raises(ServeError) as info:
            CellRequest.from_json(b"[1,2]")
        assert info.value.code == ERR_BAD_REQUEST

    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError) as info:
            CellRequest.from_json(_body(
                benchmark="vecadd", device="bank", bogus=1
            ))
        assert "bogus" in str(info.value)

    def test_missing_benchmark(self):
        with pytest.raises(ServeError):
            CellRequest.from_json(_body(device="bank"))

    @pytest.mark.parametrize("ranks", [0, -1, "four", 1.5, True])
    def test_bad_ranks(self, ranks):
        with pytest.raises(ServeError):
            CellRequest.from_json(_body(
                benchmark="vecadd", device="bank", ranks=ranks
            ))

    @pytest.mark.parametrize("deadline", [0, -2, "soon"])
    def test_bad_deadline(self, deadline):
        with pytest.raises(ServeError):
            CellRequest.from_json(_body(
                benchmark="vecadd", device="bank", deadline_s=deadline
            ))

    def test_bad_flag_type(self):
        with pytest.raises(ServeError):
            CellRequest.from_json(_body(
                benchmark="vecadd", device="bank", vector="yes"
            ))

    def test_unknown_device_is_bad_request(self):
        req = CellRequest.from_json(_body(benchmark="vecadd", device="zzz"))
        with pytest.raises(ServeError) as info:
            req.to_spec()
        assert info.value.code == ERR_BAD_REQUEST

    def test_to_spec_mirrors_cli(self):
        req = CellRequest.from_json(_body(
            benchmark="vecadd", device="bank", ranks=32
        ))
        spec = req.to_spec()
        backend = resolve_backend("bank")
        assert spec.device_type == backend.device_type
        assert spec.paper_scale is True
        assert spec.functional is False
        assert spec.num_ranks == 32

    def test_vector_requires_paper_scale(self):
        req = CellRequest.from_json(_body(
            benchmark="vecadd", device="bank", vector=True, paper_scale=False
        ))
        assert req.to_spec().vector is False


class TestCanonicalPayloads:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_every_code_has_a_status(self):
        for code, status in ERROR_HTTP_STATUS.items():
            assert code.startswith("ERR_")
            assert status in (400, 429, 500, 503, 504)

    def test_error_payload_shape(self):
        payload = error_payload("ERR_OVERLOAD", "full", retry_after_s=1.23456)
        assert payload["status"] == "error"
        assert payload["code"] == "ERR_OVERLOAD"
        assert payload["retry_after_s"] == 1.235

    def test_result_payload_matches_direct_run(self):
        backend = resolve_backend("bank")
        spec = CellSpec(
            benchmark_key="vecadd", device_type=backend.device_type,
            num_ranks=32, paper_scale=True, functional=False,
        )
        execution = run_cells([spec], use_cache=False)
        outcome = execution.outcome(spec)
        payload = result_payload(spec, outcome)
        assert payload["status"] == "ok"
        assert payload["benchmark"] == "vecadd"
        assert payload["num_ranks"] == 32
        assert payload["result"] == outcome.result.to_dict()
        # Execution-dependent data must not leak into the payload.
        assert "attempt" not in payload
        assert "telemetry" not in payload
