"""Load-generator internals: percentiles, request mix, BENCH schema."""

from __future__ import annotations

import json
import random

import pytest

from repro.serve.loadgen import (
    SHED_CODES,
    LegReport,
    LoadLeg,
    bench_payload,
    format_reports,
    percentile,
)
from repro.serve.loadgen import _request_body


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_single_value_is_every_percentile(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert percentile([4.2], q) == 4.2

    def test_nearest_rank(self):
        values = [float(n) for n in range(1, 101)]  # 1..100 ascending
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 51.0  # round(0.5 * 99) = 50
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.95) == 95.0

    def test_monotone_in_q(self):
        values = sorted(random.Random(7).random() for _ in range(33))
        samples = [percentile(values, q / 20) for q in range(21)]
        assert samples == sorted(samples)
        assert samples[0] == values[0] and samples[-1] == values[-1]

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestRequestMix:
    def test_duplicate_ratio_one_always_names_the_hot_cell(self):
        leg = LoadLeg(name="x", duplicate_ratio=1.0, ranks=32)
        rng = random.Random(0)
        bodies = {_request_body(leg, rng) for _ in range(50)}
        assert len(bodies) == 1
        assert json.loads(bodies.pop())["ranks"] == 32

    def test_duplicate_ratio_zero_draws_from_the_distinct_pool(self):
        leg = LoadLeg(
            name="x", duplicate_ratio=0.0, ranks=32, distinct_cells=4
        )
        rng = random.Random(0)
        ranks = {
            json.loads(_request_body(leg, rng))["ranks"] for _ in range(200)
        }
        # The pool is ranks+1 .. ranks+distinct_cells; never the hot cell.
        assert ranks == {33, 34, 35, 36}

    def test_deadline_rides_along_when_set(self):
        leg = LoadLeg(name="x", deadline_s=2.5, duplicate_ratio=1.0)
        body = json.loads(_request_body(leg, random.Random(0)))
        assert body["deadline_s"] == 2.5
        leg = LoadLeg(name="x", duplicate_ratio=1.0)
        assert "deadline_s" not in json.loads(
            _request_body(leg, random.Random(0))
        )

    def test_mix_is_seed_deterministic(self):
        leg = LoadLeg(name="x", duplicate_ratio=0.5, seed=3)
        first = [_request_body(leg, random.Random(99)) for _ in range(20)]
        second = [_request_body(leg, random.Random(99)) for _ in range(20)]
        assert first == second


def _report(**overrides) -> LegReport:
    fields = dict(
        name="serve-warm-dup", duration_s=4.0, sent=100, ok=90, shed=8,
        failed=2, p50_s=0.010, p95_s=0.050, p99_s=0.090,
        achieved_qps=22.5, shed_rate=0.08, coalesce_rate=0.41,
        cache_hit_count=30, max_queue_depth=5,
        codes={"OK": 90, "ERR_OVERLOAD": 8, "ERR_INTERNAL": 2},
    )
    fields.update(overrides)
    return LegReport(**fields)


class TestBenchSchema:
    def test_run_dict_is_gateable_by_selfbench(self):
        # The serving BENCH artifact rides the selfbench schema so
        # ``selfbench --check`` can gate serving QPS with no new tooling.
        payload = bench_payload([_report()])
        assert payload["schema"] == 1
        (run,) = payload["runs"]
        assert run["run"] == "serve-warm-dup"
        assert run["commands_per_s"] == 22.5
        assert run["commands_simulated"] == 90
        assert run["coalesce_rate"] == 0.41
        assert run["max_queue_depth"] == 5
        from repro.experiments.selfbench import baseline_run_names

        assert baseline_run_names(payload) == {"serve-warm-dup"}

    def test_payload_is_json_serializable(self):
        text = json.dumps(bench_payload([_report(), _report(name="b")]))
        assert json.loads(text)["runs"][1]["run"] == "b"

    def test_format_lists_every_leg(self):
        text = format_reports([_report(), _report(name="serve-overload")])
        assert "serve-warm-dup" in text and "serve-overload" in text
        assert "maxdepth" in text

    def test_shed_codes_cover_the_refusal_taxonomy(self):
        from repro.serve.protocol import (
            ERR_CIRCUIT_OPEN,
            ERR_DRAINING,
            ERR_OVERLOAD,
            ERR_QUOTA,
        )

        assert SHED_CODES == {
            ERR_OVERLOAD, ERR_QUOTA, ERR_DRAINING, ERR_CIRCUIT_OPEN,
        }
