"""End-to-end: the real ``repro serve`` process over a unix socket.

These tests exercise the full stack -- CLI entry point, asyncio HTTP
server, warm worker processes, signal-driven drain -- exactly the way
CI's serve smoke leg does, and pin the acceptance contract:

* served bytes == direct ``run_cells`` bytes (scalar, vector, chaos);
* concurrent duplicates coalesce (counter > 0, identical payloads);
* SIGTERM drains cleanly: exit code 0, no orphaned workers.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.arch import resolve_backend
from repro.engine import CellSpec, run_cells
from repro.serve.client import ServeClient
from repro.serve.protocol import canonical_json, result_payload

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _direct_bytes(benchmark: str, device: str, ranks: int,
                  vector: bool = False) -> bytes:
    backend = resolve_backend(device)
    spec = CellSpec(
        benchmark_key=benchmark, device_type=backend.device_type,
        num_ranks=ranks, paper_scale=True, functional=False, vector=vector,
    )
    execution = run_cells([spec], use_cache=False)
    outcome = execution.outcome(spec)
    assert outcome.error is None, outcome.error
    return canonical_json(result_payload(spec, outcome))


class ServerProcess:
    """One ``repro serve`` subprocess listening on a unix socket."""

    def __init__(self, tmp_path, *extra_args: str) -> None:
        self.socket_path = str(tmp_path / "serve.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [SRC] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", self.socket_path,
             "--workers", "2",
             "--cache-dir", str(tmp_path / "cache"),
             "--drain-grace", "10",
             *extra_args],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    def client(self, timeout: float = 60.0) -> ServeClient:
        return ServeClient(socket_path=self.socket_path, timeout=timeout)

    def worker_pids(self) -> "list[int]":
        out = subprocess.run(
            ["ps", "--ppid", str(self.proc.pid), "-o", "pid="],
            capture_output=True, text=True,
        ).stdout.split()
        return [int(pid) for pid in out]

    def terminate(self) -> "tuple[int, str, str]":
        self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise
        stdout, stderr = self.proc.communicate()
        return code, stdout, stderr

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


@pytest.fixture
def server(tmp_path):
    proc = ServerProcess(tmp_path)
    with proc.client() as client:
        client.wait_ready(attempts=600, delay_s=0.1)
    yield proc
    proc.kill()


class TestServeEndToEnd:
    def test_full_contract(self, server):
        with server.client() as client:
            # --- byte identity, scalar and vector -----------------------
            status, _, raw = client.cell(
                benchmark="vecadd", device="bank", ranks=32
            )
            assert status == 200
            assert raw == _direct_bytes("vecadd", "bank", 32)
            status, _, raw = client.cell(
                benchmark="vecadd", device="bank", ranks=32, vector=True
            )
            assert status == 200
            assert raw == _direct_bytes("vecadd", "bank", 32, vector=True)

            # --- cache hit answers the same bytes -----------------------
            status, _, again = client.cell(
                benchmark="vecadd", device="bank", ranks=32
            )
            assert again == _direct_bytes("vecadd", "bank", 32)

            # --- health endpoints ---------------------------------------
            assert client.get_json("/healthz")[0] == 200
            assert client.get_json("/readyz")[0] == 200
            metrics = client.metrics_text()
            assert metrics.rstrip().endswith("# EOF")
            assert "repro_serve_requests" in metrics

        # --- concurrent duplicates coalesce -----------------------------
        def one(_):
            with server.client() as c:
                return c.cell(benchmark="gemv", device="fulcrum", ranks=32)

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            answers = list(pool.map(one, range(8)))
        assert all(status == 200 for status, _, _ in answers)
        assert len({raw for _, _, raw in answers}) == 1
        with server.client() as client:
            status, payload = client.get_json("/statusz")
            assert status == 200
            assert payload["coalesced"] > 0

        # --- 404 and wrong method are coded, connection survives --------
        with server.client() as client:
            status, _, raw = client.request("GET", "/nope")
            assert status == 404
            status, _, raw = client.request("GET", "/v1/cell")
            assert status == 405
            assert client.get_json("/healthz")[0] == 200

        # --- SIGTERM: clean drain, exit 0, no orphans -------------------
        workers = server.worker_pids()
        assert workers, "expected live worker processes"
        code, stdout, stderr = server.terminate()
        assert code == 0, stderr
        assert "drained cleanly" in stdout
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            alive = [p for p in workers if os.path.exists(f"/proc/{p}")]
            if not alive:
                break
            time.sleep(0.1)
        assert alive == [], f"orphaned workers: {alive}"

    def test_readyz_flips_during_drain(self, tmp_path):
        proc = ServerProcess(tmp_path, "--drain-grace", "0.2")
        try:
            with proc.client() as client:
                client.wait_ready(attempts=600, delay_s=0.1)
            code, stdout, _ = proc.terminate()
            assert code == 0
        finally:
            proc.kill()


class TestServeChaos:
    def test_byte_identity_under_crash_chaos(self, tmp_path):
        proc = ServerProcess(
            tmp_path, "--chaos-rate", "1.0", "--chaos-seed", "3",
            "--max-retries", "2",
        )
        try:
            with proc.client() as client:
                client.wait_ready(attempts=600, delay_s=0.1)
                status, _, raw = client.cell(
                    benchmark="vecadd", device="bank", ranks=32,
                    no_cache=True,
                )
                assert status == 200
                assert raw == _direct_bytes("vecadd", "bank", 32)
                _, payload = client.get_json("/statusz")
                assert payload["worker_respawns"] >= 1
                assert payload["counters"]["serve.chaos_injected"] >= 1
            code, _, stderr = proc.terminate()
            assert code == 0, stderr
        finally:
            proc.kill()

    def test_byte_identity_under_hang_chaos(self, tmp_path):
        proc = ServerProcess(
            tmp_path, "--chaos-hang-rate", "1.0", "--chaos-hang-s", "30",
            "--cell-timeout", "1.0", "--max-retries", "2",
        )
        try:
            with proc.client() as client:
                client.wait_ready(attempts=600, delay_s=0.1)
                status, _, raw = client.cell(
                    benchmark="vecadd", device="bank", ranks=32,
                    no_cache=True, deadline_s=25,
                )
                assert status == 200
                assert raw == _direct_bytes("vecadd", "bank", 32)
                _, payload = client.get_json("/statusz")
                assert payload["worker_respawns"] >= 1
            code, _, stderr = proc.terminate()
            assert code == 0, stderr
        finally:
            proc.kill()
