"""Circuit breaker state machine: open, cool down, probe, close."""

from __future__ import annotations

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.protocol import ERR_CIRCUIT_OPEN, ServeError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make(threshold=3, cooldown=10.0):
    clock = FakeClock()
    return CircuitBreaker(
        failure_threshold=threshold, cooldown_s=cooldown, clock=clock
    ), clock


class TestCircuitBreaker:
    def test_closed_by_default_and_below_threshold(self):
        breaker, _ = make()
        breaker.check("bank")
        breaker.record_failure("bank")
        breaker.record_failure("bank")
        breaker.check("bank")  # 2 < 3: still closed
        assert breaker.state("bank") is BreakerState.CLOSED

    def test_opens_at_threshold_with_cooldown_hint(self):
        breaker, _ = make(threshold=2, cooldown=8.0)
        breaker.record_failure("bank")
        breaker.record_failure("bank")
        assert breaker.state("bank") is BreakerState.OPEN
        with pytest.raises(ServeError) as info:
            breaker.check("bank")
        assert info.value.code == ERR_CIRCUIT_OPEN
        assert info.value.retry_after_s == pytest.approx(8.0)
        assert breaker.opens("bank") == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure("bank")
        breaker.record_success("bank")
        breaker.record_failure("bank")
        assert breaker.state("bank") is BreakerState.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make(threshold=1, cooldown=5.0)
        breaker.record_failure("bank")
        clock.now = 5.1
        breaker.check("bank")  # the probe
        assert breaker.state("bank") is BreakerState.HALF_OPEN
        with pytest.raises(ServeError):
            breaker.check("bank")  # concurrent request refused

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1, cooldown=5.0)
        breaker.record_failure("bank")
        clock.now = 6.0
        breaker.check("bank")
        breaker.record_success("bank")
        assert breaker.state("bank") is BreakerState.CLOSED
        breaker.check("bank")  # traffic flows again

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        breaker, clock = make(threshold=3, cooldown=5.0)
        for _ in range(3):
            breaker.record_failure("bank")
        clock.now = 5.1
        breaker.check("bank")
        breaker.record_failure("bank")  # the probe dies
        assert breaker.state("bank") is BreakerState.OPEN
        assert breaker.opens("bank") == 2
        clock.now = 10.0  # 4.9s into the new cooldown: still open
        with pytest.raises(ServeError):
            breaker.check("bank")

    def test_keys_are_independent(self):
        breaker, _ = make(threshold=1)
        breaker.record_failure("bank")
        with pytest.raises(ServeError):
            breaker.check("bank")
        breaker.check("fulcrum")

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"cooldown_s": 0.0},
        {"cooldown_s": -1.0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
