"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "vecadd"])
        assert args.benchmark == "vecadd"
        assert args.target == "fulcrum"
        assert args.ranks == 4
        assert not args.paper_scale


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vecadd" in out
        assert "prefixsum" in out  # extension kernels listed too

    def test_run_functional(self, capsys):
        assert main(["run", "vecadd", "--target", "bitserial"]) == 0
        out = capsys.readouterr().out
        assert "Functional verification: PASSED" in out
        assert "PIM Command Stats" in out
        assert "Speedup vs CPU" in out

    def test_run_extension_kernel(self, capsys):
        assert main(["run", "stringmatch", "--target", "bank"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_run_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "bogus"])

    def test_run_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["run", "vecadd", "--target", "gpu"])

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "AMD EPYC 9124" in out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])

    def test_figure_12_name_resolution(self, capsys):
        # Exercise only the dispatch path cheaply via figure 6a at 1 rank
        # equivalence is covered elsewhere; here check the parse/dispatch.
        args = build_parser().parse_args(["figure", "6a"])
        assert args.figure == "6a"
