"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _normalize_figure, build_parser, main
from repro.obs import validate_chrome_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "vecadd"])
        assert args.benchmark == "vecadd"
        assert args.target == "fulcrum"
        assert args.ranks == 4
        assert not args.paper_scale
        assert args.trace is None

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "vecadd"])
        assert args.benchmark == "vecadd"
        assert args.trace is None
        assert args.metrics is None
        assert args.top == 10

    def test_vector_flags(self):
        for command in (["run", "vecadd"], ["suite"], ["figure", "9"]):
            args = build_parser().parse_args(command)
            assert not args.vector and not args.vector_check
            args = build_parser().parse_args(
                command + ["--vector", "--vector-check"]
            )
            assert args.vector and args.vector_check
        # profile accepts --vector (and ignores it with a note) but has
        # no --vector-check: there is no vectorized run to cross-check.
        args = build_parser().parse_args(["profile", "vecadd", "--vector"])
        assert args.vector
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "vecadd", "--vector-check"])


class TestFigureNormalization:
    # Regression: lstrip("fig") strips characters, so "figure 7" became
    # "ure 7" and "Figure 6a" was unrecognized.
    @pytest.mark.parametrize("raw,expected", [
        ("7", "7"),
        ("fig7", "7"),
        ("fig. 7", "7"),
        ("Fig. 6a", "6a"),
        ("figure 7", "7"),
        ("Figure 10b", "10b"),
        ("FIGURE 12", "12"),
    ])
    def test_prefix_stripping(self, raw, expected):
        assert _normalize_figure(raw) == expected


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vecadd" in out
        assert "prefixsum" in out  # extension kernels listed too

    def test_run_functional(self, capsys):
        assert main(["run", "vecadd", "--target", "bitserial"]) == 0
        out = capsys.readouterr().out
        assert "Functional verification: PASSED" in out
        assert "PIM Command Stats" in out
        assert "Speedup vs CPU" in out

    def test_run_announces_before_report(self, capsys):
        # The header must precede the stats so long runs don't look hung.
        assert main(["run", "vecadd"]) == 0
        out = capsys.readouterr().out
        assert out.index("Running Vector Addition") < out.index(
            "PIM Command Stats"
        )

    def test_run_with_trace(self, capsys, tmp_path):
        path = str(tmp_path / "run.json")
        assert main(["run", "vecadd", "--trace", path]) == 0
        assert "Chrome trace written" in capsys.readouterr().out
        validate_chrome_trace(json.load(open(path)))

    def test_profile_writes_trace_and_metrics(self, capsys, tmp_path):
        trace_path = str(tmp_path / "t.json")
        metrics_path = str(tmp_path / "m.jsonl")
        assert main([
            "profile", "vecadd", "--target", "fulcrum",
            "--trace", trace_path, "--metrics", metrics_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "Hottest command signatures" in out
        assert "add.int32.h" in out
        payload = validate_chrome_trace(json.load(open(trace_path)))
        begins = [e["name"] for e in payload["traceEvents"] if e["ph"] == "B"]
        for phase in ("phase:load", "phase:kernel", "phase:readback"):
            assert phase in begins
        commands = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "command"
        ]
        assert len(commands) >= 1
        records = [json.loads(line) for line in open(metrics_path)]
        names = {r["name"] for r in records}
        assert "commands.issued" in names
        assert "cmd.add.int32.h.latency_ns" in names

    def test_profile_without_trace_still_reports(self, capsys):
        assert main(["profile", "vecadd", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Hottest command signatures (top 3" in out
        assert "Simulated time" in out

    def test_run_vector_paper_scale(self, capsys):
        assert main([
            "run", "vecadd", "--paper-scale", "--ranks", "32",
            "--no-cache", "--vector",
        ]) == 0
        out = capsys.readouterr().out
        assert "vectorized" in out
        assert "Speedup vs CPU" in out

    def test_run_vector_functional_falls_back_with_note(self, capsys):
        assert main(["run", "vecadd", "--vector", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "functional mode keeps" in out
        assert "vectorized" not in out

    def test_run_vector_check_sets_env_and_passes(self, capsys):
        import os

        from repro.perf.vector import VECTOR_CHECK_ENV

        before = os.environ.pop(VECTOR_CHECK_ENV, None)
        try:
            assert main([
                "run", "vecadd", "--paper-scale", "--ranks", "32",
                "--no-cache", "--vector", "--vector-check",
            ]) == 0
            assert os.environ.get(VECTOR_CHECK_ENV) == "1"
        finally:
            os.environ.pop(VECTOR_CHECK_ENV, None)
            if before is not None:
                os.environ[VECTOR_CHECK_ENV] = before

    def test_profile_vector_notes_scalar_path(self, capsys):
        assert main(["profile", "vecadd", "--vector", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "ignored by profile" in out

    def test_run_extension_kernel(self, capsys):
        assert main(["run", "stringmatch", "--target", "bank"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_run_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "bogus"])

    def test_run_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["run", "vecadd", "--target", "gpu"])

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "AMD EPYC 9124" in out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])

    def test_figure_12_name_resolution(self, capsys):
        # Exercise only the dispatch path cheaply via figure 6a at 1 rank
        # equivalence is covered elsewhere; here check the parse/dispatch.
        args = build_parser().parse_args(["figure", "6a"])
        assert args.figure == "6a"


class TestEngineFlags:
    def test_run_engine_defaults(self):
        args = build_parser().parse_args(["run", "vecadd"])
        assert args.jobs is None
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_suite_engine_flags(self):
        args = build_parser().parse_args(
            ["suite", "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache is True

    def test_figure_takes_jobs(self):
        args = build_parser().parse_args(["figure", "7", "--jobs", "2"])
        assert args.jobs == 2

    def test_warm_run_announces_cache_hit(self, capsys, tmp_path):
        cmd = ["run", "vecadd", "--cache-dir", str(tmp_path)]
        assert main(cmd) == 0
        cold = capsys.readouterr().out
        assert "persistent cache" not in cold
        assert main(cmd) == 0
        warm = capsys.readouterr().out
        assert "Result served from the persistent cache" in warm
        # The warm report is the same report, not a degraded summary.
        assert "PIM Command Stats" in warm

    def test_no_cache_suppresses_hit(self, capsys, tmp_path):
        cmd = ["run", "vecadd", "--cache-dir", str(tmp_path)]
        assert main(cmd) == 0
        capsys.readouterr()
        assert main(cmd + ["--no-cache"]) == 0
        assert "persistent cache" not in capsys.readouterr().out


class TestResilienceFlags:
    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args([
            "run", "vecadd", "--cell-timeout", "5",
            "--max-retries", "2", "--fail-fast",
        ])
        assert args.cell_timeout == 5.0
        assert args.max_retries == 2
        assert args.fail_fast is True

    def test_resilience_defaults_do_nothing(self):
        args = build_parser().parse_args(["suite"])
        assert args.cell_timeout is None
        assert args.max_retries is None
        assert args.fail_fast is False

    def test_bad_policy_is_a_clean_exit(self):
        with pytest.raises(SystemExit):
            main(["run", "vecadd", "--no-cache", "--max-retries", "-1"])

    def test_failed_cell_exits_nonzero_with_summary(self, capsys):
        # Paper-scale vecadd needs more rows than 4 ranks offer; the run
        # must degrade to a failure table on stderr and a non-zero exit,
        # not a traceback.
        rc = main(["run", "vecadd", "--no-cache", "--paper-scale",
                   "--ranks", "4"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "cell(s) failed" in err
        assert "PimAllocationError" in err


class TestCampaignCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.benchmarks == []
        assert args.seed == 0
        assert args.json is None

    def test_campaign_runs_and_reports(self, capsys, tmp_path):
        out_path = str(tmp_path / "campaign.json")
        rc = main(["campaign", "vecadd", "--seed", "7", "--json", out_path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault campaign (seed=7" in out
        assert "summary:" in out
        payload = json.load(open(out_path))
        assert payload["seed"] == 7
        assert len(payload["cells"]) == 4  # one per default fault config


class TestCacheSubcommand:
    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_info_empty(self, capsys, tmp_path):
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "Entries         : 0" in out

    def test_clear_removes_entries(self, capsys, tmp_path):
        assert main(["run", "vecadd", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "Entries         : 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "Removed 1 cached result(s)" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "Entries         : 0" in capsys.readouterr().out


class TestArchSubcommand:
    def test_arch_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["arch"])

    def test_list_shows_every_backend_with_table2_params(self, capsys):
        from repro.arch import iter_backends

        assert main(["arch", "list"]) == 0
        out = capsys.readouterr().out
        for backend in iter_backends():
            assert backend.id in out
        # Table II columns for the paper devices.
        assert "131,072" in out  # bit-serial cores at 32 ranks
        assert "vertical" in out
        assert "yes" in out  # AP support column

    def test_list_verbose_shows_stamp_sources(self, capsys):
        assert main(["arch", "list", "-v"]) == 0
        out = capsys.readouterr().out
        assert "perf/fulcrum.py" in out

    def test_run_accepts_device_alias_and_plugin_name(self, capsys):
        assert main(["run", "vecadd", "--device", "ddr5", "--ranks", "2"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_unknown_device_error_lists_registry_names(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "vecadd", "--device", "gpu"])
        message = str(exc_info.value)
        assert "gpu" in message
        assert "fulcrum" in message
        assert "ddr5-bank" in message
        assert "repro arch list" in message


class TestTelemetryReporting:
    def test_run_report_written(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["run", "vecadd", "--no-cache",
                     "--report", str(report_path)]) == 0
        assert "Run report written" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["schema"] == 1
        assert report["environment"]["python"]
        assert report["metrics"]["telemetry.cells"]["value"] >= 1.0
        assert any(c["benchmark"] == "vecadd" for c in report["cells"])
        # Metrics are snapshot in sorted-name order (byte-stable).
        names = list(report["metrics"])
        assert names == sorted(names)

    def test_profile_prints_memo_hit_rate(self, capsys):
        assert main(["profile", "vecadd", "--no-cache"]) == 0
        assert "Cost-memo hit rate" in capsys.readouterr().out

    def test_profile_openmetrics_exposition(self, capsys, tmp_path):
        path = tmp_path / "metrics.txt"
        assert main(["profile", "vecadd", "--no-cache",
                     "--openmetrics", str(path)]) == 0
        text = path.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_commands_issued_total" in text

    def test_suite_report_covers_every_cell(self, tmp_path):
        report_path = tmp_path / "suite.json"
        assert main(["suite", "--no-cache",
                     "--report", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        benchmarks = {c["benchmark"] for c in report["cells"]}
        assert "vecadd" in benchmarks and len(benchmarks) > 1

    def test_cache_info_reports_lifetime_usage(self, capsys, tmp_path):
        assert main(["run", "vecadd", "--cache-dir", str(tmp_path)]) == 0
        assert main(["run", "vecadd", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path), "-v"]) == 0
        out = capsys.readouterr().out
        assert "1 hits, 1 misses, 1 writes" in out
        assert "hit rate" in out
        assert "age" in out  # verbose per-entry table


class TestSelfbenchGate:
    def run_gate(self, tmp_path, baseline_cps, tolerance="0.25"):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema": 1,
            "runs": [{"run": "suite-cold", "wall_s": 1.0,
                      "commands_simulated": 1,
                      "commands_per_s": baseline_cps}],
        }))
        return main(["selfbench", "suite-cold", "--check",
                     "--baseline", str(baseline),
                     "--tolerance", tolerance])

    def test_check_passes_against_slow_baseline(self, capsys, tmp_path):
        assert self.run_gate(tmp_path, baseline_cps=1.0) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_fails_against_impossible_baseline(self, capsys, tmp_path):
        assert self.run_gate(tmp_path, baseline_cps=1e18) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_check_requires_baseline(self):
        with pytest.raises(SystemExit, match="--baseline"):
            main(["selfbench", "suite-cold", "--check"])

    def test_check_warns_and_passes_when_baseline_lacks_the_leg(
        self, capsys, tmp_path
    ):
        # A baseline archived before this leg existed cannot gate it:
        # --check must warn per missing leg and exit 0, not hard-fail.
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema": 1,
            "runs": [{"run": "some-other-leg", "wall_s": 1.0,
                      "commands_simulated": 1, "commands_per_s": 1.0}],
        }))
        assert main(["selfbench", "suite-cold", "--check",
                     "--baseline", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "no baseline entry for 'suite-cold'" in captured.err
        assert "no gate-able legs" in captured.out

    def test_history_appended(self, capsys, tmp_path):
        history = tmp_path / "history.jsonl"
        assert main(["selfbench", "suite-cold",
                     "--history", str(history)]) == 0
        (line,) = history.read_text().splitlines()
        entry = json.loads(line)
        assert entry["schema"] == 1
        assert entry["runs"][0]["run"] == "suite-cold"

    def test_check_warns_when_baseline_is_unversioned(self, capsys, tmp_path):
        # Satellite contract: a baseline without the schema field gets a
        # warning, never a failure -- the per-leg gate still runs.
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "runs": [{"run": "suite-cold", "wall_s": 9.0,
                      "commands_simulated": 9, "commands_per_s": 1.0}],
        }))
        assert main(["selfbench", "suite-cold", "--check",
                     "--baseline", str(baseline)]) == 0
        err = capsys.readouterr().err
        assert "no 'schema' version field" in err


class TestDseSubcommand:
    SPEC = {
        "name": "cli-unit",
        "base": "bank",
        "benchmarks": ["vecadd"],
        "num_ranks": 2,
        "axes": {"banks_per_rank": [32, 64]},
    }

    def _spec_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_dse_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse"])

    def test_list_enumerates_points_without_running(self, capsys, tmp_path):
        assert main(["dse", "list", "--spec", self._spec_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 design point(s)" in out
        assert "banks_per_rank=32" in out and "banks_per_rank=64" in out
        assert out.count("bank@") == 2

    def test_run_prints_frontier_and_writes_report(self, capsys, tmp_path):
        report = tmp_path / "frontier.json"
        assert main(["dse", "run", "--spec", self._spec_file(tmp_path),
                     "--no-cache", "--jobs", "1",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "Per-benchmark winners:" in out
        payload = json.loads(report.read_text())
        assert payload["schema"] == 1
        assert payload["num_points"] == 2
        assert payload["num_failed"] == 0
        assert payload["frontier"]

    def test_run_vector_check_probe_passes(self, capsys, tmp_path):
        assert main(["dse", "run", "--spec", self._spec_file(tmp_path),
                     "--no-cache", "--jobs", "1", "--vector-check"]) == 0
        assert "Vector check passed" in capsys.readouterr().out

    def test_frontier_reads_saved_report(self, capsys, tmp_path):
        report = tmp_path / "frontier.json"
        assert main(["dse", "run", "--spec", self._spec_file(tmp_path),
                     "--no-cache", "--report", str(report)]) == 0
        capsys.readouterr()
        assert main(["dse", "frontier", str(report)]) == 0
        out = capsys.readouterr().out
        assert "on the Pareto frontier" in out
        assert "latency_ns" in out

    def test_bad_spec_exits_with_coded_message(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "axes": {"warp": [1]}}))
        with pytest.raises(SystemExit, match="warp"):
            main(["dse", "run", "--spec", str(path)])

    def test_missing_report_exits_with_message(self):
        with pytest.raises(SystemExit, match="cannot read sweep report"):
            main(["dse", "frontier", "/nonexistent/frontier.json"])

    def test_arch_list_marks_transient_backends(self, capsys):
        from repro.arch import derive_backend, temporary_backend

        backend = derive_backend("bank", {"banks_per_rank": 64})
        with temporary_backend(backend):
            assert main(["arch", "list"]) == 0
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if l.startswith(backend.id))
        assert " * " in f" {line} " or line.split()[1] == "*"
        assert "bank" in line.split()  # origin column names the base
        assert "transient parametric backend" in out

    def test_arch_list_hides_transient_note_without_transients(self, capsys):
        assert main(["arch", "list"]) == 0
        out = capsys.readouterr().out
        assert "transient parametric backend" not in out
