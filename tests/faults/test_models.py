"""Tests for fault-model dataclasses and FaultPlan."""

import pickle

import pytest

from repro.faults import (
    BitFlipFault,
    DroppedCommandFault,
    FaultPlan,
    StuckBitFault,
    WorkerCrashFault,
    WorkerExceptionFault,
    WorkerHangFault,
)


class TestValidation:
    @pytest.mark.parametrize("factory", [
        lambda: StuckBitFault(bit=-1),
        lambda: StuckBitFault(value=2),
        lambda: BitFlipFault(rate=1.5),
        lambda: BitFlipFault(rate=-0.1),
        lambda: DroppedCommandFault(rate=2.0),
        lambda: WorkerExceptionFault(fail_attempts=0),
        lambda: WorkerHangFault(seconds=-1.0),
        lambda: WorkerCrashFault(fail_attempts=0),
    ])
    def test_rejects_bad_parameters(self, factory):
        with pytest.raises(ValueError):
            factory()

    def test_plan_rejects_non_fault_members(self):
        with pytest.raises(TypeError):
            FaultPlan(seed=0, faults=("stuck",))


class TestFaultPlan:
    def test_splits_device_and_engine_families(self):
        plan = FaultPlan(seed=3, faults=(
            StuckBitFault(bit=1),
            WorkerHangFault(seconds=1.0),
            BitFlipFault(rate=0.5),
            WorkerCrashFault(),
            DroppedCommandFault(rate=0.1),
            WorkerExceptionFault(),
        ))
        assert all(
            type(f) in (StuckBitFault, BitFlipFault, DroppedCommandFault)
            for f in plan.device_faults
        )
        assert len(plan.device_faults) == 3
        assert len(plan.engine_faults) == 3

    def test_plans_are_hashable_and_picklable(self):
        plan = FaultPlan(seed=7, faults=(StuckBitFault(bit=2, value=1),))
        assert hash(plan) == hash(
            FaultPlan(seed=7, faults=(StuckBitFault(bit=2, value=1),))
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_describe_names_everything(self):
        plan = FaultPlan(seed=9, faults=(BitFlipFault(rate=0.25),))
        text = plan.describe()
        assert "seed=9" in text
        assert "BitFlipFault" in text and "0.25" in text
        assert FaultPlan().describe() == "seed=0: no faults"
