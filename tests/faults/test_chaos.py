"""Chaos policy: seeded determinism and cache-key neutrality."""

from __future__ import annotations

import pytest

from repro.arch import resolve_backend
from repro.engine import CellSpec
from repro.engine.cache import cell_cache_key
from repro.faults.chaos import ChaosPolicy
from repro.faults.models import FaultPlan, WorkerCrashFault, WorkerHangFault


def _spec(**overrides) -> CellSpec:
    backend = resolve_backend("bank")
    fields = dict(
        benchmark_key="vecadd", device_type=backend.device_type,
        num_ranks=32, paper_scale=True, functional=False,
    )
    fields.update(overrides)
    return CellSpec(**fields)


class TestChaosPolicy:
    def test_inactive_by_default(self):
        assert ChaosPolicy().active is False
        assert ChaosPolicy(crash_rate=0.1).active is True
        assert ChaosPolicy(hang_rate=0.1).active is True

    @pytest.mark.parametrize("kwargs", [
        {"crash_rate": -0.1}, {"crash_rate": 1.1},
        {"hang_rate": 2.0}, {"hang_s": -1.0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ChaosPolicy(**kwargs)

    def test_schedule_is_deterministic(self):
        a = ChaosPolicy(seed=7, crash_rate=0.3, hang_rate=0.2)
        b = ChaosPolicy(seed=7, crash_rate=0.3, hang_rate=0.2)
        assert [a.plan_for(i) for i in range(50)] == [
            b.plan_for(i) for i in range(50)
        ]

    def test_different_seeds_differ(self):
        a = ChaosPolicy(seed=1, crash_rate=0.5)
        b = ChaosPolicy(seed=2, crash_rate=0.5)
        assert [a.plan_for(i) is not None for i in range(64)] != [
            b.plan_for(i) is not None for i in range(64)
        ]

    def test_rates_are_respected_at_extremes(self):
        always = ChaosPolicy(crash_rate=1.0)
        never = ChaosPolicy(crash_rate=0.0, hang_rate=0.0)
        for i in range(20):
            plan = always.plan_for(i)
            assert plan is not None
            assert isinstance(plan.faults[0], WorkerCrashFault)
            assert never.plan_for(i) is None

    def test_hang_uses_configured_seconds(self):
        policy = ChaosPolicy(hang_rate=1.0, hang_s=42.0)
        plan = policy.plan_for(0)
        assert isinstance(plan.faults[0], WorkerHangFault)
        assert plan.faults[0].seconds == 42.0

    def test_faults_fire_on_first_attempt_only(self):
        plan = ChaosPolicy(crash_rate=1.0).plan_for(3)
        assert plan.faults[0].fail_attempts == 1

    def test_decorate_preserves_cache_key_of_undecorated_spec(self):
        spec = _spec()
        key_before = cell_cache_key(spec)
        policy = ChaosPolicy(crash_rate=1.0)
        decorated = policy.decorate(spec, index=0)
        assert decorated is not spec
        assert decorated.fault_plan is not None
        # The undecorated spec's key is what the serve path caches by;
        # decoration must never mutate it.
        assert cell_cache_key(spec) == key_before

    def test_decorate_never_overrides_an_explicit_plan(self):
        explicit = FaultPlan(seed=1, faults=(WorkerHangFault(seconds=1.0),))
        spec = _spec(fault_plan=explicit)
        decorated = ChaosPolicy(crash_rate=1.0).decorate(spec, index=0)
        assert decorated.fault_plan is explicit

    def test_decorate_noop_when_no_fault_drawn(self):
        spec = _spec()
        assert ChaosPolicy().decorate(spec, index=0) is spec
