"""Tests for the seeded FaultInjector and its bit-twiddling helpers."""

import numpy as np
import pytest

from repro.config import fulcrum_config
from repro.core.device import PimDevice
from repro.faults import (
    BitFlipFault,
    DroppedCommandFault,
    FaultInjector,
    FaultPlan,
    StuckBitFault,
)
from repro.faults.injector import _flip_bit, _force_bit


def make_obj(device, n=64):
    obj = device.alloc(n)
    device.copy_host_to_device(np.arange(n, dtype=np.int32), obj)
    return obj


@pytest.fixture
def device():
    return PimDevice(fulcrum_config(2), functional=True)


class TestBitHelpers:
    def test_force_bit_sets_and_clears(self):
        data = np.zeros(4, dtype=np.int32)
        assert _force_bit(data, slice(0, 2), 3, 1)
        assert list(data) == [8, 8, 0, 0]
        assert _force_bit(data, slice(0, 4), 3, 0)
        assert list(data) == [0, 0, 0, 0]

    def test_force_bit_out_of_range_is_a_noop(self):
        data = np.zeros(4, dtype=np.int32)
        assert not _force_bit(data, slice(0, 4), 40, 1)
        assert not data.any()

    def test_force_bit_on_bools(self):
        data = np.zeros(4, dtype=np.bool_)
        assert _force_bit(data, slice(0, 2), 0, 1)
        assert list(data) == [True, True, False, False]
        assert not _force_bit(data, slice(0, 4), 1, 1)

    def test_flip_bit_inverts(self):
        data = np.array([0, 0], dtype=np.int32)
        assert _flip_bit(data, 1, 5)
        assert list(data) == [0, 32]
        assert _flip_bit(data, 1, 5)
        assert list(data) == [0, 0]
        assert not _flip_bit(data, 0, 99)


class TestStuckBits:
    def test_stuck_bit_corrupts_one_core_slice(self, device):
        obj = make_obj(device)
        injector = FaultInjector(
            FaultPlan(seed=0, faults=(StuckBitFault(bit=0, value=1, core=0),))
        )
        before = obj.data.copy()
        injector.apply_stuck(obj)
        per_core = obj.layout.elements_per_core
        assert (obj.data[:per_core] & 1 == 1).all()
        assert (obj.data[per_core:] == before[per_core:]).all()
        assert injector.injected["stuck_bit"] == 1

    def test_core_choice_is_seed_stable(self, device):
        plan = FaultPlan(seed=11, faults=(StuckBitFault(bit=2, value=1),))
        first = make_obj(device)
        second = make_obj(device)
        FaultInjector(plan).apply_stuck(first)
        FaultInjector(plan).apply_stuck(second)
        assert (first.data == second.data).all()


class TestBitFlips:
    def test_flips_follow_the_seeded_stream(self, device):
        plan = FaultPlan(seed=5, faults=(BitFlipFault(rate=0.5),))
        first = make_obj(device)
        second = make_obj(device)
        a, b = FaultInjector(plan), FaultInjector(plan)
        a.apply_flips(first, activations=50.0)
        b.apply_flips(second, activations=50.0)
        assert a.injected["bit_flip"] > 0
        assert a.injected == b.injected
        assert (first.data == second.data).all()

    def test_zero_activations_inject_nothing(self, device):
        injector = FaultInjector(
            FaultPlan(seed=5, faults=(BitFlipFault(rate=1.0),))
        )
        obj = make_obj(device)
        injector.apply_flips(obj, activations=0.0)
        assert injector.injected["bit_flip"] == 0


class TestDroppedCommands:
    def test_certain_drop(self):
        injector = FaultInjector(
            FaultPlan(seed=0, faults=(DroppedCommandFault(rate=1.0),))
        )
        assert injector.drops_command("add")
        assert injector.injected["dropped_command"] == 1

    def test_never_drops_at_rate_zero(self):
        injector = FaultInjector(
            FaultPlan(seed=0, faults=(DroppedCommandFault(rate=0.0),))
        )
        assert not any(injector.drops_command("add") for _ in range(50))

    def test_drop_sequence_is_deterministic(self):
        plan = FaultPlan(seed=21, faults=(DroppedCommandFault(rate=0.5),))
        a, b = FaultInjector(plan), FaultInjector(plan)
        drops_a = [a.drops_command("add") for _ in range(40)]
        drops_b = [b.drops_command("add") for _ in range(40)]
        assert drops_a == drops_b
        assert True in drops_a and False in drops_a


class TestDeviceWiring:
    def test_device_wraps_a_plan_into_an_injector(self):
        plan = FaultPlan(seed=0, faults=(StuckBitFault(bit=0, value=1),))
        device = PimDevice(fulcrum_config(2), functional=True, faults=plan)
        assert isinstance(device.faults, FaultInjector)

    def test_install_hook_fires_on_host_copy(self):
        plan = FaultPlan(seed=0, faults=(StuckBitFault(bit=0, value=1, core=0),))
        device = PimDevice(fulcrum_config(2), functional=True, faults=plan)
        obj = device.alloc(64)
        device.copy_host_to_device(np.zeros(64, dtype=np.int32), obj)
        assert obj.data[0] == 1  # bit 0 stuck high on core 0
        assert device.faults.injected["stuck_bit"] >= 1

    def test_analytic_devices_carry_no_data_to_corrupt(self):
        plan = FaultPlan(seed=0, faults=(BitFlipFault(rate=1.0),))
        device = PimDevice(fulcrum_config(2), functional=False, faults=plan)
        obj = device.alloc(64)
        device.copy_host_to_device(np.zeros(64, dtype=np.int32), obj)
        assert device.faults.injected["bit_flip"] == 0
