"""Tests for FaultCampaign sweeps, grading, and reproducibility."""

import json
import types

import pytest

from repro.faults import (
    BitFlipFault,
    CampaignCell,
    CampaignReport,
    FaultCampaign,
    StuckBitFault,
)

#: A small sweep that still hits the detected / clean / masked space.
SWEEP = (
    (StuckBitFault(bit=3, value=1),),
    (BitFlipFault(rate=1e-3),),
)


class TestSweepConstruction:
    def test_one_cell_per_pair_with_distinct_seeds(self):
        campaign = FaultCampaign(
            benchmarks=("vecadd", "axpy"), fault_configs=SWEEP, seed=7
        )
        specs = campaign.specs()
        assert len(specs) == 4
        seeds = [spec.fault_plan.seed for spec in specs]
        assert len(set(seeds)) == 4
        assert seeds[0] == 7 * 1_000_003
        assert all(spec.functional for spec in specs)

    def test_rejects_empty_sweeps(self):
        with pytest.raises(ValueError):
            FaultCampaign(benchmarks=())
        with pytest.raises(ValueError):
            FaultCampaign(fault_configs=())


class TestGrading:
    @staticmethod
    def outcome(error=None, injected=(), verified=None):
        result = None
        if verified is not None:
            result = types.SimpleNamespace(verified=verified)
        return types.SimpleNamespace(
            error=error, faults_injected=injected, result=result
        )

    def test_detected_beats_everything_but_a_crash(self):
        grade, _ = FaultCampaign.grade_cell(
            self.outcome(injected=(("stuck_bit", 1),), verified=False)
        )
        assert grade == "detected"

    def test_masked_is_injected_but_verified(self):
        grade, _ = FaultCampaign.grade_cell(
            self.outcome(injected=(("bit_flip", 2),), verified=True)
        )
        assert grade == "masked"

    def test_clean_is_zero_injections(self):
        grade, _ = FaultCampaign.grade_cell(
            self.outcome(injected=(("bit_flip", 0),), verified=True)
        )
        assert grade == "clean"

    def test_crashed_carries_the_failure_brief(self):
        failure = types.SimpleNamespace(brief=lambda: "it broke")
        grade, brief = FaultCampaign.grade_cell(self.outcome(error=failure))
        assert grade == "crashed"
        assert brief == "it broke"


class TestCampaignRuns:
    def test_reproducible_and_detects_stuck_bits(self):
        # The acceptance criteria: a sweep over >= 3 benchmarks is
        # byte-for-byte reproducible across runs and job counts, and at
        # least one stuck-at fault is caught by verification mismatch.
        campaign = FaultCampaign(fault_configs=SWEEP, seed=42)
        assert len(campaign.benchmarks) >= 3
        serial = campaign.run()
        parallel = campaign.run(jobs=2)
        assert serial.to_json() == parallel.to_json()
        stuck_grades = [
            cell.grade for cell in serial.cells if "StuckBitFault" in cell.fault
        ]
        assert "detected" in stuck_grades
        assert serial.grades()["crashed"] == 0

    def test_report_round_trips_as_json(self):
        report = FaultCampaign(
            benchmarks=("vecadd",), fault_configs=SWEEP, seed=1
        ).run()
        payload = json.loads(report.to_json())
        assert payload["seed"] == 1
        assert len(payload["cells"]) == 2
        assert sum(payload["grades"].values()) == 2


class TestReportFormatting:
    def test_table_and_masked_warning(self):
        report = CampaignReport(seed=3, cells=[
            CampaignCell(
                benchmark="vecadd", fault="StuckBitFault(bit=3)", seed=9,
                grade="detected", injected=(("stuck_bit", 4),), verified=False,
            ),
            CampaignCell(
                benchmark="axpy", fault="BitFlipFault(rate=0.001)", seed=10,
                grade="masked", injected=(("bit_flip", 1),), verified=True,
            ),
        ])
        text = report.format()
        assert "seed=3" in text and "2 cells" in text
        assert "vecadd" in text and "detected" in text
        assert "summary: detected=1, masked=1, clean=0, crashed=0" in text
        assert "WARNING" in text and "silent data corruption" in text
        assert report.silent_corruptions[0].benchmark == "axpy"

    def test_no_warning_when_nothing_masked(self):
        report = CampaignReport(seed=0, cells=[
            CampaignCell(
                benchmark="vecadd", fault="f", seed=0, grade="clean",
                injected=(), verified=True,
            ),
        ])
        assert "WARNING" not in report.format()
        assert report.cells[0].total_injected == 0
