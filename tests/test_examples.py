"""Smoke tests: every shipped example runs successfully.

The fast examples run in-process; the long evaluation runner is checked
for importability only (benchmarks/ exercises its content).
"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/database_analytics.py",
    "examples/image_pipeline.py",
    "examples/extending_pimbench.py",
    "examples/trace_replay.py",
    "examples/profile_suite.py",
    "examples/obs_overhead.py",
]


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.split("/")[-1])
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "FAILED" not in out
    assert len(out) > 100  # every example reports something substantial


def test_quickstart_verifies(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "PASSED" in out
    assert "scaled_add.int32.h" in out


def test_long_examples_importable():
    import importlib.util
    for path in ("examples/full_evaluation.py",
                 "examples/design_space_exploration.py"):
        spec = importlib.util.spec_from_file_location("example_mod", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # import only; main() not called
        assert hasattr(module, "main")
