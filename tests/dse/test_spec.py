"""Sweep specs: validation, compilation order, dedupe, and the ceiling."""

import json

import pytest

from repro.core.errors import PimConfigError, PimStatus
from repro.dse import DEFAULT_MAX_POINTS, MAX_POINTS_ENV, SweepSpec, max_points


def _spec(**overrides):
    raw = {
        "name": "t",
        "base": "bank",
        "benchmarks": ["vecadd"],
        "num_ranks": 2,
        "axes": {"banks_per_rank": [32, 64]},
    }
    raw.update(overrides)
    return raw


class TestValidation:
    def test_minimal_spec_parses(self):
        spec = SweepSpec.from_dict(_spec())
        assert spec.bases == ("bank",)
        assert spec.benchmarks == ("vecadd",)
        assert spec.axes == (("banks_per_rank", (32, 64)),)

    @pytest.mark.parametrize("mutation,needle", [
        ({"volume": 11}, "volume"),                       # unknown key
        ({"axes": {"warp": [1]}}, "warp"),                # unknown knob
        ({"axes": {"banks_per_rank": []}}, "no values"),  # empty axis
        ({"axes": {}, "points": []}, "zero design"),      # nothing to run
        ({"num_ranks": 0}, "num_ranks"),
        ({"num_ranks": "four"}, "num_ranks"),
        ({"bases": "bank"}, "bases"),                     # string, not list
        ({"benchmarks": "vecadd"}, "benchmarks"),
        ({"axes": {"banks_per_rank": 32}}, "banks_per_rank"),
        ({"points": [42]}, "points[0]"),
    ])
    def test_bad_specs_raise_coded_errors(self, mutation, needle):
        raw = _spec()
        raw.update(mutation)
        with pytest.raises(PimConfigError) as exc_info:
            SweepSpec.from_dict(raw)
        assert exc_info.value.status is PimStatus.ERR_CONFIG
        assert needle in str(exc_info.value)

    def test_base_and_bases_are_exclusive(self):
        raw = _spec()
        raw["bases"] = ["bank"]
        with pytest.raises(PimConfigError):
            SweepSpec.from_dict(raw)

    def test_invalid_json_is_coded(self):
        with pytest.raises(PimConfigError):
            SweepSpec.from_json("{not json")

    def test_missing_file_is_coded(self, tmp_path):
        with pytest.raises(PimConfigError) as exc_info:
            SweepSpec.from_file(tmp_path / "nope.json")
        assert "nope.json" in str(exc_info.value)

    def test_from_file_round_trips(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_spec()))
        spec = SweepSpec.from_file(path)
        assert spec.to_dict()["axes"] == {"banks_per_rank": [32, 64]}


class TestCompilation:
    def test_grid_is_row_major_in_declared_order(self):
        spec = SweepSpec.from_dict(_spec(axes={
            "banks_per_rank": [32, 64],
            "pe_width_bits": [64, 128],
        }))
        points = spec.compile_points()
        assert len(points) == 4
        dicts = [p.knobs_dict() for p in points]
        assert dicts[0] == {"banks_per_rank": 32, "bank_alu_bits": 64}
        assert dicts[1] == {"banks_per_rank": 32, "bank_alu_bits": 128}
        assert dicts[2] == {"banks_per_rank": 64, "bank_alu_bits": 64}
        assert dicts[3] == {"banks_per_rank": 64, "bank_alu_bits": 128}

    def test_compilation_is_deterministic(self):
        raw = _spec(axes={
            "banks_per_rank": [32, 64], "pe_freq_mhz": [164, 250],
        })
        first = SweepSpec.from_dict(raw).compile_points()
        second = SweepSpec.from_dict(raw).compile_points()
        assert first == second
        assert [p.point_id for p in first] == [p.point_id for p in second]

    def test_duplicate_points_collapse(self):
        spec = SweepSpec.from_dict(_spec(
            axes={"pe_width_bits": [128]},
            points=[{"bank_alu_bits": 128}, {"bank_alu_bits": 128.0}],
        ))
        points = spec.compile_points()
        assert len(points) == 1

    def test_explicit_points_append_after_grid(self):
        spec = SweepSpec.from_dict(_spec(
            points=[{"gdl_width_bits": 256}],
        ))
        points = spec.compile_points()
        assert len(points) == 3
        assert points[-1].knobs_dict() == {"gdl_width_bits": 256}

    def test_multi_base_fans_out_per_base(self):
        raw = _spec()
        del raw["base"]
        raw["bases"] = ["bank", "fulcrum"]
        points = SweepSpec.from_dict(raw).compile_points()
        assert [p.base for p in points] == ["bank", "bank",
                                            "fulcrum", "fulcrum"]

    def test_unknown_base_raises_at_compile(self):
        spec = SweepSpec.from_dict(_spec(base="hal9000"))
        with pytest.raises(PimConfigError):
            spec.compile_points()

    def test_point_id_matches_derived_backend_id(self):
        from repro.arch import derive_backend

        point = SweepSpec.from_dict(_spec()).compile_points()[0]
        backend = derive_backend(point.base, point.knobs_dict())
        assert backend.id == point.point_id


class TestCeiling:
    def test_default_ceiling(self, monkeypatch):
        monkeypatch.delenv(MAX_POINTS_ENV, raising=False)
        assert max_points() == DEFAULT_MAX_POINTS

    def test_env_override_and_bad_value(self, monkeypatch):
        monkeypatch.setenv(MAX_POINTS_ENV, "10")
        assert max_points() == 10
        monkeypatch.setenv(MAX_POINTS_ENV, "zero")
        with pytest.raises(PimConfigError):
            max_points()

    def test_over_ceiling_raises_before_derivation(self, monkeypatch):
        monkeypatch.setenv(MAX_POINTS_ENV, "3")
        spec = SweepSpec.from_dict(_spec(axes={
            "banks_per_rank": [16, 32, 64, 128],
        }))
        with pytest.raises(PimConfigError) as exc_info:
            spec.compile_points()
        assert "ceiling" in str(exc_info.value)
        assert exc_info.value.context["points"] == 4
