"""Pareto extraction: domination, ties, and order preservation."""

import random

from repro.dse import ParetoPoint, dominates, pareto_frontier
from repro.dse.pareto import _pairwise_frontier


def _p(key, latency, energy, area):
    return ParetoPoint(
        key=key, latency_ns=latency, energy_nj=energy, area_proxy=area
    )


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1, 1), (2, 2, 2))

    def test_better_on_one_equal_elsewhere(self):
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1, 1), (1, 1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3, 1), (2, 2, 2))
        assert not dominates((2, 2, 2), (1, 3, 1))


class TestFrontier:
    def test_dominated_points_removed(self):
        points = [
            _p("slow-fat", 10, 10, 10),
            _p("best", 1, 1, 1),
            _p("tradeoff", 2, 0.5, 5),
        ]
        frontier = pareto_frontier(points)
        assert [p.key for p in frontier] == ["best", "tradeoff"]

    def test_input_order_preserved(self):
        points = [
            _p("c", 3, 1, 1), _p("a", 1, 3, 1), _p("b", 2, 2, 1),
        ]
        assert [p.key for p in pareto_frontier(points)] == ["c", "a", "b"]

    def test_duplicate_objective_vectors_all_survive(self):
        points = [_p("x", 1, 1, 1), _p("y", 1, 1, 1), _p("z", 5, 5, 5)]
        assert [p.key for p in pareto_frontier(points)] == ["x", "y"]

    def test_single_and_empty(self):
        assert pareto_frontier([]) == ()
        only = _p("solo", 1, 2, 3)
        assert pareto_frontier([only]) == (only,)


class TestSweepMatchesPairwiseOracle:
    """The O(n log n) staircase sweep against the retired O(n^2) scan.

    Small coordinate alphabets force the hard cases -- equal objective
    tuples, ties on one axis, staircase columns covering each other --
    far more often than uniform floats would.
    """

    def _random_points(self, rng, count, alphabet):
        return [
            _p(
                f"p{i}",
                rng.choice(alphabet),
                rng.choice(alphabet),
                rng.choice(alphabet),
            )
            for i in range(count)
        ]

    def test_identical_tuple_for_random_inputs(self):
        rng = random.Random(20260808)
        for trial in range(200):
            count = rng.randrange(0, 25)
            alphabet = [1.0, 2.0, 3.0, 4.0] if trial % 2 else [1.0, 2.0]
            points = self._random_points(rng, count, alphabet)
            assert pareto_frontier(points) == _pairwise_frontier(points)

    def test_all_duplicates_survive(self):
        points = [_p(f"d{i}", 2.0, 2.0, 2.0) for i in range(5)]
        assert pareto_frontier(points) == tuple(points)
        assert _pairwise_frontier(points) == tuple(points)
