"""Pareto extraction: domination, ties, and order preservation."""

from repro.dse import ParetoPoint, dominates, pareto_frontier


def _p(key, latency, energy, area):
    return ParetoPoint(
        key=key, latency_ns=latency, energy_nj=energy, area_proxy=area
    )


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1, 1), (2, 2, 2))

    def test_better_on_one_equal_elsewhere(self):
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1, 1), (1, 1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3, 1), (2, 2, 2))
        assert not dominates((2, 2, 2), (1, 3, 1))


class TestFrontier:
    def test_dominated_points_removed(self):
        points = [
            _p("slow-fat", 10, 10, 10),
            _p("best", 1, 1, 1),
            _p("tradeoff", 2, 0.5, 5),
        ]
        frontier = pareto_frontier(points)
        assert [p.key for p in frontier] == ["best", "tradeoff"]

    def test_input_order_preserved(self):
        points = [
            _p("c", 3, 1, 1), _p("a", 1, 3, 1), _p("b", 2, 2, 1),
        ]
        assert [p.key for p in pareto_frontier(points)] == ["c", "a", "b"]

    def test_duplicate_objective_vectors_all_survive(self):
        points = [_p("x", 1, 1, 1), _p("y", 1, 1, 1), _p("z", 5, 5, 5)]
        assert [p.key for p in pareto_frontier(points)] == ["x", "y"]

    def test_single_and_empty(self):
        assert pareto_frontier([]) == ()
        only = _p("solo", 1, 2, 3)
        assert pareto_frontier([only]) == (only,)
