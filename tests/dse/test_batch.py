"""The sweep-level matrix pricer: grouping, identity, fallback, cache.

Every sweep here is tiny (a handful of bank-level points, paper gemv or
vecadd) so the file runs in seconds; the 540-point scale path is the
selfbench ``dse-sweep-cold-batched`` leg's job.  The load-bearing
assertions are the *byte*-identity ones: the batched path is only
allowed to exist because nothing downstream can tell it ran.
"""

import json
import pickle

import pytest

from repro.dse import SweepSpec, render_json, run_sweep, sweep_payload
from repro.dse.batch import (
    BATCH_CHECK_ENV,
    NO_BATCH_ENV,
    batch_eligible,
    batching_disabled,
)
from repro.engine.cells import CellSpec
from repro.obs.metrics import global_registry

_RAW = {
    "name": "batch-unit",
    "base": "bank",
    "benchmarks": ["vecadd"],
    "num_ranks": 2,
    "axes": {"pe_freq_mhz": [200, 300, 400]},
}


def _spec(**overrides) -> SweepSpec:
    raw = dict(_RAW)
    raw.update(overrides)
    return SweepSpec.from_dict(raw)


def _run(spec=None, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("use_cache", False)
    return run_sweep(spec or _spec(), **kwargs)


class TestGrouping:
    def test_cost_only_knobs_share_one_plan(self):
        """Three clocks over one geometry compile exactly one plan."""
        result = _run()
        assert result.batched_cells == 3
        assert result.plan_misses == 1
        assert result.plan_hits == 0

    def test_geometry_knobs_split_plans(self):
        """Each banks_per_rank value is its own geometry group."""
        spec = _spec(axes={
            "banks_per_rank": [32, 64],
            "pe_freq_mhz": [200, 300],
        })
        result = _run(spec)
        assert result.batched_cells == 4
        assert result.plan_misses == 2

    def test_registry_counters_match_report(self):
        registry = global_registry()
        before = {
            name: registry.value(f"plan_cache.{name}")
            for name in ("hits", "misses")
        }
        result = _run()
        assert (
            registry.value("plan_cache.misses") - before["misses"]
            == result.plan_misses
        )
        assert (
            registry.value("plan_cache.hits") - before["hits"]
            == result.plan_hits
        )

    def test_points_per_s_positive_when_timed(self):
        result = _run()
        assert result.wall_s > 0
        assert result.points_per_s == pytest.approx(
            len(result.outcomes) / result.wall_s
        )


class TestEligibility:
    def test_analytic_vector_cell_is_eligible(self):
        spec = CellSpec("vecadd", object(), vector=True)
        assert batch_eligible(spec)

    def test_scalar_functional_and_fault_cells_are_not(self):
        assert not batch_eligible(CellSpec("vecadd", object(), vector=False))
        assert not batch_eligible(
            CellSpec("vecadd", object(), functional=True, vector=True)
        )
        assert not batch_eligible(
            CellSpec("vecadd", object(), fault_plan="fp", vector=True)
        )


class TestIdentity:
    def test_report_byte_identical_to_per_cell(self, monkeypatch):
        spec = _spec(benchmarks=["vecadd", "gemv"])
        batched = _run(spec)
        assert batched.batched_cells == 6
        monkeypatch.setenv(NO_BATCH_ENV, "1")
        per_cell = _run(spec)
        assert per_cell.batched_cells == 0
        assert render_json(sweep_payload(batched)) == render_json(
            sweep_payload(per_cell)
        )

    def test_batch_check_gate_passes(self, monkeypatch):
        monkeypatch.setenv(BATCH_CHECK_ENV, "1")
        result = _run()
        assert result.batched_cells == 3

    def test_synthesized_telemetry_flags(self):
        from repro.obs.telemetry import telemetry_log

        log_before = len(telemetry_log())
        result = _run()
        fresh = telemetry_log()[log_before:]
        assert len(fresh) == result.batched_cells
        for telemetry in fresh:
            assert telemetry.batched
            assert telemetry.vector
            assert not telemetry.from_cache
            assert telemetry.commands_simulated > 0
            # A batched pipeline prices each distinct shape exactly
            # once -- zero memo traffic is the truthful report.
            assert telemetry.memo_lookups == 0


class TestFallback:
    def test_no_batch_env_forces_per_cell(self, monkeypatch):
        monkeypatch.setenv(NO_BATCH_ENV, "1")
        assert batching_disabled()
        result = _run()
        assert result.batched_cells == 0
        assert result.plan_misses == 0
        assert all(not o.failed for o in result.outcomes)

    def test_scalar_sweep_never_batches(self):
        result = _run(vector=False)
        assert result.batched_cells == 0

    def test_batched_kwarg_opts_out(self):
        result = _run(batched=False)
        assert result.batched_cells == 0
        assert all(not o.failed for o in result.outcomes)


class TestCaching:
    def test_warm_run_serves_batched_entries_from_disk(self, tmp_path):
        spec = _spec()
        cold = _run(spec, use_cache=True, cache_dir=tmp_path)
        warm = _run(spec, use_cache=True, cache_dir=tmp_path)
        assert cold.batched_cells == 3 and cold.cache_hits == 0
        assert warm.cache_hits == 3 and warm.batched_cells == 0
        assert render_json(sweep_payload(cold)) == render_json(
            sweep_payload(warm)
        )

    def test_per_cell_path_reads_batched_cache_entries(
        self, tmp_path, monkeypatch
    ):
        """Synthesized outcomes are cached under the normal cell keys."""
        spec = _spec()
        cold = _run(spec, use_cache=True, cache_dir=tmp_path)
        monkeypatch.setenv(NO_BATCH_ENV, "1")
        warm = _run(spec, use_cache=True, cache_dir=tmp_path)
        assert cold.batched_cells == 3
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert render_json(sweep_payload(cold)) == render_json(
            sweep_payload(warm)
        )


class TestCellSpecHash:
    def test_hash_is_cached_and_stable(self):
        spec = CellSpec("vecadd", object(), vector=True)
        first = hash(spec)
        assert spec.__dict__["_hash"] == first
        assert hash(spec) == first

    def test_pickle_drops_cached_hash(self):
        """String hashes are salted per process; a cached hash pickled
        into a worker would corrupt its dict lookups."""
        from repro.config.device import PimDeviceType

        spec = CellSpec("vecadd", PimDeviceType.BANK_LEVEL, vector=True)
        hash(spec)
        clone = pickle.loads(pickle.dumps(spec))
        assert "_hash" not in clone.__dict__
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone in {spec: True}
