"""run_sweep end to end: hygiene, determinism, metrics, and reports.

The sweeps here are deliberately tiny (two bank-level points, paper
vecadd) so the whole file runs in seconds; the 1000-point scale path is
exercised by the CLI smoke and the acceptance sweep, not the unit
suite.
"""

import pytest

from repro.arch import iter_backends, resolve_backend
from repro.dse import (
    PointMetrics,
    PointOutcome,
    SweepResult,
    SweepSpec,
    area_proxy,
    benchmark_classes,
    benchmark_winners,
    class_winners,
    format_sweep,
    pe_width_bits,
    render_json,
    run_sweep,
    sweep_payload,
    vector_check_point,
)

_RAW = {
    "name": "unit",
    "base": "bank",
    "benchmarks": ["vecadd"],
    "num_ranks": 2,
    "axes": {"banks_per_rank": [32, 64]},
}


def _spec(**overrides) -> SweepSpec:
    raw = dict(_RAW)
    raw.update(overrides)
    return SweepSpec.from_dict(raw)


@pytest.fixture(scope="module")
def swept():
    """One evaluated two-point sweep, shared by the read-only tests."""
    return run_sweep(_spec(), jobs=1, use_cache=False)


class TestExecution:
    def test_registry_size_unchanged_after_sweep(self):
        before = len(iter_backends())
        run_sweep(_spec(), jobs=1, use_cache=False)
        assert len(iter_backends()) == before

    def test_every_point_succeeds_with_metrics(self, swept):
        assert len(swept.outcomes) == 2
        for outcome in swept.outcomes:
            assert not outcome.failed
            assert outcome.metrics.latency_ns > 0
            assert outcome.metrics.energy_nj > 0
            assert outcome.metrics.area_proxy > 0
            assert set(outcome.per_benchmark) == {"vecadd"}

    def test_sample_results_and_commands(self, swept):
        assert set(swept.sample_results) == {"vecadd"}
        assert swept.total_commands() > 0

    def test_frontier_is_subset_of_points(self, swept):
        ids = {o.point.point_id for o in swept.outcomes}
        assert swept.frontier_ids
        assert set(swept.frontier_ids) <= ids
        assert [o.point.point_id for o in swept.frontier] == list(
            swept.frontier_ids
        )

    def test_more_banks_is_faster_but_fatter(self, swept):
        small, big = swept.outcomes
        assert big.metrics.latency_ns < small.metrics.latency_ns
        assert big.metrics.area_proxy > small.metrics.area_proxy
        # A genuine trade-off: both designs survive to the frontier.
        assert len(swept.frontier_ids) == 2

    def test_vector_and_scalar_metrics_agree(self, swept):
        scalar = run_sweep(_spec(), jobs=1, use_cache=False, vector=False)
        for v, s in zip(swept.outcomes, scalar.outcomes):
            assert v.metrics == s.metrics

    def test_report_byte_identical_across_jobs(self):
        one = run_sweep(_spec(), jobs=1, use_cache=False)
        two = run_sweep(_spec(), jobs=2, use_cache=False)
        assert render_json(sweep_payload(one)) == render_json(
            sweep_payload(two)
        )

    def test_vector_check_point_is_stable_middle(self):
        spec = _spec(axes={"banks_per_rank": [16, 32, 64]})
        probe = vector_check_point(spec)
        assert probe == vector_check_point(spec)
        assert probe == spec.compile_points()[1]


class TestAreaProxy:
    def test_bank_scope_uses_alu_width(self):
        config = resolve_backend("bank").make_config(num_ranks=2)
        assert pe_width_bits(config) == config.arch.bank_alu_bits
        expected = config.dram.geometry.num_banks * config.arch.bank_alu_bits
        assert area_proxy(config) == float(expected)

    def test_subarray_group_scope_uses_fulcrum_width(self):
        config = resolve_backend("fulcrum").make_config(num_ranks=2)
        assert pe_width_bits(config) == config.arch.fulcrum_alu_bits

    def test_bit_serial_scope_uses_subarray_columns(self):
        config = resolve_backend("bitserial").make_config(num_ranks=2)
        assert pe_width_bits(config) == config.dram.geometry.cols_per_subarray


def _failed_result(swept: SweepResult) -> SweepResult:
    """The swept fixture plus one synthetic failed point."""
    from repro.dse import SweepPoint

    point = SweepPoint(base="bank", knobs=(("banks_per_rank", 128),))
    bad = PointOutcome(
        point=point, backend_id=point.point_id,
        metrics=None, per_benchmark={},
        errors={"vecadd": "ERR_CONFIG: synthetic failure"},
    )
    return SweepResult(
        spec=swept.spec,
        outcomes=list(swept.outcomes) + [bad],
        frontier_ids=swept.frontier_ids,
        cache_hits=swept.cache_hits,
        cache_misses=swept.cache_misses,
        jobs=swept.jobs,
        sample_results=swept.sample_results,
    )


class TestReport:
    def test_payload_shape(self, swept):
        payload = sweep_payload(swept)
        assert payload["schema"] == 1
        assert payload["num_points"] == 2
        assert payload["num_failed"] == 0
        assert payload["spec"] == swept.spec.to_dict()
        assert payload["frontier"] == list(swept.frontier_ids)
        for entry in payload["points"]:
            assert entry["failed"] is False
            assert "metrics" in entry and "errors" not in entry
            assert entry["on_frontier"] == (
                entry["id"] in swept.frontier_ids
            )

    def test_failed_point_reported_not_fronted(self, swept):
        payload = sweep_payload(_failed_result(swept))
        assert payload["num_failed"] == 1
        entry = payload["points"][-1]
        assert entry["failed"] is True
        assert "metrics" not in entry
        assert entry["errors"] == {"vecadd": "ERR_CONFIG: synthetic failure"}
        assert entry["on_frontier"] is False

    def test_format_sweep_lists_failures(self, swept):
        text = format_sweep(_failed_result(swept))
        assert "Failed points (1):" in text
        assert "synthetic failure" in text

    def test_benchmark_winners(self, swept):
        winners = benchmark_winners(swept)
        ids = {o.point.point_id for o in swept.outcomes}
        row = winners["vecadd"]
        assert row["fastest"]["id"] in ids
        assert row["most_efficient"]["id"] in ids
        assert row["fastest"]["base"] == "bank"

    def test_failed_points_never_win(self, swept):
        assert benchmark_winners(_failed_result(swept)) == benchmark_winners(
            swept
        )

    def test_single_benchmark_classes_trivially(self, swept):
        assert benchmark_classes(swept) == {"vecadd": 1}
        winners = class_winners(swept)
        assert set(winners) == {"class-1"}
        assert winners["class-1"]["benchmarks"] == ["vecadd"]
        assert winners["class-1"]["winning_base"] == "bank"

    def test_multi_benchmark_class_winners(self):
        spec = _spec(benchmarks=["vecadd", "gemv"])
        result = run_sweep(spec, jobs=1, use_cache=False)
        classes = benchmark_classes(result)
        assert set(classes) == {"vecadd", "gemv"}
        winners = class_winners(result)
        assert winners
        covered = set()
        for row in winners.values():
            assert row["winning_base"] == "bank"
            assert row["gmean_latency_ns"] > 0
            covered.update(row["benchmarks"])
        assert covered == {"vecadd", "gemv"}

    def test_render_json_is_sorted_and_newline_terminated(self, swept):
        text = render_json(sweep_payload(swept))
        assert text.endswith("}\n")
        assert text.index('"frontier"') < text.index('"points"')


class TestCaching:
    def test_second_run_is_all_hits(self, tmp_path):
        spec = _spec()
        cold = run_sweep(spec, jobs=1, cache_dir=tmp_path)
        warm = run_sweep(spec, jobs=1, cache_dir=tmp_path)
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.metrics == b.metrics
        assert isinstance(warm.outcomes[0].metrics, PointMetrics)
