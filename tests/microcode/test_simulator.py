"""Tests for the functional bit-slice simulator."""

import numpy as np
import pytest

from repro.microcode.assembler import Assembler
from repro.microcode.simulator import BitSliceSimulator


class TestVerticalEncoding:
    def test_roundtrip_signed(self, rng):
        sim = BitSliceSimulator(num_rows=8, num_lanes=32)
        values = rng.integers(-128, 128, 32)
        sim.store_vertical(0, values, 8)
        assert np.array_equal(sim.load_vertical(0, 8, signed=True), values)

    def test_roundtrip_unsigned(self, rng):
        sim = BitSliceSimulator(num_rows=8, num_lanes=32)
        values = rng.integers(0, 256, 32)
        sim.store_vertical(0, values, 8)
        assert np.array_equal(sim.load_vertical(0, 8, signed=False), values)

    def test_bit_layout_lsb_first(self):
        sim = BitSliceSimulator(num_rows=4, num_lanes=1)
        sim.store_vertical(0, np.array([0b1010]), 4)
        assert not sim.rows[0, 0]  # bit 0
        assert sim.rows[1, 0]  # bit 1
        assert not sim.rows[2, 0]
        assert sim.rows[3, 0]

    def test_wrong_shape_rejected(self):
        sim = BitSliceSimulator(num_rows=4, num_lanes=4)
        with pytest.raises(ValueError):
            sim.store_vertical(0, np.zeros(5), 4)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            BitSliceSimulator(num_rows=0, num_lanes=4)


class TestExecution:
    def test_registers_apply_lane_wide(self):
        sim = BitSliceSimulator(num_rows=2, num_lanes=8)
        sim.rows[0] = np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=bool)
        asm = Assembler("t")
        asm.read("SA", 0).not_("SA", "SA").write("SA", 1)
        sim.execute(asm.done())
        assert np.array_equal(sim.rows[1], ~sim.rows[0])

    def test_sel_muxes_per_lane(self):
        sim = BitSliceSimulator(num_rows=1, num_lanes=4)
        sim.registers["R0"] = np.array([True, False, True, False])  # cond
        sim.registers["R1"] = np.array([True] * 4)
        sim.registers["R2"] = np.array([False] * 4)
        asm = Assembler("t")
        asm.sel("R3", "R0", "R1", "R2")
        sim.execute(asm.done())
        assert np.array_equal(sim.registers["R3"], sim.registers["R0"])

    def test_popcount_row_counts_set_lanes(self):
        sim = BitSliceSimulator(num_rows=1, num_lanes=16)
        sim.rows[0, :5] = True
        asm = Assembler("t")
        asm.read("SA", 0).popcount_row("SA")
        results = sim.execute(asm.done())
        assert results == [5]

    def test_execute_returns_only_new_popcounts(self):
        sim = BitSliceSimulator(num_rows=1, num_lanes=4)
        asm = Assembler("t")
        asm.set("SA", 1).popcount_row("SA")
        assert sim.execute(asm.done()) == [4]
        assert sim.execute(asm.done()) == [4]
        assert sim.popcount_results == [4, 4]
