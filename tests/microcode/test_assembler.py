"""Tests for the microprogram assembler."""

import itertools

import numpy as np
import pytest

from repro.microcode.assembler import Assembler, Operand
from repro.microcode.simulator import BitSliceSimulator


class TestOperand:
    def test_row_addressing(self):
        operand = Operand(base=10, bits=8)
        assert operand.row(0) == 10
        assert operand.row(7) == 17
        assert operand.msb_row == 17

    def test_out_of_range_bit(self):
        with pytest.raises(IndexError):
            Operand(base=0, bits=4).row(4)


class TestAssembler:
    def test_emits_in_order(self):
        asm = Assembler("t")
        asm.read("SA", 0).not_("SA", "SA").write("SA", 1)
        program = asm.done()
        assert [op.kind.value for op in program.ops] == [
            "read_row", "not", "write_row",
        ]
        assert program.name == "t"

    def test_popcount_counts_results(self):
        asm = Assembler("t")
        asm.set("SA", 1).popcount_row("SA").popcount_row("SA")
        assert asm.done().num_popcount_results == 2

    def test_cost_property(self):
        asm = Assembler("t")
        asm.read("R0", 0).read("R1", 1).xor("R0", "R0", "R1").write("R0", 2)
        cost = asm.done().cost
        assert cost.num_row_reads == 2
        assert cost.num_row_writes == 1
        assert cost.num_logic_ops == 1


class TestFullAdder:
    @pytest.mark.parametrize("a,b,carry", list(itertools.product([0, 1], repeat=3)))
    def test_all_input_combinations(self, a, b, carry):
        """The SEL-based full adder is exact for every bit combination."""
        sim = BitSliceSimulator(num_rows=1, num_lanes=1)
        sim.registers["R0"] = np.array([bool(a)])
        sim.registers["R1"] = np.array([bool(b)])
        sim.registers["R2"] = np.array([bool(carry)])
        asm = Assembler("fa")
        asm.full_adder("R0", "R1", "R2", "R3")
        sim.execute(asm.done())
        total = a + b + carry
        assert sim.registers["R3"][0] == bool(total & 1)
        assert sim.registers["R2"][0] == bool(total >> 1)
