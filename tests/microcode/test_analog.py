"""Tests for the analog (TRA) bit-serial substrate."""

import itertools

import numpy as np
import pytest

from repro.microcode.analog import (
    AnalogCost,
    AnalogTiming,
    TraSimulator,
    translate_program,
)
from repro.microcode.programs import get_program


class TestPrimitives:
    def test_aap_copies(self):
        sim = TraSimulator(num_rows=4, num_lanes=8)
        sim.rows[0] = np.array([1, 0, 1, 0, 1, 1, 0, 0], dtype=bool)
        sim.aap(0, 2)
        assert np.array_equal(sim.rows[2], sim.rows[0])
        assert sim.num_aaps == 1

    def test_tra_computes_majority_into_all_rows(self):
        sim = TraSimulator(num_rows=3, num_lanes=4)
        sim.rows[0] = np.array([1, 1, 0, 0], dtype=bool)
        sim.rows[1] = np.array([1, 0, 1, 0], dtype=bool)
        sim.rows[2] = np.array([0, 1, 1, 0], dtype=bool)
        sim.tra(0, 1, 2)
        expected = np.array([1, 1, 1, 0], dtype=bool)
        for row in range(3):
            assert np.array_equal(sim.rows[row], expected)
        assert sim.num_tras == 1

    def test_dcc_not(self):
        sim = TraSimulator(num_rows=2, num_lanes=4)
        sim.rows[0] = np.array([1, 0, 1, 0], dtype=bool)
        sim.dcc_not(0, 1)
        assert np.array_equal(sim.rows[1], ~sim.rows[0])
        assert sim.num_aaps == 2  # two row cycles through the DCC


class TestMajConstructions:
    def test_and_via_majority(self, rng):
        sim = TraSimulator(num_rows=8, num_lanes=32)
        sim.rows[0] = rng.integers(0, 2, 32).astype(bool)
        sim.rows[1] = rng.integers(0, 2, 32).astype(bool)
        sim.and_rows(0, 1, 4, 5, 6)
        assert np.array_equal(sim.rows[4], sim.rows[0] & sim.rows[1])

    def test_or_via_majority(self, rng):
        sim = TraSimulator(num_rows=8, num_lanes=32)
        sim.rows[0] = rng.integers(0, 2, 32).astype(bool)
        sim.rows[1] = rng.integers(0, 2, 32).astype(bool)
        sim.or_rows(0, 1, 4, 5, 6)
        assert np.array_equal(sim.rows[4], sim.rows[0] | sim.rows[1])

    @pytest.mark.parametrize("a,b,c", list(itertools.product([0, 1], repeat=3)))
    def test_full_adder_identity(self, a, b, c):
        """The MAJ-based full adder is exact for every bit combination."""
        sim = TraSimulator(num_rows=10, num_lanes=1)
        sim.rows[0][0] = bool(a)
        sim.rows[1][0] = bool(b)
        sim.rows[2][0] = bool(c)  # carry
        sim.full_adder_rows(0, 1, 2, scratch=(3, 4, 5, 6, 7, 8))
        total = a + b + c
        assert sim.rows[3][0] == bool(total & 1)  # sum in scratch[0]
        assert sim.rows[2][0] == bool(total >> 1)  # new carry


class TestTranslation:
    def test_cost_arithmetic(self):
        a = AnalogCost(num_aaps=2, num_tras=1)
        b = AnalogCost(num_aaps=3, num_popcount_rows=1)
        total = (a + b).scaled(2)
        assert total.num_aaps == 10
        assert total.num_tras == 2
        assert total.num_popcount_rows == 2

    def test_copy_translates_to_aaps_only(self):
        cost = translate_program(get_program("copy", 8))
        assert cost.num_tras == 0
        assert cost.num_aaps == 16  # 8 reads + 8 writes

    def test_and_needs_tras(self):
        cost = translate_program(get_program("and", 8))
        assert cost.num_tras == 8  # one TRA per bit slice
        assert cost.num_aaps > 16  # staging copies on top of the row I/O

    def test_add_much_costlier_than_digital(self):
        digital = get_program("add", 32).cost
        analog = translate_program(get_program("add", 32))
        digital_ns = (
            digital.num_row_reads * 28.5
            + digital.num_row_writes * 43.5
            + digital.num_logic_ops * 3.0
        )
        analog_ns = analog.latency_ns(AnalogTiming())
        # Section IV's motivation: analog TRA compute pays copy overheads.
        assert analog_ns > 5 * digital_ns

    def test_latency_formula(self):
        cost = AnalogCost(num_aaps=10, num_tras=4)
        timing = AnalogTiming(aap_ns=100.0, tra_ns=50.0)
        assert cost.latency_ns(timing) == pytest.approx(1200.0)

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            AnalogTiming(aap_ns=0)


class TestAnalogDevice:
    def test_functional_results_identical_to_digital(self, rng):
        """Portability: the analog target computes the same results."""
        from repro.config.device import PimDeviceType
        from repro.core.commands import PimCmdKind
        from tests.conftest import make_device
        device = make_device(PimDeviceType.ANALOG_BITSIMD_V)
        a = rng.integers(-100, 100, 256).astype(np.int32)
        b = rng.integers(-100, 100, 256).astype(np.int32)
        obj_a = device.alloc(256)
        obj_b = device.alloc_associated(obj_a)
        dest = device.alloc_associated(obj_a)
        device.copy_host_to_device(a, obj_a)
        device.copy_host_to_device(b, obj_b)
        device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
        assert np.array_equal(device.copy_device_to_host(dest), a + b)

    def test_analog_slower_than_digital(self):
        from repro.config.device import PimDeviceType
        from repro.core.commands import PimCmdKind
        from tests.conftest import make_device
        times = {}
        for device_type in (PimDeviceType.BITSIMD_V_AP,
                            PimDeviceType.ANALOG_BITSIMD_V):
            device = make_device(device_type, functional=False)
            obj_a = device.alloc(100_000)
            obj_b = device.alloc_associated(obj_a)
            dest = device.alloc_associated(obj_a)
            device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
            times[device_type] = device.stats.kernel_time_ns
        assert times[PimDeviceType.ANALOG_BITSIMD_V] > \
            5 * times[PimDeviceType.BITSIMD_V_AP]
