"""Property-based tests: microprograms equal integer semantics.

Hypothesis drives the bit-serial microprograms across random operand
values and bit widths and checks them against Python/numpy integer
arithmetic -- the strongest form of the paper's functional verification.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.microcode.programs import get_program
from repro.microcode.simulator import run_binary_op, run_reduction, run_unary_op

BITS = st.sampled_from([4, 8, 12])


def values_for(bits, n=8):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return st.lists(st.integers(lo, hi), min_size=n, max_size=n)


def wrap(values, bits):
    values = np.asarray(values, dtype=np.int64) & ((1 << bits) - 1)
    return np.where(values >= 1 << (bits - 1), values - (1 << bits), values)


@st.composite
def binary_case(draw):
    bits = draw(BITS)
    a = draw(values_for(bits))
    b = draw(values_for(bits))
    return bits, np.array(a), np.array(b)


@settings(max_examples=40, deadline=None)
@given(binary_case())
def test_add_matches_integer_semantics(case):
    bits, a, b = case
    out = run_binary_op(get_program("add", bits), a, b, bits)
    assert np.array_equal(out, wrap(a + b, bits))


@settings(max_examples=40, deadline=None)
@given(binary_case())
def test_sub_matches_integer_semantics(case):
    bits, a, b = case
    out = run_binary_op(get_program("sub", bits), a, b, bits)
    assert np.array_equal(out, wrap(a - b, bits))


@settings(max_examples=30, deadline=None)
@given(binary_case())
def test_mul_full_product(case):
    bits, a, b = case
    mask = (1 << bits) - 1
    out = run_binary_op(get_program("mul", bits), a, b, bits,
                        result_bits=2 * bits, signed_result=False)
    assert np.array_equal(out, (a & mask) * (b & mask))


@settings(max_examples=40, deadline=None)
@given(binary_case())
def test_comparisons_match(case):
    bits, a, b = case
    lt = run_binary_op(get_program("lt", bits, 1), a, b, bits,
                       result_bits=1, signed_result=False)
    assert np.array_equal(lt.astype(bool), a < b)


@settings(max_examples=40, deadline=None)
@given(binary_case())
def test_min_is_commutative_and_correct(case):
    bits, a, b = case
    program = get_program("min", bits, 1)
    ab = run_binary_op(program, a, b, bits)
    ba = run_binary_op(program, b, a, bits)
    assert np.array_equal(ab, np.minimum(a, b))
    assert np.array_equal(ab, ba)


@settings(max_examples=40, deadline=None)
@given(BITS.flatmap(lambda bits: st.tuples(
    st.just(bits), values_for(bits),
    st.integers(0, (1 << bits) - 1),
)))
def test_add_scalar_matches(case):
    bits, a, scalar = case
    a = np.array(a)
    out = run_unary_op(get_program("add_scalar", bits, scalar), a, bits)
    assert np.array_equal(out, wrap(a + scalar, bits))


@settings(max_examples=40, deadline=None)
@given(BITS.flatmap(lambda bits: st.tuples(st.just(bits), values_for(bits))))
def test_abs_matches(case):
    bits, a = case
    a = np.array(a)
    out = run_unary_op(get_program("abs", bits), a, bits)
    assert np.array_equal(out, wrap(np.abs(a), bits))


@settings(max_examples=40, deadline=None)
@given(BITS.flatmap(lambda bits: st.tuples(st.just(bits), values_for(bits, n=20))))
def test_reduction_matches_sum(case):
    bits, a = case
    a = np.array(a)
    assert run_reduction(get_program("redsum", bits), a, bits) == int(a.sum())


@settings(max_examples=30, deadline=None)
@given(BITS.flatmap(lambda bits: st.tuples(
    st.just(bits), values_for(bits), st.integers(0, 3),
)))
def test_shift_left_matches(case):
    bits, a, amount = case
    a = np.array(a)
    out = run_unary_op(get_program("shift_left", bits, amount), a, bits)
    assert np.array_equal(out, wrap((a & ((1 << bits) - 1)) << amount, bits))


@settings(max_examples=30, deadline=None)
@given(binary_case())
def test_select_picks_per_condition(case):
    from repro.microcode.simulator import BitSliceSimulator
    bits, a, b = case
    cond = (a > b).astype(int)
    sim = BitSliceSimulator(num_rows=1 + 3 * bits, num_lanes=len(a))
    sim.store_vertical(0, cond, 1)
    sim.store_vertical(1, a, bits)
    sim.store_vertical(1 + bits, b, bits)
    sim.execute(get_program("select", bits))
    out = sim.load_vertical(1 + 2 * bits, bits)
    assert np.array_equal(out, np.where(cond.astype(bool), a, b))
