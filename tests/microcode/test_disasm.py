"""Tests for the microprogram disassembler."""

from repro.microcode.disasm import cost_table, disassemble, format_micro_op
from repro.microcode.isa import MicroOp, MicroOpKind
from repro.microcode.programs import get_program


class TestFormatMicroOp:
    def test_row_ops(self):
        read = MicroOp(MicroOpKind.READ_ROW, dst="SA", row=5)
        write = MicroOp(MicroOpKind.WRITE_ROW, srcs=("R0",), row=9)
        assert format_micro_op(read) == "read   SA, row[5]"
        assert format_micro_op(write) == "write  row[9], R0"

    def test_logic_ops(self):
        op = MicroOp(MicroOpKind.XOR, dst="R0", srcs=("R1", "R2"))
        assert format_micro_op(op) == "xor    R0, R1, R2"
        sel = MicroOp(MicroOpKind.SEL, dst="SA", srcs=("R0", "R1", "R2"))
        assert "sel" in format_micro_op(sel)

    def test_set_and_popcount(self):
        assert format_micro_op(
            MicroOp(MicroOpKind.SET, dst="R3", value=1)
        ) == "set    R3, #1"
        assert format_micro_op(
            MicroOp(MicroOpKind.POPCOUNT_ROW, srcs=("SA",))
        ) == "popcnt SA"


class TestDisassemble:
    def test_full_listing(self):
        text = disassemble(get_program("add", 4))
        assert ".program add.4" in text
        assert ".cost" in text
        assert "read" in text and "write" in text

    def test_truncation(self):
        text = disassemble(get_program("mul", 8), max_ops=10)
        assert "more)" in text
        assert text.count("\n") < 20


def test_cost_table_lists_ops_and_widths():
    text = cost_table()
    assert "mul" in text and "redsum" in text
    assert "rows@32" in text
