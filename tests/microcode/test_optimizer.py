"""Tests for the microprogram peephole optimizer.

Every optimized program is equivalence-checked against the original on
the functional simulator across random inputs -- the optimizer must never
change semantics, only remove work.
"""

import numpy as np
import pytest

from repro.microcode.assembler import Assembler
from repro.microcode.isa import MicroOpKind
from repro.microcode.optimizer import optimize, report
from repro.microcode.programs import get_program
from repro.microcode.simulator import BitSliceSimulator

PROGRAMS = [
    ("copy", 8, None), ("not", 8, None), ("and", 8, None), ("xor", 8, None),
    ("add", 8, None), ("sub", 8, None), ("mul", 4, None), ("eq", 8, None),
    ("abs", 8, None), ("popcount", 8, None),
    ("min", 8, 1), ("max", 8, 1), ("lt", 8, 1),
    ("add_scalar", 8, 37), ("mul_scalar", 8, 5), ("scaled_add", 8, 3),
    ("select", 8, None), ("and_scalar", 8, 0x5A), ("shift_left", 8, 2),
]


def run_program(program, seed=0, num_rows=64, num_lanes=16):
    """Execute a program on a randomized memory image; return the image."""
    rng = np.random.default_rng(seed)
    sim = BitSliceSimulator(num_rows=num_rows, num_lanes=num_lanes)
    sim.rows = rng.integers(0, 2, (num_rows, num_lanes)).astype(bool)
    baseline = sim.rows.copy()
    popcounts = sim.execute(program)
    return sim.rows, popcounts, baseline


class TestEquivalence:
    @pytest.mark.parametrize("name,bits,param", PROGRAMS,
                             ids=[p[0] for p in PROGRAMS])
    def test_optimized_program_is_equivalent(self, name, bits, param):
        original = get_program(name, bits, param)
        optimized = optimize(original)
        for seed in range(3):
            rows_a, pc_a, _ = run_program(original, seed)
            rows_b, pc_b, _ = run_program(optimized, seed)
            assert np.array_equal(rows_a, rows_b), (name, seed)
            assert pc_a == pc_b, (name, seed)

    def test_redsum_popcounts_preserved(self):
        program = get_program("redsum", 8)
        optimized = optimize(program)
        _, pc_a, _ = run_program(program, 7)
        _, pc_b, _ = run_program(optimized, 7)
        assert pc_a == pc_b
        assert optimized.num_popcount_results == program.num_popcount_results


class TestPasses:
    def test_store_to_load_forwarding(self):
        asm = Assembler("t")
        asm.read("R0", 0).write("R0", 5).read("R1", 5).write("R1", 6)
        optimized = optimize(asm.done())
        kinds = [op.kind for op in optimized.ops]
        # The read of row 5 becomes a register move.
        assert kinds.count(MicroOpKind.READ_ROW) == 1
        assert MicroOpKind.MOVE in kinds

    def test_read_after_write_same_register_vanishes(self):
        asm = Assembler("t")
        asm.read("R0", 0).write("R0", 5).read("R0", 5).write("R0", 6)
        optimized = optimize(asm.done())
        assert optimized.cost.num_row_reads == 1
        assert optimized.cost.num_logic_ops == 0

    def test_forwarding_respects_clobbers(self):
        asm = Assembler("t")
        asm.read("R0", 0).write("R0", 5)
        asm.not_("R0", "R0")  # clobbers the mirror
        asm.read("R1", 5).write("R1", 6)
        optimized = optimize(asm.done())
        assert optimized.cost.num_row_reads == 2  # both reads must stay

    def test_dead_write_elimination(self):
        asm = Assembler("t")
        asm.set("R0", 0).write("R0", 3)
        asm.set("R1", 1).write("R1", 3)  # overwrites row 3 unread
        optimized = optimize(asm.done())
        assert optimized.cost.num_row_writes == 1

    def test_observed_write_forwards_then_dies(self):
        asm = Assembler("t")
        asm.set("R0", 0).write("R0", 3)
        asm.read("R2", 3)
        asm.set("R1", 1).write("R1", 3)
        optimized = optimize(asm.done())
        # The read of row 3 forwards from R0, after which the first write
        # is dead: one write survives and no reads remain.
        assert optimized.cost.num_row_writes == 1
        assert optimized.cost.num_row_reads == 0

    def test_redundant_set_dropped(self):
        asm = Assembler("t")
        asm.set("R0", 1).set("R0", 1).write("R0", 2)
        optimized = optimize(asm.done())
        assert optimized.cost.num_logic_ops == 1


class TestSavings:
    def test_accumulator_programs_save_row_ops(self):
        """mul re-reads its accumulator right after writing it: the
        optimizer forwards those stores."""
        saving = report(get_program("mul", 8))
        assert saving.row_ops_saved > 0

    def test_report_fields(self):
        saving = report(get_program("add", 8))
        assert saving.program == "add.8"
        assert saving.ops_after <= saving.ops_before
        assert saving.row_ops_after <= saving.row_ops_before

    def test_optimizer_is_idempotent(self):
        once = optimize(get_program("mul", 8))
        twice = optimize(once)
        assert len(twice.ops) == len(once.ops)
