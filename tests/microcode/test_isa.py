"""Tests for the bit-serial micro-op ISA."""

import pytest

from repro.microcode.isa import MicroOp, MicroOpKind, MicroProgramCost, cost_of


class TestMicroOp:
    def test_read_requires_row(self):
        with pytest.raises(ValueError):
            MicroOp(MicroOpKind.READ_ROW, dst="SA")

    def test_source_arity_enforced(self):
        with pytest.raises(ValueError):
            MicroOp(MicroOpKind.AND, dst="R0", srcs=("R1",))
        with pytest.raises(ValueError):
            MicroOp(MicroOpKind.NOT, dst="R0", srcs=("R1", "R2"))

    def test_unknown_register_rejected(self):
        with pytest.raises(ValueError):
            MicroOp(MicroOpKind.MOVE, dst="R9", srcs=("R0",))

    def test_set_immediate_validated(self):
        with pytest.raises(ValueError):
            MicroOp(MicroOpKind.SET, dst="R0", value=2)

    def test_classification(self):
        assert MicroOpKind.READ_ROW.is_row_op
        assert MicroOpKind.WRITE_ROW.is_row_op
        assert MicroOpKind.XOR.is_logic_op
        assert not MicroOpKind.POPCOUNT_ROW.is_logic_op
        assert not MicroOpKind.POPCOUNT_ROW.is_row_op

    def test_sel_takes_three_sources(self):
        op = MicroOp(MicroOpKind.SEL, dst="R0", srcs=("R1", "R2", "R3"))
        assert op.kind.num_sources == 3


class TestMicroProgramCost:
    def test_addition(self):
        a = MicroProgramCost(num_row_reads=1, num_logic_ops=2)
        b = MicroProgramCost(num_row_writes=3, num_popcount_rows=1)
        total = a + b
        assert total.num_row_reads == 1
        assert total.num_row_writes == 3
        assert total.num_logic_ops == 2
        assert total.num_popcount_rows == 1
        assert total.num_row_ops == 4
        assert total.total_ops == 7

    def test_scaled(self):
        cost = MicroProgramCost(num_row_reads=2, num_row_writes=1, num_logic_ops=5)
        tripled = cost.scaled(3)
        assert tripled.num_row_reads == 6
        assert tripled.num_row_writes == 3
        assert tripled.num_logic_ops == 15

    def test_cost_of_tallies_kinds(self):
        ops = [
            MicroOp(MicroOpKind.READ_ROW, dst="SA", row=0),
            MicroOp(MicroOpKind.NOT, dst="SA", srcs=("SA",)),
            MicroOp(MicroOpKind.WRITE_ROW, srcs=("SA",), row=1),
            MicroOp(MicroOpKind.POPCOUNT_ROW, srcs=("SA",)),
        ]
        cost = cost_of(ops)
        assert cost.num_row_reads == 1
        assert cost.num_row_writes == 1
        assert cost.num_logic_ops == 1
        assert cost.num_popcount_rows == 1
