"""Functional and complexity tests for the microprogram library."""

import numpy as np
import pytest

from repro.microcode.programs import get_program
from repro.microcode.simulator import run_binary_op, run_reduction, run_unary_op

WIDTHS = (4, 8, 16)


def wrap_signed(values, bits):
    values = np.asarray(values, dtype=np.int64) & ((1 << bits) - 1)
    return np.where(values >= 1 << (bits - 1), values - (1 << bits), values)


@pytest.fixture
def operands(rng):
    def make(bits, n=24):
        lo, hi = -(1 << (bits - 1)), 1 << (bits - 1)
        return rng.integers(lo, hi, n), rng.integers(lo, hi, n)
    return make


class TestBinaryPrograms:
    @pytest.mark.parametrize("bits", WIDTHS)
    def test_add(self, operands, bits):
        a, b = operands(bits)
        out = run_binary_op(get_program("add", bits), a, b, bits)
        assert np.array_equal(out, wrap_signed(a + b, bits))

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_sub(self, operands, bits):
        a, b = operands(bits)
        out = run_binary_op(get_program("sub", bits), a, b, bits)
        assert np.array_equal(out, wrap_signed(a - b, bits))

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_mul_full_product(self, operands, bits):
        a, b = operands(bits)
        mask = (1 << bits) - 1
        out = run_binary_op(
            get_program("mul", bits), a, b, bits,
            result_bits=2 * bits, signed_result=False,
        )
        assert np.array_equal(out, (a & mask) * (b & mask))
        # The low half equals the wrapped signed product (C semantics).
        assert np.array_equal(
            wrap_signed(out & mask, bits), wrap_signed(a * b, bits)
        )

    @pytest.mark.parametrize("name,func", [
        ("and", np.bitwise_and), ("or", np.bitwise_or),
        ("xor", np.bitwise_xor),
    ])
    def test_bitwise(self, operands, name, func):
        a, b = operands(8)
        out = run_binary_op(get_program(name, 8), a, b, 8)
        assert np.array_equal(out, func(a, b))

    def test_xnor(self, operands):
        a, b = operands(8)
        out = run_binary_op(get_program("xnor", 8), a, b, 8)
        assert np.array_equal(out, wrap_signed(~(a ^ b), 8))

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_comparisons(self, operands, bits):
        a, b = operands(bits)
        for name, expected in (
            ("lt", a < b), ("gt", a > b),
        ):
            out = run_binary_op(
                get_program(name, bits, 1), a, b, bits,
                result_bits=1, signed_result=False,
            )
            assert np.array_equal(out.astype(bool), expected), name

    def test_eq_and_ne(self, rng):
        a = rng.integers(-8, 8, 64)
        b = a.copy()
        b[::3] = rng.integers(-8, 8, len(b[::3]))
        eq = run_binary_op(get_program("eq", 8), a, b, 8, result_bits=1,
                           signed_result=False)
        ne = run_binary_op(get_program("ne", 8), a, b, 8, result_bits=1,
                           signed_result=False)
        assert np.array_equal(eq.astype(bool), a == b)
        assert np.array_equal(ne.astype(bool), a != b)

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_min_max(self, operands, bits):
        a, b = operands(bits)
        out_min = run_binary_op(get_program("min", bits, 1), a, b, bits)
        out_max = run_binary_op(get_program("max", bits, 1), a, b, bits)
        assert np.array_equal(out_min, np.minimum(a, b))
        assert np.array_equal(out_max, np.maximum(a, b))

    def test_unsigned_comparison(self, rng):
        bits = 8
        a = rng.integers(0, 256, 32)
        b = rng.integers(0, 256, 32)
        out = run_binary_op(
            get_program("lt", bits, 0), a, b, bits,
            result_bits=1, signed_result=False,
        )
        assert np.array_equal(out.astype(bool), a < b)


class TestScalarPrograms:
    def test_add_scalar(self, operands):
        a, _ = operands(8)
        out = run_unary_op(get_program("add_scalar", 8, 37), a, 8)
        assert np.array_equal(out, wrap_signed(a + 37, 8))

    def test_mul_scalar(self, operands):
        a, _ = operands(8)
        out = run_unary_op(get_program("mul_scalar", 8, 5), a, 8)
        assert np.array_equal(out, wrap_signed(a * 5, 8))

    def test_scaled_add(self, operands):
        a, b = operands(8)
        out = run_binary_op(get_program("scaled_add", 8, 3), a, b, 8)
        assert np.array_equal(out, wrap_signed(a * 3 + b, 8))

    def test_eq_scalar(self, rng):
        a = rng.integers(0, 4, 64)
        out = run_unary_op(get_program("eq_scalar", 8, 2), a, 8,
                           result_bits=1, signed_result=False)
        assert np.array_equal(out.astype(bool), a == 2)

    @pytest.mark.parametrize("name,func", [
        ("and_scalar", np.bitwise_and),
        ("or_scalar", np.bitwise_or),
        ("xor_scalar", np.bitwise_xor),
    ])
    def test_logic_scalar(self, operands, name, func):
        a, _ = operands(8)
        out = run_unary_op(get_program(name, 8, 0x5A), a, 8)
        assert np.array_equal(out, wrap_signed(func(a & 0xFF, 0x5A), 8))

    def test_shift_left(self, operands):
        a, _ = operands(8)
        out = run_unary_op(get_program("shift_left", 8, 2), a, 8)
        assert np.array_equal(out, wrap_signed((a & 0xFF) << 2, 8))

    def test_shift_right_logical(self, rng):
        a = rng.integers(0, 256, 32)
        out = run_unary_op(get_program("shift_right", 8, 3), a, 8,
                           signed_result=False)
        assert np.array_equal(out, (a & 0xFF) >> 3)


class TestUnaryPrograms:
    def test_not(self, operands):
        a, _ = operands(8)
        out = run_unary_op(get_program("not", 8), a, 8)
        assert np.array_equal(out, wrap_signed(~a, 8))

    def test_copy(self, operands):
        a, _ = operands(8)
        out = run_unary_op(get_program("copy", 8), a, 8)
        assert np.array_equal(out, wrap_signed(a, 8))

    def test_abs(self, operands):
        a, _ = operands(8)
        out = run_unary_op(get_program("abs", 8), a, 8)
        assert np.array_equal(out, wrap_signed(np.abs(a), 8))

    def test_popcount(self, rng):
        a = rng.integers(-128, 128, 32)
        out = run_unary_op(get_program("popcount", 8), a, 8,
                           result_bits=4, signed_result=False)
        expected = [bin(int(x) & 0xFF).count("1") for x in a]
        assert np.array_equal(out, expected)


class TestReductionAndBroadcast:
    def test_reduction_signed(self, rng):
        a = rng.integers(-128, 128, 100)
        assert run_reduction(get_program("redsum", 8), a, 8) == int(a.sum())

    def test_broadcast(self):
        from repro.microcode.simulator import BitSliceSimulator
        sim = BitSliceSimulator(num_rows=8, num_lanes=16)
        sim.execute(get_program("broadcast", 8, 0x5C))
        assert np.array_equal(
            sim.load_vertical(0, 8, signed=False), np.full(16, 0x5C)
        )


class TestComplexities:
    """The paper's complexity claims (Section IV, VII)."""

    def test_add_linear_in_bits(self):
        c8 = get_program("add", 8).cost.num_row_ops
        c32 = get_program("add", 32).cost.num_row_ops
        assert c32 == pytest.approx(4 * c8, rel=0.1)

    def test_mul_quadratic_in_bits(self):
        c8 = get_program("mul", 8).cost.num_row_ops
        c32 = get_program("mul", 32).cost.num_row_ops
        assert 12 <= c32 / c8 <= 20  # ~16x for a 4x width increase

    def test_popcount_log_linear(self):
        c8 = get_program("popcount", 8).cost.num_row_ops
        c32 = get_program("popcount", 32).cost.num_row_ops
        # n log n: 32*6 / 8*4 = 6x, clearly super-linear but sub-quadratic.
        assert 4 < c32 / c8 < 10

    def test_reduction_uses_row_popcounts(self):
        cost = get_program("redsum", 32).cost
        assert cost.num_popcount_rows == 32
        assert cost.num_row_writes == 0

    def test_programs_are_cached(self):
        assert get_program("add", 32) is get_program("add", 32)

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError):
            get_program("divide", 32)

    def test_parameterized_program_requires_param(self):
        with pytest.raises(ValueError):
            get_program("add_scalar", 32)
