"""Tests for the Listing-3 style report formatting."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    format_command_stats,
    format_copy_stats,
    format_params,
    format_report,
)
from repro.config.device import PimDeviceType
from repro.core.commands import PimCmdKind

from tests.conftest import make_device


@pytest.fixture
def ran_device(rng):
    device = make_device(PimDeviceType.FULCRUM)
    obj_a = device.alloc(2048)
    obj_b = device.alloc_associated(obj_a)
    dest = device.alloc_associated(obj_a)
    device.copy_host_to_device(rng.integers(0, 9, 2048).astype(np.int32), obj_a)
    device.copy_host_to_device(rng.integers(0, 9, 2048).astype(np.int32), obj_b)
    device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
    device.copy_device_to_host(dest)
    return device


class TestParamsBlock:
    def test_contains_listing3_fields(self, ran_device):
        text = format_params(ran_device)
        assert "PIM_DEVICE" not in text  # our enum names differ; check values
        assert "4, 128, 32, 1024, 8192" in text
        assert "Number of PIM Cores" in text
        assert "8192" in text
        assert "25.600000 GB/s" in text
        assert "28.500000" in text


class TestCopyBlock:
    def test_byte_totals(self, ran_device):
        text = format_copy_stats(ran_device)
        assert "Host to Device   : 16384 bytes" in text
        assert "Device to Host   : 8192 bytes" in text
        assert "24576 bytes" in text


class TestCommandBlock:
    def test_lists_signature_and_total(self, ran_device):
        text = format_command_stats(ran_device)
        assert "add.int32.h" in text
        assert "TOTAL" in text

    def test_runtime_matches_stats(self, ran_device):
        text = format_command_stats(ran_device)
        expected = f"{ran_device.stats.kernel_time_ns / 1e6:.6f}"
        assert expected in text


def test_full_report_has_all_blocks(ran_device):
    text = format_report(ran_device, title="Vector Add")
    assert "Vector Add" in text
    assert "PIM Params:" in text
    assert "Data Copy Stats:" in text
    assert "PIM Command Stats:" in text
