"""Tests for feature extraction and the Figure 1 dendrogram pipeline."""

import numpy as np
import pytest

from repro.analysis.clustering import (
    build_dendrogram,
    pca,
    render_text_dendrogram,
)
from repro.analysis.features import (
    BenchmarkFeatures,
    extract_features,
    feature_matrix,
    op_mix_fractions,
)
from repro.bench.registry import make_benchmark
from repro.config.device import PimDeviceType

from tests.conftest import make_device


@pytest.fixture(scope="module")
def two_results():
    device = make_device(PimDeviceType.BITSIMD_V_AP)
    vecadd = make_benchmark("vecadd")
    add_result = vecadd.run(device)
    device2 = make_device(PimDeviceType.BITSIMD_V_AP)
    linreg = make_benchmark("linreg")
    linreg_result = linreg.run(device2)
    return (vecadd, add_result), (linreg, linreg_result)


class TestOpMix:
    def test_fractions_sum_to_one(self, two_results):
        (_, add_result), _ = two_results
        fractions = op_mix_fractions(add_result)
        assert fractions.sum() == pytest.approx(1.0)

    def test_vecadd_is_pure_add(self, two_results):
        from repro.analysis.features import CATEGORY_ORDER
        from repro.core.commands import OpCategory
        (_, add_result), _ = two_results
        fractions = op_mix_fractions(add_result)
        add_index = CATEGORY_ORDER.index(OpCategory.ADD)
        assert fractions[add_index] == pytest.approx(1.0)

    def test_linreg_mixes_mul_and_reduction(self, two_results):
        from repro.core.commands import OpCategory
        _, (_, linreg_result) = two_results
        assert linreg_result.op_counts[OpCategory.MUL] == 2
        assert linreg_result.op_counts[OpCategory.REDUCTION] == 4


class TestFeatures:
    def test_vector_dimension(self, two_results):
        (bench, result), _ = two_results
        features = extract_features(bench, result)
        assert features.dimension == 20  # 15 op categories + 5 extras

    def test_matrix_standardized(self, two_results):
        (b1, r1), (b2, r2) = two_results
        matrix = feature_matrix([
            extract_features(b1, r1), extract_features(b2, r2),
        ])
        assert matrix.shape == (2, 20)
        assert np.allclose(matrix.mean(axis=0), 0.0)


class TestPca:
    def test_projection_shape(self, rng):
        matrix = rng.normal(size=(10, 7))
        assert pca(matrix, 3).shape == (10, 3)

    def test_components_capped_by_rank(self, rng):
        matrix = rng.normal(size=(3, 7))
        assert pca(matrix, 10).shape == (3, 3)


class TestDendrogram:
    def _features(self, rng, names):
        return [
            BenchmarkFeatures(name=name, vector=rng.normal(size=20))
            for name in names
        ]

    def test_merge_count(self, rng):
        result = build_dendrogram(self._features(rng, list("abcdef")))
        assert len(result.merge_order()) == 5

    def test_similar_benchmarks_merge_first(self, rng):
        base = rng.normal(size=20)
        features = [
            BenchmarkFeatures("twin1", base + rng.normal(scale=0.01, size=20)),
            BenchmarkFeatures("twin2", base + rng.normal(scale=0.01, size=20)),
            BenchmarkFeatures("far", base + 50.0),
            BenchmarkFeatures("farther", base - 50.0),
        ]
        result = build_dendrogram(features, num_components=3)
        first_left, first_right, _ = result.merge_order()[0]
        assert first_left | first_right == {"twin1", "twin2"}

    def test_flat_clusters(self, rng):
        result = build_dendrogram(self._features(rng, list("abcd")))
        clusters = result.cluster_of(2)
        assert set(clusters) == {"a", "b", "c", "d"}
        assert len(set(clusters.values())) == 2

    def test_text_rendering(self, rng):
        result = build_dendrogram(self._features(rng, ["x", "y", "z"]))
        text = render_text_dendrogram(result)
        assert "x" in text and "y" in text and "z" in text
        assert "d=" in text

    def test_needs_two(self, rng):
        with pytest.raises(ValueError):
            build_dendrogram(self._features(rng, ["only"]))
