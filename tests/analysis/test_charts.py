"""Tests for the ASCII chart renderers."""

from repro.analysis.charts import render_log_bars, render_stacked_bars


class TestLogBars:
    def test_renders_all_labels_and_values(self):
        text = render_log_bars([("alpha", 10.0), ("beta", 0.5)])
        assert "alpha" in text and "beta" in text
        assert "10.000x" in text and "0.500x" in text

    def test_reference_marker_present(self):
        text = render_log_bars([("a", 4.0)], reference=1.0)
        assert "|" in text
        assert "<- 1.0x" in text

    def test_larger_value_longer_bar(self):
        text = render_log_bars([("big", 100.0), ("small", 2.0)], width=40)
        big_line, small_line = text.splitlines()[:2]
        assert big_line.count("=") > small_line.count("=")

    def test_below_reference_bar_extends_left(self):
        text = render_log_bars([("slow", 0.1), ("fast", 10.0)], width=20)
        slow_line = text.splitlines()[0]
        # The slowdown bar sits before the reference mark.
        assert slow_line.index("#") < slow_line.index("|")

    def test_empty_and_nonpositive(self):
        assert render_log_bars([]) == "(no data)"
        assert "no positive" in render_log_bars([("x", 0.0)])

    def test_custom_unit(self):
        assert "ms" in render_log_bars([("a", 2.0)], unit="ms")


class TestStackedBars:
    def test_segments_proportional(self):
        text = render_stacked_bars(
            [("row", {"kernel": 50.0, "host": 50.0})], width=40
        )
        line = text.splitlines()[0]
        assert line.count("K") == 20
        assert line.count("H") == 20

    def test_legend(self):
        text = render_stacked_bars([("r", {"kernel": 100.0})])
        assert "K=kernel" in text

    def test_custom_symbols(self):
        text = render_stacked_bars(
            [("r", {"kernel": 100.0})], symbols={"kernel": "*"}
        )
        assert "*" in text

    def test_empty(self):
        assert render_stacked_bars([]) == "(no data)"
