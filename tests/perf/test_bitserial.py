"""Tests for the bit-serial performance model."""

import pytest

from repro.config.device import PimAllocType
from repro.config.presets import bitserial_config, fulcrum_config
from repro.core.commands import PimCmdKind
from repro.core.errors import PimTypeError
from repro.core.layout import plan_layout
from repro.microcode.programs import get_program
from repro.perf.base import CommandArgs
from repro.perf.bitserial import BitSerialPerfModel


@pytest.fixture
def model():
    return BitSerialPerfModel(bitserial_config(4))


def make_args(model, kind, num_elements, bits=32, scalar=None, num_inputs=None):
    config = model.config
    plan = plan_layout(config, num_elements, bits, PimAllocType.VERTICAL)
    if num_inputs is None:
        num_inputs = kind.spec.num_vector_inputs
    dest = None
    if not kind.spec.produces_scalar:
        result_bits = 1 if kind.spec.produces_bool else bits
        dest = plan_layout(config, num_elements, result_bits, PimAllocType.VERTICAL)
    return CommandArgs(
        kind=kind, bits=bits, inputs=(plan,) * num_inputs, dest=dest,
        scalar=scalar,
    )


class TestCostDerivation:
    def test_add_latency_from_microprogram(self, model):
        timing = model.config.dram.timing
        cost = model.cost_of(make_args(model, PimCmdKind.ADD, 1000))
        program = get_program("add", 32).cost
        expected = (
            program.num_row_reads * timing.row_read_ns
            + program.num_row_writes * timing.row_write_ns
            + program.num_logic_ops * timing.tccd_ns
        )
        assert cost.latency_ns == pytest.approx(expected)

    def test_latency_scales_with_groups(self, model):
        cols = model.config.cols_per_core
        cores = model.config.num_cores
        one_group = model.cost_of(make_args(model, PimCmdKind.ADD, cores * cols))
        two_groups = model.cost_of(
            make_args(model, PimCmdKind.ADD, cores * cols * 2)
        )
        assert two_groups.latency_ns == pytest.approx(2 * one_group.latency_ns)

    def test_partial_group_costs_full_group(self, model):
        """PIMeval's documented full-row assumption."""
        tiny = model.cost_of(make_args(model, PimCmdKind.ADD, 1))
        fuller = model.cost_of(
            make_args(model, PimCmdKind.ADD, model.config.num_cores * 100)
        )
        assert tiny.latency_ns == pytest.approx(fuller.latency_ns)

    def test_row_activation_count(self, model):
        cost = model.cost_of(make_args(model, PimCmdKind.ADD, 1000))
        program = get_program("add", 32).cost
        assert cost.row_activations == program.num_row_ops * 1000

    def test_lane_logic_counts_all_lanes(self, model):
        cost = model.cost_of(make_args(model, PimCmdKind.NOT, 10))
        program = get_program("not", 32).cost
        assert cost.lane_logic_ops == (
            program.num_logic_ops * model.config.cols_per_core * 10
        )

    def test_mul_quadratically_slower_than_add(self, model):
        add = model.cost_of(make_args(model, PimCmdKind.ADD, 1000))
        mul = model.cost_of(make_args(model, PimCmdKind.MUL, 1000))
        assert mul.latency_ns > 15 * add.latency_ns

    def test_redsum_includes_partial_collection(self, model):
        cost = model.cost_of(make_args(model, PimCmdKind.REDSUM, 1_000_000))
        timing = model.config.dram.timing
        program = get_program("redsum", 32).cost
        popcount_ns = timing.row_read_ns + 13 * timing.tccd_ns
        pure = (
            program.num_row_reads * timing.row_read_ns
            + program.num_popcount_rows * popcount_ns
        )
        assert cost.latency_ns > pure  # the partial transfer term

    def test_scalar_command_requires_scalar(self, model):
        with pytest.raises(PimTypeError):
            model.cost_of(make_args(model, PimCmdKind.ADD_SCALAR, 10))

    def test_scalar_baked_into_cost(self, model):
        sparse = model.cost_of(
            make_args(model, PimCmdKind.MUL_SCALAR, 10, scalar=1)
        )
        dense = model.cost_of(
            make_args(model, PimCmdKind.MUL_SCALAR, 10, scalar=0x7FFFFFFF)
        )
        assert dense.latency_ns > sparse.latency_ns

    def test_int8_cheaper_than_int32(self, model):
        wide = model.cost_of(make_args(model, PimCmdKind.ADD, 1000, bits=32))
        narrow = model.cost_of(make_args(model, PimCmdKind.ADD, 1000, bits=8))
        assert narrow.latency_ns == pytest.approx(wide.latency_ns / 4, rel=0.1)


def test_rejects_wrong_device_type():
    with pytest.raises(PimTypeError):
        BitSerialPerfModel(fulcrum_config(4))
