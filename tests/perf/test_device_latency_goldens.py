"""Golden device-level latency table across all four architectures.

Pins the end-to-end modeled kernel latency of each primitive at a fixed
configuration (32 ranks, 256M int32, one command).  Any model change that
moves these numbers is intentional or a bug; either way it must be seen.
"""

import pytest

from repro.config.device import PimDeviceType
from repro.config.presets import make_device_config
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice

N = 256 * 1024 * 1024

# (device, op) -> modeled kernel microseconds (2% tolerance)
GOLDEN_US = {
    (PimDeviceType.BITSIMD_V_AP, PimCmdKind.ADD): 3.795,
    (PimDeviceType.BITSIMD_V_AP, PimCmdKind.MUL): 130.82,
    (PimDeviceType.BITSIMD_V_AP, PimCmdKind.REDSUM): 3.692,
    (PimDeviceType.BITSIMD_V_AP, PimCmdKind.POPCOUNT): 16.31,
    (PimDeviceType.FULCRUM, PimCmdKind.ADD): 26.58,
    (PimDeviceType.FULCRUM, PimCmdKind.MUL): 26.58,
    (PimDeviceType.FULCRUM, PimCmdKind.POPCOUNT): 298.5,
    (PimDeviceType.BANK_LEVEL, PimCmdKind.ADD): 372.98,
    (PimDeviceType.BANK_LEVEL, PimCmdKind.REDSUM): 256.33,
    (PimDeviceType.ANALOG_BITSIMD_V, PimCmdKind.ADD): 150.45,
}


def measure_us(device_type: PimDeviceType, kind: PimCmdKind) -> float:
    device = PimDevice(make_device_config(device_type, 32), functional=False)
    obj_a = device.alloc(N)
    inputs = [obj_a]
    if kind.spec.num_vector_inputs == 2:
        inputs.append(device.alloc_associated(obj_a))
    dest = None if kind.spec.produces_scalar else device.alloc_associated(obj_a)
    device.execute(kind, tuple(inputs), dest)
    return device.stats.kernel_time_ns / 1e3


@pytest.mark.parametrize(
    "device_type,kind",
    sorted(GOLDEN_US, key=lambda k: (k[0].value, k[1].name)),
    ids=lambda v: v.value if isinstance(v, PimDeviceType) else v.name,
)
def test_golden_latency(device_type, kind):
    measured = measure_us(device_type, kind)
    assert measured == pytest.approx(GOLDEN_US[(device_type, kind)], rel=0.02), (
        f"{device_type.value} {kind.name}: modeled latency moved; update the "
        "golden table and EXPERIMENTS.md if this change is intentional"
    )
