"""The memoized cost pipeline: transparent, keyed right, escapable.

Three claims (docs/PERFORMANCE.md §5):

* transparency -- memoized and unmemoized runs produce byte-identical
  results (same suite JSON, same bus event stream),
* key correctness -- commands in the same shape class share an entry,
  commands whose cost genuinely differs do not, and
* the ``REPRO_NO_COST_MEMO=1`` escape hatch disables memoization.
"""

from repro.config import bitserial_config, fulcrum_config
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.obs import EventBus, RingBufferSink
from repro.perf.memo import MEMO_DISABLE_ENV, CostPipeline, memo_enabled


def _analytic(config):
    return PimDevice(config, functional=False)


def _vectors(device, n=512):
    obj_a = device.alloc(n)
    obj_b = device.alloc_associated(obj_a)
    dest = device.alloc_associated(obj_a)
    return obj_a, obj_b, dest


class TestMemoHitBehavior:
    def test_repeated_shape_hits(self):
        device = _analytic(bitserial_config(4))
        obj_a, obj_b, dest = _vectors(device)
        for _ in range(5):
            device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
        assert device.pipeline.misses == 1
        assert device.pipeline.hits == 4
        assert len(device.pipeline) == 1

    def test_memoized_pair_is_the_model_output(self):
        device = _analytic(bitserial_config(4))
        obj_a, obj_b, dest = _vectors(device)
        device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
        device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
        from repro.perf.base import CommandArgs

        args = CommandArgs(
            kind=PimCmdKind.ADD, bits=obj_a.bits,
            inputs=(obj_a.layout, obj_b.layout), dest=dest.layout,
            scalar=None, signed=obj_b.dtype.signed,
        )
        cost, energy = device.pipeline.cost_and_energy(args)
        assert cost == device.perf.cost_of(args)
        assert energy == device.energy.command_energy(device.perf.cost_of(args))

    def test_microcoded_scalar_values_are_distinct_keys(self):
        # Bit-serial scalar microprograms depend on the scalar's bits:
        # different masked scalars must not share an entry.
        device = _analytic(bitserial_config(4))
        obj_a, _, dest = _vectors(device)
        device.execute(PimCmdKind.ADD_SCALAR, (obj_a,), dest, scalar=5)
        device.execute(PimCmdKind.ADD_SCALAR, (obj_a,), dest, scalar=6)
        assert device.pipeline.misses == 2
        # ... but a repeated scalar is a hit.
        device.execute(PimCmdKind.ADD_SCALAR, (obj_a,), dest, scalar=5)
        assert device.pipeline.hits == 1

    def test_word_alu_scalars_share_an_entry(self):
        # Fulcrum's word-ALU cost is scalar-independent, and its backend
        # says so (cost_memo_param -> None): any scalar shares the entry.
        device = _analytic(fulcrum_config(4))
        obj_a, _, dest = _vectors(device)
        device.execute(PimCmdKind.ADD_SCALAR, (obj_a,), dest, scalar=5)
        device.execute(PimCmdKind.ADD_SCALAR, (obj_a,), dest, scalar=999_999)
        assert device.pipeline.misses == 1
        assert device.pipeline.hits == 1
        # The class is genuinely cost-equivalent: a fresh derivation for
        # the second scalar matches what the memo served.
        from repro.perf.base import CommandArgs

        args = CommandArgs(
            kind=PimCmdKind.ADD_SCALAR, bits=obj_a.bits,
            inputs=(obj_a.layout,), dest=dest.layout,
            scalar=999_999, signed=obj_a.dtype.signed,
        )
        assert device.pipeline.cost_and_energy(args)[0] == device.perf.cost_of(args)

    def test_shift_amounts_are_distinct_keys(self):
        device = _analytic(bitserial_config(4))
        obj_a, _, dest = _vectors(device)
        device.execute(PimCmdKind.SHIFT_LEFT, (obj_a,), dest, scalar=1)
        device.execute(PimCmdKind.SHIFT_LEFT, (obj_a,), dest, scalar=2)
        assert device.pipeline.misses == 2


class TestEscapeHatch:
    def test_env_disables_memoization(self, monkeypatch):
        monkeypatch.setenv(MEMO_DISABLE_ENV, "1")
        assert not memo_enabled()
        device = _analytic(bitserial_config(4))
        assert not device.pipeline.enabled
        obj_a, obj_b, dest = _vectors(device)
        for _ in range(3):
            device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
        assert len(device.pipeline) == 0
        assert device.pipeline.hits == 0 and device.pipeline.misses == 0

    def test_explicit_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv(MEMO_DISABLE_ENV, "1")
        device = _analytic(bitserial_config(4))
        pipeline = CostPipeline(
            device.perf, device.energy, device.pipeline.backend, enabled=True
        )
        assert pipeline.enabled

    def test_disabled_run_is_byte_identical(self, monkeypatch):
        def run(disable: bool):
            if disable:
                monkeypatch.setenv(MEMO_DISABLE_ENV, "1")
            else:
                monkeypatch.delenv(MEMO_DISABLE_ENV, raising=False)
            device = _analytic(bitserial_config(4))
            obj_a, obj_b, dest = _vectors(device)
            for scalar in (3, 3, 9, 3):
                device.execute(PimCmdKind.ADD_SCALAR, (obj_a,), dest, scalar=scalar)
                device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
                device.execute(PimCmdKind.REDSUM, (dest,))
            return device.stats

        memoized = run(disable=False)
        plain = run(disable=True)
        assert memoized.snapshot() == plain.snapshot()
        assert memoized.commands == plain.commands


class TestSuiteTransparency:
    """The acceptance claim: suite JSON is byte-identical either way."""

    KEYS = ("vecadd", "kmeans", "histogram")

    @staticmethod
    def _suite_json(monkeypatch, disable: bool) -> str:
        from repro.experiments.runner import export_suite_json, run_suite

        if disable:
            monkeypatch.setenv(MEMO_DISABLE_ENV, "1")
        else:
            monkeypatch.delenv(MEMO_DISABLE_ENV, raising=False)
        suite = run_suite(
            keys=TestSuiteTransparency.KEYS, use_cache=False
        )
        return export_suite_json(suite)

    def test_reduced_suite_byte_identical(self, monkeypatch):
        memoized = self._suite_json(monkeypatch, disable=False)
        plain = self._suite_json(monkeypatch, disable=True)
        assert memoized == plain

    def test_bus_stream_identical(self, monkeypatch):
        def stream(disable: bool):
            if disable:
                monkeypatch.setenv(MEMO_DISABLE_ENV, "1")
            else:
                monkeypatch.delenv(MEMO_DISABLE_ENV, raising=False)
            bus = EventBus()
            sink = bus.subscribe(RingBufferSink())
            device = PimDevice(
                bitserial_config(4), functional=False, bus=bus
            )
            obj_a, obj_b, dest = _vectors(device)
            for _ in range(4):
                device.execute(PimCmdKind.ADD, (obj_a, obj_b), dest)
                device.execute(PimCmdKind.MUL_SCALAR, (obj_a,), dest, scalar=7)
            return [
                (e.name, e.cat, e.ph, e.ts_ns, e.dur_ns, e.args)
                for e in sink.events
            ]

        assert stream(False) == stream(True)
