"""Vectorized histogram pricing: the byte-identity contract.

docs/VECTORIZATION.md promises that a ``vector=True`` run produces
*bit-identical* accumulators and serialized results to the scalar path,
for every registered backend (plug-ins included), by replicating the
scalar tracker's exact float-summation order.  These tests pin that
contract -- and, just as importantly, pin that the equivalence checker
*notices* when it is broken (iterated-add vs premultiplied totals are
different doubles, and must be reported, not absorbed).
"""

import pickle

import pytest

from repro.arch import iter_backends
from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuModel
from repro.bench.registry import make_benchmark
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.core.errors import PimTypeError
from repro.core.stats import StatsTracker
from repro.perf.vector import (
    VectorEquivalenceError,
    VectorStatsTracker,
    _ordered_sum,
    tracker_mismatches,
    verify_equivalence,
)

BACKENDS = list(iter_backends())


def _run_pair(
    backend, key="vecadd", num_ranks=2, paper_scale=False,
    enforce_capacity=True,
):
    """One benchmark through the scalar and the vector path."""
    bench = make_benchmark(key, paper_scale=paper_scale)
    scalar = PimDevice(
        backend.make_config(num_ranks), functional=False,
        enforce_capacity=enforce_capacity,
    )
    scalar_result = bench.run(scalar, CpuModel(), GpuModel())
    bench = make_benchmark(key, paper_scale=paper_scale)
    vector = PimDevice(
        backend.make_config(num_ranks), functional=False, vector=True,
        enforce_capacity=enforce_capacity,
    )
    vector_result = bench.run(vector, CpuModel(), GpuModel())
    return scalar, scalar_result, vector, vector_result


class TestOrderedSum:
    def test_matches_sequential_python_sum(self):
        import numpy as np

        values = [0.1, 0.2, 0.30000000000000004, 1e18, -1e18, 3.5e-9]
        expected = 0.0
        for v in values:
            expected += v
        got = _ordered_sum(
            np.asarray(values), np.ones(len(values), dtype=np.int64)
        )
        assert got == expected  # bit-equal, not approx

    def test_reps_replicate_iterated_add(self):
        import numpy as np

        # 0.1 added ten times is NOT 1.0 in binary64; the vector path
        # must reproduce the iterated result, not the multiplied one.
        expected = 0.0
        for _ in range(10):
            expected += 0.1
        got = _ordered_sum(
            np.asarray([0.1]), np.asarray([10], dtype=np.int64)
        )
        assert got == expected
        assert got != 1.0


@pytest.mark.parametrize("backend", BACKENDS, ids=[b.id for b in BACKENDS])
class TestByteIdentityEveryBackend:
    """vecadd on every registered backend: zero bit differences."""

    def test_trackers_bit_identical(self, backend):
        scalar, _, vector, _ = _run_pair(backend)
        assert tracker_mismatches(vector.stats, scalar.stats) == []

    def test_results_and_payloads_identical(self, backend):
        import json

        scalar, scalar_result, vector, vector_result = _run_pair(backend)
        verify_equivalence(
            vector.stats, scalar.stats, vector_result, scalar_result,
            label=f"vecadd on {backend.id}",
        )
        assert json.dumps(vector_result.to_dict()) == json.dumps(
            scalar_result.to_dict()
        )


class TestByteIdentityAcrossBenchmarks:
    """Heavier kernels (replay traces, batches, host phases) stay exact."""

    @pytest.mark.parametrize("key", ["histogram", "kmeans", "gemv", "aes-enc"])
    def test_benchmark_bit_identical(self, key):
        from repro.arch import resolve_backend

        backend = resolve_backend("fulcrum")
        scalar, scalar_result, vector, vector_result = _run_pair(
            backend, key=key, enforce_capacity=False
        )
        verify_equivalence(
            vector.stats, scalar.stats, vector_result, scalar_result,
            label=f"{key} on fulcrum",
        )

    def test_paper_scale_bitserial(self):
        from repro.arch import resolve_backend

        backend = resolve_backend("bitserial")
        scalar, scalar_result, vector, vector_result = _run_pair(
            backend, key="vecadd", num_ranks=4, paper_scale=True,
            enforce_capacity=False,
        )
        verify_equivalence(
            vector.stats, scalar.stats, vector_result, scalar_result,
            label="vecadd on bitserial (paper scale)",
        )


class TestEquivalenceCheckerCatchesDivergence:
    """a+a+...+a != n*a: the checker must report it, never absorb it."""

    def test_iterated_vs_premultiplied_is_a_mismatch(self):
        iterated = StatsTracker()
        iterated.record_command_batch(
            PimCmdKind.ADD, "add.int32.v", 0.1, 0.1, count=10
        )
        premultiplied = StatsTracker()
        premultiplied.record_command(
            PimCmdKind.ADD, "add.int32.v", 1.0, 1.0, count=10
        )
        mismatches = tracker_mismatches(iterated, premultiplied)
        assert mismatches, "float-order divergence was silently absorbed"
        assert any("add.int32.v" in m for m in mismatches)

    def test_vector_batch_follows_iterated_semantics(self):
        scalar = StatsTracker()
        scalar.record_command_batch(
            PimCmdKind.ADD, "add.int32.v", 0.1, 0.1, count=10
        )
        vector = VectorStatsTracker()
        vector.record_command_batch(
            PimCmdKind.ADD, "add.int32.v", 0.1, 0.1, count=10
        )
        assert tracker_mismatches(vector, scalar) == []

    def test_verify_equivalence_raises_with_label(self):
        a = StatsTracker()
        a.record_command(PimCmdKind.ADD, "add.int32.v", 1.0, 1.0)
        b = VectorStatsTracker()
        b.record_command(PimCmdKind.ADD, "add.int32.v", 1.0 + 1e-12, 1.0)
        with pytest.raises(VectorEquivalenceError, match="my-cell"):
            verify_equivalence(b, a, label="my-cell")

    def test_verify_equivalence_passes_on_equal(self):
        a = StatsTracker()
        a.record_command(PimCmdKind.ADD, "add.int32.v", 1.0, 1.0)
        a.record_copy("h2d", 64, 2.0, 3.0)
        a.record_host(5.0, 7.0)
        b = VectorStatsTracker()
        b.record_command(PimCmdKind.ADD, "add.int32.v", 1.0, 1.0)
        b.record_copy("h2d", 64, 2.0, 3.0)
        b.record_host(5.0, 7.0)
        verify_equivalence(b, a, label="equal")


class TestReplayGroups:
    """recorded_trace/replay_trace compress to O(1) markers, same sums."""

    def _fill(self, tracker, times):
        with tracker.recorded_trace() as trace:
            tracker.record_command(
                PimCmdKind.ADD, "add.int32.v", 0.1, 0.2
            )
            tracker.record_copy("d2d", 8, 0.3, 0.4)
            tracker.record_host(0.5, 0.6)
        tracker.replay_trace(trace, times=times)

    @pytest.mark.parametrize("times", [0, 1, 7])
    def test_replay_matches_scalar(self, times):
        scalar = StatsTracker()
        self._fill(scalar, times)
        vector = VectorStatsTracker()
        self._fill(vector, times)
        assert tracker_mismatches(vector, scalar) == []

    def test_vector_trace_is_compact(self):
        vector = VectorStatsTracker()
        with vector.recorded_trace() as trace:
            vector.record_command(PimCmdKind.ADD, "add.int32.v", 0.1, 0.2)
        before = vector.total_command_count
        vector.replay_trace(trace, times=1000)
        assert vector.total_command_count == before + 1000 * before


class TestSealedTracker:
    def _sealed(self):
        tracker = VectorStatsTracker()
        tracker.record_command(PimCmdKind.ADD, "add.int32.v", 1.5, 2.5)
        tracker.record_copy("h2d", 32, 1.0, 1.0)
        tracker.seal()
        return tracker

    def test_seal_is_pickleable_and_stable(self):
        tracker = self._sealed()
        clone = pickle.loads(pickle.dumps(tracker))
        assert tracker_mismatches(clone, tracker) == []
        assert clone.sealed

    def test_sealed_rejects_new_records(self):
        tracker = self._sealed()
        with pytest.raises(RuntimeError, match="sealed"):
            tracker.record_command(PimCmdKind.ADD, "add.int32.v", 1.0, 1.0)
        with pytest.raises(RuntimeError, match="sealed"):
            tracker.record_copy("h2d", 1, 1.0, 1.0)

    def test_reset_unseals(self):
        tracker = self._sealed()
        tracker.reset()
        assert not tracker.sealed
        assert tracker.total_command_count == 0
        tracker.record_command(PimCmdKind.ADD, "add.int32.v", 1.0, 1.0)
        assert tracker.total_command_count == 1


class TestVectorDeviceValidation:
    """Vector mode is analytic-only; incompatible features fail loudly."""

    def _backend(self):
        from repro.arch import resolve_backend

        return resolve_backend("fulcrum")

    def test_functional_rejected(self):
        with pytest.raises(PimTypeError, match="analytic"):
            PimDevice(
                self._backend().make_config(2), functional=True, vector=True
            )

    def test_bus_rejected(self):
        from repro.obs import EventBus

        with pytest.raises(PimTypeError, match="bus"):
            PimDevice(
                self._backend().make_config(2),
                functional=False, bus=EventBus(), vector=True,
            )
        device = PimDevice(
            self._backend().make_config(2), functional=False, vector=True
        )
        with pytest.raises(PimTypeError, match="bus"):
            device.attach_bus(EventBus())

    def test_faults_rejected(self):
        from repro.faults.models import BitFlipFault, FaultPlan

        plan = FaultPlan(seed=1, faults=(BitFlipFault(rate=1e-3),))
        with pytest.raises(PimTypeError, match="fault"):
            PimDevice(
                self._backend().make_config(2),
                functional=False, faults=plan, vector=True,
            )
