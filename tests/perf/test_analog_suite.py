"""The analog variant across the benchmark suite (analytic)."""

import pytest

from repro.bench.registry import make_benchmark
from repro.config.device import PimDeviceType

from tests.conftest import make_device

KEYS = ("vecadd", "axpy", "brightness", "kmeans", "linreg")


@pytest.mark.parametrize("key", KEYS)
def test_analog_runs_every_benchmark(key):
    device = make_device(PimDeviceType.ANALOG_BITSIMD_V, functional=False)
    result = make_benchmark(key).run(device)
    assert result.stats.kernel_time_ns > 0
    assert result.stats.kernel_energy_nj > 0


@pytest.mark.parametrize("key", KEYS)
def test_analog_slower_than_digital_bitserial(key):
    times = {}
    for device_type in (PimDeviceType.BITSIMD_V_AP,
                        PimDeviceType.ANALOG_BITSIMD_V):
        device = make_device(device_type, functional=False)
        make_benchmark(key).run(device)
        times[device_type] = device.stats.kernel_time_ns
    assert times[PimDeviceType.ANALOG_BITSIMD_V] > \
        2 * times[PimDeviceType.BITSIMD_V_AP], key


def test_analog_energy_is_activation_dominated():
    """TRA compute has no per-lane gates: all energy is row cycles."""
    from repro.analysis import energy_breakdown
    device = make_device(PimDeviceType.ANALOG_BITSIMD_V, functional=False)
    make_benchmark("vecadd").run(device)
    breakdown = energy_breakdown(device)
    assert breakdown.lane_logic_mj == 0.0
    assert breakdown.alu_mj == 0.0
    assert breakdown.row_activation_mj > 0


def test_analog_functional_verification_full_benchmark():
    device = make_device(PimDeviceType.ANALOG_BITSIMD_V)
    result = make_benchmark("kmeans").run(device)
    assert result.verified is True
