"""Tests for the data-movement model."""

import pytest

from repro.config.device import PimDeviceType
from repro.config.presets import make_device_config
from repro.perf import make_perf_model
from repro.perf.banklevel import BankLevelPerfModel
from repro.perf.bitserial import BitSerialPerfModel
from repro.perf.datamovement import DataMovementModel
from repro.perf.fulcrum import FulcrumPerfModel


class TestHostTransfers:
    def test_linear_in_bytes(self):
        model = DataMovementModel(make_device_config(PimDeviceType.FULCRUM, 4))
        assert model.host_transfer_ns(2048) == pytest.approx(
            2 * model.host_transfer_ns(1024)
        )

    def test_scales_with_ranks(self):
        few = DataMovementModel(make_device_config(PimDeviceType.FULCRUM, 4))
        many = DataMovementModel(make_device_config(PimDeviceType.FULCRUM, 32))
        assert many.host_transfer_ns(1 << 30) == pytest.approx(
            few.host_transfer_ns(1 << 30) / 8
        )


class TestDeviceTransfers:
    def test_local_copy_is_parallel(self):
        """In-subarray row copies run across all cores at once."""
        model = DataMovementModel(
            make_device_config(PimDeviceType.BITSIMD_V_AP, 32)
        )
        local = model.device_transfer_ns(1 << 30)
        gather = model.device_gather_ns(1 << 30)
        assert local < gather / 100

    def test_gather_bounded_by_channel_bandwidth(self):
        config = make_device_config(PimDeviceType.FULCRUM, 32)
        model = DataMovementModel(config)
        assert model.device_gather_ns(1 << 30) == pytest.approx(
            model.host_transfer_ns(1 << 30)
        )

    def test_bank_level_pays_gdl_on_local_copy(self):
        subarray = DataMovementModel(
            make_device_config(PimDeviceType.BITSIMD_V_AP, 4)
        )
        bank = DataMovementModel(
            make_device_config(PimDeviceType.BANK_LEVEL, 4)
        )
        # Per row moved, the bank-level copy adds GDL beats; fewer cores
        # also means more rows per core.
        assert bank.device_transfer_ns(1 << 24) > subarray.device_transfer_ns(1 << 24)

    def test_zero_bytes(self):
        model = DataMovementModel(make_device_config(PimDeviceType.FULCRUM, 4))
        assert model.device_transfer_ns(0) == 0.0


class TestFactory:
    @pytest.mark.parametrize("device_type,expected", [
        (PimDeviceType.BITSIMD_V_AP, BitSerialPerfModel),
        (PimDeviceType.FULCRUM, FulcrumPerfModel),
        (PimDeviceType.BANK_LEVEL, BankLevelPerfModel),
    ])
    def test_make_perf_model(self, device_type, expected):
        model = make_perf_model(make_device_config(device_type, 4))
        assert isinstance(model, expected)
