"""Golden per-op cost tables: regression pins on the microprogram library.

Any change to a microprogram's row/logic counts shifts every bit-serial
latency and energy number downstream; these goldens make such changes
explicit and reviewable.
"""

import pytest

from repro.microcode.programs import get_program

# (name, bits, param) -> (row_reads, row_writes, logic_ops, popcount_rows)
GOLDEN_COSTS = {
    ("copy", 32, None): (32, 32, 0, 0),
    ("not", 32, None): (32, 32, 32, 0),
    ("and", 32, None): (64, 32, 32, 0),
    ("xor", 32, None): (64, 32, 32, 0),
    ("xnor", 32, None): (64, 32, 32, 0),
    ("add", 32, None): (64, 32, 193, 0),
    ("sub", 32, None): (64, 32, 225, 0),
    ("mul", 32, None): (2112, 1120, 7296, 0),
    ("eq", 32, None): (64, 1, 65, 0),
    ("ne", 32, None): (64, 1, 66, 0),
    ("abs", 32, None): (33, 32, 97, 0),
    ("popcount", 32, None): (224, 198, 422, 0),
    ("redsum", 32, None): (32, 0, 0, 32),
    ("select", 32, None): (65, 32, 32, 0),
    ("lt", 32, 1): (64, 1, 129, 0),
    ("min", 32, 1): (128, 32, 161, 0),
    ("broadcast", 32, 0): (0, 32, 32, 0),
    ("shift_left", 32, 4): (28, 32, 4, 0),
    ("shift_right", 32, 4): (28, 32, 1, 0),
}


@pytest.mark.parametrize("key", sorted(GOLDEN_COSTS, key=str),
                         ids=lambda k: f"{k[0]}.{k[1]}")
def test_golden_cost(key):
    name, bits, param = key
    cost = get_program(name, bits, param).cost
    assert (
        cost.num_row_reads,
        cost.num_row_writes,
        cost.num_logic_ops,
        cost.num_popcount_rows,
    ) == GOLDEN_COSTS[key], (
        f"microprogram {name}.{bits} cost changed; update the golden "
        "table and EXPERIMENTS.md if intentional"
    )


def test_derived_bitserial_add_latency():
    """The headline bit-serial add.32 latency: ~3.8 us per row group."""
    cost = get_program("add", 32).cost
    latency_ns = (cost.num_row_reads * 28.5 + cost.num_row_writes * 43.5
                  + cost.num_logic_ops * 3.0)
    assert latency_ns == pytest.approx(3795.0, rel=0.01)


def test_scalar_program_cost_depends_on_value():
    dense = get_program("mul_scalar", 32, (1 << 32) - 1).cost
    sparse = get_program("mul_scalar", 32, 1).cost
    assert dense.num_row_ops > 4 * sparse.num_row_ops
