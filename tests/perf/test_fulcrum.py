"""Tests for the Fulcrum performance model."""

import pytest

from repro.config.device import PimAllocType
from repro.config.presets import bitserial_config, fulcrum_config
from repro.core.commands import PimCmdKind
from repro.core.errors import PimTypeError
from repro.core.layout import plan_layout
from repro.perf.base import CommandArgs
from repro.perf.fulcrum import SWAR_POPCOUNT_CYCLES, FulcrumPerfModel


@pytest.fixture
def model():
    return FulcrumPerfModel(fulcrum_config(4))


def make_args(model, kind, num_elements, bits=32, scalar=None):
    plan = plan_layout(model.config, num_elements, bits, PimAllocType.HORIZONTAL)
    dest = None
    if not kind.spec.produces_scalar:
        result_bits = 1 if kind.spec.produces_bool else bits
        dest = plan_layout(
            model.config, num_elements, result_bits, PimAllocType.HORIZONTAL
        )
    return CommandArgs(
        kind=kind, bits=bits,
        inputs=(plan,) * kind.spec.num_vector_inputs, dest=dest, scalar=scalar,
    )


class TestRowGranularModel:
    def test_listing3_single_row_add(self, model):
        """2 row reads + 1 row write + 256 ALU cycles = 1.661 us."""
        cost = model.cost_of(make_args(model, PimCmdKind.ADD, 2048))
        timing = model.config.dram.timing
        cycle = model.config.arch.fulcrum_cycle_ns
        expected = 2 * timing.row_read_ns + timing.row_write_ns + 256 * cycle
        assert cost.latency_ns == pytest.approx(expected)
        assert cost.latency_ns / 1e3 == pytest.approx(1.660, rel=0.01)

    def test_rows_assumed_full(self, model):
        one = model.cost_of(make_args(model, PimCmdKind.ADD, 1))
        full_row = model.cost_of(
            make_args(model, PimCmdKind.ADD, model.config.num_cores * 256)
        )
        assert one.latency_ns == pytest.approx(full_row.latency_ns)

    def test_latency_scales_with_rows(self, model):
        per_core_row = model.config.num_cores * 256
        one = model.cost_of(make_args(model, PimCmdKind.ADD, per_core_row))
        four = model.cost_of(make_args(model, PimCmdKind.ADD, per_core_row * 4))
        assert four.latency_ns == pytest.approx(4 * one.latency_ns)

    def test_mul_costs_same_as_add(self, model):
        """One full scalar multiply per ALU cycle (Section VII)."""
        add = model.cost_of(make_args(model, PimCmdKind.ADD, 2048))
        mul = model.cost_of(make_args(model, PimCmdKind.MUL, 2048))
        assert mul.latency_ns == pytest.approx(add.latency_ns)

    def test_popcount_uses_swar_cycles(self, model):
        pop = model.cost_of(make_args(model, PimCmdKind.POPCOUNT, 2048))
        notop = model.cost_of(make_args(model, PimCmdKind.NOT, 2048))
        cycle = model.config.arch.fulcrum_cycle_ns
        extra = 256 * (SWAR_POPCOUNT_CYCLES - 1) * cycle
        assert pop.latency_ns == pytest.approx(notop.latency_ns + extra)

    def test_int8_simd_packs_four_per_cycle(self, model):
        int32 = model.cost_of(make_args(model, PimCmdKind.NOT, 2048, bits=32))
        int8 = model.cost_of(make_args(model, PimCmdKind.NOT, 2048, bits=8))
        # Same single row, but 4x the elements per row at 4x per cycle.
        assert int8.latency_ns == pytest.approx(int32.latency_ns)

    def test_broadcast_skips_alu(self, model):
        cost = model.cost_of(make_args(
            model, PimCmdKind.BROADCAST, 2048, scalar=5,
        ))
        assert cost.alu_word_ops == 0
        assert cost.latency_ns == pytest.approx(
            model.config.dram.timing.row_write_ns
        )

    def test_walker_bits_counted(self, model):
        cost = model.cost_of(make_args(model, PimCmdKind.ADD, 2048))
        assert cost.walker_bits == 3 * 8192 * 2048  # 3 rows x width x cores


def test_rejects_wrong_device_type():
    with pytest.raises(PimTypeError):
        FulcrumPerfModel(bitserial_config(4))
