"""Tests for the bank-level performance model."""

import pytest

from repro.config.device import PimAllocType, PimDeviceType
from repro.config.presets import bank_level_config, fulcrum_config, make_device_config
from repro.core.commands import PimCmdKind
from repro.core.errors import PimTypeError
from repro.core.layout import plan_layout
from repro.perf.banklevel import BankLevelPerfModel


def make_args(model, kind, num_elements, bits=32, scalar=None):
    from repro.perf.base import CommandArgs
    plan = plan_layout(model.config, num_elements, bits, PimAllocType.HORIZONTAL)
    dest = None
    if not kind.spec.produces_scalar:
        result_bits = 1 if kind.spec.produces_bool else bits
        dest = plan_layout(
            model.config, num_elements, result_bits, PimAllocType.HORIZONTAL
        )
    return CommandArgs(
        kind=kind, bits=bits,
        inputs=(plan,) * kind.spec.num_vector_inputs, dest=dest, scalar=scalar,
    )


@pytest.fixture
def model():
    return BankLevelPerfModel(bank_level_config(4))


class TestGdlSerialization:
    def test_gdl_beats_per_row(self, model):
        assert model.gdl_beats_per_row() == 8192 // 128

    def test_every_row_pays_gdl(self, model):
        timing = model.config.dram.timing
        cost = model.cost_of(make_args(model, PimCmdKind.ADD, 512))
        gdl_ns = model.gdl_beats_per_row() * timing.tccd_ns
        cycle = model.config.arch.bank_cycle_ns
        simd = model.config.arch.bank_alu_bits // 32
        expected = (
            2 * timing.row_read_ns + timing.row_write_ns
            + 3 * gdl_ns
            + (256 // simd) * cycle
        )
        assert cost.latency_ns == pytest.approx(expected)

    def test_wider_gdl_is_faster(self):
        narrow = BankLevelPerfModel(
            make_device_config(PimDeviceType.BANK_LEVEL, 4, gdl_width_bits=64)
        )
        wide = BankLevelPerfModel(
            make_device_config(PimDeviceType.BANK_LEVEL, 4, gdl_width_bits=256)
        )
        n = narrow.config.num_cores * 256 * 8
        slow = narrow.cost_of(make_args(narrow, PimCmdKind.ADD, n))
        fast = wide.cost_of(make_args(wide, PimCmdKind.ADD, n))
        assert fast.latency_ns < slow.latency_ns

    def test_gdl_bits_counted_for_energy(self, model):
        cost = model.cost_of(make_args(model, PimCmdKind.ADD, 512))
        assert cost.gdl_bits == 3 * 8192 * 512  # 3 rows x width x cores

    def test_single_cycle_popcount(self, model):
        """Bank-level popcount is one cycle (Section VII)."""
        pop = model.cost_of(make_args(model, PimCmdKind.POPCOUNT, 512))
        notop = model.cost_of(make_args(model, PimCmdKind.NOT, 512))
        assert pop.latency_ns == pytest.approx(notop.latency_ns)

    def test_fewer_cores_than_fulcrum(self, model):
        fulcrum = fulcrum_config(4)
        assert model.config.num_cores < fulcrum.num_cores


def test_rejects_wrong_device_type():
    with pytest.raises(PimTypeError):
        BankLevelPerfModel(fulcrum_config(4))
