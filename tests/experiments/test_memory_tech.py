"""Tests for the DDR4-vs-HBM and problem-size experiments."""

import pytest

from repro.config.device import PimDeviceType
from repro.config.hbm import hbm_device_config, hbm_geometry
from repro.experiments import (
    batching_comparison,
    format_memory_tech_table,
    format_problem_size_table,
    memory_technology_comparison,
    problem_size_sweep,
    utilization_knee,
)


class TestHbmConfig:
    def test_pseudo_channels(self):
        geometry = hbm_geometry(num_stacks=2)
        assert geometry.num_ranks == 32
        assert geometry.gdl_width_bits == 256

    def test_aggregate_bandwidth_per_stack(self):
        geometry = hbm_geometry(num_stacks=1)
        # 16 pseudo-channels x 25.6 GB/s ~ 410 GB/s per stack.
        assert geometry.aggregate_bandwidth_gbps == pytest.approx(409.6)

    def test_device_config(self):
        config = hbm_device_config(PimDeviceType.BANK_LEVEL, 4)
        assert config.cols_per_core == 4096
        assert config.dram.timing.tccd_ns == 2.0


class TestMemoryTechComparison:
    @pytest.fixture(scope="class")
    def points(self):
        return memory_technology_comparison()

    def test_transfers_always_faster_on_hbm(self, points):
        for device_type in (PimDeviceType.BITSIMD_V_AP,
                            PimDeviceType.FULCRUM, PimDeviceType.BANK_LEVEL):
            ddr = next(p for p in points if p.device_type is device_type
                       and p.technology == "ddr4" and p.operation == "add")
            hbm = next(p for p in points if p.device_type is device_type
                       and p.technology == "hbm" and p.operation == "add")
            assert hbm.transfer_ms < ddr.transfer_ms

    def test_bank_level_kernel_gains_from_wider_gdl(self, points):
        ddr = next(p for p in points
                   if p.device_type is PimDeviceType.BANK_LEVEL
                   and p.technology == "ddr4" and p.operation == "add")
        hbm = next(p for p in points
                   if p.device_type is PimDeviceType.BANK_LEVEL
                   and p.technology == "hbm" and p.operation == "add")
        assert hbm.latency_ms < ddr.latency_ms

    def test_tradeoffs_do_change(self, points):
        """Section IX's prediction: the best architecture can change.

        Fulcrum loses kernel performance on this HBM configuration
        (fewer, narrower subarrays) while bank-level gains -- the ranking
        moves exactly as the paper anticipates it might.
        """
        fulcrum_ddr = next(p for p in points
                           if p.device_type is PimDeviceType.FULCRUM
                           and p.technology == "ddr4" and p.operation == "add")
        fulcrum_hbm = next(p for p in points
                           if p.device_type is PimDeviceType.FULCRUM
                           and p.technology == "hbm" and p.operation == "add")
        assert fulcrum_hbm.latency_ms > fulcrum_ddr.latency_ms

    def test_format(self, points):
        text = format_memory_tech_table(points)
        assert "ddr4" in text and "hbm" in text


class TestProblemSizeSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return problem_size_sweep()

    def test_latency_flat_below_the_knee(self, points):
        for device_type in (PimDeviceType.BITSIMD_V_AP,
                            PimDeviceType.FULCRUM, PimDeviceType.BANK_LEVEL):
            series = sorted(
                (p for p in points if p.device_type is device_type),
                key=lambda p: p.num_elements,
            )
            assert series[0].latency_ms == pytest.approx(series[1].latency_ms)

    def test_knee_ordering_follows_parallelism(self, points):
        """More processing elements -> larger problems are still free."""
        knees = {
            d: utilization_knee(points, d)
            for d in (PimDeviceType.BITSIMD_V_AP, PimDeviceType.FULCRUM,
                      PimDeviceType.BANK_LEVEL)
        }
        assert knees[PimDeviceType.BITSIMD_V_AP] > knees[PimDeviceType.FULCRUM]
        assert knees[PimDeviceType.FULCRUM] > knees[PimDeviceType.BANK_LEVEL]

    def test_format(self, points):
        assert "Bit-Serial" in format_problem_size_table(points)


class TestBatching:
    def test_batching_never_hurts(self):
        for point in batching_comparison():
            assert point.batching_gain >= 1.0

    def test_underutilized_devices_gain_most(self):
        gains = {p.device_type: p.batching_gain for p in batching_comparison()}
        assert gains[PimDeviceType.BITSIMD_V_AP] > gains[PimDeviceType.BANK_LEVEL]
