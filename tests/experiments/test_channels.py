"""Tests for the channel-sharing refinement."""

import pytest

from repro.config.dram import DramGeometry, DramSpec
from repro.experiments.channels import channel_sensitivity, format_channel_table


class TestGeometryChannels:
    def test_default_is_rank_independent(self):
        geometry = DramGeometry(num_ranks=32)
        assert geometry.transfer_parallelism == 32

    def test_channel_cap_applies(self):
        geometry = DramGeometry(num_ranks=32, num_channels=12)
        assert geometry.transfer_parallelism == 12

    def test_more_channels_than_ranks_is_rank_bound(self):
        geometry = DramGeometry(num_ranks=4, num_channels=12)
        assert geometry.transfer_parallelism == 4

    def test_transfer_time_scales_with_cap(self):
        free = DramSpec(geometry=DramGeometry(num_ranks=32))
        capped = DramSpec(geometry=DramGeometry(num_ranks=32, num_channels=8))
        assert capped.data_transfer_ns(1 << 30) == pytest.approx(
            4 * free.data_transfer_ns(1 << 30)
        )

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            DramGeometry(num_channels=0)


class TestChannelSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return channel_sensitivity(keys=("vecadd", "brightness"))

    def test_fewer_channels_never_help(self, points):
        def speedup(name, channels):
            return next(p.speedup_cpu_total for p in points
                        if p.benchmark == name and p.num_channels == channels)
        for name in ("Vector Addition", "Brightness"):
            assert speedup(name, None) > speedup(name, 12) > speedup(name, 4)

    def test_transfer_time_grows_inversely(self, points):
        def copy_ms(name, channels):
            return next(p.copy_ms for p in points
                        if p.benchmark == name and p.num_channels == channels)
        assert copy_ms("Vector Addition", 4) == pytest.approx(
            8 * copy_ms("Vector Addition", None), rel=0.01
        )

    def test_realistic_channels_erase_streaming_wins(self, points):
        """The Section V-C warning quantified: at the EPYC's 12 channels,
        the transfer-bound vector-add win over the CPU disappears."""
        vecadd_12 = next(p.speedup_cpu_total for p in points
                         if p.benchmark == "Vector Addition"
                         and p.num_channels == 12)
        assert vecadd_12 < 1.0

    def test_format(self, points):
        text = format_channel_table(points)
        assert "ch=rank" in text and "ch=  12" in text
