"""Tests for suite-result serialization."""

import json

import pytest

from repro.experiments.runner import export_suite_json, run_suite


@pytest.fixture(scope="module")
def suite():
    return run_suite(num_ranks=4, paper_scale=False, keys=("vecadd", "knn"),
                     functional=True)


class TestResultDict:
    def test_fields_present(self, suite):
        from repro.config.device import PimDeviceType
        record = suite.result("vecadd", PimDeviceType.FULCRUM).to_dict()
        assert record["benchmark"] == "Vector Addition"
        assert record["device"] == "fulcrum"
        assert record["verified"] is True
        assert record["kernel_time_ms"] > 0
        assert record["op_counts"] == {"add": 1}
        assert record["events"]["row_activations"] > 0

    def test_breakdown_sums(self, suite):
        from repro.config.device import PimDeviceType
        record = suite.result("knn", PimDeviceType.BANK_LEVEL).to_dict()
        assert sum(record["breakdown"].values()) == pytest.approx(100.0)


class TestExportJson:
    def test_roundtrips_through_json(self, suite):
        payload = json.loads(export_suite_json(suite))
        assert payload["num_ranks"] == 4
        assert payload["paper_scale"] is False
        assert len(payload["results"]) == 2 * 3

    def test_records_sorted_by_figure_order(self, suite):
        payload = json.loads(export_suite_json(suite))
        names = [r["benchmark"] for r in payload["results"][:3]]
        assert names == ["Vector Addition"] * 3
