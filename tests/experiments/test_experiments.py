"""Tests for the figure-regeneration drivers (small-scale runs)."""

import pytest

from repro.experiments import (
    breakdown_table,
    energy_table,
    format_breakdown_table,
    format_energy_table,
    format_opmix_table,
    format_speedup_table,
    format_table1,
    format_table2,
    geometric_mean,
    gmean_summary,
    opmix_table,
    run_suite,
    speedup_table,
)


@pytest.fixture(scope="module")
def small_suite():
    """One small-scale suite pass shared by all driver tests."""
    return run_suite(num_ranks=4, paper_scale=False)


class TestRunner:
    def test_covers_full_matrix(self, small_suite):
        assert len(small_suite.results) == 18 * 3
        assert len(small_suite.benchmark_keys()) == 18

    def test_cache_returns_same_object(self, small_suite):
        again = run_suite(num_ranks=4, paper_scale=False)
        assert again is small_suite

    def test_subset_of_keys(self):
        suite = run_suite(num_ranks=4, paper_scale=False,
                          keys=("vecadd", "axpy"))
        assert len(suite.results) == 2 * 3

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0


class TestSpeedupDriver:
    def test_row_count(self, small_suite):
        rows = speedup_table(small_suite)
        assert len(rows) == 18 * 3

    def test_all_speedups_positive(self, small_suite):
        for row in speedup_table(small_suite):
            assert row.speedup_total > 0
            assert row.speedup_kernel >= row.speedup_total * 0.99

    def test_gmean_per_device(self, small_suite):
        summary = gmean_summary(speedup_table(small_suite))
        from repro.experiments import DEVICE_ORDER
        assert set(summary) == set(DEVICE_ORDER)
        for means in summary.values():
            assert means["kernel"] > 0

    def test_format_contains_gmean(self, small_suite):
        text = format_speedup_table(speedup_table(small_suite))
        assert "Gmean" in text
        assert "Vector Addition" in text


class TestEnergyDriver:
    def test_rows_positive(self, small_suite):
        for row in energy_table(small_suite):
            assert row.reduction_cpu > 0
            assert row.reduction_gpu > 0
            assert row.pim_energy_mj > 0

    def test_format(self, small_suite):
        assert "vs CPU" in format_energy_table(energy_table(small_suite))


class TestBreakdownDriver:
    def test_sums_to_100(self, small_suite):
        for row in breakdown_table(small_suite):
            total = row.data_movement_pct + row.host_pct + row.kernel_pct
            assert total == pytest.approx(100.0, abs=0.1)

    def test_pim_host_benchmarks_show_host_time(self, small_suite):
        rows = breakdown_table(small_suite)
        knn = [r for r in rows if r.benchmark == "KNN"]
        assert all(r.host_pct > 0 for r in knn)

    def test_pure_pim_benchmarks_show_no_host(self, small_suite):
        rows = breakdown_table(small_suite)
        vecadd = [r for r in rows if r.benchmark == "Vector Addition"]
        assert all(r.host_pct == 0 for r in vecadd)

    def test_format(self, small_suite):
        assert "DataMove%" in format_breakdown_table(breakdown_table(small_suite))


class TestOpMixDriver:
    def test_percentages_sum_to_100(self, small_suite):
        for row in opmix_table(small_suite):
            assert sum(row.percentages.values()) == pytest.approx(100.0)

    def test_dominant_ops_match_paper(self, small_suite):
        from repro.core.commands import OpCategory
        rows = {row.benchmark: row for row in opmix_table(small_suite)}
        assert rows["Vector Addition"].dominant() is OpCategory.ADD
        assert rows["Histogram"].percentages[OpCategory.EQ] > 30
        assert rows["AES-Encryption"].percentages[OpCategory.XOR] > 30

    def test_format(self, small_suite):
        text = format_opmix_table(opmix_table(small_suite))
        assert "reduction" in text


class TestTables:
    def test_table1_lists_all_benchmarks(self):
        text = format_table1()
        assert "Vector Addition" in text
        assert "VGG-19" in text
        assert "PIM + Host" in text

    def test_table2_lists_all_architectures(self):
        text = format_table2()
        assert "AMD EPYC 9124" in text
        assert "NVIDIA A100" in text
        assert "Bit-Serial" in text
        assert "Bank-level" in text
