"""Tests for the data-type sensitivity sweep."""

import pytest

from repro.config.device import PimDataType, PimDeviceType
from repro.experiments.dtypes import (
    dtype_sensitivity,
    format_dtype_table,
)

N = 16 * 1024 * 1024


@pytest.fixture(scope="module")
def points():
    return dtype_sensitivity(num_elements=N)


def latency(points, device_type, operation, dtype):
    return next(
        p.latency_ms for p in points
        if p.device_type is device_type and p.operation == operation
        and p.dtype is dtype
    )


class TestBitSerialScaling:
    def test_add_linear_in_width(self, points):
        narrow = latency(points, PimDeviceType.BITSIMD_V_AP, "add",
                         PimDataType.INT8)
        wide = latency(points, PimDeviceType.BITSIMD_V_AP, "add",
                       PimDataType.INT32)
        assert wide / narrow == pytest.approx(4.0, rel=0.15)

    def test_mul_quadratic_in_width(self, points):
        narrow = latency(points, PimDeviceType.BITSIMD_V_AP, "mul",
                         PimDataType.INT8)
        wide = latency(points, PimDeviceType.BITSIMD_V_AP, "mul",
                       PimDataType.INT32)
        assert 10 < wide / narrow < 20  # ~16x


class TestBitParallelPacking:
    def test_fulcrum_width_insensitive(self, points):
        """SIMD packing: narrower elements pack more per cycle."""
        int8 = latency(points, PimDeviceType.FULCRUM, "add", PimDataType.INT8)
        int32 = latency(points, PimDeviceType.FULCRUM, "add", PimDataType.INT32)
        assert int8 == pytest.approx(int32, rel=0.2)

    def test_bank_level_scales_with_row_traffic(self, points):
        """Narrow types halve the rows (and GDL beats) per element."""
        int8 = latency(points, PimDeviceType.BANK_LEVEL, "add", PimDataType.INT8)
        int32 = latency(points, PimDeviceType.BANK_LEVEL, "add",
                        PimDataType.INT32)
        assert int32 / int8 == pytest.approx(4.0, rel=0.2)


class TestCrossover:
    def test_int8_add_favors_bitserial(self, points):
        bitserial = latency(points, PimDeviceType.BITSIMD_V_AP, "add",
                            PimDataType.INT8)
        fulcrum = latency(points, PimDeviceType.FULCRUM, "add",
                          PimDataType.INT8)
        assert bitserial < fulcrum

    def test_mul_always_favors_fulcrum(self, points):
        for dtype in (PimDataType.INT8, PimDataType.INT32, PimDataType.INT64):
            bitserial = latency(points, PimDeviceType.BITSIMD_V_AP, "mul", dtype)
            fulcrum = latency(points, PimDeviceType.FULCRUM, "mul", dtype)
            assert fulcrum < bitserial, dtype


def test_format(points):
    text = format_dtype_table(points)
    assert "-- add --" in text and "-- mul --" in text
    assert "int64" in text
