"""Tests for the selectivity and radix-digit sweeps and energy breakdown."""

import pytest

from repro.analysis import energy_breakdown, format_energy_breakdown
from repro.config.device import PimDeviceType
from repro.experiments import (
    digit_width_sweep,
    format_digit_table,
    format_selectivity_table,
    selectivity_sweep,
)


class TestSelectivitySweep:
    @pytest.fixture(scope="class")
    def points(self):
        return selectivity_sweep(num_records=1 << 24)

    def test_wider_records_help_pim(self, points):
        """The paper's prediction: more fields per record, more speedup."""
        def speedup(width, selectivity):
            return next(p.speedup for p in points
                        if p.record_bytes == width
                        and p.selectivity == selectivity)
        assert speedup(128, 0.001) > speedup(8, 0.001)

    def test_lower_selectivity_helps_pim(self, points):
        def speedup(width, selectivity):
            return next(p.speedup for p in points
                        if p.record_bytes == width
                        and p.selectivity == selectivity)
        assert speedup(32, 0.001) > speedup(32, 0.1)

    def test_format(self, points):
        text = format_selectivity_table(points)
        assert "sel=0.001" in text and "128" in text


class TestRadixDigitSweep:
    @pytest.fixture(scope="class")
    def points(self):
        # The Table I problem size: at small N the fixed per-pass counting
        # cost shifts the optimum toward narrower digits.
        return digit_width_sweep()

    def test_paper_choice_of_8_bits_is_optimal(self, points):
        """PIMbench fixed 8-bit digits; the sweep confirms the optimum."""
        for device_type in (PimDeviceType.BITSIMD_V_AP, PimDeviceType.FULCRUM):
            by_width = {
                p.digit_bits: p.total_ms for p in points
                if p.device_type is device_type
            }
            assert by_width[8] == min(by_width.values()), device_type

    def test_wide_digits_explode_pim_counting(self, points):
        narrow = next(p for p in points
                      if p.device_type is PimDeviceType.BITSIMD_V_AP
                      and p.digit_bits == 8)
        wide = next(p for p in points
                    if p.device_type is PimDeviceType.BITSIMD_V_AP
                    and p.digit_bits == 16)
        assert wide.pim_count_ms > 20 * narrow.pim_count_ms

    def test_scatter_halves_per_doubled_digit(self, points):
        p4 = next(p for p in points
                  if p.device_type is PimDeviceType.FULCRUM and p.digit_bits == 4)
        p8 = next(p for p in points
                  if p.device_type is PimDeviceType.FULCRUM and p.digit_bits == 8)
        assert p4.host_scatter_ms == pytest.approx(2 * p8.host_scatter_ms)

    def test_format(self, points):
        assert "passes" in format_digit_table(points)


class TestEnergyBreakdown:
    @pytest.fixture(scope="class")
    def bitserial_run(self):
        from repro.bench import make_benchmark
        from repro.config import bitserial_config
        from repro.core.device import PimDevice
        device = PimDevice(bitserial_config(4), functional=True)
        make_benchmark("histogram").run(device)
        return device

    def test_components_sum_to_total(self, bitserial_run):
        breakdown = energy_breakdown(bitserial_run)
        parts = (breakdown.kernel_mj + breakdown.transfer_mj
                 + breakdown.background_mj + breakdown.host_mj)
        assert parts == pytest.approx(breakdown.total_mj)

    def test_kernel_components_match_stats(self, bitserial_run):
        breakdown = energy_breakdown(bitserial_run)
        assert breakdown.kernel_mj == pytest.approx(
            bitserial_run.stats.kernel_energy_nj / 1e6, rel=1e-6
        )

    def test_bitserial_has_no_alu_or_gdl_energy(self, bitserial_run):
        breakdown = energy_breakdown(bitserial_run)
        assert breakdown.alu_mj == 0.0
        assert breakdown.gdl_mj == 0.0
        assert breakdown.row_activation_mj > 0
        assert breakdown.lane_logic_mj > 0

    def test_shares_sum_to_100(self, bitserial_run):
        shares = energy_breakdown(bitserial_run).shares()
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_format(self, bitserial_run):
        text = format_energy_breakdown(energy_breakdown(bitserial_run))
        assert "row activation" in text and "TOTAL" in text
