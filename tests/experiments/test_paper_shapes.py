"""Paper-shape regression tests: Section VIII's per-benchmark findings.

Each test pins one qualitative claim of the evaluation -- who wins, by
roughly what factor, where the crossovers fall -- against the paper-scale
modeled results.  EXPERIMENTS.md documents the quantitative comparison and
the known deviations (VGG on bit-serial, bank-level histogram).
"""

import pytest

from repro.config.device import PimDeviceType
from repro.experiments.runner import DEVICE_ORDER, run_suite

BIT_SERIAL = PimDeviceType.BITSIMD_V_AP
FULCRUM = PimDeviceType.FULCRUM
BANK = PimDeviceType.BANK_LEVEL


@pytest.fixture(scope="module")
def suite():
    return run_suite(num_ranks=32, paper_scale=True)


def by_device(suite, key, metric):
    return {
        device_type: getattr(suite.result(key, device_type), metric)
        for device_type in DEVICE_ORDER
    }


class TestVectorAdd:
    def test_bitserial_highest_speedup(self, suite):
        kernels = by_device(suite, "vecadd", "speedup_cpu_kernel")
        assert kernels[BIT_SERIAL] > kernels[FULCRUM] > kernels[BANK]

    def test_all_beat_cpu(self, suite):
        totals = by_device(suite, "vecadd", "speedup_cpu_total")
        assert all(v > 1 for v in totals.values())

    def test_bitserial_beats_gpu(self, suite):
        assert suite.result("vecadd", BIT_SERIAL).speedup_gpu > 10


class TestAxpy:
    def test_fulcrum_highest(self, suite):
        kernels = by_device(suite, "axpy", "speedup_cpu_kernel")
        assert kernels[FULCRUM] == max(kernels.values())
        gpus = by_device(suite, "axpy", "speedup_gpu")
        assert gpus[FULCRUM] == max(gpus.values())


class TestGemv:
    def test_fulcrum_wins(self, suite):
        kernels = by_device(suite, "gemv", "speedup_cpu_kernel")
        assert kernels[FULCRUM] == max(kernels.values())

    def test_bitserial_slower_than_gpu(self, suite):
        assert suite.result("gemv", BIT_SERIAL).speedup_gpu < 1

    def test_bank_slight_slowdown_vs_gpu(self, suite):
        assert 0.3 < suite.result("gemv", BANK).speedup_gpu < 1.1


class TestGemm:
    def test_poor_for_all_with_data_movement(self, suite):
        totals = by_device(suite, "gemm", "speedup_cpu_total")
        assert all(v < 1 for v in totals.values())

    def test_fulcrum_beats_cpu_kernel_only(self, suite):
        assert suite.result("gemm", FULCRUM).speedup_cpu_kernel > 1

    def test_no_meaningful_energy_savings(self, suite):
        # Bit-serial clearly loses on energy; the bit-parallel variants
        # land near break-even in this model (EXPERIMENTS.md discusses why
        # the paper's "no savings" cannot be exactly reproduced jointly
        # with its kernel-only speedup claim at watt-scale device power).
        gpu_energy = by_device(suite, "gemm", "energy_reduction_gpu")
        assert gpu_energy[BIT_SERIAL] < 0.1
        assert all(v < 3 for v in gpu_energy.values())


class TestRadixSort:
    def test_host_bound(self, suite):
        result = suite.result("radixsort", BIT_SERIAL)
        assert result.breakdown["host"] > 50

    def test_only_slight_speedup_over_cpu(self, suite):
        totals = by_device(suite, "radixsort", "speedup_cpu_total")
        assert all(0.2 < v < 2.0 for v in totals.values())

    def test_big_slowdown_vs_gpu(self, suite):
        gpus = by_device(suite, "radixsort", "speedup_gpu")
        assert all(v < 0.2 for v in gpus.values())


class TestAes:
    def test_bitserial_fastest_pim(self, suite):
        for key in ("aes-enc", "aes-dec"):
            kernels = by_device(suite, key, "speedup_cpu_kernel")
            assert kernels[BIT_SERIAL] > kernels[FULCRUM] > kernels[BANK]

    def test_bitserial_beats_cpu(self, suite):
        assert suite.result("aes-enc", BIT_SERIAL).speedup_cpu_total > 1

    def test_gpu_beats_all_pim(self, suite):
        for key in ("aes-enc", "aes-dec"):
            gpus = by_device(suite, key, "speedup_gpu")
            assert all(v < 1 for v in gpus.values())


class TestTriangleCount:
    def test_bitserial_kernel_only_speedup(self, suite):
        result = suite.result("tricount", BIT_SERIAL)
        assert result.speedup_cpu_kernel > 1
        assert result.speedup_gpu < 2  # only slight

    def test_data_movement_destroys_it(self, suite):
        totals = by_device(suite, "tricount", "speedup_cpu_total")
        assert all(v < 0.1 for v in totals.values())

    def test_fulcrum_and_bank_fall_short(self, suite):
        kernels = by_device(suite, "tricount", "speedup_cpu_kernel")
        assert kernels[FULCRUM] < 1
        assert kernels[BANK] < 1


class TestFilterByKey:
    def test_host_gather_dominates(self, suite):
        result = suite.result("filter", BIT_SERIAL)
        assert result.breakdown["host"] > 90  # paper: 99%

    def test_small_speedup_over_cpu(self, suite):
        totals = by_device(suite, "filter", "speedup_cpu_total")
        assert all(1 < v < 10 for v in totals.values())

    def test_no_speedup_over_gpu(self, suite):
        gpus = by_device(suite, "filter", "speedup_gpu")
        assert all(v < 1 for v in gpus.values())


class TestHistogram:
    def test_bitserial_and_fulcrum_beat_cpu(self, suite):
        totals = by_device(suite, "histogram", "speedup_cpu_total")
        assert totals[BIT_SERIAL] > 1
        assert totals[FULCRUM] > 1


class TestBrightness:
    def test_beats_cpu_with_and_without_movement(self, suite):
        for metric in ("speedup_cpu_total", "speedup_cpu_kernel"):
            values = by_device(suite, "brightness", metric)
            assert all(v > 1 for v in values.values()), metric

    def test_beats_gpu(self, suite):
        gpus = by_device(suite, "brightness", "speedup_gpu")
        assert all(v > 1 for v in gpus.values())

    def test_energy_efficient(self, suite):
        energies = by_device(suite, "brightness", "energy_reduction_cpu")
        assert all(v > 1 for v in energies.values())


class TestDownsampling:
    def test_subarray_variants_beat_cpu_and_gpu(self, suite):
        for device_type in (BIT_SERIAL, FULCRUM):
            result = suite.result("downsample", device_type)
            assert result.speedup_cpu_total > 1
            assert result.speedup_gpu > 1


class TestKnn:
    def test_modest_speedups(self, suite):
        totals = by_device(suite, "knn", "speedup_cpu_total")
        assert all(1 < v < 5 for v in totals.values())

    def test_host_selection_significant(self, suite):
        result = suite.result("knn", FULCRUM)
        assert result.breakdown["host"] > 20


class TestLinearRegression:
    def test_all_beat_cpu(self, suite):
        totals = by_device(suite, "linreg", "speedup_cpu_total")
        assert all(v > 1 for v in totals.values())

    def test_bitserial_and_fulcrum_comparable(self, suite):
        kernels = by_device(suite, "linreg", "speedup_cpu_kernel")
        ratio = kernels[BIT_SERIAL] / kernels[FULCRUM]
        assert 0.3 < ratio < 10


class TestKmeans:
    def test_significant_gains_over_cpu(self, suite):
        totals = by_device(suite, "kmeans", "speedup_cpu_total")
        assert totals[BIT_SERIAL] > 10
        assert totals[FULCRUM] > 10
        assert totals[BANK] > 1

    def test_subarray_variants_beat_gpu(self, suite):
        gpus = by_device(suite, "kmeans", "speedup_gpu")
        assert gpus[BIT_SERIAL] > 1
        assert gpus[FULCRUM] > 1


class TestVgg:
    @pytest.mark.parametrize("key", ["vgg-13", "vgg-16", "vgg-19"])
    def test_gpu_far_ahead(self, suite, key):
        gpus = by_device(suite, key, "speedup_gpu")
        assert all(v < 0.1 for v in gpus.values())

    @pytest.mark.parametrize("key", ["vgg-13", "vgg-16", "vgg-19"])
    def test_bit_parallel_roughly_match_cpu(self, suite, key):
        """Moderate outcomes for Fulcrum/bank-level; the bit-serial
        deviation is documented in EXPERIMENTS.md."""
        totals = by_device(suite, key, "speedup_cpu_total")
        assert 0.5 < totals[FULCRUM] < 5
        assert 0.5 < totals[BANK] < 5


class TestConclusions:
    def test_fulcrum_best_overall_balance(self, suite):
        """Conclusion: Fulcrum has the best Gmean among the variants."""
        from repro.experiments import gmean_summary, speedup_table
        summary = gmean_summary(speedup_table(suite))
        assert (
            summary[FULCRUM]["kernel"] > summary[BANK]["kernel"]
        )

    def test_energy_mostly_reduced_vs_cpu_for_subarray_pim(self, suite):
        from repro.experiments import energy_table
        rows = [r for r in energy_table(suite) if r.device_type is FULCRUM]
        winners = sum(1 for r in rows if r.reduction_cpu > 1)
        assert winners >= len(rows) / 2
