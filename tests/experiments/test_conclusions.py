"""Tests for the computed Conclusions (Section X headline numbers)."""

import pytest

from repro.config.device import PimDeviceType
from repro.experiments import compute_conclusions, format_conclusions, run_suite


@pytest.fixture(scope="module")
def conclusions():
    return compute_conclusions(run_suite(num_ranks=32, paper_scale=True))


class TestHeadlineNumbers:
    def test_fulcrum_gmean_matches_paper(self, conclusions):
        """Paper: ~5.2x over the CPU."""
        assert conclusions.fulcrum_cpu_gmean == pytest.approx(5.2, rel=0.2)

    def test_fulcrum_is_the_best_balance(self, conclusions):
        assert conclusions.best_performance_variant is PimDeviceType.FULCRUM

    def test_gpu_not_consistently_beaten(self, conclusions):
        assert conclusions.fraction_of_gpu_wins < 0.5

    def test_most_benchmarks_reduce_cpu_energy_on_fulcrum(self, conclusions):
        assert conclusions.fulcrum_energy_winners > \
            conclusions.num_benchmarks / 2

    def test_energy_gmeans(self, conclusions):
        assert conclusions.fulcrum_energy_gmean_vs_gpu == pytest.approx(
            2.0, rel=0.25
        )
        assert conclusions.bank_energy_gmean_vs_gpu < 1.0

    def test_summary_format(self, conclusions):
        text = format_conclusions(conclusions)
        assert "paper: ~5.2x" in text
        assert "Fulcrum" in text
