"""Tests for the Figure 6 sensitivity sweeps."""

import pytest

from repro.config.device import PimDeviceType
from repro.experiments.runner import DEVICE_ORDER
from repro.experiments.sensitivity import (
    bank_sensitivity,
    column_sensitivity,
    format_sensitivity_table,
)


@pytest.fixture(scope="module")
def column_points():
    return column_sensitivity()


@pytest.fixture(scope="module")
def bank_points():
    return bank_sensitivity()


def latency(points, device_type, operation, value):
    return next(
        p.latency_ms for p in points
        if p.device_type is device_type and p.operation == operation
        and p.value == value
    )


class TestColumnSweep:
    def test_bitserial_scales_inversely_with_columns(self, column_points):
        narrow = latency(column_points, PimDeviceType.BITSIMD_V_AP, "add", 1024)
        wide = latency(column_points, PimDeviceType.BITSIMD_V_AP, "add", 8192)
        assert narrow == pytest.approx(8 * wide, rel=0.05)

    def test_bitserial_most_sensitive(self, column_points):
        """Section VII: bit-serial is most sensitive to these parameters."""
        def ratio(device_type):
            return (
                latency(column_points, device_type, "add", 1024)
                / latency(column_points, device_type, "add", 8192)
            )
        assert ratio(PimDeviceType.BITSIMD_V_AP) > ratio(PimDeviceType.FULCRUM)
        assert ratio(PimDeviceType.BITSIMD_V_AP) > ratio(PimDeviceType.BANK_LEVEL)


class TestSectionVIIOrderings:
    def test_addition_bitserial_wins(self, column_points):
        values = {
            d: latency(column_points, d, "add", 8192) for d in DEVICE_ORDER
        }
        assert values[PimDeviceType.BITSIMD_V_AP] == min(values.values())

    def test_multiplication_fulcrum_wins_bitserial_beats_bank(self, column_points):
        values = {
            d: latency(column_points, d, "mul", 8192) for d in DEVICE_ORDER
        }
        assert values[PimDeviceType.FULCRUM] == min(values.values())
        assert values[PimDeviceType.BITSIMD_V_AP] < values[PimDeviceType.BANK_LEVEL]

    def test_reduction_bitserial_wins(self, column_points):
        values = {
            d: latency(column_points, d, "reduction", 8192)
            for d in DEVICE_ORDER
        }
        assert values[PimDeviceType.BITSIMD_V_AP] == min(values.values())

    def test_popcount_fulcrum_loses_to_bitserial(self, column_points):
        """Section VII: SWAR popcount makes Fulcrum slow."""
        fulcrum = latency(column_points, PimDeviceType.FULCRUM, "popcount", 8192)
        bitserial = latency(
            column_points, PimDeviceType.BITSIMD_V_AP, "popcount", 8192
        )
        assert bitserial < fulcrum


class TestBankSweep:
    @pytest.mark.parametrize("device_type", list(DEVICE_ORDER),
                             ids=lambda d: d.value)
    def test_all_devices_gain_from_banks(self, bank_points, device_type):
        few = latency(bank_points, device_type, "add", 16)
        many = latency(bank_points, device_type, "add", 128)
        assert few == pytest.approx(8 * many, rel=0.05)


def test_format_table(column_points):
    text = format_sensitivity_table(column_points)
    assert "cols=1024" in text
    assert "Bit-Serial" in text
    assert format_sensitivity_table([]) == "(no data)"
