"""Tests for the Figure 12/13 rank-scaling experiments.

Run on a reduced benchmark set to keep the four-configuration sweep fast;
the full-figure regeneration lives in benchmarks/.
"""

import pytest

from repro.config.device import PimDeviceType
from repro.experiments.rankscaling import (
    RankScalingRow,
    format_rank_table,
)
from repro.experiments.runner import run_suite

KEYS = ("vecadd", "axpy", "gemv")


def kernel_host(result):
    return result.stats.kernel_time_ns + result.stats.host_time_ns


@pytest.fixture(scope="module")
def suites():
    return {
        ranks: run_suite(num_ranks=ranks, paper_scale=True, keys=KEYS,
                         enforce_capacity=False)
        for ranks in (4, 32)
    }


class TestFigure12Behaviour:
    def test_bit_parallel_gains_from_ranks(self, suites):
        """Section IX: rank count strongly helps Fulcrum and bank-level."""
        for device_type in (PimDeviceType.FULCRUM, PimDeviceType.BANK_LEVEL):
            slow = kernel_host(suites[4].result("vecadd", device_type))
            fast = kernel_host(suites[32].result("vecadd", device_type))
            assert slow / fast > 4.0

    def test_bitserial_gains_less_for_small_problems(self, suites):
        """GEMV's vectors are too short to fill the added subarrays."""
        slow = kernel_host(suites[4].result("gemv", PimDeviceType.BITSIMD_V_AP))
        fast = kernel_host(suites[32].result("gemv", PimDeviceType.BITSIMD_V_AP))
        assert slow / fast < 2.0  # paper: no rank scaling for bit-serial GEMV

    def test_fulcrum_gemv_saturates(self, suites):
        """Paper: Fulcrum GEMV does not scale beyond 8 ranks (56% util)."""
        slow = kernel_host(suites[4].result("gemv", PimDeviceType.FULCRUM))
        fast = kernel_host(suites[32].result("gemv", PimDeviceType.FULCRUM))
        assert slow / fast < 8.0  # far below the 8x rank increase


class TestFigure13Behaviour:
    def test_capacity_matched_single_rank_slower(self):
        single = run_suite(
            num_ranks=1, paper_scale=True, keys=("vecadd",),
            geometry_overrides={"rows_per_subarray": 1024 * 32},
        )
        full = run_suite(num_ranks=32, paper_scale=True, keys=("vecadd",))
        from repro.experiments.runner import DEVICE_ORDER
        for device_type in DEVICE_ORDER:
            slow = kernel_host(single.result("vecadd", device_type))
            fast = kernel_host(full.result("vecadd", device_type))
            assert slow / fast > 8.0  # 32x fewer processing elements


def test_format_rank_table():
    rows = [
        RankScalingRow("Vector Addition", PimDeviceType.FULCRUM, 8, 2.0),
        RankScalingRow("Vector Addition", PimDeviceType.FULCRUM, 16, 4.0),
    ]
    text = format_rank_table(rows)
    assert "r=8" in text and "r=16" in text
    assert "2.00" in text and "4.00" in text
