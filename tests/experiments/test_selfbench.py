"""Selfbench: the timing harness runs and emits the archived schema."""

import json

import pytest

from repro.experiments.selfbench import (
    PRE_MEMO_SUITE_COLD_S,
    RUN_NAMES,
    SelfBenchRun,
    format_selfbench,
    run_selfbench,
    selfbench_payload,
)

_FAKE = SelfBenchRun(
    run="suite-cold", wall_s=0.5, commands_simulated=1000,
    commands_per_s=2000.0,
)


class TestPayloadSchema:
    def test_payload_fields(self):
        payload = selfbench_payload([_FAKE], include_baseline=False)
        assert payload["schema"] == 1
        (entry,) = payload["runs"]
        assert set(entry) == {
            "run", "wall_s", "commands_simulated", "commands_per_s"
        }

    def test_baseline_entry_prepended(self):
        payload = selfbench_payload([_FAKE])
        assert [r["run"] for r in payload["runs"]] == [
            "suite-cold-pre-memo", "suite-cold"
        ]
        baseline = payload["runs"][0]
        assert baseline["wall_s"] == PRE_MEMO_SUITE_COLD_S
        assert baseline["commands_simulated"] == _FAKE.commands_simulated

    def test_payload_is_json_serializable(self):
        json.dumps(selfbench_payload([_FAKE]))

    def test_unknown_run_rejected(self):
        with pytest.raises(ValueError, match="unknown selfbench"):
            run_selfbench(runs=("nope",))

    def test_format_lists_every_run(self):
        text = format_selfbench([_FAKE])
        assert "suite-cold" in text and "wall_s" in text


class TestSelfBenchExecution:
    def test_suite_cold_runs_end_to_end(self):
        (result,) = run_selfbench(runs=("suite-cold",))
        assert result.run == "suite-cold"
        assert result.wall_s > 0
        assert result.commands_simulated > 0
        assert result.commands_per_s == pytest.approx(
            result.commands_simulated / result.wall_s
        )
        assert set(RUN_NAMES) == {
            "suite-cold", "suite-warm", "figure12-cold",
            "suite-cold-vector", "figure12-cold-vector", "dse-sweep-cold",
            "dse-sweep-cold-batched",
        }

    def test_dse_sweep_cold_runs_end_to_end(self):
        from repro.arch import iter_backends

        before = len(iter_backends())
        (result,) = run_selfbench(runs=("dse-sweep-cold",))
        assert result.run == "dse-sweep-cold"
        assert result.wall_s > 0
        # 12 design points x the paper gemv at 2 ranks; anything near
        # the old 12-commands-total figure means the leg went back to a
        # 1-command-per-cell benchmark and times nothing.
        assert result.commands_simulated > 10_000
        # The leg must not leak transient backends into the registry.
        assert len(iter_backends()) == before

    def test_dse_sweep_batched_leg_reports_points_rate(self):
        from repro.arch import iter_backends

        before = len(iter_backends())
        (result,) = run_selfbench(runs=("dse-sweep-cold-batched",))
        assert result.run == "dse-sweep-cold-batched"
        assert result.wall_s > 0
        assert result.commands_simulated > 10_000
        # The batched leg's headline figure: design points per second.
        assert result.points_per_s == pytest.approx(
            540 / result.wall_s
        )
        assert len(iter_backends()) == before


class TestHistoryLedger:
    def test_entry_schema(self):
        from repro.experiments.selfbench import HISTORY_SCHEMA, history_entry

        entry = history_entry([_FAKE], unix_s=1234.5)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["unix_s"] == 1234.5
        assert entry["environment"]["python"]
        assert entry["runs"] == [_FAKE.to_dict()]

    def test_append_accumulates_json_lines(self, tmp_path):
        from repro.experiments import append_history

        path = tmp_path / "BENCH_HISTORY.jsonl"
        append_history(path, [_FAKE], unix_s=1.0)
        append_history(path, [_FAKE], unix_s=2.0)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["unix_s"] for line in lines] == [1.0, 2.0]


class TestRegressionGate:
    BASELINE = {
        "schema": 1,
        "runs": [
            {"run": "suite-cold-pre-memo", "wall_s": 2.0,
             "commands_simulated": 1000, "commands_per_s": 500.0},
            {"run": "suite-cold", "wall_s": 0.5,
             "commands_simulated": 1000, "commands_per_s": 2000.0},
        ],
    }

    def check(self, measured_cps, tolerance=0.25):
        from repro.experiments import check_regression

        run = SelfBenchRun(
            run="suite-cold", wall_s=1.0,
            commands_simulated=int(measured_cps),
            commands_per_s=measured_cps,
        )
        return check_regression([run], self.BASELINE, tolerance)

    def test_passes_at_and_above_threshold(self):
        (check,) = self.check(1500.0)  # exactly (1 - 0.25) * 2000
        assert check.ok
        assert check.ratio == pytest.approx(0.75)
        assert self.check(2500.0)[0].ok

    def test_fails_below_threshold(self):
        (check,) = self.check(1499.0)
        assert not check.ok
        assert check.baseline_cps == 2000.0

    def test_pre_memo_baselines_are_not_gates(self):
        # 600 cmds/s would pass against the 500 pre-memo reference but
        # must be judged against the real suite-cold baseline only.
        (check,) = self.check(600.0)
        assert check.run == "suite-cold"
        assert not check.ok

    def test_no_overlap_raises(self):
        from repro.experiments import check_regression

        other = SelfBenchRun(
            run="figure12-cold", wall_s=1.0,
            commands_simulated=10, commands_per_s=10.0,
        )
        with pytest.raises(ValueError, match="shares no runs"):
            check_regression([other], self.BASELINE)

    def test_no_overlap_with_missing_ok_yields_empty_gate(self):
        # New legs (the serving benchmarks) land before their baseline
        # exists; --check passes missing_ok so a disjoint baseline is a
        # warning condition upstream, not a hard failure here.
        from repro.experiments.selfbench import check_regression

        other = SelfBenchRun(
            run="serve-warm-dup", wall_s=1.0,
            commands_simulated=10, commands_per_s=10.0,
        )
        assert check_regression([other], self.BASELINE, missing_ok=True) == []

    def test_missing_ok_still_gates_the_overlap(self):
        from repro.experiments.selfbench import check_regression

        measured = [
            SelfBenchRun(run="suite-cold", wall_s=1.0,
                         commands_simulated=100, commands_per_s=100.0),
            SelfBenchRun(run="serve-warm-dup", wall_s=1.0,
                         commands_simulated=10, commands_per_s=10.0),
        ]
        checks = check_regression(measured, self.BASELINE, missing_ok=True)
        assert [c.run for c in checks] == ["suite-cold"]
        assert not checks[0].ok  # 100 vs 2000 baseline regresses

    def test_baseline_run_names_excludes_references(self):
        from repro.experiments.selfbench import baseline_run_names

        assert baseline_run_names(self.BASELINE) == {"suite-cold"}
        with pytest.raises(ValueError, match="no 'runs'"):
            baseline_run_names({"schema": 1})

    def test_missing_baseline_runs_names_the_skipped_legs(self):
        from repro.experiments.selfbench import missing_baseline_runs

        measured = [
            SelfBenchRun(run="suite-cold", wall_s=1.0,
                         commands_simulated=1, commands_per_s=1.0),
            SelfBenchRun(run="serve-warm-dup", wall_s=1.0,
                         commands_simulated=1, commands_per_s=1.0),
            SelfBenchRun(run="serve-overload", wall_s=1.0,
                         commands_simulated=1, commands_per_s=1.0),
        ]
        assert missing_baseline_runs(measured, self.BASELINE) == [
            "serve-warm-dup", "serve-overload",
        ]

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            self.check(2000.0, tolerance=1.0)
        with pytest.raises(ValueError, match="tolerance"):
            self.check(2000.0, tolerance=-0.1)

    def test_payload_without_runs_rejected(self):
        from repro.experiments import check_regression

        with pytest.raises(ValueError, match="no 'runs'"):
            check_regression([_FAKE], {"schema": 1})

    def test_vector_legs_skip_pre_vector_baselines(self):
        # A baseline archived before the vector legs existed (the
        # BENCH_PR5.json shape) must still gate the scalar legs and
        # silently skip the vector ones -- like-named runs only.
        from repro.experiments import check_regression

        measured = [
            SelfBenchRun(run="suite-cold", wall_s=1.0,
                         commands_simulated=1900, commands_per_s=1900.0),
            SelfBenchRun(run="suite-cold-vector", wall_s=0.2,
                         commands_simulated=1900, commands_per_s=9500.0),
        ]
        checks = check_regression(measured, self.BASELINE)
        assert [c.run for c in checks] == ["suite-cold"]
        assert checks[0].ok

    def test_vector_legs_gate_against_vector_baselines(self):
        from repro.experiments import check_regression

        baseline = {
            "schema": 1,
            "runs": self.BASELINE["runs"] + [
                {"run": "suite-cold-vector", "wall_s": 0.1,
                 "commands_simulated": 1000, "commands_per_s": 10000.0},
            ],
        }
        slow_vector = SelfBenchRun(
            run="suite-cold-vector", wall_s=1.0,
            commands_simulated=1000, commands_per_s=1000.0,
        )
        checks = check_regression([slow_vector], baseline)
        assert [c.run for c in checks] == ["suite-cold-vector"]
        assert not checks[0].ok

    def test_format_fits_vector_leg_names(self):
        run = SelfBenchRun(
            run="figure12-cold-vector", wall_s=1.0,
            commands_simulated=10, commands_per_s=10.0,
        )
        text = format_selfbench([run])
        assert "figure12-cold-vector " in text

    def test_format_names_verdicts(self):
        from repro.experiments import format_regression

        ok = self.check(2500.0)
        bad = self.check(100.0)
        text = format_regression(ok + bad, tolerance=0.25)
        assert "ok" in text and "REGRESSED" in text
        assert "25%" in text


class TestBaselineSchemaIssues:
    """``--check`` warns -- never fails -- on unversioned baselines."""

    def test_current_schema_is_clean(self):
        from repro.experiments.selfbench import baseline_schema_issues

        payload = selfbench_payload([_FAKE], include_baseline=False)
        assert baseline_schema_issues(payload) == []

    def test_missing_schema_field_warns(self):
        from repro.experiments.selfbench import baseline_schema_issues

        (issue,) = baseline_schema_issues({"runs": []})
        assert "no 'schema' version field" in issue
        assert "anyway" in issue  # a warning, not a refusal

    def test_mismatched_schema_warns_with_both_versions(self):
        from repro.experiments.selfbench import (
            SCHEMA_VERSION,
            baseline_schema_issues,
        )

        (issue,) = baseline_schema_issues({"schema": 99, "runs": []})
        assert "99" in issue and str(SCHEMA_VERSION) in issue

    def test_archived_baseline_is_clean(self):
        import pathlib

        from repro.experiments.selfbench import baseline_schema_issues

        archived = json.loads(
            pathlib.Path(__file__).parents[2].joinpath(
                "BENCH_PR9.json"
            ).read_text()
        )
        assert baseline_schema_issues(archived) == []
