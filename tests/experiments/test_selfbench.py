"""Selfbench: the timing harness runs and emits the archived schema."""

import json

import pytest

from repro.experiments.selfbench import (
    PRE_MEMO_SUITE_COLD_S,
    RUN_NAMES,
    SelfBenchRun,
    format_selfbench,
    run_selfbench,
    selfbench_payload,
)

_FAKE = SelfBenchRun(
    run="suite-cold", wall_s=0.5, commands_simulated=1000,
    commands_per_s=2000.0,
)


class TestPayloadSchema:
    def test_payload_fields(self):
        payload = selfbench_payload([_FAKE], include_baseline=False)
        assert payload["schema"] == 1
        (entry,) = payload["runs"]
        assert set(entry) == {
            "run", "wall_s", "commands_simulated", "commands_per_s"
        }

    def test_baseline_entry_prepended(self):
        payload = selfbench_payload([_FAKE])
        assert [r["run"] for r in payload["runs"]] == [
            "suite-cold-pre-memo", "suite-cold"
        ]
        baseline = payload["runs"][0]
        assert baseline["wall_s"] == PRE_MEMO_SUITE_COLD_S
        assert baseline["commands_simulated"] == _FAKE.commands_simulated

    def test_payload_is_json_serializable(self):
        json.dumps(selfbench_payload([_FAKE]))

    def test_unknown_run_rejected(self):
        with pytest.raises(ValueError, match="unknown selfbench"):
            run_selfbench(runs=("nope",))

    def test_format_lists_every_run(self):
        text = format_selfbench([_FAKE])
        assert "suite-cold" in text and "wall_s" in text


class TestSelfBenchExecution:
    def test_suite_cold_runs_end_to_end(self):
        (result,) = run_selfbench(runs=("suite-cold",))
        assert result.run == "suite-cold"
        assert result.wall_s > 0
        assert result.commands_simulated > 0
        assert result.commands_per_s == pytest.approx(
            result.commands_simulated / result.wall_s
        )
        assert set(RUN_NAMES) == {"suite-cold", "suite-warm", "figure12-cold"}
