"""Tests for the physical-activity census."""

import pytest

from repro.config.device import PimDeviceType
from repro.core.stats import EventCounts
from repro.experiments import activity_table, format_activity_table, run_suite


@pytest.fixture(scope="module")
def rows():
    suite = run_suite(num_ranks=32, paper_scale=True,
                      keys=("vecadd", "gemv", "histogram"))
    return activity_table(suite)


def row(rows, name, device_type):
    return next(r for r in rows
                if r.benchmark == name and r.device_type is device_type)


class TestEventCounts:
    def test_arithmetic(self):
        a = EventCounts(row_activations=10, gdl_bits=100)
        b = EventCounts(row_activations=3, alu_word_ops=5)
        total = a + b
        assert total.row_activations == 13
        assert total.alu_word_ops == 5
        delta = total - b
        assert delta.row_activations == 10
        assert (a.scaled(2)).gdl_bits == 200


class TestCensus:
    def test_bitserial_does_lane_ops_not_alu(self, rows):
        r = row(rows, "Vector Addition", PimDeviceType.BITSIMD_V_AP)
        assert r.events.lane_logic_ops > 0
        assert r.events.alu_word_ops == 0
        assert r.events.gdl_bits == 0

    def test_bank_level_moves_gdl_bits(self, rows):
        r = row(rows, "Vector Addition", PimDeviceType.BANK_LEVEL)
        assert r.events.gdl_bits > 0
        assert r.events.alu_word_ops > 0

    def test_fulcrum_uses_walkers_and_alu(self, rows):
        r = row(rows, "Vector Addition", PimDeviceType.FULCRUM)
        assert r.events.walker_bits > 0
        assert r.events.alu_word_ops > 0
        assert r.events.gdl_bits == 0  # subarray-level: no GDL crossing

    def test_gemv_row_activations_explain_bitserial_energy(self, rows):
        """GEMV's full-device row traffic is orders beyond vector add's --
        the reason its Figure 11 energy bar collapses."""
        gemv = row(rows, "GEMV", PimDeviceType.BITSIMD_V_AP)
        vecadd = row(rows, "Vector Addition", PimDeviceType.BITSIMD_V_AP)
        assert gemv.events.row_activations > 1000 * vecadd.events.row_activations

    def test_activation_rate_positive(self, rows):
        for r in rows:
            assert r.activations_per_us > 0

    def test_format(self, rows):
        text = format_activity_table(rows)
        assert "row acts" in text and "GDL Gbit" in text
