"""Degraded suites: failed cells become explicit gaps, not crashes.

Paper-scale vecadd does not fit 4 ranks, so (vecadd, axpy) at 4 ranks
is a natural partial failure: every vecadd cell dies with a structured
allocation error while axpy completes on all three architectures.
"""

import math

import pytest

from repro.engine import CellExecutionError
from repro.experiments import (
    breakdown_table,
    energy_table,
    format_breakdown_table,
    format_energy_table,
    format_speedup_table,
    gmean_summary,
    run_suite,
    speedup_table,
)
from repro.experiments.runner import _CACHE


@pytest.fixture(scope="module")
def degraded_suite():
    return run_suite(
        num_ranks=4, paper_scale=True, keys=("vecadd", "axpy"),
        use_cache=False, strict=False,
    )


class TestRunnerStrictness:
    def test_strict_default_raises(self):
        with pytest.raises(CellExecutionError) as info:
            run_suite(
                num_ranks=4, paper_scale=True, keys=("vecadd",),
                use_cache=False,
            )
        assert info.value.error.error_type == "PimAllocationError"

    def test_lenient_mode_reports_and_continues(self, degraded_suite):
        assert not degraded_suite.ok
        assert len(degraded_suite.failures) == 3  # vecadd on each device
        assert all(
            spec.benchmark_key == "vecadd" for spec in degraded_suite.failures
        )
        assert len(degraded_suite.results) == 3  # axpy on each device
        assert not degraded_suite.has_result(
            "vecadd", next(iter(degraded_suite.failures)).device_type
        )

    def test_failed_suites_are_never_memoized(self):
        before = dict(_CACHE)
        run_suite(
            num_ranks=4, paper_scale=True, keys=("vecadd", "axpy"),
            strict=False,
        )
        assert _CACHE == before


class TestGapRows:
    def test_speedup_rows_mark_gaps(self, degraded_suite):
        rows = speedup_table(degraded_suite)
        assert len(rows) == 6  # the grid shape survives the failures
        failed = [r for r in rows if r.failed]
        assert len(failed) == 3
        vecadd_name = degraded_suite.benchmarks["vecadd"].name
        assert all(r.benchmark == vecadd_name for r in failed)
        assert all(math.isnan(r.speedup_total) for r in failed)

    def test_gmean_ignores_failed_rows(self, degraded_suite):
        for bars in gmean_summary(speedup_table(degraded_suite)).values():
            for value in bars.values():
                assert not math.isnan(value)
                assert value > 0

    def test_formatters_render_explicit_gaps(self, degraded_suite):
        speedup = format_speedup_table(speedup_table(degraded_suite))
        energy = format_energy_table(energy_table(degraded_suite))
        breakdown = format_breakdown_table(breakdown_table(degraded_suite))
        for text in (speedup, energy, breakdown):
            assert "(failed)" in text
            assert "--" in text
            assert "nan" not in text.lower()
