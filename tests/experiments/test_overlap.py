"""Tests for the copy/compute overlap analysis."""

import pytest

from repro.config.device import PimDeviceType
from repro.experiments import format_overlap_table, overlap_table, run_suite


@pytest.fixture(scope="module")
def rows():
    suite = run_suite(num_ranks=32, paper_scale=True,
                      keys=("vecadd", "gemm", "filter"))
    return overlap_table(suite)


def row(rows, name, device_type):
    return next(r for r in rows
                if r.benchmark == name and r.device_type is device_type)


class TestOverlapBound:
    def test_overlapped_never_slower(self, rows):
        for r in rows:
            assert r.overlapped_ms <= r.sequential_ms + 1e-9
            assert r.overlap_gain >= 1.0

    def test_gain_bounded_by_two_for_two_phases(self, rows):
        # Pure-PIM benchmarks have only copy + kernel: gain <= 2.
        for r in rows:
            if r.benchmark in ("Vector Addition", "GEMM"):
                assert r.overlap_gain <= 2.0 + 1e-9

    def test_balanced_phases_gain_most(self, rows):
        """GEMM splits between streaming operands and computing: it gains
        more from overlap than copy-dominated vector addition."""
        gemm = row(rows, "GEMM", PimDeviceType.FULCRUM)
        vecadd = row(rows, "Vector Addition", PimDeviceType.BIT_SERIAL
                     if hasattr(PimDeviceType, "BIT_SERIAL")
                     else PimDeviceType.BITSIMD_V_AP)
        assert gemm.overlap_gain > vecadd.overlap_gain

    def test_speedups_consistent(self, rows):
        for r in rows:
            assert r.speedup_cpu_overlapped >= r.speedup_cpu_sequential

    def test_format(self, rows):
        text = format_overlap_table(rows)
        assert "gain" in text and "vsCPU ovl" in text
