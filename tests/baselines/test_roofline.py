"""Tests for the roofline baseline models."""

import pytest

from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuModel
from repro.baselines.roofline import KernelProfile, roofline_time_ns


class TestKernelProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            KernelProfile("x", bytes_accessed=-1, compute_ops=0)
        with pytest.raises(ValueError):
            KernelProfile("x", bytes_accessed=1, compute_ops=1, mem_efficiency=0)
        with pytest.raises(ValueError):
            KernelProfile("x", bytes_accessed=1, compute_ops=1,
                          compute_efficiency=1.5)

    def test_scaled(self):
        profile = KernelProfile("x", bytes_accessed=100, compute_ops=10)
        doubled = profile.scaled(2)
        assert doubled.bytes_accessed == 200
        assert doubled.compute_ops == 20
        assert doubled.mem_efficiency == profile.mem_efficiency

    def test_composition_adds_work(self):
        a = KernelProfile("a", bytes_accessed=100, compute_ops=10)
        b = KernelProfile("b", bytes_accessed=300, compute_ops=30)
        total = a + b
        assert total.bytes_accessed == 400
        assert total.compute_ops == 40

    def test_composition_blends_time_true(self):
        """The blended efficiency preserves the summed per-part time."""
        fast = KernelProfile("f", bytes_accessed=100, compute_ops=0.001,
                             mem_efficiency=1.0)
        slow = KernelProfile("s", bytes_accessed=100, compute_ops=0.001,
                             mem_efficiency=0.1)
        combined = fast + slow
        time = roofline_time_ns(combined, 1.0, 1.0)
        separate = roofline_time_ns(fast, 1.0, 1.0) + roofline_time_ns(slow, 1.0, 1.0)
        assert time == pytest.approx(separate)


class TestRoofline:
    def test_memory_bound(self):
        profile = KernelProfile("x", bytes_accessed=1e9, compute_ops=1,
                                mem_efficiency=0.5)
        assert roofline_time_ns(profile, 100.0, 1000.0) == pytest.approx(
            1e9 / 50.0
        )

    def test_compute_bound(self):
        profile = KernelProfile("x", bytes_accessed=1, compute_ops=1e9,
                                compute_efficiency=0.5)
        assert roofline_time_ns(profile, 1000.0, 100.0) == pytest.approx(
            1e9 / 50.0
        )


class TestBaselineModels:
    def test_cpu_stream_kernel(self):
        """A 12-byte/element streaming kernel runs near memory bandwidth."""
        n = 1_000_000_000
        profile = KernelProfile("vecadd", bytes_accessed=12.0 * n,
                                compute_ops=float(n), mem_efficiency=0.85)
        time_ns = CpuModel().time_ns(profile)
        assert time_ns == pytest.approx(12.0 * n / (460.8 * 0.85))

    def test_gpu_faster_than_cpu_for_streaming(self):
        profile = KernelProfile("x", bytes_accessed=1e10, compute_ops=1e9)
        assert GpuModel().time_ns(profile) < CpuModel().time_ns(profile)

    def test_energy_at_tdp(self):
        profile = KernelProfile("x", bytes_accessed=1e9, compute_ops=1)
        cpu = CpuModel()
        time, energy = cpu.run(profile)
        assert energy == pytest.approx(time * 200.0)
        gpu = GpuModel()
        time, energy = gpu.run(profile)
        assert energy == pytest.approx(time * 300.0)
