"""Tests for the toy UPMEM model and the Section V-E validation."""

import pytest

from repro.upmem import (
    GEMV,
    VECTOR_ADD,
    UpmemConfig,
    UpmemToyModel,
    format_validation_table,
    upmem_validation_table,
)


class TestUpmemConfig:
    def test_prim_defaults(self):
        config = UpmemConfig()
        assert config.num_dpus == 2560
        assert config.dpu_freq_mhz == 350.0

    def test_derived_rates(self):
        config = UpmemConfig()
        assert config.cycle_ns == pytest.approx(1e3 / 350.0)
        assert config.mram_ns_per_byte == pytest.approx(1e3 / 628.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UpmemConfig(num_dpus=0)
        with pytest.raises(ValueError):
            UpmemConfig(mram_bandwidth_mbps=-1)


class TestToyModel:
    def test_toy_serializes_dma_and_compute(self):
        model = UpmemToyModel()
        n = 1 << 20
        assert model.kernel_time_ns(VECTOR_ADD, n) == pytest.approx(
            model.dma_ns(VECTOR_ADD, n) + model.compute_ns(VECTOR_ADD, n)
        )

    def test_hardware_overlaps(self):
        model = UpmemToyModel()
        n = 1 << 20
        assert model.hardware_time_ns(VECTOR_ADD, n) == pytest.approx(
            max(model.dma_ns(VECTOR_ADD, n), model.compute_ns(VECTOR_ADD, n))
        )

    def test_time_scales_with_elements(self):
        model = UpmemToyModel()
        assert model.kernel_time_ns(GEMV, 2 << 20) == pytest.approx(
            2 * model.kernel_time_ns(GEMV, 1 << 20)
        )

    def test_more_dpus_faster(self):
        small = UpmemToyModel(UpmemConfig(num_dpus=1280))
        large = UpmemToyModel(UpmemConfig(num_dpus=2560))
        n = 1 << 24
        assert large.kernel_time_ns(VECTOR_ADD, n) == pytest.approx(
            small.kernel_time_ns(VECTOR_ADD, n) / 2
        )

    def test_vecadd_is_dma_bound(self):
        model = UpmemToyModel()
        n = 1 << 20
        assert model.dma_ns(VECTOR_ADD, n) > model.compute_ns(VECTOR_ADD, n)

    def test_gemv_is_compute_bound(self):
        model = UpmemToyModel()
        n = 1 << 20
        assert model.compute_ns(GEMV, n) > model.dma_ns(GEMV, n)


class TestSectionVeValidation:
    def test_paper_slowdowns_reproduced(self):
        rows = {row.kernel: row for row in upmem_validation_table()}
        # Section V-E: 23% (Vector Add) and 35% (GEMV) slowdowns.
        assert rows["Vector Add"].slowdown == pytest.approx(0.23, abs=0.02)
        assert rows["GEMV"].slowdown == pytest.approx(0.35, abs=0.02)

    def test_toy_model_is_always_pessimistic(self):
        for row in upmem_validation_table():
            assert row.toy_model_ms > row.hardware_ms

    def test_table_format(self):
        text = format_validation_table(upmem_validation_table())
        assert "Vector Add" in text
        assert "GEMV" in text
        assert "23%" in text and "35%" in text
