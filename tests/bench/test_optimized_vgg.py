"""Tests for the channel-batched VGG conv mapping."""

import numpy as np

from repro.bench.optimized import VggChannelBatchedBenchmark
from repro.config.device import PimDeviceType
from repro.config.presets import make_device_config
from repro.core.device import PimDevice

from tests.conftest import make_device


class TestFunctional:
    def test_matches_reference_on_every_architecture(self, device_type):
        device = make_device(device_type)
        bench = VggChannelBatchedBenchmark()
        out = bench.run_conv_stack(device)
        assert np.array_equal(out, bench.reference_conv_stack())

    def test_deeper_small_config(self):
        device = make_device(PimDeviceType.FULCRUM)
        bench = VggChannelBatchedBenchmark(
            batch=2, image_size=8, conv_plan=[4, 4, "M", 6, "M"]
        )
        out = bench.run_conv_stack(device)
        assert np.array_equal(out, bench.reference_conv_stack())
        assert out.shape == (6, 2, 2, 2)


class TestCommandEconomy:
    def test_command_count_independent_of_cout(self):
        """The whole point: commands scale with Cin*9, not Cout*Cin*9."""
        counts = {}
        for cout in (4, 16):
            device = PimDevice(
                make_device_config(PimDeviceType.FULCRUM, 4), functional=False
            )
            VggChannelBatchedBenchmark(
                batch=2, image_size=8, conv_plan=[cout]
            ).run_conv_stack(device)
            counts[cout] = device.stats.total_command_count
        assert counts[4] == counts[16]

    def test_much_faster_than_portable_mapping_at_scale(self):
        """A single deep layer: channel batching wins by ~Cout."""
        from repro.core.commands import PimCmdKind
        config = make_device_config(PimDeviceType.BITSIMD_V_AP, 32)
        cout, cin, elems = 128, 128, 64 * 28 * 28

        portable = PimDevice(config, functional=False)
        obj = portable.alloc(elems)
        acc = portable.alloc_associated(obj)
        portable.execute(PimCmdKind.SCALED_ADD, (obj, acc), acc,
                         scalar=0x55, repeat=cout * cin * 9)
        batched = PimDevice(config, functional=False)
        obj = batched.alloc(elems * cout)
        weight = batched.alloc_associated(obj)
        tmp = batched.alloc_associated(obj)
        batched.execute(PimCmdKind.MUL, (obj, weight), tmp, repeat=cin * 9)
        batched.execute(PimCmdKind.ADD, (tmp, obj), obj, repeat=cin * 9)

        assert batched.stats.kernel_time_ns < \
            portable.stats.kernel_time_ns / 10
