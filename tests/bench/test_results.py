"""Tests for the BenchmarkResult comparison metrics.

These pin the artifact's stated accounting: CPU comparisons sum kernel +
host + data copy; GPU comparisons use kernel + host only (Appendix D).
"""

import pytest

from repro.bench.common import BenchmarkResult
from repro.config.device import PimDeviceType
from repro.core.stats import StatsSnapshot


def make_result(**stats_kwargs):
    defaults = dict(
        kernel_time_ns=100.0, kernel_energy_nj=10.0, copy_time_ns=50.0,
        copy_energy_nj=5.0, copy_bytes=1000, background_energy_nj=2.0,
        host_time_ns=25.0, host_energy_nj=3.0,
    )
    defaults.update(stats_kwargs)
    return BenchmarkResult(
        benchmark="test",
        device_type=PimDeviceType.FULCRUM,
        stats=StatsSnapshot(**defaults),
        op_counts={},
        cpu_time_ns=700.0,
        cpu_energy_nj=140.0,
        gpu_time_ns=250.0,
        gpu_energy_nj=75.0,
        verified=True,
    )


class TestTimeAccounting:
    def test_cpu_total_includes_all_three(self):
        result = make_result()
        assert result.pim_total_time_ns == pytest.approx(175.0)
        assert result.speedup_cpu_total == pytest.approx(700.0 / 175.0)

    def test_cpu_kernel_excludes_copies(self):
        result = make_result()
        assert result.pim_kernel_host_time_ns == pytest.approx(125.0)
        assert result.speedup_cpu_kernel == pytest.approx(700.0 / 125.0)

    def test_gpu_comparison_excludes_copies(self):
        result = make_result()
        assert result.speedup_gpu == pytest.approx(250.0 / 125.0)


class TestEnergyAccounting:
    def test_cpu_energy_includes_everything(self):
        result = make_result()
        assert result.pim_total_energy_nj == pytest.approx(20.0)
        assert result.energy_reduction_cpu == pytest.approx(140.0 / 20.0)

    def test_gpu_energy_excludes_copies(self):
        result = make_result()
        assert result.pim_kernel_host_energy_nj == pytest.approx(15.0)
        assert result.energy_reduction_gpu == pytest.approx(75.0 / 15.0)


class TestBreakdown:
    def test_percentages_sum_to_100(self):
        shares = make_result().breakdown
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares["kernel"] == pytest.approx(100.0 * 100.0 / 175.0)

    def test_empty_run(self):
        result = make_result(kernel_time_ns=0.0, copy_time_ns=0.0,
                             host_time_ns=0.0)
        assert result.breakdown == {
            "data_movement": 0.0, "host": 0.0, "kernel": 0.0,
        }


def test_unknown_params_rejected():
    from repro.bench.vecadd import VectorAddBenchmark
    with pytest.raises(TypeError):
        VectorAddBenchmark(nonsense=5)
