"""Trace-batched benchmark loops == the per-call loops they replaced.

AES mix-columns, k-means iterations, and histogram channels now record
one repetition of their analytic inner loop and replay the rest
(docs/PERFORMANCE.md §5).  These tests re-issue the original per-call
loops on a reference device and demand exact equality -- stats snapshot,
per-signature tables, and the full bus event stream.
"""

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench import aes_reference as ref
from repro.bench.aes import _mix_columns, _mix_one_column, _PlaneState
from repro.bench.histogram import NUM_CHANNELS, NUM_LEVELS
from repro.bench.registry import make_benchmark
from repro.config import bitserial_config, fulcrum_config
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.obs import EventBus, RingBufferSink


def _observed_device(config):
    bus = EventBus()
    sink = bus.subscribe(RingBufferSink(capacity=1 << 17))
    return PimDevice(config, functional=False, bus=bus), sink


def _shape(events):
    return [
        (e.name, e.cat, e.ph, e.ts_ns, e.dur_ns, e.args) for e in events
    ]


class TestAesMixColumns:
    def _run(self, batched: bool):
        device, sink = _observed_device(bitserial_config(4))
        state = _PlaneState(device, num_blocks=64)
        if batched:
            _mix_columns(state, ref.MIX)
        else:
            for c in range(4):
                _mix_one_column(state, ref.MIX, c)
        return device, sink

    def test_replayed_columns_match_loop(self):
        loop_device, loop_sink = self._run(batched=False)
        fast_device, fast_sink = self._run(batched=True)
        assert fast_device.stats.snapshot() == loop_device.stats.snapshot()
        assert fast_device.stats.commands == loop_device.stats.commands
        assert fast_device.stats.op_counts == loop_device.stats.op_counts
        assert _shape(fast_sink.events) == _shape(loop_sink.events)

    def test_functional_path_unchanged(self):
        # Functional mode must keep computing real per-column results.
        device = PimDevice(bitserial_config(4), functional=True)
        state = _PlaneState(device, num_blocks=16)
        rng = np.random.default_rng(5)
        for plane in state.planes:
            plane.set_data(rng.integers(0, 256, size=16, dtype=np.uint8))
        planes_before = [p.require_data().copy() for p in state.planes]
        _mix_columns(state, ref.MIX)
        expected = _reference_mix(planes_before, ref.MIX)
        for plane, want in zip(state.planes, expected):
            assert np.array_equal(plane.require_data(), want)


def _reference_mix(planes, matrix):
    """NumPy GF(2^8) mix-columns over the 16 byte planes."""
    def gf_mul(values, factor):
        result = np.zeros_like(values)
        power = values.copy()
        remaining = factor
        while remaining:
            if remaining & 1:
                result ^= power
            remaining >>= 1
            high = (power & 0x80) != 0
            power = ((power << 1) & 0xFF) ^ np.where(high, 0x1B, 0).astype(
                power.dtype
            )
        return result

    out = [None] * 16
    for c in range(4):
        column = [planes[4 * c + r] for r in range(4)]
        for r in range(4):
            acc = np.zeros_like(column[0])
            for k in range(4):
                acc ^= gf_mul(column[k], matrix[r][k])
            out[4 * c + r] = acc
    return out


class TestKMeansIterations:
    K = 3
    ITERATIONS = 4
    N = 512

    def _reference_stream(self):
        """The pre-batching per-iteration loop, issued call by call."""
        device, sink = _observed_device(bitserial_config(4))
        host = HostModel(device)
        obj_x = device.alloc(self.N)
        obj_y = device.alloc_associated(obj_x)
        obj_zero = device.alloc_associated(obj_x)
        obj_dx = device.alloc_associated(obj_x)
        obj_dy = device.alloc_associated(obj_x)
        obj_best = device.alloc_associated(obj_x)
        obj_mask = device.alloc_associated(obj_x, PimDataType.BOOL)
        obj_sel = device.alloc_associated(obj_x)
        dist_objs = [device.alloc_associated(obj_x) for _ in range(self.K)]
        device.copy_host_to_device(None, obj_x)
        device.copy_host_to_device(None, obj_y)
        device.execute(PimCmdKind.BROADCAST, (), obj_zero, scalar=0)
        for _ in range(self.ITERATIONS):
            for c in range(self.K):
                cx, cy = 0x1235 + c, 0x2B67 + c
                device.execute(PimCmdKind.SUB_SCALAR, (obj_x,), obj_dx, scalar=cx)
                device.execute(PimCmdKind.ABS, (obj_dx,), obj_dx)
                device.execute(PimCmdKind.SUB_SCALAR, (obj_y,), obj_dy, scalar=cy)
                device.execute(PimCmdKind.ABS, (obj_dy,), obj_dy)
                device.execute(PimCmdKind.ADD, (obj_dx, obj_dy), dist_objs[c])
                if c == 0:
                    device.execute(PimCmdKind.COPY, (dist_objs[c],), obj_best)
                else:
                    device.execute(
                        PimCmdKind.MIN, (obj_best, dist_objs[c]), obj_best
                    )
            for c in range(self.K):
                device.execute(PimCmdKind.EQ, (dist_objs[c], obj_best), obj_mask)
                device.execute(PimCmdKind.REDSUM, (obj_mask,))
                device.execute(
                    PimCmdKind.SELECT, (obj_mask, obj_x, obj_zero), obj_sel
                )
                device.execute(PimCmdKind.REDSUM, (obj_sel,))
                device.execute(
                    PimCmdKind.SELECT, (obj_mask, obj_y, obj_zero), obj_sel
                )
                device.execute(PimCmdKind.REDSUM, (obj_sel,))
            host.run(KernelProfile(
                "host-centroid-update", bytes_accessed=32.0 * self.K,
                compute_ops=4.0 * self.K,
            ))
        return device, sink

    def _converted_stream(self):
        device, sink = _observed_device(bitserial_config(4))
        bench = make_benchmark("kmeans")
        bench.params.update(
            num_points=self.N, k=self.K, iterations=self.ITERATIONS
        )
        bench.run_pim(device, HostModel(device))
        return device, sink

    def test_converted_benchmark_matches_per_call_loop(self):
        loop_device, loop_sink = self._reference_stream()
        fast_device, fast_sink = self._converted_stream()
        loop_events = _shape(loop_sink.events)
        fast_events = _shape(fast_sink.events)
        # The benchmark additionally frees and (before the loop) allocates
        # -- pure bookkeeping with no recorded events -- so the streams
        # align one to one.
        assert fast_events == loop_events
        assert (
            fast_device.stats.snapshot() == loop_device.stats.snapshot()
        )
        assert fast_device.stats.commands == loop_device.stats.commands


class TestHistogramChannels:
    WIDTH, HEIGHT = 64, 48

    def _reference_stream(self):
        device, sink = _observed_device(fulcrum_config(4))
        num_pixels = self.WIDTH * self.HEIGHT
        obj_chan = device.alloc(num_pixels, PimDataType.UINT8)
        obj_mask = device.alloc_associated(obj_chan, PimDataType.BOOL)
        for _ in range(NUM_CHANNELS):
            device.copy_host_to_device(None, obj_chan)
            device.execute(
                PimCmdKind.EQ_SCALAR, (obj_chan,), obj_mask,
                scalar=0x55, repeat=NUM_LEVELS,
            )
            device.execute(PimCmdKind.REDSUM, (obj_mask,), repeat=NUM_LEVELS)
        device.free(obj_chan)
        device.free(obj_mask)
        return device, sink

    def _converted_stream(self):
        device, sink = _observed_device(fulcrum_config(4))
        bench = make_benchmark("histogram")
        bench.params.update(width=self.WIDTH, height=self.HEIGHT)
        bench.run_pim(device, HostModel(device))
        return device, sink

    def test_converted_benchmark_matches_per_call_loop(self):
        loop_device, loop_sink = self._reference_stream()
        fast_device, fast_sink = self._converted_stream()
        assert _shape(fast_sink.events) == _shape(loop_sink.events)
        assert (
            fast_device.stats.snapshot() == loop_device.stats.snapshot()
        )
        assert fast_device.stats.commands == loop_device.stats.commands

    def test_functional_histogram_still_verifies(self):
        device = PimDevice(fulcrum_config(4), functional=True)
        bench = make_benchmark("histogram")
        outputs = bench.run_pim(device, HostModel(device))
        assert bench.verify(outputs)
