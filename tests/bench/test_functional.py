"""Functional verification of the whole PIMbench suite.

Every Table I benchmark runs at its small functional parameters on every
architecture, and its PIM output is checked against the host reference --
the Section V-E verification methodology, as an automated test matrix.
"""

import pytest

from repro.bench.registry import BENCHMARK_CLASSES, make_benchmark

from tests.conftest import make_device

FAST_KEYS = [
    cls.key for cls in BENCHMARK_CLASSES
    if cls.key not in ("aes-enc", "aes-dec", "vgg-13", "vgg-16", "vgg-19")
]


@pytest.mark.parametrize("key", FAST_KEYS)
def test_benchmark_verifies(key, device_type):
    device = make_device(device_type)
    result = make_benchmark(key).run(device)
    assert result.verified is True
    assert result.stats.kernel_time_ns > 0
    assert result.cpu_time_ns > 0
    assert result.gpu_time_ns > 0


@pytest.mark.parametrize("key", ["aes-enc", "aes-dec"])
def test_aes_verifies(key, device_type):
    device = make_device(device_type)
    result = make_benchmark(key, num_bytes=256).run(device)
    assert result.verified is True


def test_vgg_verifies(device_type):
    device = make_device(device_type)
    result = make_benchmark("vgg-16").run(device)
    assert result.verified is True
    assert result.stats.host_time_ns > 0  # PIM + Host benchmark


def test_functional_result_is_architecture_independent(rng):
    """The PIM API portability claim: same outputs on every target."""
    outputs = {}
    for device_type in ("bit-serial", "fulcrum", "bank-level"):
        from repro.config.device import PimDeviceType
        dtype = next(d for d in PimDeviceType if d.value == device_type)
        device = make_device(dtype)
        bench = make_benchmark("vecadd", num_elements=1024)
        outputs[device_type] = bench.run_pim(device, _host(device))["result"]
    import numpy as np
    assert np.array_equal(outputs["bit-serial"], outputs["fulcrum"])
    assert np.array_equal(outputs["fulcrum"], outputs["bank-level"])


def _host(device):
    from repro.host.model import HostModel
    return HostModel(device)


def test_leaves_no_objects_behind(device_type):
    """Benchmarks free everything they allocate."""
    device = make_device(device_type)
    make_benchmark("kmeans").run(device)
    assert device.resources.num_live_objects == 0
    assert device.resources.rows_in_use == 0
