"""Tests for the transitive-closure and PCA extension kernels."""

import numpy as np
import pytest

from repro.bench.extensions import EXTENSION_BENCHMARKS
from repro.bench.extensions2 import PcaBenchmark, TransitiveClosureBenchmark

from tests.conftest import make_device


class TestTransitiveClosure:
    def test_verifies_on_every_architecture(self, device_type):
        device = make_device(device_type)
        result = TransitiveClosureBenchmark().run(device)
        assert result.verified is True

    def test_disconnected_components_stay_apart(self, device_type):
        device = make_device(device_type)
        bench = TransitiveClosureBenchmark(num_nodes=40, num_edges=20)
        result = bench.run(device)
        assert result.verified is True

    def test_closure_is_idempotent_fixpoint(self):
        """Running the pivot loop over a closed matrix changes nothing."""
        from repro.host.model import HostModel
        from repro.config.device import PimDeviceType
        device = make_device(PimDeviceType.FULCRUM)
        bench = TransitiveClosureBenchmark(num_nodes=32, num_edges=48)
        outputs = bench.run_pim(device, HostModel(device))
        closure = outputs["closure"]
        # Re-deriving reachability from the closure's own bits: for every
        # reachable pair (u, v), v's row must be a subset of u's row.
        n = outputs["num_nodes"]
        for u in range(n):
            for v in range(n):
                if closure[u, v // 32] >> (v % 32) & 1:
                    assert np.array_equal(
                        closure[u] | closure[v], closure[u]
                    ), (u, v)

    def test_op_mix_is_logical(self, device_type):
        from repro.core.commands import OpCategory
        device = make_device(device_type)
        result = TransitiveClosureBenchmark().run(device)
        assert result.op_counts.get(OpCategory.OR, 0) > 0
        assert result.op_counts.get(OpCategory.AND, 0) > 0


class TestPca:
    def test_verifies_on_every_architecture(self, device_type):
        device = make_device(device_type)
        result = PcaBenchmark().run(device)
        assert result.verified is True

    def test_component_is_unit_length(self):
        from repro.host.model import HostModel
        from repro.config.device import PimDeviceType
        device = make_device(PimDeviceType.BITSIMD_V_AP)
        outputs = PcaBenchmark().run_pim(device, HostModel(device))
        assert np.linalg.norm(outputs["component"]) == pytest.approx(1.0)

    def test_reduction_heavy_op_mix(self, device_type):
        from repro.core.commands import OpCategory
        device = make_device(device_type)
        result = PcaBenchmark().run(device)
        assert result.op_counts[OpCategory.REDUCTION] == 5
        assert result.op_counts[OpCategory.MUL] == 3

    def test_host_phase_recorded(self, device_type):
        device = make_device(device_type)
        result = PcaBenchmark().run(device)
        assert result.stats.host_time_ns > 0


def test_four_extension_kernels_registered():
    keys = {cls.key for cls in EXTENSION_BENCHMARKS}
    assert keys == {"prefixsum", "stringmatch", "transitive", "pca"}
