"""Functional verification across varied benchmark parameters.

The main functional matrix runs each benchmark at its default small
parameters; these cases stress the less-common shapes: non-square images,
single-cluster k-means, tall/skinny and skinny/tall matrices, multi-chunk
graphs, tiny and unaligned sizes.
"""

import pytest

from repro.bench.registry import make_benchmark
from repro.config.device import PimDeviceType

from tests.conftest import make_device

CASES = [
    ("vecadd", {"num_elements": 1}),
    ("vecadd", {"num_elements": 8191}),  # just under one row group
    ("vecadd", {"num_elements": 8193}),  # just over
    ("axpy", {"num_elements": 1000, "scale": -7}),
    ("axpy", {"num_elements": 1000, "scale": 0}),
    ("gemv", {"num_rows": 1, "num_cols": 64}),
    ("gemv", {"num_rows": 300, "num_cols": 3}),
    ("gemm", {"m": 1, "k": 17, "n": 9}),
    ("gemm", {"m": 33, "k": 2, "n": 1}),
    ("radixsort", {"num_elements": 257}),
    ("tricount", {"num_nodes": 33, "num_edges": 80, "num_chunks": 3}),
    ("tricount", {"num_nodes": 20, "num_edges": 0, "num_chunks": 1}),
    ("filter", {"num_records": 5000, "selectivity": 0.5}),
    ("filter", {"num_records": 5000, "selectivity": 0.001}),
    ("histogram", {"width": 10, "height": 7}),
    ("brightness", {"delta": 0}),
    ("brightness", {"delta": 255}),
    ("downsample", {"width": 2, "height": 2}),
    ("downsample", {"width": 30, "height": 4}),
    ("knn", {"num_points": 300, "num_queries": 1, "k": 1}),
    ("knn", {"num_points": 100, "num_queries": 3, "k": 25}),
    ("linreg", {"num_points": 100}),
    ("kmeans", {"num_points": 500, "k": 1, "iterations": 2}),
    ("kmeans", {"num_points": 500, "k": 7, "iterations": 1}),
    ("vgg-16", {"batch": 1, "image_size": 4, "conv_plan": [2, "M"],
                "dense_plan": [3]}),
    ("vgg-16", {"batch": 3, "image_size": 8,
                "conv_plan": [4, 4, "M", 6, "M"], "dense_plan": [5, 4]}),
]


@pytest.mark.parametrize("key,overrides", CASES,
                         ids=[f"{k}-{i}" for i, (k, _) in enumerate(CASES)])
def test_parameter_variation_verifies(key, overrides):
    """Every variation verifies on the bit-serial device."""
    device = make_device(PimDeviceType.BITSIMD_V_AP)
    result = make_benchmark(key, **overrides).run(device)
    assert result.verified is True


@pytest.mark.parametrize("key,overrides", [
    ("gemm", {"m": 19, "k": 5, "n": 4}),
    ("downsample", {"width": 14, "height": 6}),
    ("kmeans", {"num_points": 300, "k": 3, "iterations": 2}),
], ids=["gemm", "downsample", "kmeans"])
def test_variations_on_bit_parallel_devices(key, overrides):
    for device_type in (PimDeviceType.FULCRUM, PimDeviceType.BANK_LEVEL):
        device = make_device(device_type)
        result = make_benchmark(key, **overrides).run(device)
        assert result.verified is True, device_type


class TestDegenerateInputs:
    def test_downsample_rejects_odd_dimensions(self):
        device = make_device(PimDeviceType.FULCRUM)
        with pytest.raises(ValueError):
            make_benchmark("downsample", width=7, height=8).run(device)

    def test_brightness_rejects_out_of_range_delta(self):
        device = make_device(PimDeviceType.FULCRUM)
        with pytest.raises(ValueError):
            make_benchmark("brightness", delta=300).run(device)

    def test_aes_rejects_sub_block_input(self):
        device = make_device(PimDeviceType.FULCRUM)
        with pytest.raises(ValueError):
            make_benchmark("aes-enc", num_bytes=8).run(device)
