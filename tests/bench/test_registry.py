"""Tests for the benchmark registry and metadata (Table I)."""

import pytest

from repro.bench.registry import (
    BENCHMARK_CLASSES,
    BENCHMARKS_BY_KEY,
    all_benchmarks,
    make_benchmark,
)


class TestRegistry:
    def test_eighteen_benchmarks(self):
        assert len(BENCHMARK_CLASSES) == 18

    def test_keys_unique(self):
        keys = [cls.key for cls in BENCHMARK_CLASSES]
        assert len(set(keys)) == len(keys)

    def test_names_unique(self):
        names = [cls.name for cls in BENCHMARK_CLASSES]
        assert len(set(names)) == len(names)

    def test_table1_domains_present(self):
        domains = {cls.domain for cls in BENCHMARK_CLASSES}
        assert domains == {
            "Linear Algebra", "Sort", "Cryptography", "Graph", "Database",
            "Image Processing", "Supervised Learning", "Unsupervised Learning",
            "Neural Network",
        }

    def test_pim_host_benchmarks(self):
        """Table I marks these as PIM + Host."""
        pim_host = {
            cls.key for cls in BENCHMARK_CLASSES
            if cls.execution_type == "PIM + Host"
        }
        assert pim_host == {
            "radixsort", "filter", "knn", "vgg-13", "vgg-16", "vgg-19",
        }

    def test_every_benchmark_has_paper_params(self):
        for cls in BENCHMARK_CLASSES:
            params = cls.paper_params()
            assert params, cls.key
            assert set(params) == set(cls.default_params()), cls.key


class TestMakeBenchmark:
    def test_default_scale(self):
        bench = make_benchmark("vecadd")
        assert bench.params["num_elements"] == 4096

    def test_paper_scale(self):
        bench = make_benchmark("vecadd", paper_scale=True)
        assert bench.params["num_elements"] == 2_035_544_320

    def test_overrides(self):
        bench = make_benchmark("vecadd", num_elements=99)
        assert bench.params["num_elements"] == 99

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            make_benchmark("bogus")

    def test_unknown_param(self):
        with pytest.raises(TypeError):
            make_benchmark("vecadd", bogus_param=1)

    def test_all_benchmarks_instantiates_suite(self):
        suite = all_benchmarks()
        assert len(suite) == 18
        assert BENCHMARKS_BY_KEY["vecadd"] is type(suite[0])
