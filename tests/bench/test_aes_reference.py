"""Tests for the host AES-256 reference against FIPS-197 values."""

import numpy as np
import pytest

from repro.bench import aes_reference as ref


class TestGaloisField:
    def test_known_products(self):
        assert ref.gf_mul(0x57, 0x83) == 0xC1  # FIPS-197 example
        assert ref.gf_mul(0x57, 0x13) == 0xFE

    def test_identity_and_zero(self):
        assert ref.gf_mul(0xAB, 1) == 0xAB
        assert ref.gf_mul(0xAB, 0) == 0

    def test_inverse_table(self):
        inverse = ref.gf_inverse_table()
        for x in (1, 2, 3, 0x53, 0xFF):
            assert ref.gf_mul(x, inverse[x]) == 1
        assert inverse[0] == 0


class TestSbox:
    def test_fips_known_entries(self):
        box = ref.sbox()
        assert box[0x00] == 0x63
        assert box[0x01] == 0x7C
        assert box[0x53] == 0xED
        assert box[0xFF] == 0x16

    def test_inverse_sbox_inverts(self):
        box, inverse = ref.sbox(), ref.inv_sbox()
        values = np.arange(256, dtype=np.uint8)
        assert np.array_equal(inverse[box[values]], values)


class TestKeyExpansion:
    def test_round_key_count(self):
        keys = ref.expand_key(bytes(range(32)))
        assert keys.shape == (15, 16)

    def test_first_round_key_is_the_key(self):
        key = bytes(range(32))
        keys = ref.expand_key(key)
        assert bytes(keys[0]) + bytes(keys[1]) == key

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ref.expand_key(bytes(16))


class TestKnownAnswer:
    def test_fips197_c3_encrypt(self):
        """FIPS-197 Appendix C.3 AES-256 known-answer test."""
        key = bytes(range(32))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        keys = ref.expand_key(key)
        blocks = np.frombuffer(plaintext, dtype=np.uint8).reshape(1, 16)
        assert bytes(ref.encrypt_blocks(blocks, keys)[0]) == expected

    def test_fips197_c3_decrypt(self):
        key = bytes(range(32))
        ciphertext = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        keys = ref.expand_key(key)
        blocks = np.frombuffer(ciphertext, dtype=np.uint8).reshape(1, 16)
        assert bytes(ref.decrypt_blocks(blocks, keys)[0]) == expected

    def test_roundtrip_many_blocks(self, rng):
        keys = ref.expand_key(rng.integers(0, 256, 32, dtype=np.uint8).tobytes())
        blocks = rng.integers(0, 256, (64, 16)).astype(np.uint8)
        encrypted = ref.encrypt_blocks(blocks, keys)
        assert not np.array_equal(encrypted, blocks)
        assert np.array_equal(ref.decrypt_blocks(encrypted, keys), blocks)
