"""Golden command traces: the exact op counts each benchmark issues.

These lock the benchmarks' command structure: a change to a benchmark's
implementation that alters its trace shows up here before it silently
moves every figure.
"""


from repro.bench.registry import make_benchmark
from repro.config.device import PimDeviceType
from repro.core.commands import PimCmdKind

from tests.conftest import make_device


def op_counts(key, **overrides):
    device = make_device(PimDeviceType.FULCRUM)
    make_benchmark(key, **overrides).run(device)
    return dict(device.stats.op_counts)


class TestTraceShapes:
    def test_vecadd_is_one_add(self):
        counts = op_counts("vecadd")
        assert counts == {PimCmdKind.ADD: 1}

    def test_axpy_is_one_scaled_add(self):
        counts = op_counts("axpy")
        assert counts == {PimCmdKind.SCALED_ADD: 1}

    def test_gemv_issues_one_scaled_add_per_column(self):
        counts = op_counts("gemv", num_rows=32, num_cols=12)
        assert counts[PimCmdKind.SCALED_ADD] == 12
        assert counts[PimCmdKind.BROADCAST] == 1

    def test_gemm_issues_mul_add_per_inner_index(self):
        counts = op_counts("gemm", m=8, k=5, n=4)
        assert counts[PimCmdKind.MUL] == 5
        assert counts[PimCmdKind.ADD] == 5

    def test_histogram_issues_256_matches_per_channel(self):
        counts = op_counts("histogram", width=8, height=8)
        assert counts[PimCmdKind.EQ_SCALAR] == 3 * 256
        assert counts[PimCmdKind.REDSUM] == 3 * 256

    def test_radix_sort_per_pass_structure(self):
        counts = op_counts("radixsort", num_elements=512)
        assert counts[PimCmdKind.SHIFT_RIGHT] == 4  # one digit per pass
        assert counts[PimCmdKind.AND_SCALAR] == 4
        assert counts[PimCmdKind.EQ_SCALAR] == 4 * 256
        assert counts[PimCmdKind.REDSUM] == 4 * 256

    def test_brightness_is_min_plus_add(self):
        counts = op_counts("brightness")
        assert counts == {PimCmdKind.MIN_SCALAR: 1, PimCmdKind.ADD_SCALAR: 1}

    def test_downsample_per_channel_structure(self):
        counts = op_counts("downsample", width=8, height=8)
        assert counts[PimCmdKind.ADD] == 3 * 2  # two pair-sums per channel
        assert counts[PimCmdKind.SHIFT_RIGHT] == 3

    def test_knn_per_query_distance_pipeline(self):
        counts = op_counts("knn", num_points=256, num_queries=5)
        assert counts[PimCmdKind.SUB_SCALAR] == 5 * 2
        assert counts[PimCmdKind.ABS] == 5 * 2
        assert counts[PimCmdKind.ADD] == 5

    def test_linreg_two_muls_four_redsums(self):
        counts = op_counts("linreg", num_points=256)
        assert counts[PimCmdKind.MUL] == 2
        assert counts[PimCmdKind.REDSUM] == 4

    def test_kmeans_per_iteration_structure(self):
        k, iters = 3, 2
        counts = op_counts("kmeans", num_points=512, k=k, iterations=iters)
        assert counts[PimCmdKind.SUB_SCALAR] == iters * k * 2
        assert counts[PimCmdKind.ABS] == iters * k * 2
        assert counts[PimCmdKind.EQ] == iters * k
        assert counts[PimCmdKind.SELECT] == iters * k * 2
        assert counts[PimCmdKind.REDSUM] == iters * k * 3
        assert counts[PimCmdKind.MIN] == iters * (k - 1)

    def test_filter_is_compare_plus_count(self):
        counts = op_counts("filter", num_records=1024)
        assert counts == {PimCmdKind.LT_SCALAR: 1, PimCmdKind.REDSUM: 1}

    def test_tricount_per_chunk_structure(self):
        counts = op_counts("tricount", num_nodes=40, num_edges=100,
                           num_chunks=2)
        assert counts[PimCmdKind.AND] == 2
        assert counts[PimCmdKind.POPCOUNT] == 2
        assert counts[PimCmdKind.REDSUM] == 2

    def test_aes_round_structure(self):
        counts = op_counts("aes-enc", num_bytes=256)
        # AddRoundKey: 15 key additions x 16 planes.
        assert counts[PimCmdKind.XOR_SCALAR] == 15 * 16
        # SubBytes gate model: 14 applications x (32 AND + 81 XOR) x 16.
        assert counts[PimCmdKind.AND] == 14 * 32 * 16
        assert counts[PimCmdKind.XOR] >= 14 * 81 * 16  # + MixColumns xors


class TestTraceInvariance:
    def test_trace_identical_across_architectures(self):
        """The portability core: one implementation, one trace."""
        reference = None
        for device_type in PimDeviceType:
            device = make_device(device_type)
            make_benchmark("kmeans", num_points=256, k=2,
                           iterations=2).run(device)
            counts = dict(device.stats.op_counts)
            if reference is None:
                reference = counts
            assert counts == reference, device_type
