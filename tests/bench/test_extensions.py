"""Tests for the extension kernels (prefix sum, string match)."""

from repro.bench.extensions import (
    EXTENSION_BENCHMARKS,
    PrefixSumBenchmark,
    StringMatchBenchmark,
)

from tests.conftest import make_device


class TestPrefixSum:
    def test_verifies_on_every_architecture(self, device_type):
        device = make_device(device_type)
        result = PrefixSumBenchmark().run(device)
        assert result.verified is True

    def test_log_steps(self, device_type):
        from repro.core.commands import PimCmdKind
        device = make_device(device_type)
        PrefixSumBenchmark(num_elements=1024).run(device)
        # Hillis-Steele: exactly log2(1024) = 10 ADD commands.
        assert device.stats.op_counts[PimCmdKind.ADD] == 10

    def test_non_power_of_two(self, device_type):
        device = make_device(device_type)
        result = PrefixSumBenchmark(num_elements=1000).run(device)
        assert result.verified is True


class TestStringMatch:
    def test_verifies_on_every_architecture(self, device_type):
        device = make_device(device_type)
        result = StringMatchBenchmark().run(device)
        assert result.verified is True
        assert result.stats.host_time_ns > 0

    def test_finds_planted_occurrences(self, device_type):
        device = make_device(device_type)
        bench = StringMatchBenchmark(text_length=4096, pattern_length=5)
        from repro.host.model import HostModel
        outputs = bench.run_pim(device, HostModel(device))
        assert outputs["count"] >= 1  # the generator plants matches
        text = outputs["text"].tobytes()
        pattern = outputs["pattern"].tobytes()
        for pos in outputs["positions"]:
            assert text[pos:pos + len(pattern)] == pattern

    def test_no_tail_false_positives(self, device_type):
        device = make_device(device_type)
        bench = StringMatchBenchmark(text_length=512, pattern_length=8)
        from repro.host.model import HostModel
        outputs = bench.run_pim(device, HostModel(device))
        assert all(p <= 512 - 8 for p in outputs["positions"])


def test_extensions_not_in_table1():
    from repro.bench.registry import BENCHMARKS_BY_KEY
    for cls in EXTENSION_BENCHMARKS:
        assert cls.key not in BENCHMARKS_BY_KEY


def test_extension_analytic_mode(device_type):
    device = make_device(device_type, functional=False)
    result = PrefixSumBenchmark(num_elements=1_000_000).run(device)
    assert result.verified is None
    assert result.stats.kernel_time_ns > 0
