"""The DDR5 bank-level plug-in variant: one module, fully functional."""

from repro.arch import arch_for, resolve_backend
from repro.arch.ddr5 import (
    DDR5_BANK_LEVEL,
    DDR5_TIMING,
    Ddr5BankBackend,
    ddr5_bank_config,
)
from repro.config.device import CORE_SCOPE_BANK
from repro.engine import CellSpec, cell_cache_key, model_version, run_cell


class TestDeviceType:
    def test_traits(self):
        assert DDR5_BANK_LEVEL.core_scope == CORE_SCOPE_BANK
        assert not DDR5_BANK_LEVEL.is_subarray_level
        assert not DDR5_BANK_LEVEL.is_bit_serial
        assert not DDR5_BANK_LEVEL.is_analog
        assert not DDR5_BANK_LEVEL.in_paper_evaluation

    def test_hashable_and_distinct_from_builtin(self):
        from repro.config.device import PimDeviceType

        types = {DDR5_BANK_LEVEL, *PimDeviceType}
        assert len(types) == 1 + len(list(PimDeviceType))


class TestConfig:
    def test_table2_geometry(self):
        config = ddr5_bank_config(num_ranks=32)
        geometry = config.dram.geometry
        # 2x the DDR4 bank-level PE count at identical module capacity.
        assert geometry.banks_per_rank == 256
        assert geometry.subarrays_per_bank == 16
        assert config.num_cores == 32 * 256
        ddr4 = resolve_backend("bank").make_config(num_ranks=32)
        assert (
            config.dram.geometry.num_subarrays
            == ddr4.dram.geometry.num_subarrays
        )
        assert config.num_cores == 2 * ddr4.num_cores

    def test_faster_channel_than_ddr4(self):
        ddr4 = resolve_backend("bank").make_config(num_ranks=32)
        assert (
            DDR5_TIMING.rank_bandwidth_gbps
            > ddr4.dram.timing.rank_bandwidth_gbps
        )

    def test_geometry_overrides(self):
        config = ddr5_bank_config(num_ranks=4, gdl_width_bits=256)
        assert config.dram.geometry.gdl_width_bits == 256


class TestRegistration:
    def test_resolves_by_name_and_device_type(self):
        backend = resolve_backend("ddr5")
        assert isinstance(backend, Ddr5BankBackend)
        assert arch_for(ddr5_bank_config(num_ranks=2)) is backend

    def test_listed_by_arch_list_cli(self, capsys):
        import repro.cli as cli

        assert cli.main(["arch", "list"]) == 0
        out = capsys.readouterr().out
        assert "ddr5-bank" in out
        assert "DDR5 Bank-level" in out

    def test_reuses_banklevel_perf_model(self):
        from repro.perf import BankLevelPerfModel, make_perf_model

        model = make_perf_model(ddr5_bank_config(num_ranks=2))
        assert isinstance(model, BankLevelPerfModel)


class TestEndToEnd:
    def test_vecadd_cell_runs_and_verifies(self):
        spec = CellSpec(
            benchmark_key="vecadd",
            device_type=DDR5_BANK_LEVEL,
            num_ranks=2,
            paper_scale=False,
            functional=True,
        )
        outcome = run_cell(spec)
        assert outcome.ok
        assert outcome.result.verified is True
        assert outcome.result.stats.total_time_ns > 0

    def test_own_cache_stamp(self):
        """The DDR5 device digest differs from every builtin's, so its
        cells never collide with (or get invalidated by) DDR4 entries."""
        stamps = {
            name: model_version(
                resolve_backend(name).device_type, "vecadd"
            ).split("-")[2]
            for name in ("ddr5", "bank", "bitserial", "fulcrum", "analog")
        }
        assert stamps["ddr5"] not in {
            v for k, v in stamps.items() if k != "ddr5"
        }

    def test_cache_key_distinct_from_ddr4_bank(self):
        ddr5 = CellSpec("vecadd", DDR5_BANK_LEVEL, num_ranks=32)
        ddr4 = CellSpec(
            "vecadd", resolve_backend("bank").device_type, num_ranks=32
        )
        assert cell_cache_key(ddr5) != cell_cache_key(ddr4)
