"""Cross-backend contract: every backend x every command kind.

The registry's value is that config, perf, energy, and caching agree for
*every* architecture -- builtin or plug-in -- without any layer naming
one.  This suite drives that contract generically:

* the perf model prices every ``PimCmdKind`` with finite, non-negative
  cost fields;
* the model never emits a counter outside the backend's declared
  ``cost_counters`` (which would go unpriced or mispriced);
* the energy model prices every emitted counter to a finite energy;
* every declared stamp source exists on disk, so the cache stamp can
  never silently hash an empty group.
"""

import math
import pathlib

import pytest

from repro.arch import iter_backends
from repro.arch.base import COST_COUNTERS
from repro.config.device import PimAllocType
from repro.core.commands import PimCmdKind
from repro.core.layout import plan_layout
from repro.energy.model import EnergyModel
from repro.perf import make_perf_model
from repro.perf.base import CommandArgs

#: Small enough to run the full matrix fast, large enough to exercise
#: multi-group layouts on every geometry.
NUM_ELEMENTS = 100_000
BITS = 32

BACKENDS = list(iter_backends())


def _args_for(kind: PimCmdKind, config) -> CommandArgs:
    """Build a well-formed CommandArgs honoring the command's arity."""
    spec = kind.spec
    layout = plan_layout(
        config, NUM_ELEMENTS, BITS, PimAllocType.AUTO, enforce_capacity=False
    )
    bool_layout = plan_layout(
        config, NUM_ELEMENTS, 1, PimAllocType.AUTO, enforce_capacity=False
    )
    inputs = tuple([layout] * spec.num_vector_inputs)
    if kind is PimCmdKind.SELECT:  # condition mask first
        inputs = (bool_layout,) + inputs[1:]
    dest = None if spec.produces_scalar else layout
    scalar = 3 if spec.has_scalar else None
    return CommandArgs(
        kind=kind, bits=BITS, inputs=inputs, dest=dest, scalar=scalar
    )


@pytest.mark.parametrize(
    "backend", BACKENDS, ids=[b.id for b in BACKENDS]
)
class TestBackendContract:
    def test_declared_counters_are_known(self, backend):
        assert set(backend.cost_counters) <= set(COST_COUNTERS)

    @pytest.mark.parametrize("kind", list(PimCmdKind), ids=lambda k: k.name)
    def test_every_command_costs_and_prices(self, backend, kind):
        config = backend.make_config(num_ranks=2)
        model = make_perf_model(config)
        cost = model.cost_of(_args_for(kind, config))

        for field in ("latency_ns",) + COST_COUNTERS:
            value = getattr(cost, field)
            assert math.isfinite(value), f"{field} not finite: {value}"
            assert value >= 0, f"{field} negative: {value}"
        assert 0 <= cost.cores_active <= config.num_cores

        emitted = {
            counter for counter in COST_COUNTERS
            if getattr(cost, counter) > 0
        }
        undeclared = emitted - set(backend.cost_counters)
        assert not undeclared, (
            f"{backend.id} emitted undeclared counters {sorted(undeclared)} "
            f"for {kind.name}"
        )

        energy = EnergyModel(config).command_energy(cost)
        assert math.isfinite(energy.execution_nj) and energy.execution_nj >= 0
        assert math.isfinite(energy.background_nj) and energy.background_nj >= 0

    def test_stamp_sources_exist_on_disk(self, backend):
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        assert backend.stamp_entries(), f"{backend.id} declares no stamp sources"
        for entry in backend.stamp_entries():
            if "=" in entry:
                # Pseudo-entry: literal content hashed by the version
                # stamp, never a file (parametric knob digests).
                continue
            path = root / entry
            assert path.exists(), (
                f"{backend.id} stamp source {entry!r} missing at {path}"
            )

    def test_table2_params_shape(self, backend):
        params = backend.table2_params(num_ranks=2)
        assert set(params) == {"cores", "freq_mhz", "layout", "ap_support"}
        assert params["cores"] > 0
        assert params["freq_mhz"] is None or params["freq_mhz"] > 0
        assert isinstance(params["ap_support"], bool)

    def test_alu_op_pricing_positive(self, backend):
        from repro.config.power import PowerConfig

        assert backend.alu_op_pj(PowerConfig()) > 0
