"""The architecture registry: lookup, errors, and registration rules."""

import pytest

from repro.arch import (
    ArchBackend,
    arch_for,
    backend_names,
    default_backend,
    device_type_for,
    iter_backends,
    paper_backends,
    register_backend,
    resolve_backend,
    suite_device_order,
    unregister_backend,
)
from repro.config.device import (
    ArchDeviceType,
    CORE_SCOPE_BANK,
    DeviceConfig,
    PimDeviceType,
)
from repro.core.errors import PimConfigError, PimStatus
from repro.perf import make_perf_model


class TestResolution:
    def test_iteration_is_sorted_by_id(self):
        """Listings are byte-stable: sorted by id, not registration order."""
        ids = [b.id for b in iter_backends()]
        assert ids == sorted(ids)
        for expected in ("bitserial", "fulcrum", "bank", "analog",
                         "ddr5-bank", "upmem"):
            assert expected in ids

    def test_resolve_by_id_and_alias_case_insensitive(self):
        assert resolve_backend("fulcrum").id == "fulcrum"
        assert resolve_backend("Bit-Serial").id == "bitserial"
        assert resolve_backend("BANK-LEVEL").id == "bank"
        assert resolve_backend("ddr5").id == "ddr5-bank"
        assert resolve_backend("prim").id == "upmem"

    def test_arch_for_accepts_config_type_and_name(self):
        backend = resolve_backend("fulcrum")
        config = backend.make_config(num_ranks=2)
        assert arch_for(config) is backend
        assert arch_for(config.device_type) is backend
        assert arch_for("fulcrum") is backend

    def test_device_type_for(self):
        assert device_type_for("bitserial") is PimDeviceType.BITSIMD_V_AP
        assert device_type_for("ddr5").value == "ddr5-bank-level"

    def test_default_backend_is_first_registered(self):
        # Registration order, not sorted listing order: the builtins
        # register bit-serial first and the default must not drift when
        # an alphabetically-earlier backend exists.
        assert default_backend().id == "bitserial"

    def test_paper_backends_and_suite_order(self):
        papers = paper_backends()
        assert [b.id for b in papers] == ["bitserial", "fulcrum", "bank"]
        assert suite_device_order() == tuple(b.device_type for b in papers)

    def test_backend_names(self):
        names = backend_names()
        assert names == [b.id for b in iter_backends()]
        with_aliases = backend_names(include_aliases=True)
        assert "ddr5-bank-level" in with_aliases
        assert set(names) <= set(with_aliases)


class TestErrors:
    def test_unknown_name_is_config_coded_with_valid_names(self):
        with pytest.raises(PimConfigError) as exc_info:
            resolve_backend("hbm3-quantum")
        err = exc_info.value
        assert err.status is PimStatus.ERR_CONFIG
        assert "hbm3-quantum" in str(err)
        assert err.context["name"] == "hbm3-quantum"
        assert "fulcrum" in err.context["valid"]

    def test_unregistered_device_type_names_the_type(self):
        rogue = ArchDeviceType(
            value="rogue", name="ROGUE", display_name="Rogue",
            core_scope=CORE_SCOPE_BANK,
        )
        with pytest.raises(PimConfigError) as exc_info:
            arch_for(rogue)
        err = exc_info.value
        assert err.status is PimStatus.ERR_CONFIG
        assert "rogue" in str(err)
        assert err.context["device_type"] == "rogue"

    def test_make_perf_model_rejects_unknown_device_type(self):
        """Satellite: the silent fall-through is gone -- an unknown type
        raises a PimStatus-coded error naming the type, never defaults to
        the bank-level model."""
        rogue = ArchDeviceType(
            value="mystery-arch", name="MYSTERY", display_name="Mystery",
            core_scope=CORE_SCOPE_BANK,
        )
        config = DeviceConfig(device_type=rogue)
        with pytest.raises(PimConfigError) as exc_info:
            make_perf_model(config)
        assert "mystery-arch" in str(exc_info.value)
        assert exc_info.value.context["device_type"] == "mystery-arch"


class _ToyBackend(ArchBackend):
    id = "toy"
    aliases = ("toy-alias",)
    device_type = ArchDeviceType(
        value="toy", name="TOY", display_name="Toy",
        core_scope=CORE_SCOPE_BANK,
    )
    description = "test-only backend"
    cost_counters = ("alu_word_ops",)
    stamp_sources = ("perf/banklevel.py",)

    def make_config(self, num_ranks=32, **geometry_overrides):
        from repro.arch import resolve_backend

        return DeviceConfig(
            device_type=self.device_type,
            dram=resolve_backend("bank").make_config(num_ranks).dram,
        )

    def make_perf_model(self, config):
        from repro.perf.banklevel import BankLevelPerfModel

        return BankLevelPerfModel(config)


class TestRegistration:
    def test_register_resolve_unregister_roundtrip(self):
        backend = _ToyBackend()
        register_backend(backend)
        try:
            assert resolve_backend("toy") is backend
            assert resolve_backend("toy-alias") is backend
            assert arch_for(backend.device_type) is backend
        finally:
            unregister_backend("toy")
        with pytest.raises(PimConfigError):
            resolve_backend("toy")

    def test_id_collision_rejected(self):
        backend = _ToyBackend()
        register_backend(backend)
        try:
            with pytest.raises(PimConfigError):
                register_backend(_ToyBackend())
            # replace=True is the sanctioned swap path.
            replacement = _ToyBackend()
            register_backend(replacement, replace=True)
            assert resolve_backend("toy") is replacement
        finally:
            unregister_backend("toy")

    def test_alias_collision_with_other_backend_rejected(self):
        class Clash(_ToyBackend):
            id = "clash"
            aliases = ("fulcrum",)  # collides with a builtin id
            device_type = ArchDeviceType(
                value="clash", name="CLASH", display_name="Clash",
                core_scope=CORE_SCOPE_BANK,
            )

        with pytest.raises(PimConfigError):
            register_backend(Clash())
        assert "clash" not in backend_names()

    def test_empty_id_rejected(self):
        class Nameless(_ToyBackend):
            id = ""

        with pytest.raises(PimConfigError):
            register_backend(Nameless())
