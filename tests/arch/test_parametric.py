"""Parametric backends: identity, the backend contract, and hygiene.

The tentpole claim of the DSE layer is that a derived backend is a
full citizen of the registry -- same contract as a hand-written one --
for *any* valid knob dict.  The property-style suite below drives ~20
seeded-random knob dicts across the word-ALU and bit-serial bases and
asserts the PR 4 contract on every derived point: every command kind
prices to finite non-negative cost fields, no undeclared counter is
ever emitted, the energy model prices every point, and every stamp
entry resolves (file on disk, or a literal pseudo-entry).  Alongside:
cache-key uniqueness across distinct knob dicts, key equality across
dict key orderings, and the registry-hygiene helpers.
"""

import math
import pathlib
import random

import pytest

from repro.arch import (
    ParametricBackend,
    arch_for,
    derive_backend,
    is_registered,
    iter_backends,
    resolve_backend,
    temporary_backend,
    unregister_backend,
)
from repro.arch.base import COST_COUNTERS
from repro.arch.parametric import (
    ParametricDeviceType,
    backend_for_device_type,
    knob_digest,
    normalize_knobs,
)
from repro.config.device import PimAllocType
from repro.config.power import PowerConfig
from repro.core.commands import PimCmdKind
from repro.core.errors import PimConfigError, PimStatus
from repro.core.layout import plan_layout
from repro.energy.model import EnergyModel
from repro.perf.base import CommandArgs

NUM_ELEMENTS = 50_000
BITS = 32

#: Knob pools the random dicts draw from.  Geometry values respect the
#: DramGeometry constraints (banks divisible by chips_per_rank=8);
#: arch values stay inside PimArchParams' validated sets.
_GEOMETRY_POOL = {
    "banks_per_rank": (16, 32, 64, 128),
    "subarrays_per_bank": (16, 32, 64),
    "cols_per_subarray": (4096, 8192, 16384),
    "gdl_width_bits": (64, 128, 256),
    "num_channels": (1, 2),
}
_WORD_POOL = {
    "pe_width_bits": (32, 64),
    "pe_freq_mhz": (100.0, 164.0, 250.0),
    "alu_op_pj": (0.05, 0.1, 0.2),
}
_BITSERIAL_POOL = {
    "bitserial_num_registers": (2, 4, 8),
    "alu_op_pj": (0.05, 0.1, 0.2),
}

_BASES = ("fulcrum", "bank", "ddr5-bank", "bitserial")


def _random_cases(count: int = 20):
    """Seeded-random (base, knob dict) pairs, distinct by construction."""
    rng = random.Random(0xD5E)
    cases = []
    seen = set()
    while len(cases) < count:
        base = rng.choice(_BASES)
        pool = dict(_GEOMETRY_POOL)
        pool.update(
            _BITSERIAL_POOL if base == "bitserial" else _WORD_POOL
        )
        names = rng.sample(sorted(pool), rng.randint(1, 3))
        knobs = {name: rng.choice(pool[name]) for name in names}
        backend = derive_backend(base, knobs)
        key = (base, backend.knobs)
        if key in seen:
            continue
        seen.add(key)
        cases.append((base, knobs, backend))
    return cases


CASES = _random_cases()


@pytest.fixture(autouse=True, scope="module")
def _registry_restored():
    """Unwind arch_for self-heal registrations this module provokes.

    Pricing a derived config resolves its ParametricDeviceType through
    ``arch_for``, whose self-heal path registers the backend (so worker
    processes can resolve pickled types).  That is by design inside a
    sweep -- run_sweep unwinds its own registrations -- but here the
    contract tests price 20 derived configs directly, so restore the
    registry for the rest of the session."""
    before = {backend.id for backend in iter_backends()}
    yield
    for backend in list(iter_backends()):
        if backend.id not in before:
            unregister_backend(backend.id)


def _args_for(kind: PimCmdKind, config) -> CommandArgs:
    """Well-formed CommandArgs honoring the command's arity."""
    spec = kind.spec
    layout = plan_layout(
        config, NUM_ELEMENTS, BITS, PimAllocType.AUTO, enforce_capacity=False
    )
    bool_layout = plan_layout(
        config, NUM_ELEMENTS, 1, PimAllocType.AUTO, enforce_capacity=False
    )
    inputs = tuple([layout] * spec.num_vector_inputs)
    if kind is PimCmdKind.SELECT:  # condition mask first
        inputs = (bool_layout,) + inputs[1:]
    dest = None if spec.produces_scalar else layout
    scalar = 3 if spec.has_scalar else None
    return CommandArgs(
        kind=kind, bits=BITS, inputs=inputs, dest=dest, scalar=scalar
    )


@pytest.mark.parametrize(
    "base,knobs,backend", CASES,
    ids=[b.id for _, _, b in CASES],
)
class TestRandomKnobContract:
    """The PR 4 backend contract holds for every random derived point."""

    def test_every_command_costs_and_prices(self, base, knobs, backend):
        config = backend.make_config(num_ranks=2)
        model = backend.make_perf_model(config)
        energy_model = EnergyModel(config)
        for kind in PimCmdKind:
            cost = model.cost_of(_args_for(kind, config))
            for field in ("latency_ns",) + COST_COUNTERS:
                value = getattr(cost, field)
                assert math.isfinite(value), (
                    f"{backend.id} {kind.name} {field} not finite: {value}"
                )
                assert value >= 0, (
                    f"{backend.id} {kind.name} {field} negative: {value}"
                )
            emitted = {
                counter for counter in COST_COUNTERS
                if getattr(cost, counter) > 0
            }
            undeclared = emitted - set(backend.cost_counters)
            assert not undeclared, (
                f"{backend.id} emitted undeclared {sorted(undeclared)} "
                f"for {kind.name}"
            )
            energy = energy_model.command_energy(cost)
            assert math.isfinite(energy.execution_nj)
            assert energy.execution_nj >= 0

    def test_energy_pricing_positive(self, base, knobs, backend):
        assert backend.alu_op_pj(PowerConfig()) > 0

    def test_stamp_entries_resolvable(self, base, knobs, backend):
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        entries = backend.stamp_entries()
        assert entries[-1] == f"knobs={backend.knob_digest}"
        for entry in entries:
            if "=" in entry:
                continue
            assert (root / entry).exists(), (
                f"{backend.id} stamp source {entry!r} missing"
            )

    def test_identity_matches_base_and_digest(self, base, knobs, backend):
        assert backend.transient is True
        assert backend.origin == resolve_backend(base).id
        assert backend.id.startswith(f"{backend.origin}@")
        assert backend.device_type.base_id == backend.origin
        assert backend.device_type.knobs == backend.knobs


class TestContentAddressedIdentity:
    def test_distinct_knob_dicts_get_distinct_ids_and_stamps(self):
        ids = [b.id for _, _, b in CASES]
        assert len(set(ids)) == len(ids)
        digests = [b.knob_digest for _, _, b in CASES]
        # Digests may repeat across *bases* sharing a knob tuple; the
        # (base, digest) pair -- the backend id -- never does, and every
        # distinct knob tuple on one base gets a distinct digest.
        by_base_digest = {(b.origin, d) for (_, _, b), d in zip(CASES, digests)}
        assert len(by_base_digest) == len(CASES)

    def test_key_order_and_numeric_spelling_are_canonical(self):
        a = derive_backend(
            "bank", {"pe_width_bits": 128, "pe_freq_mhz": 250}
        )
        b = derive_backend(
            "bank", {"pe_freq_mhz": 250.0, "bank_alu_bits": 128}
        )
        assert a.id == b.id
        assert a.device_type == b.device_type
        assert a.stamp_entries() == b.stamp_entries()

    def test_normalize_rejects_unknown_bool_and_fractional_int(self):
        bank = resolve_backend("bank")
        with pytest.raises(PimConfigError) as exc_info:
            normalize_knobs(bank, {"warp_drive": 9})
        assert exc_info.value.status is PimStatus.ERR_CONFIG
        assert "warp_drive" in str(exc_info.value)
        with pytest.raises(PimConfigError):
            normalize_knobs(bank, {"banks_per_rank": True})
        with pytest.raises(PimConfigError):
            normalize_knobs(bank, {"banks_per_rank": 32.5})

    def test_alias_conflict_detected(self):
        with pytest.raises(PimConfigError):
            derive_backend(
                "bank", {"pe_width_bits": 64, "bank_alu_bits": 128}
            )

    def test_pe_alias_rejected_on_bit_serial_base(self):
        with pytest.raises(PimConfigError) as exc_info:
            derive_backend("bitserial", {"pe_width_bits": 64})
        assert "bit-serial" in str(exc_info.value)

    def test_invalid_knob_value_is_coded_at_derive_time(self):
        # 48 is outside PimArchParams' validated ALU widths: the bare
        # ValueError must surface as a coded config error immediately.
        with pytest.raises(PimConfigError) as exc_info:
            derive_backend("bank", {"bank_alu_bits": 48})
        assert exc_info.value.status is PimStatus.ERR_CONFIG

    def test_knob_digest_is_pure_content(self):
        knobs = (("bank_alu_bits", 128), ("banks_per_rank", 64))
        assert knob_digest(knobs) == knob_digest(tuple(knobs))
        assert knob_digest(knobs) != knob_digest(knobs[:1])


class TestDerivedConfig:
    def test_geometry_and_arch_knobs_land_in_config(self):
        backend = derive_backend("bank", {
            "banks_per_rank": 64, "pe_width_bits": 128, "pe_freq_mhz": 250,
        })
        config = backend.make_config(num_ranks=4)
        assert config.dram.geometry.banks_per_rank == 64
        assert config.arch.bank_alu_bits == 128
        assert config.arch.bank_alu_freq_mhz == 250.0
        assert config.device_type is backend.device_type

    def test_caller_geometry_override_wins(self):
        backend = derive_backend("bank", {"banks_per_rank": 64})
        config = backend.make_config(num_ranks=2, banks_per_rank=16)
        assert config.dram.geometry.banks_per_rank == 16

    def test_energy_knob_overrides_pricing(self):
        base = resolve_backend("bank")
        hot = derive_backend("bank", {"alu_op_pj": 0.5})
        power = PowerConfig()
        assert hot.alu_op_pj(power) == 0.5
        assert hot.alu_op_pj(power) != base.alu_op_pj(power)

    def test_cannot_derive_from_transient(self):
        first = derive_backend("bank", {"banks_per_rank": 64})
        with pytest.raises(PimConfigError):
            ParametricBackend(first, {"banks_per_rank": 128})


class TestRegistryHygiene:
    def test_temporary_backend_restores_size(self):
        backend = derive_backend("bank", {"banks_per_rank": 64})
        before = len(iter_backends())
        with temporary_backend(backend):
            assert is_registered(backend.id)
            assert resolve_backend(backend.id) is backend
            assert len(iter_backends()) == before + 1
        assert not is_registered(backend.id)
        assert len(iter_backends()) == before

    def test_temporary_backend_first_owner_wins(self):
        backend = derive_backend("bank", {"banks_per_rank": 64})
        twin = derive_backend("bank", {"banks_per_rank": 64})
        with temporary_backend(backend):
            with temporary_backend(twin) as active:
                # Same id already registered: the outer owner stays.
                assert active is backend
            assert is_registered(backend.id)
        assert not is_registered(backend.id)

    def test_arch_for_self_heals_unregistered_parametric_type(self):
        backend = derive_backend("bank", {"banks_per_rank": 64})
        assert not is_registered(backend.id)
        try:
            healed = arch_for(backend.device_type)
            assert healed.id == backend.id
            assert healed.device_type == backend.device_type
            assert is_registered(backend.id)
        finally:
            unregister_backend(backend.id)

    def test_backend_for_device_type_round_trips(self):
        backend = derive_backend("fulcrum", {
            "pe_width_bits": 64, "subarrays_per_bank": 16,
        })
        rebuilt = backend_for_device_type(backend.device_type)
        assert rebuilt.id == backend.id
        assert rebuilt.device_type == backend.device_type
        assert rebuilt.stamp_entries() == backend.stamp_entries()

    def test_parametric_type_survives_pickle(self):
        import pickle

        backend = derive_backend("bank", {"banks_per_rank": 64})
        clone = pickle.loads(pickle.dumps(backend.device_type))
        assert clone == backend.device_type
        assert isinstance(clone, ParametricDeviceType)
        assert backend_for_device_type(clone).id == backend.id
