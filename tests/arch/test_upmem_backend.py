"""The UPMEM backend: a foreign cost model behind the same registry."""

import pytest

from repro.arch import arch_for, resolve_backend
from repro.arch.upmem import (
    DEFAULT_NUM_RANKS,
    DPUS_PER_RANK,
    UPMEM_DEVICE,
    UpmemBackend,
    UpmemPerfModel,
    upmem_device_config,
)
from repro.core.errors import PimTypeError
from repro.engine import CellSpec, model_version, run_cell


class TestRegistration:
    def test_resolves_by_id_and_aliases(self):
        backend = resolve_backend("upmem")
        assert isinstance(backend, UpmemBackend)
        assert resolve_backend("prim") is backend
        assert resolve_backend("dpu") is backend
        assert arch_for(upmem_device_config(num_ranks=2)) is backend

    def test_default_geometry_maps_the_2560_dpu_system(self):
        config = upmem_device_config()
        assert config.num_cores == DEFAULT_NUM_RANKS * DPUS_PER_RANK == 2560

    def test_listed_by_arch_list_cli(self, capsys):
        import repro.cli as cli

        assert cli.main(["arch", "list"]) == 0
        assert "upmem" in capsys.readouterr().out


class TestPerfModel:
    def test_rejects_non_upmem_config(self):
        config = resolve_backend("bank").make_config(num_ranks=2)
        with pytest.raises(PimTypeError):
            UpmemPerfModel(config)

    def test_make_perf_model_dispatches_through_registry(self):
        from repro.perf import make_perf_model

        model = make_perf_model(upmem_device_config(num_ranks=2))
        assert isinstance(model, UpmemPerfModel)

    def test_emits_only_declared_counters(self):
        from repro.config.device import PimAllocType
        from repro.core.commands import PimCmdKind
        from repro.core.layout import plan_layout
        from repro.perf.base import CommandArgs

        config = upmem_device_config(num_ranks=2)
        layout = plan_layout(
            config, 10_000, 32, PimAllocType.AUTO, enforce_capacity=False
        )
        cost = UpmemPerfModel(config).cost_of(
            CommandArgs(
                kind=PimCmdKind.ADD,
                bits=32,
                inputs=(layout, layout),
                dest=layout,
            )
        )
        assert cost.latency_ns > 0
        assert cost.alu_word_ops > 0
        assert cost.row_activations == 0
        assert cost.lane_logic_ops == 0
        assert cost.walker_bits == 0
        assert cost.gdl_bits == 0


class TestEndToEnd:
    def test_vecadd_cell_runs_and_verifies(self):
        spec = CellSpec(
            benchmark_key="vecadd",
            device_type=UPMEM_DEVICE,
            num_ranks=2,
            paper_scale=False,
            functional=True,
        )
        outcome = run_cell(spec)
        assert outcome.ok
        assert outcome.result.verified is True

    def test_own_cache_stamp(self):
        upmem_digest = model_version(UPMEM_DEVICE, "vecadd").split("-")[2]
        others = {
            model_version(
                resolve_backend(name).device_type, "vecadd"
            ).split("-")[2]
            for name in ("bitserial", "fulcrum", "bank", "analog", "ddr5")
        }
        assert upmem_digest not in others
