"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Point the persistent result cache at a per-session temp dir.

    Tests must not read results cached by earlier runs of a different
    checkout, nor litter ``~/.cache/repro``.  A session-scoped directory
    still exercises the warm path *within* one test session, which is
    what the engine tests rely on.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

from repro.config import (
    PimDeviceType,
    analog_bitserial_config,
    bank_level_config,
    bitserial_config,
    fulcrum_config,
)
from repro.core.device import PimDevice


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=list(PimDeviceType), ids=lambda d: d.value)
def device_type(request):
    return request.param


def make_device(device_type: PimDeviceType, num_ranks: int = 4,
                functional: bool = True) -> PimDevice:
    factory = {
        PimDeviceType.BITSIMD_V_AP: bitserial_config,
        PimDeviceType.FULCRUM: fulcrum_config,
        PimDeviceType.BANK_LEVEL: bank_level_config,
        PimDeviceType.ANALOG_BITSIMD_V: analog_bitserial_config,
    }[device_type]
    return PimDevice(factory(num_ranks), functional=functional)


@pytest.fixture
def device(device_type):
    """A small functional device of each architecture."""
    return make_device(device_type)


@pytest.fixture
def fulcrum_device():
    return make_device(PimDeviceType.FULCRUM)


@pytest.fixture
def bitserial_device():
    return make_device(PimDeviceType.BITSIMD_V_AP)


@pytest.fixture
def bank_device():
    return make_device(PimDeviceType.BANK_LEVEL)
