"""Tests for the C-style PIM API (Listing 1 call shapes)."""

import numpy as np
import pytest

from repro import api
from repro.config.device import PimDataType, PimDeviceType
from repro.core.errors import PimError, PimStateError, PimStatus


@pytest.fixture(autouse=True)
def clean_device():
    api.pim_delete_device()
    yield
    api.pim_delete_device()


class TestLifecycle:
    def test_create_and_get(self):
        device = api.pim_create_device(PimDeviceType.FULCRUM, num_ranks=4)
        assert api.pim_get_device() is device
        assert device.config.num_cores == 8192

    def test_no_device_error(self):
        # The coded taxonomy: absent device is a *state* error, so C-style
        # callers can switch on the status instead of parsing the message.
        with pytest.raises(PimStateError) as info:
            api.pim_get_device()
        assert info.value.status is PimStatus.ERR_STATE

    def test_delete_frees_objects(self):
        api.pim_create_device(PimDeviceType.FULCRUM, num_ranks=4)
        obj = api.pim_alloc(100)
        api.pim_delete_device()
        assert obj.freed

    def test_context_manager(self):
        with api.pim_device(PimDeviceType.BITSIMD_V_AP, num_ranks=4) as device:
            assert api.pim_get_device() is device
        with pytest.raises(PimError):
            api.pim_get_device()


class TestListing1Axpy:
    """The paper's Listing 1 AXPY, line for line."""

    def test_axpy(self, rng):
        api.pim_create_device(PimDeviceType.FULCRUM, num_ranks=4)
        length = 4096
        x = rng.integers(-100, 100, length).astype(np.int32)
        y = rng.integers(-100, 100, length).astype(np.int32)
        a = 7

        obj_x = api.pim_alloc(length, PimDataType.INT32, api.PIM_ALLOC_AUTO)
        obj_y = api.pim_alloc_associated(obj_x, PimDataType.INT32)
        api.pim_copy_host_to_device(x, obj_x)
        api.pim_copy_host_to_device(y, obj_y)
        api.pim_scaled_add(obj_x, obj_y, obj_y, a)
        result = api.pim_copy_device_to_host(obj_y)
        api.pim_free(obj_x)
        api.pim_free(obj_y)

        assert np.array_equal(result, a * x + y)


class TestOperationWrappers:
    @pytest.fixture(autouse=True)
    def device(self):
        return api.pim_create_device(PimDeviceType.BITSIMD_V_AP, num_ranks=4)

    def test_elementwise_ops(self, rng):
        a = rng.integers(-50, 50, 128).astype(np.int32)
        b = rng.integers(-50, 50, 128).astype(np.int32)
        obj_a = api.pim_alloc(128)
        obj_b = api.pim_alloc_associated(obj_a)
        dest = api.pim_alloc_associated(obj_a)
        api.pim_copy_host_to_device(a, obj_a)
        api.pim_copy_host_to_device(b, obj_b)
        for func, expected in [
            (api.pim_add, a + b), (api.pim_sub, a - b), (api.pim_mul, a * b),
            (api.pim_min, np.minimum(a, b)), (api.pim_max, np.maximum(a, b)),
            (api.pim_and, a & b), (api.pim_or, a | b), (api.pim_xor, a ^ b),
            (api.pim_xnor, ~(a ^ b)),
        ]:
            func(obj_a, obj_b, dest)
            assert np.array_equal(api.pim_copy_device_to_host(dest), expected)

    def test_comparison_ops(self, rng):
        a = rng.integers(-5, 5, 128).astype(np.int32)
        b = rng.integers(-5, 5, 128).astype(np.int32)
        obj_a = api.pim_alloc(128)
        obj_b = api.pim_alloc_associated(obj_a)
        mask = api.pim_alloc_associated(obj_a, PimDataType.BOOL)
        api.pim_copy_host_to_device(a, obj_a)
        api.pim_copy_host_to_device(b, obj_b)
        for func, expected in [
            (api.pim_lt, a < b), (api.pim_gt, a > b),
            (api.pim_eq, a == b), (api.pim_ne, a != b),
        ]:
            func(obj_a, obj_b, mask)
            assert np.array_equal(api.pim_copy_device_to_host(mask), expected)

    def test_reduction_and_broadcast(self, rng):
        a = rng.integers(-100, 100, 256).astype(np.int32)
        obj = api.pim_alloc(256)
        api.pim_copy_host_to_device(a, obj)
        assert api.pim_redsum(obj) == int(a.sum())
        api.pim_broadcast(obj, 9)
        assert api.pim_redsum(obj) == 9 * 256

    def test_select(self, rng):
        a = rng.integers(0, 10, 64).astype(np.int32)
        b = rng.integers(0, 10, 64).astype(np.int32)
        obj_a = api.pim_alloc(64)
        obj_b = api.pim_alloc_associated(obj_a)
        cond = api.pim_alloc_associated(obj_a, PimDataType.BOOL)
        dest = api.pim_alloc_associated(obj_a)
        api.pim_copy_host_to_device(a, obj_a)
        api.pim_copy_host_to_device(b, obj_b)
        api.pim_lt(obj_a, obj_b, cond)
        api.pim_select(cond, obj_a, obj_b, dest)
        assert np.array_equal(
            api.pim_copy_device_to_host(dest), np.minimum(a, b)
        )

    def test_scalar_wrappers(self, rng):
        a = rng.integers(0, 100, 64).astype(np.int32)
        obj = api.pim_alloc(64)
        dest = api.pim_alloc_associated(obj)
        api.pim_copy_host_to_device(a, obj)
        api.pim_add_scalar(obj, 5, dest)
        assert np.array_equal(api.pim_copy_device_to_host(dest), a + 5)
        api.pim_and_scalar(obj, 0x0F, dest)
        assert np.array_equal(api.pim_copy_device_to_host(dest), a & 0x0F)
        api.pim_shift_right(obj, 1, dest)
        assert np.array_equal(api.pim_copy_device_to_host(dest), a >> 1)

    def test_stats_visible_after_run(self, rng):
        obj = api.pim_alloc(64)
        api.pim_copy_host_to_device(
            rng.integers(0, 10, 64).astype(np.int32), obj
        )
        api.pim_abs(obj, obj)
        device = api.pim_get_device()
        assert device.stats.total_command_count == 1
        assert device.stats.kernel_time_ns > 0
