"""Tests for the executable validation-anchor table."""

import pytest

from repro.validation import Anchor, format_anchor_table, validation_anchors


@pytest.fixture(scope="module")
def anchors():
    return validation_anchors()


class TestAnchors:
    def test_every_anchor_within_tolerance(self, anchors):
        failures = [a for a in anchors if not a.within_tolerance]
        assert not failures, "\n".join(
            f"{a.name}: paper {a.paper_value} vs model {a.model_value} "
            f"({a.relative_error:.1%})" for a in failures
        )

    def test_covers_the_published_anchors(self, anchors):
        names = " | ".join(a.name for a in anchors)
        assert "Listing 3" in names
        assert "Bit-serial" in names
        assert "UPMEM" in names
        assert len(anchors) >= 8

    def test_relative_error_math(self):
        anchor = Anchor("x", 10.0, 11.0, "ms", 0.2)
        assert anchor.relative_error == pytest.approx(0.1)
        assert anchor.within_tolerance

    def test_format(self, anchors):
        text = format_anchor_table(anchors)
        assert "paper" in text and "model" in text
        assert "NO" not in text  # all anchors hold


class TestOptimizedVariants:
    def test_fused_brightness_verifies(self, device_type):
        from repro.bench.optimized import BrightnessFusedBenchmark
        from tests.conftest import make_device
        device = make_device(device_type)
        result = BrightnessFusedBenchmark().run(device)
        assert result.verified is True

    def test_optimization_gains_favor_bitserial(self):
        from repro.bench.optimized import optimization_gains
        gains = optimization_gains(include_vgg=False)["brightness-fused"]
        assert gains["bit-serial"] > 1.8
        assert all(v >= 1.0 for v in gains.values())
