"""OpenMetrics exposition: naming, escaping, ordering, the golden file."""

import os

import pytest

from repro.obs import MetricsRegistry, render_openmetrics, write_openmetrics
from repro.obs.openmetrics import escape_label_value, sanitize_name

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "openmetrics_golden.txt"
)


def golden_registry() -> MetricsRegistry:
    """Every rendering rule in one registry (mirrors the golden file)."""
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(3)
    registry.counter("cmd.add_rank.count").inc(10)
    registry.counter("cmd.add_rank.latency_ns").inc(500)
    registry.counter('cmd.weird"sig\\.count').inc(1)
    registry.counter("cmd.multi\nline.count").inc(2)
    registry.counter("copy.host_to_pim.bytes").inc(4096)
    registry.counter("fault.bit_flip.injected").inc(2)
    registry.gauge("sim.now_ns").set(123.5)
    hist = registry.histogram("telemetry.cell_wall_s")
    hist.observe(0.5)   # log2 bucket -1 -> le="1.0"
    hist.observe(3.0)   # log2 bucket 1  -> le="4.0"
    hist.observe(0.0)   # non-positive   -> le="0.0"
    return registry


class TestNamesAndLabels:
    @pytest.mark.parametrize("raw,expected", [
        ("cache.hits", "cache_hits"),
        ("weird name!", "weird_name_"),
        ("9lives", "_9lives"),
        ("", "_"),
    ])
    def test_sanitize_name(self, raw, expected):
        assert sanitize_name(raw) == expected

    def test_escape_label_value(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_structured_names_become_labeled_families(self):
        registry = MetricsRegistry()
        registry.counter("cmd.rank.add.count").inc(1)  # dotted signature
        text = render_openmetrics(registry)
        assert 'repro_cmd_count_total{signature="rank.add"} 1' in text


class TestRender:
    def test_matches_golden_file(self):
        with open(FIXTURE, "r", encoding="utf-8") as fh:
            golden = fh.read()
        assert render_openmetrics(golden_registry()) == golden

    def test_render_is_byte_stable(self):
        # Same metrics created in a different order render identically.
        reordered = MetricsRegistry()
        for name, record in reversed(
            list(golden_registry().snapshot().items())
        ):
            if record["kind"] == "counter":
                reordered.counter(name).inc(record["value"])
            elif record["kind"] == "gauge":
                reordered.gauge(name).set(record["value"])
            else:
                reordered.histogram(name)
                reordered.merge({name: record})
        assert render_openmetrics(reordered) == render_openmetrics(
            golden_registry()
        )

    def test_ends_with_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_counters_carry_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(1)
        text = render_openmetrics(registry)
        assert "# TYPE repro_cache_hits counter" in text
        assert "repro_cache_hits_total 1" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wall")
        hist.observe(1.5)
        hist.observe(1.5)
        hist.observe(100.0)
        lines = render_openmetrics(registry).splitlines()
        bucket_lines = [l for l in lines if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)          # cumulative
        assert counts[-1] == 3                   # +Inf == _count
        assert 'le="+Inf"' in bucket_lines[-1]

    def test_mixed_kinds_in_one_family_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(1)
        registry.gauge("a_b").set(1.0)  # sanitizes to the same family
        with pytest.raises(ValueError, match="mixes kinds"):
            render_openmetrics(registry)

    def test_prefix_override(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(1)
        assert "pim_cache_hits_total" in render_openmetrics(
            registry, prefix="pim"
        )


class TestWrite:
    def test_write_openmetrics_round_trips(self, tmp_path):
        path = str(tmp_path / "metrics.txt")
        assert write_openmetrics(path, golden_registry()) == path
        with open(path, "r", encoding="utf-8") as fh:
            assert fh.read() == render_openmetrics(golden_registry())
