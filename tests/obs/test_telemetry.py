"""Cell telemetry: capture, snapshot shape, merge semantics, the log."""

import pytest

from repro.obs import (
    CellTelemetry,
    MetricsRegistry,
    TelemetryCapture,
    clear_telemetry_log,
    merge_cell_telemetry,
    record_cell_telemetry,
    telemetry_log,
)
from repro.obs.telemetry import peak_rss_kb


def _cell(**overrides):
    base = dict(
        benchmark="vecadd", device="fulcrum", num_ranks=4,
        wall_s=0.5, cpu_s=0.4, peak_rss_kb=1000,
        commands_simulated=100, memo_hits=30, memo_misses=10,
        memo_shapes=5,
    )
    base.update(overrides)
    return CellTelemetry(**base)


class TestMergeSemantics:
    def test_counters_sum(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        source = MetricsRegistry()
        source.counter("cache.hits").inc(4)
        registry.merge(source.snapshot())
        assert registry.value("cache.hits") == 7.0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("rss").set(5.0)
        source = MetricsRegistry()
        source.gauge("rss").set(2.0)
        registry.merge(source.snapshot())
        assert registry.value("rss") == 2.0

    def test_histogram_buckets_add_and_bounds_widen(self):
        registry = MetricsRegistry()
        registry.histogram("wall").observe(2.0)
        source = MetricsRegistry()
        source.histogram("wall").observe(3.0)   # bucket 1
        source.histogram("wall").observe(16.0)  # bucket 4
        source.histogram("wall").observe(-1.0)  # nonpos
        registry.merge(source.snapshot())
        hist = registry["wall"]
        assert hist.count == 4
        assert hist.total == pytest.approx(20.0)
        assert hist.min == -1.0 and hist.max == 16.0
        assert hist.buckets[1] == 2
        assert hist.buckets[4] == 1
        assert hist.buckets[None] == 1

    def test_empty_histogram_merges_as_noop(self):
        registry = MetricsRegistry()
        registry.histogram("wall").observe(2.0)
        source = MetricsRegistry()
        source.histogram("wall")  # created but never observed
        registry.merge(source.snapshot())
        hist = registry["wall"]
        assert hist.count == 1
        assert hist.min == 2.0 and hist.max == 2.0

    def test_merge_creates_absent_metrics(self):
        registry = MetricsRegistry()
        source = MetricsRegistry()
        source.counter("new.counter").inc(2)
        source.histogram("new.hist").observe(1.0)
        registry.merge(source.snapshot())
        assert registry.value("new.counter") == 2.0
        assert registry["new.hist"].count == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            MetricsRegistry().merge({"x": {"kind": "summary", "value": 1.0}})

    def test_merge_is_associative_across_order(self):
        # Folding A then B equals folding B then A for counters and
        # histograms (the engine merges in spec order; this pins that
        # the outcome does not depend on which worker finished first).
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        a.histogram("h").observe(1.0)
        b.counter("c").inc(5)
        b.histogram("h").observe(8.0)
        left, right = MetricsRegistry(), MetricsRegistry()
        left.merge(a.snapshot())
        left.merge(b.snapshot())
        right.merge(b.snapshot())
        right.merge(a.snapshot())
        assert left.snapshot() == right.snapshot()


class TestSnapshotOrder:
    def test_snapshot_sorted_regardless_of_creation_order(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()) == ["alpha", "zebra"]

    def test_to_jsonl_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("alpha").inc()
        lines = registry.to_jsonl().splitlines()
        assert '"alpha"' in lines[0] and '"zebra"' in lines[1]


class TestCellTelemetry:
    def test_hit_rate(self):
        assert _cell().memo_lookups == 40
        assert _cell().memo_hit_rate == pytest.approx(0.75)
        assert _cell(memo_hits=0, memo_misses=0).memo_hit_rate == 0.0

    def test_to_dict_round_trips_through_json(self):
        import json

        record = json.loads(json.dumps(
            _cell(faults_injected=(("stuck_bit", 2),)).to_dict()
        ))
        assert record["benchmark"] == "vecadd"
        assert record["faults_injected"] == {"stuck_bit": 2}
        assert record["from_cache"] is False

    def test_snapshot_carries_core_counters(self):
        snap = _cell().as_metrics_snapshot()
        assert snap["telemetry.cells"]["value"] == 1.0
        assert snap["telemetry.commands_simulated"]["value"] == 100.0
        assert snap["cost_memo.hits"]["value"] == 30.0
        assert snap["cost_memo.misses"]["value"] == 10.0
        assert snap["telemetry.cell_wall_s"]["count"] == 1
        assert snap["telemetry.peak_rss_kb"]["kind"] == "gauge"
        assert "telemetry.cells_from_cache" not in snap
        assert "telemetry.retry_attempts" not in snap

    def test_snapshot_flags_cache_retries_and_faults(self):
        snap = _cell(
            from_cache=True, attempt=3, faults_injected=(("bit_flip", 4),)
        ).as_metrics_snapshot()
        assert snap["telemetry.cells_from_cache"]["value"] == 1.0
        assert snap["telemetry.retry_attempts"]["value"] == 2.0
        assert snap["fault.bit_flip.injected"]["value"] == 4.0

    def test_capture_measures_elapsed_time(self):
        capture = TelemetryCapture()
        sum(range(10_000))
        telemetry = capture.finish(
            benchmark="vecadd", device="fulcrum", num_ranks=4
        )
        assert telemetry.wall_s > 0.0
        assert telemetry.cpu_s >= 0.0
        assert telemetry.peak_rss_kb == peak_rss_kb()

    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_kb() > 0

    def test_contribute_many_equals_chained_contribute(self):
        """The hoisted-lookup fold must not change the snapshot a bit.

        Mixed records (plain, cached, retried, faulted) so the lazily
        resolved conditional counters fire mid-fold.
        """
        cells = [
            _cell(),
            _cell(from_cache=True, wall_s=0.1, peak_rss_kb=2000),
            _cell(attempt=3, memo_hits=7, memo_misses=1),
            _cell(faults_injected=(("bit_flip", 4),), commands_simulated=9),
        ]
        chained = MetricsRegistry()
        for cell in cells:
            cell.contribute(chained)
        folded = MetricsRegistry()
        assert CellTelemetry.contribute_many(folded, iter(cells)) == 4
        assert folded.snapshot() == chained.snapshot()


class TestTelemetryLog:
    def test_merge_folds_and_logs(self):
        clear_telemetry_log()
        try:
            registry = MetricsRegistry()
            merged = merge_cell_telemetry(
                registry, [_cell(), _cell(benchmark="axpy")]
            )
            assert merged == 2
            assert registry.value("telemetry.cells") == 2.0
            assert registry.value("telemetry.commands_simulated") == 200.0
            assert [t.benchmark for t in telemetry_log()] == [
                "vecadd", "axpy"
            ]
        finally:
            clear_telemetry_log()

    def test_merge_without_logging(self):
        clear_telemetry_log()
        try:
            merge_cell_telemetry(MetricsRegistry(), [_cell()], log=False)
            assert telemetry_log() == ()
        finally:
            clear_telemetry_log()

    def test_record_and_clear(self):
        clear_telemetry_log()
        record_cell_telemetry(_cell())
        assert len(telemetry_log()) == 1
        clear_telemetry_log()
        assert telemetry_log() == ()
