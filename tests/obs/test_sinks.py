"""Sinks: ring buffer semantics and JSONL streaming."""

import io
import json

import pytest

from repro.obs import CallbackSink, EventBus, JsonlSink, RingBufferSink


def pump(bus, n=5):
    for i in range(n):
        bus.emit_complete(f"cmd{i}", "command", 10.0, {"count": i})


class TestRingBuffer:
    def test_keeps_most_recent(self):
        bus = EventBus()
        sink = bus.subscribe(RingBufferSink(capacity=3))
        pump(bus, 5)
        assert [e.name for e in sink.events] == ["cmd2", "cmd3", "cmd4"]
        assert sink.total_seen == 5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_clear(self):
        bus = EventBus()
        sink = bus.subscribe(RingBufferSink())
        pump(bus, 2)
        sink.clear()
        assert sink.events == []


class TestJsonl:
    def test_lines_parse_and_carry_fields(self):
        bus = EventBus(process="jsonl-test")
        buffer = io.StringIO()
        sink = bus.subscribe(JsonlSink(buffer))
        pump(bus, 3)
        bus.emit_instant("trace.alloc", "trace", {"obj_id": 1})
        sink.close()
        lines = buffer.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 4
        assert records[0]["name"] == "cmd0"
        assert records[0]["ts_ns"] == 0.0
        assert records[1]["ts_ns"] == 10.0  # simulated timeline advances
        assert all(r["process"] == "jsonl-test" for r in records)
        assert records[-1]["args"] == {"obj_id": 1}

    def test_path_target_owns_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        sink = bus.subscribe(JsonlSink(path))
        pump(bus, 2)
        bus.close()  # closes (and flushes) the owned file
        records = [json.loads(line) for line in open(path)]
        assert len(records) == 2
        assert sink.num_events == 2


class TestCallback:
    def test_forwards_events(self):
        seen = []
        bus = EventBus()
        bus.subscribe(CallbackSink(seen.append))
        pump(bus, 2)
        assert [e.name for e in seen] == ["cmd0", "cmd1"]
