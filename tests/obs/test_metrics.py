"""Metrics: primitives, registry, event-stream aggregation, hotspots."""

import json

import pytest

from repro.core.stats import EventCounts
from repro.obs import (
    Counter,
    EventBus,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    hottest_commands,
    record_event_counts,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(5)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_stats_and_buckets(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 1024.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 1030.0
        assert h.min == 1.0
        assert h.max == 1024.0
        assert h.mean == pytest.approx(257.5)
        assert h.buckets[0] == 1   # [1, 2)
        assert h.buckets[1] == 2   # [2, 4)
        assert h.buckets[10] == 1  # [1024, 2048)

    def test_histogram_nonpositive_bucket(self):
        h = Histogram()
        h.observe(0.0)
        assert h.buckets[None] == 1
        assert "nonpos" in h.to_record()["buckets"]


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_and_jsonl(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        reg.gauge("y").set(7)
        snap = reg.snapshot()
        assert snap["x"] == {"value": 2.0, "kind": "counter"}
        records = [json.loads(line) for line in reg.to_jsonl().splitlines()]
        assert {r["name"] for r in records} == {"x", "y"}

    def test_value_with_default(self):
        reg = MetricsRegistry()
        assert reg.value("missing", default=3.0) == 3.0


class TestAggregation:
    def make_stream(self):
        bus = EventBus()
        sink = bus.subscribe(MetricsSink())
        bus.emit_complete(
            "add.int32.v", "command", 200.0,
            {"count": 2, "energy_nj": 8.0, "row_activations": 64.0},
        )
        bus.emit_complete(
            "mul.int32.v", "command", 900.0,
            {"count": 1, "energy_nj": 40.0},
        )
        bus.emit_complete(
            "copy.h2d", "copy", 50.0,
            {"direction": "h2d", "bytes": 4096, "energy_nj": 1.0},
        )
        bus.emit_complete("host.topk", "host", 30.0, {"energy_nj": 2.0})
        return sink.registry

    def test_command_and_copy_counters(self):
        reg = self.make_stream()
        assert reg.value("commands.issued") == 3.0
        assert reg.value("commands.latency_ns") == 1100.0
        assert reg.value("events.row_activations") == 64.0
        assert reg.value("copy.h2d.bytes") == 4096.0
        assert reg.value("copy.total_bytes") == 4096.0
        assert reg.value("host.time_ns") == 30.0
        assert reg["command.latency_ns"].count == 2

    def test_sim_clock_gauge_tracks_timeline(self):
        reg = self.make_stream()
        assert reg.value("sim.now_ns") == 1180.0

    def test_hottest_commands_sorted_by_latency(self):
        reg = self.make_stream()
        hot = hottest_commands(reg, top_n=5)
        assert [h.signature for h in hot] == ["mul.int32.v", "add.int32.v"]
        assert hot[0].latency_ns == 900.0
        assert hot[1].count == 2.0
        assert hot[1].energy_nj == 8.0

    def test_hottest_commands_respects_top_n(self):
        reg = self.make_stream()
        assert len(hottest_commands(reg, top_n=1)) == 1


class TestEventCountsBridge:
    def test_record_event_counts(self):
        reg = MetricsRegistry()
        counts = EventCounts(row_activations=10.0, gdl_bits=256.0)
        record_event_counts(reg, counts)
        assert reg.value("events.row_activations") == 10.0
        assert reg.value("events.gdl_bits") == 256.0
        assert "events.alu_word_ops" not in reg  # zero fields skipped
