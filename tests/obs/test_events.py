"""Event bus: simulated clock, emission guards, span hierarchy."""

import pytest

from repro.obs import EventBus, RingBufferSink, span


@pytest.fixture
def bus():
    return EventBus(process="test")


@pytest.fixture
def observed(bus):
    """Bus with a ring buffer attached; returns (bus, sink)."""
    return bus, bus.subscribe(RingBufferSink())


class TestClock:
    def test_advance_returns_interval_start(self, bus):
        assert bus.advance(100.0) == 0.0
        assert bus.advance(50.0) == 100.0
        assert bus.now_ns == 150.0

    def test_emit_complete_advances_even_without_sinks(self, bus):
        bus.emit_complete("cmd", "command", 42.0)
        assert bus.now_ns == 42.0
        assert not bus.active

    def test_wall_clock_is_monotonic(self, bus):
        first = bus.wall_us()
        second = bus.wall_us()
        assert second >= first >= 0.0


class TestEmission:
    def test_no_sink_no_events(self, bus):
        bus.emit_complete("cmd", "command", 10.0)
        bus.emit_instant("marker", "trace")
        sink = bus.subscribe(RingBufferSink())
        assert sink.events == []  # nothing retroactive

    def test_complete_event_fields(self, observed):
        bus, sink = observed
        bus.emit_complete("add.int32.v", "command", 25.0, {"count": 3})
        (event,) = sink.events
        assert event.ph == "X"
        assert event.ts_ns == 0.0
        assert event.dur_ns == 25.0
        assert event.track == "commands"  # category default, no span open
        assert event.process == "test"
        assert event.args["count"] == 3

    def test_instant_event_at_current_time(self, observed):
        bus, sink = observed
        bus.emit_complete("cmd", "command", 30.0)
        bus.emit_instant("trace.alloc", "trace")
        assert sink.events[-1].ph == "i"
        assert sink.events[-1].ts_ns == 30.0

    def test_counter_event(self, observed):
        bus, sink = observed
        bus.emit_counter("activity", {"row_activations": 7.0})
        (event,) = sink.events
        assert event.ph == "C"
        assert event.args == {"row_activations": 7.0}

    def test_unsubscribe_stops_delivery(self, observed):
        bus, sink = observed
        bus.unsubscribe(sink)
        bus.emit_complete("cmd", "command", 1.0)
        assert sink.events == []

    def test_event_to_dict_omits_empty(self, observed):
        bus, sink = observed
        bus.emit_instant("m", "trace")
        record = sink.events[0].to_dict()
        assert "dur_ns" not in record
        assert "args" not in record
        assert record["name"] == "m"


class TestSpans:
    def test_span_emits_begin_end_pair(self, observed):
        bus, sink = observed
        with span("phase:kernel", bus):
            bus.emit_complete("add", "command", 100.0)
        phases = [e for e in sink.events if e.cat == "span"]
        assert [e.ph for e in phases] == ["B", "E"]
        assert phases[0].ts_ns == 0.0
        assert phases[1].ts_ns == 100.0
        assert phases[1].args["sim_dur_ns"] == 100.0

    def test_events_inside_span_use_its_track(self, observed):
        bus, sink = observed
        with span("phase:load", bus):
            bus.emit_complete("copy.h2d", "copy", 10.0)
        copy_event = [e for e in sink.events if e.cat == "copy"][0]
        assert copy_event.track == "phase:load"

    def test_nested_spans_record_paths(self, observed):
        bus, sink = observed
        with span("bench:vecadd", bus):
            with span("phase:kernel", bus) as inner:
                assert inner.depth == 1
                assert inner.path == "bench:vecadd/phase:kernel"
        ends = [e for e in sink.events if e.ph == "E"]
        assert [e.name for e in ends] == ["phase:kernel", "bench:vecadd"]

    def test_span_without_bus_is_noop(self):
        with span("anything", None) as handle:
            assert handle is None

    def test_span_on_inactive_bus_is_noop(self, bus):
        with span("anything", bus) as handle:
            assert handle is None

    def test_mismatched_exit_unwinds(self, observed):
        bus, _ = observed
        outer = bus.begin_span("outer")
        bus.begin_span("leaked")
        bus.end_span(outer)  # inner never closed explicitly
        assert bus.current_track() is None
