"""Chrome trace export: schema validity and end-to-end device coverage."""

import json

import pytest

from repro.bench.registry import make_benchmark
from repro.config.device import PimDeviceType
from repro.config.presets import make_device_config
from repro.core.device import PimDevice
from repro.obs import (
    ChromeTraceSink,
    EventBus,
    to_chrome_trace,
    validate_chrome_trace,
)


def traced_run(key="vecadd", target=PimDeviceType.FULCRUM):
    """Run one functional benchmark with a Chrome trace sink attached."""
    bus = EventBus()
    sink = bus.subscribe(ChromeTraceSink())
    config = make_device_config(target, 4)
    bus.process = config.label
    device = PimDevice(config, functional=True, bus=bus)
    bench = make_benchmark(key)
    result = bench.run(device)
    return sink, device, result


class TestSchema:
    def test_every_event_has_required_fields(self):
        sink, _, _ = traced_run()
        payload = validate_chrome_trace(sink.to_payload())
        for event in payload["traceEvents"]:
            assert {"ph", "ts", "pid", "tid", "name"} <= set(event)

    def test_complete_events_carry_dur(self):
        sink, _, _ = traced_run()
        payload = sink.to_payload()
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert xs and all("dur" in e for e in xs)

    def test_metadata_names_processes_and_tracks(self):
        sink, device, _ = traced_run()
        payload = sink.to_payload()
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert device.config.label in process_names
        assert "phases" in thread_names

    def test_timestamps_are_microseconds(self):
        sink, device, result = traced_run()
        payload = sink.to_payload()
        last = max(
            e["ts"] + e.get("dur", 0.0)
            for e in payload["traceEvents"]
            if e["ph"] != "M"
        )
        assert last == pytest.approx(result.stats.total_time_ns / 1e3)


class TestCoverage:
    def test_span_per_phase_and_event_per_command(self):
        sink, device, _ = traced_run()
        payload = sink.to_payload()
        begins = [e["name"] for e in payload["traceEvents"] if e["ph"] == "B"]
        assert "bench:vecadd" in begins
        for phase in ("phase:load", "phase:kernel", "phase:readback"):
            assert phase in begins
        command_events = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "command"
        ]
        assert len(command_events) >= device.stats.total_command_count

    def test_pim_plus_host_benchmark_has_host_track(self):
        sink, _, _ = traced_run("radixsort")
        payload = validate_chrome_trace(sink.to_payload())
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert {"command", "copy", "host", "span"} <= cats

    def test_wall_overhead_recorded(self):
        sink, _, _ = traced_run()
        xs = [e for e in sink.to_payload()["traceEvents"] if e["ph"] == "X"]
        assert all(e["args"]["wall_us"] >= 0.0 for e in xs)


class TestValidator:
    def test_rejects_missing_field(self):
        with pytest.raises(ValueError, match="missing 'tid'"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "ts": 0, "pid": 1, "name": "x", "dur": 1}
            ]})

    def test_rejects_x_without_dur(self):
        with pytest.raises(ValueError, match="no dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "x"}
            ]})

    def test_rejects_unbalanced_spans(self):
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "s"}
            ]})
        with pytest.raises(ValueError, match="no open span"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "E", "ts": 0, "pid": 1, "tid": 1, "name": "s"}
            ]})

    def test_rejects_non_dict_payload(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])


class TestFileOutput:
    def test_write_validates_and_persists(self, tmp_path):
        sink, _, _ = traced_run()
        path = str(tmp_path / "trace.json")
        assert sink.write(path) == path
        payload = json.load(open(path))
        validate_chrome_trace(payload)

    def test_close_writes_configured_path(self, tmp_path):
        path = str(tmp_path / "trace.json")
        bus = EventBus()
        bus.subscribe(ChromeTraceSink(path))
        bus.emit_complete("cmd", "command", 5.0)
        bus.close()
        assert json.load(open(path))["traceEvents"]

    def test_write_without_path_raises(self):
        with pytest.raises(ValueError):
            ChromeTraceSink().write()


class TestMultiProcess:
    def test_process_switch_allocates_new_pid(self):
        bus = EventBus(process="first")
        sink = bus.subscribe(ChromeTraceSink())
        bus.emit_complete("a", "command", 1.0)
        bus.process = "second"
        bus.emit_complete("b", "command", 1.0)
        payload = to_chrome_trace(sink.events)
        pids = {
            e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert len(pids) == 2
