"""Cross-stack wiring: devices, trace recorder, API runtime, suite runner."""

import numpy as np

from repro.api.runtime import pim_device
from repro.bench.registry import make_benchmark
from repro.config.device import PimDeviceType
from repro.config.presets import make_device_config
from repro.core.device import PimDevice
from repro.experiments.runner import run_suite
from repro.obs import (
    ChromeTraceSink,
    EventBus,
    MetricsSink,
    RingBufferSink,
    validate_chrome_trace,
)
from repro.trace import TraceRecorder


def fulcrum(bus=None):
    return PimDevice(
        make_device_config(PimDeviceType.FULCRUM, 4), functional=True, bus=bus
    )


class TestZeroOverheadDefault:
    def test_device_has_no_bus_by_default(self):
        assert fulcrum().stats.bus is None

    def test_observed_and_unobserved_runs_model_identically(self):
        bench = make_benchmark("vecadd")
        plain = bench.run(fulcrum())
        bus = EventBus()
        bus.subscribe(RingBufferSink())
        observed = bench.run(fulcrum(bus))
        assert observed.stats == plain.stats

    def test_bus_clock_matches_stats_totals(self):
        bus = EventBus()
        bus.subscribe(RingBufferSink())
        result = make_benchmark("vecadd").run(fulcrum(bus))
        assert bus.now_ns == result.stats.total_time_ns


class TestTraceRecorderPublishing:
    def test_alloc_free_become_instant_events(self):
        bus = EventBus()
        sink = bus.subscribe(RingBufferSink())
        recorder = TraceRecorder(fulcrum(bus))
        obj = recorder.alloc(64)
        assoc = recorder.alloc_associated(obj)
        recorder.free(assoc)
        recorder.free(obj)
        names = [e.name for e in sink.events if e.cat == "trace"]
        assert names == [
            "trace.alloc", "trace.alloc_assoc", "trace.free", "trace.free",
        ]

    def test_no_bus_recorder_still_records(self):
        recorder = TraceRecorder(fulcrum())
        obj = recorder.alloc(64)
        recorder.free(obj)
        assert [e.action for e in recorder.events] == ["alloc", "free"]


class TestApiRuntime:
    def test_pim_device_context_attaches_bus(self):
        bus = EventBus()
        sink = bus.subscribe(RingBufferSink())
        with pim_device(PimDeviceType.FULCRUM, bus=bus) as device:
            assert device.stats.bus is bus
            assert bus.process == device.config.label  # labeled by the config
            obj = device.alloc(16)
            device.copy_host_to_device(np.arange(16, dtype=np.int32), obj)
        # Teardown restores the default label: events emitted after this
        # device's lifetime must not carry its (stale) name.
        assert bus.process == "repro"
        assert [e.cat for e in sink.events] == ["copy"]


class TestSuiteRunner:
    def test_traced_suite_labels_processes_and_validates(self):
        bus = EventBus()
        sink = bus.subscribe(ChromeTraceSink())
        metrics = bus.subscribe(MetricsSink())
        run_suite(
            num_ranks=4, paper_scale=False, functional=True,
            keys=("vecadd",), bus=bus,
        )
        payload = validate_chrome_trace(sink.to_payload())
        process_names = {
            e["args"]["name"] for e in payload["traceEvents"]
            if e.get("name") == "process_name"
        }
        # One process per architecture plus the suite-level "repro".
        assert len(process_names) == 4
        begins = [e["name"] for e in payload["traceEvents"] if e["ph"] == "B"]
        assert begins.count("bench:vecadd") == 3  # one per architecture
        assert any(name.startswith("suite:") for name in begins)
        assert metrics.registry.value("commands.issued") > 0

    def test_traced_suite_bypasses_cache(self):
        first = run_suite(
            num_ranks=4, paper_scale=False, functional=True, keys=("vecadd",),
        )
        bus = EventBus()
        sink = bus.subscribe(RingBufferSink())
        second = run_suite(
            num_ranks=4, paper_scale=False, functional=True, keys=("vecadd",),
            bus=bus,
        )
        assert second is not first
        assert sink.total_seen > 0
