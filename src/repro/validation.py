"""Executable model-validation table (Section V-E).

The paper validates PIMeval against published quantitative anchors; this
module re-measures every anchor this reproduction claims and reports
paper-vs-model side by side, making the README/EXPERIMENTS validation
table executable rather than transcribed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config.presets import bitserial_config, fulcrum_config
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice


@dataclasses.dataclass(frozen=True)
class Anchor:
    """One published quantity and its modeled counterpart."""

    name: str
    paper_value: float
    model_value: float
    unit: str
    tolerance: float  # relative

    @property
    def relative_error(self) -> float:
        if self.paper_value == 0:
            return 0.0
        return abs(self.model_value - self.paper_value) / abs(self.paper_value)

    @property
    def within_tolerance(self) -> bool:
        return self.relative_error <= self.tolerance


def _listing3_run() -> PimDevice:
    device = PimDevice(fulcrum_config(4), functional=True)
    n = 2048
    obj_x = device.alloc(n)
    obj_y = device.alloc_associated(obj_x)
    obj_z = device.alloc_associated(obj_x)
    device.copy_host_to_device(np.arange(n, dtype=np.int32), obj_x)
    device.copy_host_to_device(np.arange(n, dtype=np.int32), obj_y)
    device.execute(PimCmdKind.ADD, (obj_x, obj_y), obj_z)
    device.copy_device_to_host(obj_z)
    return device


def _bitserial_vecadd_energy_mj() -> float:
    device = PimDevice(bitserial_config(32), functional=False)
    n = 2_035_544_320
    obj_x = device.alloc(n)
    obj_y = device.alloc_associated(obj_x)
    obj_z = device.alloc_associated(obj_x)
    device.execute(PimCmdKind.ADD, (obj_x, obj_y), obj_z)
    return device.stats.kernel_energy_nj / 1e6


def validation_anchors() -> "list[Anchor]":
    """Measure every anchor; see EXPERIMENTS.md for provenance."""
    listing3 = _listing3_run().stats
    anchors = [
        Anchor("Listing 3 Fulcrum vec-add kernel", 0.001660,
               listing3.kernel_time_ns / 1e6, "ms", 0.02),
        Anchor("Listing 3 Fulcrum vec-add energy", 0.004197,
               listing3.kernel_energy_nj / 1e6, "mJ", 0.05),
        Anchor("Listing 3 copy runtime", 0.000224,
               listing3.copy_time_ns / 1e6, "ms", 0.10),
        Anchor("Listing 3 copy energy", 0.001602,
               listing3.copy_energy_nj / 1e6, "mJ", 0.10),
        Anchor("Listing 3 copy bytes", 24576.0,
               float(listing3.copy_bytes), "B", 0.0),
        Anchor("Bit-serial Table-I vec-add energy (SecV-D)", 13.26,
               _bitserial_vecadd_energy_mj(), "mJ", 0.05),
    ]
    from repro.upmem import upmem_validation_table

    for row in upmem_validation_table():
        anchors.append(Anchor(
            f"UPMEM toy-model slowdown: {row.kernel} (SecV-E)",
            row.paper_slowdown, row.slowdown, "frac", 0.10,
        ))
    return anchors


def format_anchor_table(anchors: "list[Anchor]") -> str:
    lines = [
        f"{'anchor':<46s} {'paper':>12s} {'model':>12s} {'err':>6s} {'ok':>3s}"
    ]
    for anchor in anchors:
        lines.append(
            f"{anchor.name:<46s} {anchor.paper_value:>10.6g}{anchor.unit:<2s}"
            f"{anchor.model_value:>10.6g}{anchor.unit:<2s}"
            f"{anchor.relative_error:>5.1%} "
            f"{'ok' if anchor.within_tolerance else 'NO':>3s}"
        )
    return "\n".join(lines)
