"""Functional simulator for bit-serial microprograms.

Executes a :class:`MicroProgram` over a small bit-matrix (rows x lanes of
booleans), exactly as the DRAM-AP hardware would: every micro-op applies to
all lanes simultaneously.  This is the reproduction of the artifact's
functional-verification path -- tests run microprograms here and compare
against integer semantics; the production device uses numpy integer ops
for speed and this simulator for spot validation.
"""

from __future__ import annotations

import numpy as np

from repro.microcode.assembler import MicroProgram
from repro.microcode.isa import REGISTER_NAMES, MicroOp, MicroOpKind


class BitSliceSimulator:
    """State of one subarray slice: cell rows plus per-lane registers."""

    def __init__(self, num_rows: int, num_lanes: int) -> None:
        if num_rows <= 0 or num_lanes <= 0:
            raise ValueError("num_rows and num_lanes must be positive")
        self.num_rows = num_rows
        self.num_lanes = num_lanes
        self.rows = np.zeros((num_rows, num_lanes), dtype=bool)
        self.registers = {name: np.zeros(num_lanes, dtype=bool) for name in REGISTER_NAMES}
        self.popcount_results: "list[int]" = []

    # -- vertical data encode/decode ---------------------------------------

    def store_vertical(self, base_row: int, values: np.ndarray, bits: int) -> None:
        """Lay integers out vertically: bit i of element j -> rows[base+i, j]."""
        values = np.asarray(values)
        if values.shape != (self.num_lanes,):
            raise ValueError(
                f"expected {self.num_lanes} values, got shape {values.shape}"
            )
        unsigned = values.astype(np.int64) & ((1 << bits) - 1)
        for i in range(bits):
            self.rows[base_row + i] = (unsigned >> i) & 1

    def load_vertical(self, base_row: int, bits: int, signed: bool = True) -> np.ndarray:
        """Decode vertically-laid-out integers back to a numpy array."""
        value = np.zeros(self.num_lanes, dtype=np.int64)
        for i in range(bits):
            value |= self.rows[base_row + i].astype(np.int64) << i
        if signed and bits > 1:
            sign = value >> (bits - 1) & 1
            value -= sign << bits
        return value

    # -- execution ----------------------------------------------------------

    def execute(self, program: MicroProgram) -> "list[int]":
        """Run all micro-ops; return the popcount results in issue order."""
        start = len(self.popcount_results)
        for op in program.ops:
            self._step(op)
        return self.popcount_results[start:]

    def _step(self, op: MicroOp) -> None:
        kind = op.kind
        regs = self.registers
        if kind is MicroOpKind.READ_ROW:
            regs[op.dst] = self.rows[op.row].copy()
        elif kind is MicroOpKind.WRITE_ROW:
            self.rows[op.row] = regs[op.srcs[0]].copy()
        elif kind is MicroOpKind.SET:
            regs[op.dst] = np.full(self.num_lanes, bool(op.value))
        elif kind is MicroOpKind.MOVE:
            regs[op.dst] = regs[op.srcs[0]].copy()
        elif kind is MicroOpKind.NOT:
            regs[op.dst] = ~regs[op.srcs[0]]
        elif kind is MicroOpKind.AND:
            regs[op.dst] = regs[op.srcs[0]] & regs[op.srcs[1]]
        elif kind is MicroOpKind.OR:
            regs[op.dst] = regs[op.srcs[0]] | regs[op.srcs[1]]
        elif kind is MicroOpKind.XOR:
            regs[op.dst] = regs[op.srcs[0]] ^ regs[op.srcs[1]]
        elif kind is MicroOpKind.XNOR:
            regs[op.dst] = ~(regs[op.srcs[0]] ^ regs[op.srcs[1]])
        elif kind is MicroOpKind.SEL:
            cond, if_true, if_false = (regs[name] for name in op.srcs)
            regs[op.dst] = np.where(cond, if_true, if_false)
        elif kind is MicroOpKind.POPCOUNT_ROW:
            self.popcount_results.append(int(regs[op.srcs[0]].sum()))
        else:  # pragma: no cover - exhaustive over MicroOpKind
            raise NotImplementedError(f"unhandled micro-op kind {kind}")


def run_binary_op(
    program: MicroProgram,
    a_values: np.ndarray,
    b_values: np.ndarray,
    bits: int,
    result_bits: "int | None" = None,
    signed_result: bool = True,
) -> np.ndarray:
    """Convenience: run a binary-layout program and decode the result."""
    result_bits = bits if result_bits is None else result_bits
    a_values = np.asarray(a_values)
    sim = BitSliceSimulator(num_rows=2 * bits + result_bits, num_lanes=len(a_values))
    sim.store_vertical(0, a_values, bits)
    sim.store_vertical(bits, np.asarray(b_values), bits)
    sim.execute(program)
    return sim.load_vertical(2 * bits, result_bits, signed=signed_result)


def run_unary_op(
    program: MicroProgram,
    a_values: np.ndarray,
    bits: int,
    result_bits: "int | None" = None,
    signed_result: bool = True,
) -> np.ndarray:
    """Convenience: run a unary-layout program and decode the result."""
    result_bits = bits if result_bits is None else result_bits
    a_values = np.asarray(a_values)
    sim = BitSliceSimulator(num_rows=bits + result_bits, num_lanes=len(a_values))
    sim.store_vertical(0, a_values, bits)
    sim.execute(program)
    return sim.load_vertical(bits, result_bits, signed=signed_result)


def run_reduction(program: MicroProgram, values: np.ndarray, bits: int, signed: bool = True) -> int:
    """Run the row-wide-popcount reduction and do the controller's weighting."""
    values = np.asarray(values)
    sim = BitSliceSimulator(num_rows=bits, num_lanes=len(values))
    sim.store_vertical(0, values, bits)
    counts = sim.execute(program)
    total = 0
    for i, count in enumerate(counts):
        weight = 1 << i
        if signed and i == bits - 1:
            weight = -weight
        total += weight * count
    return total
