"""Peephole optimizer for bit-serial microprograms.

The memory controller broadcasts microprograms verbatim, so every removed
micro-op is a removed row access or logic cycle on every subarray.  Three
conservative, semantics-preserving passes:

* **store-to-load forwarding** -- a READ of a row that was just WRITTEN
  (with no intervening write to that row) becomes a register MOVE
  (row access -> logic cycle), or disappears entirely when the value is
  still live in the same register;
* **dead-write elimination** -- a WRITE overwritten by a later WRITE to
  the same row with no intervening READ of that row is dropped (applies
  to accumulator-style programs);
* **redundant-move elimination** -- MOVE x, x and SET of a register that
  already provably holds that constant are dropped.

The optimizer is validated by equivalence-checking optimized programs
against the originals on the functional simulator (see tests), and an
experiment quantifies the savings per high-level op.
"""

from __future__ import annotations

import dataclasses

from repro.microcode.assembler import MicroProgram
from repro.microcode.isa import MicroOp, MicroOpKind


@dataclasses.dataclass(frozen=True)
class OptimizationReport:
    """Before/after op counts of one optimization run."""

    program: str
    ops_before: int
    ops_after: int
    row_ops_before: int
    row_ops_after: int

    @property
    def row_ops_saved(self) -> int:
        return self.row_ops_before - self.row_ops_after


def _forward_stores(ops: "list[MicroOp]") -> "list[MicroOp]":
    """Replace READs of freshly written rows with register MOVEs."""
    result: "list[MicroOp]" = []
    last_writer: "dict[int, str]" = {}  # row -> register holding its value
    reg_dirty: "dict[str, bool]" = {}
    for op in ops:
        if op.kind is MicroOpKind.WRITE_ROW:
            last_writer[op.row] = op.srcs[0]
            reg_dirty[op.srcs[0]] = False
            result.append(op)
            continue
        if op.kind is MicroOpKind.READ_ROW and op.row in last_writer:
            source_reg = last_writer[op.row]
            if not reg_dirty.get(source_reg, True):
                if source_reg == op.dst:
                    continue  # value already in place: drop the read
                replacement = MicroOp(
                    MicroOpKind.MOVE, dst=op.dst, srcs=(source_reg,)
                )
                # The destination register now mirrors *this* row only:
                # drop any stale mirrors it held.
                stale = [row for row, reg in last_writer.items()
                         if reg == op.dst and row != op.row]
                for row in stale:
                    del last_writer[row]
                reg_dirty[op.dst] = False
                result.append(replacement)
                continue
            # The register was overwritten since: fall through to a read.
        if op.kind is MicroOpKind.READ_ROW:
            # The register now holds this row's value and nothing else's.
            stale = [row for row, reg in last_writer.items() if reg == op.dst]
            for row in stale:
                del last_writer[row]
            reg_dirty[op.dst] = False
            last_writer[op.row] = op.dst
            result.append(op)
            continue
        # Logic ops invalidate their destination register's row mirror.
        if op.dst:
            reg_dirty[op.dst] = True
            stale = [row for row, reg in last_writer.items() if reg == op.dst]
            for row in stale:
                del last_writer[row]
        result.append(op)
    return result


def _eliminate_dead_writes(ops: "list[MicroOp]") -> "list[MicroOp]":
    """Drop WRITEs whose row is rewritten before any read."""
    keep = [True] * len(ops)
    pending: "dict[int, int]" = {}  # row -> index of the last unread write
    for index, op in enumerate(ops):
        if op.kind is MicroOpKind.WRITE_ROW:
            if op.row in pending:
                keep[pending[op.row]] = False
            pending[op.row] = index
        elif op.kind is MicroOpKind.READ_ROW:
            pending.pop(op.row, None)
    # Writes still pending at program end are the program's outputs: keep.
    return [op for index, op in enumerate(ops) if keep[index]]


def _drop_redundant_moves(ops: "list[MicroOp]") -> "list[MicroOp]":
    """Remove self-moves and repeated SETs of the same constant."""
    result: "list[MicroOp]" = []
    known_const: "dict[str, int]" = {}
    for op in ops:
        if op.kind is MicroOpKind.MOVE and op.dst == op.srcs[0]:
            continue
        if op.kind is MicroOpKind.SET:
            if known_const.get(op.dst) == op.value:
                continue
            known_const[op.dst] = op.value
        elif op.dst:
            known_const.pop(op.dst, None)
        result.append(op)
    return result


def optimize(program: MicroProgram) -> MicroProgram:
    """All passes, to a fixpoint."""
    ops = list(program.ops)
    while True:
        before = len(ops)
        ops = _forward_stores(ops)
        ops = _eliminate_dead_writes(ops)
        ops = _drop_redundant_moves(ops)
        if len(ops) == before:
            break
    optimized = MicroProgram(
        name=f"{program.name}+opt",
        ops=ops,
        num_popcount_results=program.num_popcount_results,
    )
    return optimized


def report(program: MicroProgram) -> OptimizationReport:
    """Optimize and summarize the savings."""
    optimized = optimize(program)
    return OptimizationReport(
        program=program.name,
        ops_before=len(program.ops),
        ops_after=len(optimized.ops),
        row_ops_before=program.cost.num_row_ops,
        row_ops_after=optimized.cost.num_row_ops,
    )
