"""Micro-op ISA of the DRAM-AP bit-serial processing element.

Each sense amplifier in a subarray's local row buffer carries a small
digital logic block with four single-bit registers (paper Section IV and
Table II: move/set/and/xnor/mux plus the gates needed for associative
processing).  A micro-op applies simultaneously to all 8192 lanes of the
row buffer; a microprogram is a sequence of micro-ops broadcast by the
memory controller to all subarrays.

Three micro-op classes exist, with distinct costs:

* row ops   -- ``READ_ROW`` / ``WRITE_ROW`` move one bit row between the
               cell array and a lane register (a destructive row activation
               or a write-back; dominates latency and energy),
* logic ops -- ``SET``/``MOVE``/``NOT``/``AND``/``OR``/``XOR``/``XNOR``/
               ``SEL`` operate on lane registers only,
* ``POPCOUNT_ROW`` -- the row-wide population count used for reduction
               sums (Section V-C "special handling"), producing a per-core
               scalar collected by the controller.
"""

from __future__ import annotations

import dataclasses
import enum


class MicroOpKind(enum.Enum):
    """Kinds of bit-serial micro-operations."""

    READ_ROW = "read_row"
    WRITE_ROW = "write_row"
    SET = "set"
    MOVE = "move"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    XNOR = "xnor"
    SEL = "sel"
    POPCOUNT_ROW = "popcount_row"

    @property
    def is_row_op(self) -> bool:
        return self in (MicroOpKind.READ_ROW, MicroOpKind.WRITE_ROW)

    @property
    def is_logic_op(self) -> bool:
        return not self.is_row_op and self is not MicroOpKind.POPCOUNT_ROW

    @property
    def num_sources(self) -> int:
        """Number of register sources the op consumes."""
        return _NUM_SOURCES[self]


_NUM_SOURCES = {
    MicroOpKind.READ_ROW: 0,
    MicroOpKind.WRITE_ROW: 1,
    MicroOpKind.SET: 0,
    MicroOpKind.MOVE: 1,
    MicroOpKind.NOT: 1,
    MicroOpKind.AND: 2,
    MicroOpKind.OR: 2,
    MicroOpKind.XOR: 2,
    MicroOpKind.XNOR: 2,
    MicroOpKind.SEL: 3,
    MicroOpKind.POPCOUNT_ROW: 1,
}

#: Register file of one lane: the sense-amp latch plus four bit registers.
#: "SA" is the row-buffer latch itself; R0..R3 are the extra registers the
#: paper adds for carry/condition bits.
REGISTER_NAMES = ("SA", "R0", "R1", "R2", "R3")


@dataclasses.dataclass(frozen=True)
class MicroOp:
    """One bit-serial micro-operation.

    ``dst`` is a register name (or, for ``WRITE_ROW``, unused); ``srcs``
    are register names; ``row`` indexes the subarray row for row ops;
    ``value`` is the immediate for ``SET``.
    """

    kind: MicroOpKind
    dst: str = ""
    srcs: "tuple[str, ...]" = ()
    row: int = -1
    value: int = 0

    def __post_init__(self) -> None:
        if len(self.srcs) != self.kind.num_sources:
            raise ValueError(
                f"{self.kind.value} expects {self.kind.num_sources} sources, "
                f"got {len(self.srcs)}"
            )
        if self.kind.is_row_op and self.row < 0:
            raise ValueError(f"{self.kind.value} requires a row index")
        for name in self.srcs + ((self.dst,) if self.dst else ()):
            if name not in REGISTER_NAMES:
                raise ValueError(f"unknown register {name!r}")
        if self.kind is MicroOpKind.SET and self.value not in (0, 1):
            raise ValueError(f"SET immediate must be 0 or 1, got {self.value}")


@dataclasses.dataclass(frozen=True)
class MicroProgramCost:
    """Aggregate cost of a microprogram, the input to the perf model."""

    num_row_reads: int = 0
    num_row_writes: int = 0
    num_logic_ops: int = 0
    num_popcount_rows: int = 0

    @property
    def num_row_ops(self) -> int:
        return self.num_row_reads + self.num_row_writes

    @property
    def total_ops(self) -> int:
        return self.num_row_ops + self.num_logic_ops + self.num_popcount_rows

    def __add__(self, other: "MicroProgramCost") -> "MicroProgramCost":
        return MicroProgramCost(
            num_row_reads=self.num_row_reads + other.num_row_reads,
            num_row_writes=self.num_row_writes + other.num_row_writes,
            num_logic_ops=self.num_logic_ops + other.num_logic_ops,
            num_popcount_rows=self.num_popcount_rows + other.num_popcount_rows,
        )

    def scaled(self, factor: int) -> "MicroProgramCost":
        """Cost of running this program ``factor`` times back-to-back."""
        return MicroProgramCost(
            num_row_reads=self.num_row_reads * factor,
            num_row_writes=self.num_row_writes * factor,
            num_logic_ops=self.num_logic_ops * factor,
            num_popcount_rows=self.num_popcount_rows * factor,
        )


def cost_of(ops: "list[MicroOp]") -> MicroProgramCost:
    """Tally the cost classes of a micro-op sequence."""
    reads = writes = logic = popcounts = 0
    for op in ops:
        if op.kind is MicroOpKind.READ_ROW:
            reads += 1
        elif op.kind is MicroOpKind.WRITE_ROW:
            writes += 1
        elif op.kind is MicroOpKind.POPCOUNT_ROW:
            popcounts += 1
        else:
            logic += 1
    return MicroProgramCost(
        num_row_reads=reads,
        num_row_writes=writes,
        num_logic_ops=logic,
        num_popcount_rows=popcounts,
    )
