"""Bit-serial microprograms for the high-level PIM operations.

Every high-level API call on the DRAM-AP device is realized as a
microprogram over vertically-laid-out operands (Section V-C: "all
high-level PIM APIs are mapped to low-level bit-serial microprograms").
The programs here are *real* implementations -- the functional simulator
executes them bit-by-bit and tests check them against integer semantics --
and their micro-op tallies drive the performance and energy models.

Row-layout conventions (n = element bit width, m = result bit width):

* binary ops:  A = rows [0, n), B = rows [n, 2n), D = rows [2n, 2n+m)
* unary ops:   A = rows [0, n), D = rows [n, n+m)
* select:      C = row 0, A = rows [1, 1+n), B = rows [1+n, 1+2n),
               D = rows [1+2n, 1+3n)
* broadcast:   D = rows [0, n)

Complexities match the paper: addition/subtraction and logic are linear in
bit width, multiplication is quadratic, per-element popcount is log-linear,
and reduction uses the row-wide popcount hardware.
"""

from __future__ import annotations

import functools

from repro.microcode.assembler import Assembler, MicroProgram, Operand


def _binary_operands(bits: int, result_bits: "int | None" = None):
    result_bits = bits if result_bits is None else result_bits
    a = Operand(base=0, bits=bits)
    b = Operand(base=bits, bits=bits)
    d = Operand(base=2 * bits, bits=result_bits)
    return a, b, d


def _unary_operands(bits: int, result_bits: "int | None" = None):
    result_bits = bits if result_bits is None else result_bits
    a = Operand(base=0, bits=bits)
    d = Operand(base=bits, bits=result_bits)
    return a, d


def copy_program(bits: int) -> MicroProgram:
    """D = A, one row read plus one row write per bit."""
    a, d = _unary_operands(bits)
    asm = Assembler(f"copy.{bits}")
    for i in range(bits):
        asm.read("SA", a.row(i)).write("SA", d.row(i))
    return asm.done()


def not_program(bits: int) -> MicroProgram:
    """D = ~A (bitwise complement)."""
    a, d = _unary_operands(bits)
    asm = Assembler(f"not.{bits}")
    for i in range(bits):
        asm.read("SA", a.row(i)).not_("SA", "SA").write("SA", d.row(i))
    return asm.done()


def _logic2_program(name: str, bits: int) -> MicroProgram:
    """Shared body of the two-input bitwise ops (and/or/xor/xnor)."""
    a, b, d = _binary_operands(bits)
    asm = Assembler(f"{name}.{bits}")
    gate = {
        "and": asm.and_,
        "or": asm.or_,
        "xor": asm.xor,
        "xnor": asm.xnor,
    }[name]
    for i in range(bits):
        asm.read("R0", a.row(i)).read("R1", b.row(i))
        gate("R0", "R0", "R1")
        asm.write("R0", d.row(i))
    return asm.done()


def and_program(bits: int) -> MicroProgram:
    return _logic2_program("and", bits)


def or_program(bits: int) -> MicroProgram:
    return _logic2_program("or", bits)


def xor_program(bits: int) -> MicroProgram:
    return _logic2_program("xor", bits)


def xnor_program(bits: int) -> MicroProgram:
    return _logic2_program("xnor", bits)


def add_program(bits: int) -> MicroProgram:
    """D = A + B via a ripple-carry full adder (linear in bit width)."""
    a, b, d = _binary_operands(bits)
    asm = Assembler(f"add.{bits}")
    asm.set("R2", 0)  # carry
    for i in range(bits):
        asm.read("R0", a.row(i)).read("R1", b.row(i))
        asm.full_adder("R0", "R1", "R2", "R3")
        asm.write("R3", d.row(i))
    return asm.done()


def sub_program(bits: int) -> MicroProgram:
    """D = A - B computed as A + ~B + 1."""
    a, b, d = _binary_operands(bits)
    asm = Assembler(f"sub.{bits}")
    asm.set("R2", 1)  # borrow-free subtraction: carry-in of 1
    for i in range(bits):
        asm.read("R0", a.row(i)).read("R1", b.row(i)).not_("R1", "R1")
        asm.full_adder("R0", "R1", "R2", "R3")
        asm.write("R3", d.row(i))
    return asm.done()


def add_scalar_program(bits: int, scalar: int) -> MicroProgram:
    """D = A + scalar; the scalar's bits are folded into the microprogram."""
    a, d = _unary_operands(bits)
    asm = Assembler(f"add_scalar.{bits}")
    asm.set("R2", 0)  # carry
    for i in range(bits):
        asm.read("R0", a.row(i))
        if (scalar >> i) & 1:
            # b_i = 1: sum = ~(a ^ c), carry' = a | c
            asm.xor("R3", "R0", "R2").not_("R3", "R3")
            asm.or_("R2", "R0", "R2")
        else:
            # b_i = 0: sum = a ^ c, carry' = a & c
            asm.xor("R3", "R0", "R2")
            asm.and_("R2", "R0", "R2")
        asm.write("R3", d.row(i))
    return asm.done()


def mul_program(bits: int) -> MicroProgram:
    """Full 2n-bit product D = A * B (shift-and-add, quadratic).

    The hardware accumulates the complete double-width product of the
    unsigned reinterpretations (rows [2n, 4n)); the destination object
    keeps the low ``bits`` rows, which equal the wrapped signed product.
    Every partial-product addition runs over the full operand width, the
    dominant term of the paper's quadratic bit-serial multiply cost.
    """
    a, b, d = _binary_operands(bits, result_bits=2 * bits)
    asm = Assembler(f"mul.{bits}")
    for i in range(2 * bits):  # zero the double-width accumulator
        asm.set("SA", 0).write("SA", d.row(i))
    for j in range(bits):
        asm.read("R2", b.row(j))  # multiplier bit, persists over inner loop
        asm.set("R3", 0)  # carry of this partial-product addition
        for i in range(bits):
            asm.read("R0", a.row(i)).and_("R0", "R0", "R2")
            asm.read("R1", d.row(i + j))
            asm.full_adder("R0", "R1", "R3", "SA")
            asm.write("SA", d.row(i + j))
        if j + bits < 2 * bits:  # ripple the final carry into the high half
            asm.read("R0", d.row(j + bits))
            asm.xor("SA", "R0", "R3")
            asm.write("SA", d.row(j + bits))
    return asm.done()


def mul_scalar_program(bits: int, scalar: int) -> MicroProgram:
    """D = A * scalar; only the scalar's set bits cost an addition pass."""
    a, d = _unary_operands(bits)
    asm = Assembler(f"mul_scalar.{bits}")
    for i in range(bits):
        asm.set("SA", 0).write("SA", d.row(i))
    for j in range(bits):
        if not (scalar >> j) & 1:
            continue
        asm.set("R3", 0)
        for i in range(bits - j):
            asm.read("R0", a.row(i))
            asm.read("R1", d.row(i + j))
            asm.full_adder("R0", "R1", "R3", "SA")
            asm.write("SA", d.row(i + j))
    return asm.done()


def scaled_add_program(bits: int, scalar: int) -> MicroProgram:
    """D = A * scalar + B (the AXPY primitive, ``pimScaledAdd``).

    Layout matches binary ops.  Implemented as copy of B into D followed by
    one shifted conditional addition per set scalar bit.
    """
    a, b, d = _binary_operands(bits)
    asm = Assembler(f"scaled_add.{bits}")
    for i in range(bits):
        asm.read("SA", b.row(i)).write("SA", d.row(i))
    for j in range(bits):
        if not (scalar >> j) & 1:
            continue
        asm.set("R3", 0)
        for i in range(bits - j):
            asm.read("R0", a.row(i))
            asm.read("R1", d.row(i + j))
            asm.full_adder("R0", "R1", "R3", "SA")
            asm.write("SA", d.row(i + j))
    return asm.done()


def eq_program(bits: int) -> MicroProgram:
    """D (1 bit) = all bits of A equal those of B (XNOR-accumulate)."""
    a, b, d = _binary_operands(bits, result_bits=1)
    asm = Assembler(f"eq.{bits}")
    asm.set("R2", 1)
    for i in range(bits):
        asm.read("R0", a.row(i)).read("R1", b.row(i))
        asm.xnor("R0", "R0", "R1").and_("R2", "R2", "R0")
    asm.write("R2", d.row(0))
    return asm.done()


def ne_program(bits: int) -> MicroProgram:
    """D (1 bit) = A != B."""
    a, b, d = _binary_operands(bits, result_bits=1)
    asm = Assembler(f"ne.{bits}")
    asm.set("R2", 1)
    for i in range(bits):
        asm.read("R0", a.row(i)).read("R1", b.row(i))
        asm.xnor("R0", "R0", "R1").and_("R2", "R2", "R0")
    asm.not_("R2", "R2").write("R2", d.row(0))
    return asm.done()


def _compare_body(asm: Assembler, a: Operand, b: Operand, signed: bool) -> None:
    """Leave ``A < B`` in R3, scanning LSB to MSB.

    At each bit: lt stays if a_i == b_i, otherwise lt = ~a_i & b_i.  For
    signed types the sign bit inverts the sense (a negative, b positive
    means a < b), handled by swapping the operand roles at the MSB.
    """
    asm.set("R3", 0)
    for i in range(a.bits):
        asm.read("R0", a.row(i)).read("R1", b.row(i))
        sign_bit = signed and i == a.bits - 1
        if sign_bit:
            asm.xnor("R2", "R0", "R1")
            asm.not_("R1", "R1").and_("R0", "R0", "R1")  # a_i & ~b_i
            asm.sel("R3", "R2", "R3", "R0")
        else:
            asm.xnor("R2", "R0", "R1")
            asm.not_("R0", "R0").and_("R0", "R0", "R1")  # ~a_i & b_i
            asm.sel("R3", "R2", "R3", "R0")


def lt_program(bits: int, signed: bool = True) -> MicroProgram:
    """D (1 bit) = A < B."""
    a, b, d = _binary_operands(bits, result_bits=1)
    asm = Assembler(f"lt.{bits}{'s' if signed else 'u'}")
    _compare_body(asm, a, b, signed)
    asm.write("R3", d.row(0))
    return asm.done()


def gt_program(bits: int, signed: bool = True) -> MicroProgram:
    """D (1 bit) = A > B (B < A with operands swapped in the scan)."""
    a, b, d = _binary_operands(bits, result_bits=1)
    asm = Assembler(f"gt.{bits}{'s' if signed else 'u'}")
    _compare_body(asm, b, a, signed)  # note the swap
    asm.write("R3", d.row(0))
    return asm.done()


def _min_max_program(bits: int, want_min: bool, signed: bool) -> MicroProgram:
    """D = min(A, B) or max(A, B): compare pass then select pass."""
    a, b, d = _binary_operands(bits)
    kind = "min" if want_min else "max"
    asm = Assembler(f"{kind}.{bits}")
    _compare_body(asm, a, b, signed)  # R3 = A < B
    for i in range(bits):
        asm.read("R0", a.row(i)).read("R1", b.row(i))
        if want_min:
            asm.sel("SA", "R3", "R0", "R1")  # lt ? a : b
        else:
            asm.sel("SA", "R3", "R1", "R0")  # lt ? b : a
        asm.write("SA", d.row(i))
    return asm.done()


def min_program(bits: int, signed: bool = True) -> MicroProgram:
    return _min_max_program(bits, want_min=True, signed=signed)


def max_program(bits: int, signed: bool = True) -> MicroProgram:
    return _min_max_program(bits, want_min=False, signed=signed)


def shift_program(bits: int, amount: int, left: bool, arithmetic: bool = False) -> MicroProgram:
    """D = A shifted by a constant ``amount`` (pure row moves)."""
    if amount < 0:
        raise ValueError(f"shift amount must be non-negative, got {amount}")
    amount = min(amount, bits)
    a, d = _unary_operands(bits)
    direction = "l" if left else ("ra" if arithmetic else "r")
    asm = Assembler(f"shift{direction}.{bits}.{amount}")
    if left:
        for i in range(bits - 1, amount - 1, -1):
            asm.read("SA", a.row(i - amount)).write("SA", d.row(i))
        for i in range(amount):
            asm.set("SA", 0).write("SA", d.row(i))
    else:
        for i in range(bits - amount):
            asm.read("SA", a.row(i + amount)).write("SA", d.row(i))
        if amount:
            if arithmetic:
                asm.read("SA", a.row(bits - 1))  # replicate the sign bit
            else:
                asm.set("SA", 0)
            for i in range(bits - amount, bits):
                asm.write("SA", d.row(i))
    return asm.done()


def abs_program(bits: int) -> MicroProgram:
    """D = |A| via conditional two's-complement negation."""
    a, d = _unary_operands(bits)
    asm = Assembler(f"abs.{bits}")
    asm.read("R2", a.row(bits - 1))  # sign
    asm.move("R3", "R2")  # carry-in = sign (the "+1" of negation)
    for i in range(bits):
        asm.read("R0", a.row(i))
        asm.xor("R1", "R0", "R2")  # conditional complement
        asm.xor("SA", "R1", "R3")  # sum
        asm.and_("R3", "R1", "R3")  # carry
        asm.write("SA", d.row(i))
    return asm.done()


def popcount_program(bits: int) -> MicroProgram:
    """Per-element popcount: D = number of set bits of A (log-linear)."""
    result_bits = max(1, (bits).bit_length())
    a, d = _unary_operands(bits, result_bits=result_bits)
    asm = Assembler(f"popcount.{bits}")
    for j in range(result_bits):
        asm.set("SA", 0).write("SA", d.row(j))
    for i in range(bits):
        asm.read("R2", a.row(i))
        asm.move("R3", "R2")  # carry into the accumulator increment
        for j in range(result_bits):
            asm.read("R0", d.row(j))
            asm.xor("SA", "R0", "R3")
            asm.and_("R3", "R0", "R3")
            asm.write("SA", d.row(j))
    return asm.done()


def reduction_program(bits: int) -> MicroProgram:
    """Row-wide reduction sum: one POPCOUNT_ROW per bit slice.

    The controller weighs the per-slice counts by powers of two (with the
    MSB slice weighted negatively for signed types) and accumulates across
    cores; that host-side accumulation is modeled by the device, not here.
    """
    a = Operand(base=0, bits=bits)
    asm = Assembler(f"redsum.{bits}")
    for i in range(bits):
        asm.read("SA", a.row(i)).popcount_row("SA")
    return asm.done()


def broadcast_program(bits: int, value: int) -> MicroProgram:
    """D = value in every lane (one SET + row write per bit)."""
    d = Operand(base=0, bits=bits)
    asm = Assembler(f"broadcast.{bits}")
    mask = (1 << bits) - 1
    for i in range(bits):
        asm.set("SA", (value & mask) >> i & 1).write("SA", d.row(i))
    return asm.done()


def select_program(bits: int) -> MicroProgram:
    """D = C ? A : B with a one-bit condition operand (associative update)."""
    cond = Operand(base=0, bits=1)
    a = Operand(base=1, bits=bits)
    b = Operand(base=1 + bits, bits=bits)
    d = Operand(base=1 + 2 * bits, bits=bits)
    asm = Assembler(f"select.{bits}")
    asm.read("R2", cond.row(0))
    for i in range(bits):
        asm.read("R0", a.row(i)).read("R1", b.row(i))
        asm.sel("SA", "R2", "R0", "R1")
        asm.write("SA", d.row(i))
    return asm.done()


def _logic_scalar_program(name: str, bits: int, scalar: int) -> MicroProgram:
    """D = A op scalar for and/or/xor; constant bits simplify each slice.

    Where the scalar bit makes the result constant or an identity/complement
    of the input, the gate evaluation disappears and only the row traffic
    (or a SET) remains.
    """
    a, d = _unary_operands(bits)
    asm = Assembler(f"{name}_scalar.{bits}")
    mask = (1 << bits) - 1
    for i in range(bits):
        bit = (scalar & mask) >> i & 1
        if name == "and" and not bit:
            asm.set("SA", 0).write("SA", d.row(i))
            continue
        if name == "or" and bit:
            asm.set("SA", 1).write("SA", d.row(i))
            continue
        asm.read("SA", a.row(i))
        if name == "xor" and bit:
            asm.not_("SA", "SA")
        asm.write("SA", d.row(i))
    return asm.done()


def and_scalar_program(bits: int, scalar: int) -> MicroProgram:
    return _logic_scalar_program("and", bits, scalar)


def or_scalar_program(bits: int, scalar: int) -> MicroProgram:
    return _logic_scalar_program("or", bits, scalar)


def xor_scalar_program(bits: int, scalar: int) -> MicroProgram:
    return _logic_scalar_program("xor", bits, scalar)


def sat_add_scalar_program(bits: int, scalar: int) -> MicroProgram:
    """D = saturating unsigned A + scalar (clamps to all-ones on carry-out).

    The fused architecture-specific operation of Section IX's discussion:
    one microprogram replaces the portable min-then-add pair.  Pass 1
    rippples only the carry to find the overflow flag; pass 2 recomputes
    the sum bit-serially, muxing in 1s where the flag is set.
    """
    a, d = _unary_operands(bits)
    asm = Assembler(f"sat_add_scalar.{bits}")
    mask = (1 << bits) - 1
    scalar &= mask
    # Pass 1: carry chain only; R2 ends as the carry-out (overflow flag).
    asm.set("R2", 0)
    for i in range(bits):
        asm.read("R0", a.row(i))
        if (scalar >> i) & 1:
            asm.or_("R2", "R0", "R2")
        else:
            asm.and_("R2", "R0", "R2")
    # Pass 2: sum bits, saturated by the flag.
    asm.set("R1", 1)  # the saturation value for every bit
    asm.set("R3", 0)  # carry, recomputed
    for i in range(bits):
        asm.read("R0", a.row(i))
        if (scalar >> i) & 1:
            asm.xor("SA", "R0", "R3").not_("SA", "SA")
            asm.or_("R3", "R0", "R3")
        else:
            asm.xor("SA", "R0", "R3")
            asm.and_("R3", "R0", "R3")
        asm.sel("SA", "R2", "R1", "SA")
        asm.write("SA", d.row(i))
    return asm.done()


def eq_scalar_program(bits: int, scalar: int) -> MicroProgram:
    """D (1 bit) = A == scalar; the scalar is baked into the microprogram.

    This is the associative-search primitive of DRAM-AP (match against a
    broadcast key without materializing the key operand).
    """
    a, d = _unary_operands(bits, result_bits=1)
    asm = Assembler(f"eq_scalar.{bits}")
    asm.set("R2", 1)
    mask = (1 << bits) - 1
    for i in range(bits):
        asm.read("R0", a.row(i))
        if (scalar & mask) >> i & 1:
            asm.and_("R2", "R2", "R0")
        else:
            asm.not_("R0", "R0").and_("R2", "R2", "R0")
    asm.write("R2", d.row(0))
    return asm.done()


@functools.lru_cache(maxsize=None)
def _cached(name: str, bits: int, extra: "tuple | None" = None) -> MicroProgram:
    builders = {
        "copy": lambda: copy_program(bits),
        "not": lambda: not_program(bits),
        "and": lambda: and_program(bits),
        "or": lambda: or_program(bits),
        "xor": lambda: xor_program(bits),
        "xnor": lambda: xnor_program(bits),
        "add": lambda: add_program(bits),
        "sub": lambda: sub_program(bits),
        "mul": lambda: mul_program(bits),
        "eq": lambda: eq_program(bits),
        "ne": lambda: ne_program(bits),
        "abs": lambda: abs_program(bits),
        "popcount": lambda: popcount_program(bits),
        "redsum": lambda: reduction_program(bits),
        "select": lambda: select_program(bits),
    }
    extras = {
        "add_scalar": lambda s: add_scalar_program(bits, s),
        "mul_scalar": lambda s: mul_scalar_program(bits, s),
        "scaled_add": lambda s: scaled_add_program(bits, s),
        "eq_scalar": lambda s: eq_scalar_program(bits, s),
        "sat_add_scalar": lambda s: sat_add_scalar_program(bits, s),
        "and_scalar": lambda s: and_scalar_program(bits, s),
        "or_scalar": lambda s: or_scalar_program(bits, s),
        "xor_scalar": lambda s: xor_scalar_program(bits, s),
        "broadcast": lambda s: broadcast_program(bits, s),
        "lt": lambda s: lt_program(bits, signed=bool(s)),
        "gt": lambda s: gt_program(bits, signed=bool(s)),
        "min": lambda s: min_program(bits, signed=bool(s)),
        "max": lambda s: max_program(bits, signed=bool(s)),
        "shift_left": lambda s: shift_program(bits, s, left=True),
        "shift_right": lambda s: shift_program(bits, s, left=False),
        "shift_right_arith": lambda s: shift_program(bits, s, left=False, arithmetic=True),
    }
    if name in builders:
        return builders[name]()
    if name in extras:
        if extra is None:
            raise ValueError(f"microprogram {name!r} requires a parameter")
        return extras[name](extra[0])
    raise KeyError(f"no microprogram named {name!r}")


def get_program(name: str, bits: int, param: "int | None" = None) -> MicroProgram:
    """Fetch (and cache) the microprogram for an op at a bit width.

    ``param`` carries the immediate for scalar-parameterized programs, the
    shift amount for shifts, or signedness (as 0/1) for comparisons.
    """
    extra = None if param is None else (param,)
    return _cached(name, bits, extra)
