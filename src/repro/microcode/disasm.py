"""Microprogram disassembler: human-readable bit-serial listings.

Renders a :class:`MicroProgram` as assembly-style text, with summary
statistics, for debugging microprograms and for the documentation's
per-op cost tables.
"""

from __future__ import annotations

from repro.microcode.assembler import MicroProgram
from repro.microcode.isa import MicroOp, MicroOpKind


def format_micro_op(op: MicroOp) -> str:
    """One micro-op as assembly text."""
    kind = op.kind
    if kind is MicroOpKind.READ_ROW:
        return f"read   {op.dst}, row[{op.row}]"
    if kind is MicroOpKind.WRITE_ROW:
        return f"write  row[{op.row}], {op.srcs[0]}"
    if kind is MicroOpKind.SET:
        return f"set    {op.dst}, #{op.value}"
    if kind is MicroOpKind.POPCOUNT_ROW:
        return f"popcnt {op.srcs[0]}"
    operands = ", ".join((op.dst,) + op.srcs)
    return f"{kind.value:<6s} {operands}"


def disassemble(program: MicroProgram, max_ops: "int | None" = None) -> str:
    """Full listing with a header and cost summary."""
    cost = program.cost
    lines = [
        f".program {program.name}",
        f".cost    reads={cost.num_row_reads} writes={cost.num_row_writes} "
        f"logic={cost.num_logic_ops} popcounts={cost.num_popcount_rows}",
    ]
    ops = program.ops if max_ops is None else program.ops[:max_ops]
    for index, op in enumerate(ops):
        lines.append(f"  {index:>5d}: {format_micro_op(op)}")
    if max_ops is not None and len(program.ops) > max_ops:
        lines.append(f"  ... ({len(program.ops) - max_ops} more)")
    return "\n".join(lines)


def cost_table(bit_widths: "tuple[int, ...]" = (8, 16, 32)) -> str:
    """Per-op microprogram cost table across bit widths (for the docs)."""
    from repro.microcode.programs import get_program

    ops = ("copy", "not", "and", "xor", "add", "sub", "mul", "eq",
           "abs", "popcount", "redsum")
    lines = [
        f"{'op':<10s}" + "".join(
            f" {f'rows@{bits}':>9s} {f'logic@{bits}':>9s}" for bits in bit_widths
        )
    ]
    for op in ops:
        cells = []
        for bits in bit_widths:
            cost = get_program(op, bits).cost
            cells.append(f" {cost.num_row_ops:>9d} {cost.num_logic_ops:>9d}")
        lines.append(f"{op:<10s}" + "".join(cells))
    return "\n".join(lines)
