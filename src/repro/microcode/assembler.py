"""Builder for bit-serial microprograms.

A :class:`MicroProgram` is an ordered micro-op list plus metadata about the
vertically-laid-out operands it touches.  Programs are built against
canonical row bases (operand k's bit i lives at row ``base_k + i``); the
device maps these onto physical rows, which does not change cost.
"""

from __future__ import annotations

import dataclasses

from repro.microcode.isa import MicroOp, MicroOpKind, MicroProgramCost, cost_of


@dataclasses.dataclass(frozen=True)
class Operand:
    """A vertical operand: ``bits`` consecutive rows starting at ``base``."""

    base: int
    bits: int
    signed: bool = True

    def row(self, bit: int) -> int:
        """Physical row of bit ``bit`` (0 = LSB)."""
        if not 0 <= bit < self.bits:
            raise IndexError(f"bit {bit} out of range for {self.bits}-bit operand")
        return self.base + bit

    @property
    def msb_row(self) -> int:
        return self.base + self.bits - 1


@dataclasses.dataclass
class MicroProgram:
    """A named sequence of bit-serial micro-ops.

    ``cost`` is computed once and cached: programs are assembled once
    (and memoized by :func:`repro.microcode.programs.get_program`) but
    costed on every command issue, so re-tallying the op list each time
    was the single largest term of the simulator's hot path.  The
    :class:`Assembler` invalidates the cache on every emit; code that
    mutates ``ops`` directly must clear ``_cost`` itself.
    """

    name: str
    ops: "list[MicroOp]" = dataclasses.field(default_factory=list)
    num_popcount_results: int = 0
    _cost: "MicroProgramCost | None" = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def cost(self) -> MicroProgramCost:
        if self._cost is None:
            self._cost = cost_of(self.ops)
        return self._cost

    def __len__(self) -> int:
        return len(self.ops)


class Assembler:
    """Fluent emitter of micro-ops into a :class:`MicroProgram`."""

    def __init__(self, name: str) -> None:
        self.program = MicroProgram(name=name)

    def _emit(self, op: MicroOp) -> None:
        self.program.ops.append(op)
        self.program._cost = None  # still assembling: drop any cached tally

    # -- row ops ---------------------------------------------------------

    def read(self, dst: str, row: int) -> "Assembler":
        """Read a cell row into a lane register."""
        self._emit(MicroOp(MicroOpKind.READ_ROW, dst=dst, row=row))
        return self

    def write(self, src: str, row: int) -> "Assembler":
        """Write a lane register back to a cell row."""
        self._emit(MicroOp(MicroOpKind.WRITE_ROW, srcs=(src,), row=row))
        return self

    # -- logic ops --------------------------------------------------------

    def set(self, dst: str, value: int) -> "Assembler":
        self._emit(MicroOp(MicroOpKind.SET, dst=dst, value=value))
        return self

    def move(self, dst: str, src: str) -> "Assembler":
        self._emit(MicroOp(MicroOpKind.MOVE, dst=dst, srcs=(src,)))
        return self

    def not_(self, dst: str, src: str) -> "Assembler":
        self._emit(MicroOp(MicroOpKind.NOT, dst=dst, srcs=(src,)))
        return self

    def and_(self, dst: str, a: str, b: str) -> "Assembler":
        self._emit(MicroOp(MicroOpKind.AND, dst=dst, srcs=(a, b)))
        return self

    def or_(self, dst: str, a: str, b: str) -> "Assembler":
        self._emit(MicroOp(MicroOpKind.OR, dst=dst, srcs=(a, b)))
        return self

    def xor(self, dst: str, a: str, b: str) -> "Assembler":
        self._emit(MicroOp(MicroOpKind.XOR, dst=dst, srcs=(a, b)))
        return self

    def xnor(self, dst: str, a: str, b: str) -> "Assembler":
        self._emit(MicroOp(MicroOpKind.XNOR, dst=dst, srcs=(a, b)))
        return self

    def sel(self, dst: str, cond: str, if_true: str, if_false: str) -> "Assembler":
        """2:1 mux: dst = if_true when cond else if_false."""
        self._emit(MicroOp(MicroOpKind.SEL, dst=dst, srcs=(cond, if_true, if_false)))
        return self

    # -- special ops ------------------------------------------------------

    def popcount_row(self, src: str) -> "Assembler":
        """Row-wide population count of a register, collected by the controller."""
        self._emit(MicroOp(MicroOpKind.POPCOUNT_ROW, srcs=(src,)))
        self.program.num_popcount_results += 1
        return self

    # -- composite helpers -------------------------------------------------

    def full_adder(self, a: str, b: str, carry: str, sum_dst: str) -> "Assembler":
        """sum_dst = a ^ b ^ carry; carry = majority(a, b, carry).

        Uses the SEL-based majority trick: maj(a,b,c) = c ? (a|b) : (a&b),
        computed with the AP micro-op set.  Destroys ``a`` and ``b``.
        """
        self.xor(sum_dst, a, b)  # partial sum a^b (also the select for carry)
        self.and_(a, a, b)  # a&b (generate)
        self.or_(b, sum_dst, b)  # careful: b now holds (a^b)|b == a|b
        self.sel(b, carry, b, a)  # carry_in ? (a|b) : (a&b) == majority
        self.xor(sum_dst, sum_dst, carry)  # full sum
        self.move(carry, b)
        return self

    def done(self) -> MicroProgram:
        # Tally the cost now, at assembly time, so no command issue ever
        # pays for a per-op walk of the finished program.
        self.program._cost = cost_of(self.program.ops)
        return self.program
