"""Analog bit-serial (TRA) execution: Ambit/SIMDRAM-style compute.

Section IV recounts why the paper models a *digital* bit-serial device:
analog proposals (Ambit [62], SIMDRAM [26]) compute with **triple row
activation** (TRA), which implements only the MAJority function, needs
costly dual-contact cells (DCC) for NOT, and restricts TRA to a small set
of designated compute rows that operands must first be copied into.
PIMeval "is already being extended to support various forms of analog
bit-serial PIM" (Section IX); this module provides that extension:

* a functional TRA-level simulator (rows only -- no lane registers) with
  the AAP row-copy, TRA, and DCC-NOT primitives, used to validate the
  MAJ-based logic constructions, and
* a translator that expands any digital DRAM-AP microprogram into
  analog primitive counts, so the whole PIM API is costed on the analog
  substrate without rewriting the program library.

Construction identities (validated by tests):

* ``AND(a, b)  = MAJ(a, b, 0)``
* ``OR(a, b)   = MAJ(a, b, 1)``
* ``XOR(a, b)  = OR(a, b) AND NOT(AND(a, b))``
* full adder: ``Cout = MAJ(A, B, Cin)`` and
  ``S = MAJ(NOT Cout, MAJ(A, B, NOT Cin), Cin)``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.microcode.assembler import MicroProgram
from repro.microcode.isa import MicroOpKind


@dataclasses.dataclass(frozen=True)
class AnalogTiming:
    """Latencies of the analog primitives, in nanoseconds.

    AAP (activate-activate-precharge) copies one row to another through
    the row buffer; TRA activates three rows simultaneously, leaving the
    majority value in all three.  Values follow the Ambit-style costs of
    roughly two and one-and-a-half row cycles respectively.
    """

    aap_ns: float = 80.0
    tra_ns: float = 49.0

    def __post_init__(self) -> None:
        if self.aap_ns <= 0 or self.tra_ns <= 0:
            raise ValueError("analog primitive latencies must be positive")


@dataclasses.dataclass(frozen=True)
class AnalogCost:
    """Primitive counts of an analog microprogram."""

    num_aaps: int = 0
    num_tras: int = 0
    num_popcount_rows: int = 0

    def __add__(self, other: "AnalogCost") -> "AnalogCost":
        return AnalogCost(
            num_aaps=self.num_aaps + other.num_aaps,
            num_tras=self.num_tras + other.num_tras,
            num_popcount_rows=self.num_popcount_rows + other.num_popcount_rows,
        )

    def scaled(self, factor: int) -> "AnalogCost":
        return AnalogCost(
            num_aaps=self.num_aaps * factor,
            num_tras=self.num_tras * factor,
            num_popcount_rows=self.num_popcount_rows * factor,
        )

    def latency_ns(self, timing: "AnalogTiming | None" = None,
                   popcount_ns: float = 0.0) -> float:
        timing = timing or AnalogTiming()
        return (
            self.num_aaps * timing.aap_ns
            + self.num_tras * timing.tra_ns
            + self.num_popcount_rows * popcount_ns
        )


#: Expansion of each digital micro-op into analog primitives.
#:
#: Row reads/writes become one AAP (the "register" bit rows of the digital
#: device map onto reserved compute rows).  Two-input gates cost staging
#: copies of both operands plus the constant row, one TRA, and a result
#: copy.  XOR/XNOR compose from AND/OR/NOT; SEL from two ANDs, a NOT, and
#: an OR.  NOT routes through a dual-contact row (copy in, copy out).
_EXPANSIONS = {
    MicroOpKind.READ_ROW: AnalogCost(num_aaps=1),
    MicroOpKind.WRITE_ROW: AnalogCost(num_aaps=1),
    MicroOpKind.SET: AnalogCost(num_aaps=1),  # copy from a constant row
    MicroOpKind.MOVE: AnalogCost(num_aaps=1),
    MicroOpKind.NOT: AnalogCost(num_aaps=2),  # through the DCC row
    MicroOpKind.AND: AnalogCost(num_aaps=4, num_tras=1),
    MicroOpKind.OR: AnalogCost(num_aaps=4, num_tras=1),
    MicroOpKind.XOR: AnalogCost(num_aaps=13, num_tras=3),
    MicroOpKind.XNOR: AnalogCost(num_aaps=15, num_tras=3),
    MicroOpKind.SEL: AnalogCost(num_aaps=14, num_tras=3),
    MicroOpKind.POPCOUNT_ROW: AnalogCost(num_popcount_rows=1),
}


def translate_program(program: MicroProgram) -> AnalogCost:
    """Expand a digital microprogram into analog primitive counts."""
    total = AnalogCost()
    for op in program.ops:
        total = total + _EXPANSIONS[op.kind]
    return total


class TraSimulator:
    """Functional simulator of the analog substrate (rows only).

    Rows are boolean lanes; a handful of reserved rows exist: two
    constants (all-0, all-1), one dual-contact pair for NOT, and the
    compute rows TRA operates on.  Used to validate the MAJ-based
    constructions against digital semantics.
    """

    def __init__(self, num_rows: int, num_lanes: int) -> None:
        if num_rows <= 0 or num_lanes <= 0:
            raise ValueError("num_rows and num_lanes must be positive")
        self.rows = np.zeros((num_rows, num_lanes), dtype=bool)
        self.zero_row = np.zeros(num_lanes, dtype=bool)
        self.one_row = np.ones(num_lanes, dtype=bool)
        self.num_aaps = 0
        self.num_tras = 0

    def aap(self, src: int, dst: int) -> None:
        """Row-to-row copy through the row buffer."""
        self.rows[dst] = self.rows[src].copy()
        self.num_aaps += 1

    def aap_constant(self, value: int, dst: int) -> None:
        self.rows[dst] = (self.one_row if value else self.zero_row).copy()
        self.num_aaps += 1

    def tra(self, row_a: int, row_b: int, row_c: int) -> None:
        """Triple row activation: all three rows end up holding MAJ."""
        majority = (
            self.rows[row_a].astype(np.int8)
            + self.rows[row_b]
            + self.rows[row_c]
        ) >= 2
        self.rows[row_a] = majority.copy()
        self.rows[row_b] = majority.copy()
        self.rows[row_c] = majority.copy()
        self.num_tras += 1

    def dcc_not(self, src: int, dst: int) -> None:
        """NOT via the dual-contact cell row (two row cycles)."""
        self.rows[dst] = ~self.rows[src]
        self.num_aaps += 2

    # -- MAJ-based logic constructions (operands in rows a, b; scratch
    # rows t0..t2; result left in t0) --------------------------------------

    def and_rows(self, a: int, b: int, t0: int, t1: int, t2: int) -> None:
        self.aap(a, t0)
        self.aap(b, t1)
        self.aap_constant(0, t2)
        self.tra(t0, t1, t2)

    def or_rows(self, a: int, b: int, t0: int, t1: int, t2: int) -> None:
        self.aap(a, t0)
        self.aap(b, t1)
        self.aap_constant(1, t2)
        self.tra(t0, t1, t2)

    def full_adder_rows(
        self, a: int, b: int, carry: int, scratch: "tuple[int, ...]"
    ) -> None:
        """Computes sum into scratch[0] and the new carry into ``carry``.

        Uses the MAJ identities of the module docstring; needs six scratch
        rows.
        """
        s0, s1, s2, s3, s4, s5 = scratch
        # Cout = MAJ(a, b, cin): stage copies so the operands survive.
        self.aap(a, s0)
        self.aap(b, s1)
        self.aap(carry, s2)
        self.tra(s0, s1, s2)  # s0 holds Cout
        # MAJ(a, b, NOT cin)
        self.aap(a, s1)
        self.aap(b, s3)
        self.dcc_not(carry, s4)
        self.tra(s1, s3, s4)  # s1 holds MAJ(a, b, ~cin)
        # S = MAJ(NOT Cout, MAJ(a,b,~cin), cin)
        self.dcc_not(s0, s5)
        self.aap(carry, s3)
        self.tra(s5, s1, s3)  # s5 (and s1, s3) hold the sum
        # Publish results: carry first (s0 still holds Cout), then the sum.
        self.aap(s0, carry)
        self.aap(s5, scratch[0])
