"""Bit-serial microcode: ISA, assembler, programs, simulator, and tools."""

from repro.microcode.analog import (
    AnalogCost,
    AnalogTiming,
    TraSimulator,
    translate_program,
)
from repro.microcode.assembler import Assembler, MicroProgram, Operand
from repro.microcode.disasm import cost_table, disassemble, format_micro_op
from repro.microcode.optimizer import OptimizationReport, optimize, report
from repro.microcode.isa import MicroOp, MicroOpKind, MicroProgramCost, cost_of
from repro.microcode.programs import get_program
from repro.microcode.simulator import (
    BitSliceSimulator,
    run_binary_op,
    run_reduction,
    run_unary_op,
)

__all__ = [
    "AnalogCost",
    "AnalogTiming",
    "TraSimulator",
    "translate_program",
    "cost_table",
    "disassemble",
    "format_micro_op",
    "OptimizationReport",
    "optimize",
    "report",
    "Assembler",
    "MicroProgram",
    "Operand",
    "MicroOp",
    "MicroOpKind",
    "MicroProgramCost",
    "cost_of",
    "get_program",
    "BitSliceSimulator",
    "run_binary_op",
    "run_reduction",
    "run_unary_op",
]
