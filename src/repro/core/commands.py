"""The PIM command set.

High- and low-level PIM operations are abstracted as commands executed on
PIM cores (Section V-A).  Each command kind knows its operand arity, its
ALU cost class on the bit-parallel architectures, and the operation
category used by the paper's operation-mix analysis (Figure 8).
"""

from __future__ import annotations

import dataclasses
import enum


class OpCategory(enum.Enum):
    """Figure 8 legend: operation categories for the mix analysis."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    BIT_SHIFT = "bit shift"
    MAX = "max"
    MIN = "min"
    OR = "or"
    AND = "and"
    XOR = "xor"
    LESS = "less"
    EQ = "eq"
    REDUCTION = "reduction"
    BROADCAST = "broadcast"
    POPCOUNT = "popcount"
    ABS = "abs"


@dataclasses.dataclass(frozen=True)
class CmdSpec:
    """Static properties of one command kind."""

    num_vector_inputs: int
    has_scalar: bool
    produces_bool: bool
    produces_scalar: bool
    category: OpCategory
    microprogram: str  # name in repro.microcode.programs
    alu_cycles: int  # per-element ALU cycles on Fulcrum (32-bit words)
    bank_alu_cycles: int  # per-word cycles on the bank-level ALPU


class PimCmdKind(enum.Enum):
    """All high-level PIM API commands the simulator models."""

    ADD = CmdSpec(2, False, False, False, OpCategory.ADD, "add", 1, 1)
    SUB = CmdSpec(2, False, False, False, OpCategory.SUB, "sub", 1, 1)
    MUL = CmdSpec(2, False, False, False, OpCategory.MUL, "mul", 1, 1)
    AND = CmdSpec(2, False, False, False, OpCategory.AND, "and", 1, 1)
    OR = CmdSpec(2, False, False, False, OpCategory.OR, "or", 1, 1)
    XOR = CmdSpec(2, False, False, False, OpCategory.XOR, "xor", 1, 1)
    XNOR = CmdSpec(2, False, False, False, OpCategory.XOR, "xnor", 1, 1)
    NOT = CmdSpec(1, False, False, False, OpCategory.XOR, "not", 1, 1)
    LT = CmdSpec(2, False, True, False, OpCategory.LESS, "lt", 1, 1)
    GT = CmdSpec(2, False, True, False, OpCategory.LESS, "gt", 1, 1)
    EQ = CmdSpec(2, False, True, False, OpCategory.EQ, "eq", 1, 1)
    NE = CmdSpec(2, False, True, False, OpCategory.EQ, "ne", 1, 1)
    MIN = CmdSpec(2, False, False, False, OpCategory.MIN, "min", 1, 1)
    MAX = CmdSpec(2, False, False, False, OpCategory.MAX, "max", 1, 1)
    ABS = CmdSpec(1, False, False, False, OpCategory.ABS, "abs", 1, 1)
    POPCOUNT = CmdSpec(1, False, False, False, OpCategory.POPCOUNT, "popcount", 12, 1)
    SHIFT_LEFT = CmdSpec(1, True, False, False, OpCategory.BIT_SHIFT, "shift_left", 1, 1)
    SHIFT_RIGHT = CmdSpec(1, True, False, False, OpCategory.BIT_SHIFT, "shift_right", 1, 1)
    ADD_SCALAR = CmdSpec(1, True, False, False, OpCategory.ADD, "add_scalar", 1, 1)
    SUB_SCALAR = CmdSpec(1, True, False, False, OpCategory.SUB, "add_scalar", 1, 1)
    MUL_SCALAR = CmdSpec(1, True, False, False, OpCategory.MUL, "mul_scalar", 1, 1)
    EQ_SCALAR = CmdSpec(1, True, True, False, OpCategory.EQ, "eq_scalar", 1, 1)
    LT_SCALAR = CmdSpec(1, True, True, False, OpCategory.LESS, "lt", 1, 1)
    GT_SCALAR = CmdSpec(1, True, True, False, OpCategory.LESS, "gt", 1, 1)
    MIN_SCALAR = CmdSpec(1, True, False, False, OpCategory.MIN, "min", 1, 1)
    MAX_SCALAR = CmdSpec(1, True, False, False, OpCategory.MAX, "max", 1, 1)
    SAT_ADD_SCALAR = CmdSpec(1, True, False, False, OpCategory.ADD,
                             "sat_add_scalar", 2, 2)
    AND_SCALAR = CmdSpec(1, True, False, False, OpCategory.AND, "and_scalar", 1, 1)
    OR_SCALAR = CmdSpec(1, True, False, False, OpCategory.OR, "or_scalar", 1, 1)
    XOR_SCALAR = CmdSpec(1, True, False, False, OpCategory.XOR, "xor_scalar", 1, 1)
    SCALED_ADD = CmdSpec(2, True, False, False, OpCategory.MUL, "scaled_add", 2, 2)
    SELECT = CmdSpec(3, False, False, False, OpCategory.AND, "select", 1, 1)
    COPY = CmdSpec(1, False, False, False, OpCategory.BROADCAST, "copy", 1, 1)
    BROADCAST = CmdSpec(0, True, False, False, OpCategory.BROADCAST, "broadcast", 1, 1)
    REDSUM = CmdSpec(1, False, False, True, OpCategory.REDUCTION, "redsum", 1, 1)

    # ``spec``, ``category`` and ``api_name`` are plain attributes stamped
    # onto every member right after the class body (below), not properties:
    # the hot command path reads them on every issue, and a property would
    # re-run its body each time for what is a constant per member.
    spec: CmdSpec
    category: OpCategory
    api_name: str


for _kind in PimCmdKind:
    _kind.spec = _kind.value
    _kind.category = _kind.value.category
    # The lowercase name used in stats reports (e.g. ``add``).
    _kind.api_name = _kind.name.lower()
del _kind


# Scalar-comparison kinds piggyback on the two-operand compare microprograms
# by broadcasting the scalar; their bit-serial cost uses the scalar-aware
# variants where one exists.
SCALAR_COMPARE_KINDS = (
    PimCmdKind.LT_SCALAR,
    PimCmdKind.GT_SCALAR,
    PimCmdKind.MIN_SCALAR,
    PimCmdKind.MAX_SCALAR,
)


@dataclasses.dataclass(frozen=True)
class CommandTrace:
    """One executed command, as recorded by the stats tracker."""

    kind: PimCmdKind
    dtype_bits: int
    num_elements: int
    latency_ns: float
    energy_nj: float
    background_energy_nj: float = 0.0
