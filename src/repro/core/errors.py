"""Exception hierarchy of the PIMeval reproduction."""

from __future__ import annotations


class PimError(Exception):
    """Base class for all simulator errors."""


class PimAllocationError(PimError):
    """Device memory could not satisfy an allocation request."""


class PimInvalidObjectError(PimError):
    """An object id does not name a live PIM data object."""


class PimTypeError(PimError):
    """Operand data types or shapes are incompatible with a command."""


class PimConfigError(PimError):
    """A device configuration is internally inconsistent."""
