"""Coded exception hierarchy and failure taxonomy of the PIMeval reproduction.

Every simulator error carries a :class:`PimStatus` code (mirroring the
``PimStatus`` return codes of the PIMeval C API) plus a machine-readable
``context`` dict with the facts a caller needs to act on the failure --
the offending object id, bytes requested vs. available, the command that
was being executed.  ``str(exc)`` stays a plain human-readable message;
``exc.to_dict()`` is the structured form the resilience layer persists in
failure reports.

The module also defines the *failure taxonomy* the experiment engine
uses to classify why a suite cell died (:class:`FailureKind`) and the
:func:`classify_exception` helper that maps an arbitrary exception onto
it.  See ``docs/RESILIENCE.md`` for the full contract.
"""

from __future__ import annotations

import enum
import typing


class PimStatus(enum.Enum):
    """Machine-readable status codes, PimStatus-style.

    ``OK`` exists so APIs can report success and failure uniformly; every
    exception class below pins one of the error codes.
    """

    OK = "ok"
    ERR_ALLOC = "err_alloc"
    ERR_INVALID_OBJECT = "err_invalid_object"
    ERR_TYPE = "err_type"
    ERR_CONFIG = "err_config"
    ERR_STATE = "err_state"
    ERR_TIMEOUT = "err_timeout"
    ERR_WORKER_CRASH = "err_worker_crash"
    ERR_FAULT_INJECTED = "err_fault_injected"
    ERR_RUNTIME = "err_runtime"


class FailureKind(enum.Enum):
    """Why a unit of work (a suite cell, a command) ultimately failed.

    The taxonomy the engine's failure summary and the fault campaign
    report are bucketed by:

    * ``ERROR`` -- the simulation raised (a bug, a bad configuration, an
      injected exception); deterministic unless proven otherwise.
    * ``TIMEOUT`` -- the cell exceeded its wall-clock budget.
    * ``CRASH`` -- the worker process died without raising (segfault,
      OOM kill, injected crash).
    * ``OOM`` -- the simulation raised :class:`MemoryError`.
    * ``SKIPPED`` -- never attempted because ``--fail-fast`` stopped the
      run after an earlier failure.
    """

    ERROR = "error"
    TIMEOUT = "timeout"
    CRASH = "crash"
    OOM = "oom"
    SKIPPED = "skipped"

    @property
    def transient(self) -> bool:
        """Whether a retry has a plausible chance of succeeding.

        Timeouts, crashes, and OOM kills are environment-dependent
        (machine load, co-tenant memory pressure); plain errors usually
        reproduce, but the retry policy may still elect to retry them.
        """
        return self in (FailureKind.TIMEOUT, FailureKind.CRASH, FailureKind.OOM)


class PimError(Exception):
    """Base class for all simulator errors.

    ``context`` keyword arguments become the structured payload::

        raise PimAllocationError(
            "cannot allocate 128 rows",
            rows_requested=128, rows_available=37,
        )
    """

    status: PimStatus = PimStatus.ERR_RUNTIME

    def __init__(self, message: str = "", **context: typing.Any) -> None:
        super().__init__(message)
        self.context: "dict[str, typing.Any]" = context

    @property
    def message(self) -> str:
        return self.args[0] if self.args else ""

    def __str__(self) -> str:
        base = self.message
        if not self.context:
            return base
        details = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
        return f"{base} [{details}]"

    def to_dict(self) -> "dict[str, typing.Any]":
        """JSON-friendly structured form (status code + context)."""
        return {
            "status": self.status.value,
            "type": type(self).__name__,
            "message": self.message,
            "context": dict(self.context),
        }


class PimAllocationError(PimError):
    """Device memory could not satisfy an allocation request.

    Context keys (when known): ``num_elements``, ``bits``,
    ``bytes_requested``, ``bytes_available``, ``rows_requested``,
    ``rows_in_use``, ``rows_total``, ``obj_id``.
    """

    status = PimStatus.ERR_ALLOC


class PimInvalidObjectError(PimError):
    """An object id does not name a live PIM data object.

    Context keys: ``obj_id``.
    """

    status = PimStatus.ERR_INVALID_OBJECT


class PimTypeError(PimError):
    """Operand data types or shapes are incompatible with a command.

    Context keys (when known): ``command``, ``expected``, ``actual``.
    """

    status = PimStatus.ERR_TYPE


class PimConfigError(PimError):
    """A device configuration is internally inconsistent."""

    status = PimStatus.ERR_CONFIG


class PimStateError(PimError):
    """An API call arrived in a state that cannot serve it (e.g. no
    current device)."""

    status = PimStatus.ERR_STATE


class PimTimeoutError(PimError):
    """A unit of work exceeded its wall-clock budget."""

    status = PimStatus.ERR_TIMEOUT


class PimWorkerCrashError(PimError):
    """A worker process died without raising a Python exception."""

    status = PimStatus.ERR_WORKER_CRASH


class PimFaultInjectionError(PimError):
    """An injected fault model deliberately aborted the work."""

    status = PimStatus.ERR_FAULT_INJECTED


def classify_exception(exc: BaseException) -> FailureKind:
    """Map an exception onto the failure taxonomy.

    Import-cycle-free by design (pure stdlib), so both the engine parent
    process and worker-side code can use it.
    """
    if isinstance(exc, MemoryError):
        return FailureKind.OOM
    if isinstance(exc, (TimeoutError, PimTimeoutError)):
        return FailureKind.TIMEOUT
    if isinstance(exc, PimWorkerCrashError):
        return FailureKind.CRASH
    # concurrent.futures raises BrokenExecutor/BrokenProcessPool when a
    # worker dies mid-task; recognize them structurally to avoid the
    # import at module scope.
    if type(exc).__name__ in ("BrokenProcessPool", "BrokenExecutor"):
        return FailureKind.CRASH
    return FailureKind.ERROR


def status_of(exc: BaseException) -> PimStatus:
    """The status code an arbitrary exception maps to."""
    if isinstance(exc, PimError):
        return exc.status
    kind = classify_exception(exc)
    return {
        FailureKind.TIMEOUT: PimStatus.ERR_TIMEOUT,
        FailureKind.CRASH: PimStatus.ERR_WORKER_CRASH,
    }.get(kind, PimStatus.ERR_RUNTIME)
