"""PIM data objects.

A PIM data object is a 1-D vector of fixed-width elements spanning 2-D
regions across many PIM cores (Section V-A).  Objects carry their layout
plan, their allocated row range, and -- in functional mode -- a host-side
numpy shadow of their contents that the functional engine operates on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config.device import PimDataType
from repro.core.errors import PimInvalidObjectError, PimTypeError
from repro.core.layout import ObjectLayout


@dataclasses.dataclass
class PimObject:
    """One live device allocation."""

    obj_id: int
    dtype: PimDataType
    layout: ObjectLayout
    row_start: int
    data: "np.ndarray | None" = None
    freed: bool = False

    @property
    def num_elements(self) -> int:
        return self.layout.num_elements

    @property
    def bits(self) -> int:
        return self.dtype.bits

    @property
    def nbytes(self) -> int:
        """Transfer size of the object's contents in bytes.

        Sub-byte types pack densely: a BOOL object moves as a bitmap
        (one bit per element), the format the filter-by-key benchmark's
        host gather walks.
        """
        return (self.num_elements * self.dtype.bits + 7) // 8

    def numpy_dtype(self) -> np.dtype:
        if self.dtype is PimDataType.BOOL:
            return np.dtype(bool)
        return np.dtype(self.dtype.numpy_name)

    def require_live(self) -> None:
        if self.freed:
            raise PimInvalidObjectError(f"object {self.obj_id} has been freed")

    def set_data(self, values: np.ndarray) -> None:
        """Install a host array as this object's functional contents."""
        self.require_live()
        values = np.asarray(values)
        if values.shape != (self.num_elements,):
            raise PimTypeError(
                f"object {self.obj_id} holds {self.num_elements} elements, "
                f"got array of shape {values.shape}"
            )
        self.data = values.astype(self.numpy_dtype(), copy=True)

    def require_data(self) -> np.ndarray:
        self.require_live()
        if self.data is None:
            raise PimTypeError(
                f"object {self.obj_id} has no functional data (analytic mode "
                "or never copied from host)"
            )
        return self.data
