"""PIM resource manager: object allocation, association, and tracking.

Implements Section V-A's resource manager: data objects are placed across
PIM cores at identical row offsets in every core, tracked by object id, and
freed back to a row allocator.  ``alloc_associated`` reproduces
``pimAllocAssociated``: the new object inherits the element count and core
assignment of a reference object so that element i of both objects lands
in the same core (and column, for vertical layouts).
"""

from __future__ import annotations

from repro.config.device import DeviceConfig, PimAllocType, PimDataType
from repro.core.errors import PimInvalidObjectError, PimTypeError
from repro.core.layout import ObjectLayout, RowAllocator, plan_layout
from repro.core.object import PimObject


class ResourceManager:
    """Allocation state of one PIM device."""

    def __init__(self, config: DeviceConfig, enforce_capacity: bool = True) -> None:
        self.config = config
        self.enforce_capacity = enforce_capacity
        self._rows = RowAllocator(config.rows_per_core, enforce_capacity)
        self._objects: "dict[int, PimObject]" = {}
        self._next_id = 1

    @property
    def num_live_objects(self) -> int:
        return len(self._objects)

    @property
    def rows_in_use(self) -> int:
        return self._rows.rows_in_use

    def get(self, obj_id: int) -> PimObject:
        obj = self._objects.get(obj_id)
        if obj is None:
            raise PimInvalidObjectError(
                f"no live object with id {obj_id}",
                obj_id=obj_id,
                num_live_objects=self.num_live_objects,
            )
        return obj

    def alloc(
        self,
        num_elements: int,
        dtype: PimDataType = PimDataType.INT32,
        layout: PimAllocType = PimAllocType.AUTO,
    ) -> PimObject:
        """Allocate a fresh object spread across all cores."""
        plan = plan_layout(
            self.config, num_elements, dtype.bits, layout,
            enforce_capacity=self.enforce_capacity,
        )
        obj_id = self._next_id
        row_start = self._rows.allocate(obj_id, plan.rows_per_core)
        self._next_id += 1
        obj = PimObject(obj_id=obj_id, dtype=dtype, layout=plan, row_start=row_start)
        self._objects[obj_id] = obj
        return obj

    def alloc_associated(
        self, ref: PimObject, dtype: "PimDataType | None" = None
    ) -> PimObject:
        """Allocate an object whose placement mirrors ``ref``.

        The new object has the same element count and the same per-core
        distribution, so element-wise commands touch matching cores.
        """
        ref.require_live()
        dtype = dtype or ref.dtype
        plan = plan_layout(
            self.config, ref.num_elements, dtype.bits, ref.layout.layout,
            enforce_capacity=self.enforce_capacity,
        )
        if plan.num_cores_used != ref.layout.num_cores_used:
            raise PimTypeError(
                "associated allocation changed the core assignment; "
                f"{plan.num_cores_used} vs {ref.layout.num_cores_used} cores"
            )
        obj_id = self._next_id
        row_start = self._rows.allocate(obj_id, plan.rows_per_core)
        self._next_id += 1
        obj = PimObject(obj_id=obj_id, dtype=dtype, layout=plan, row_start=row_start)
        self._objects[obj_id] = obj
        return obj

    def free(self, obj: PimObject) -> None:
        obj.require_live()
        self._rows.free(obj.obj_id)
        del self._objects[obj.obj_id]
        obj.freed = True
        obj.data = None

    def free_all(self) -> None:
        for obj in list(self._objects.values()):
            self.free(obj)

    def check_layout_compatible(self, *objects: PimObject) -> ObjectLayout:
        """Validate that element-wise operands share a layout; returns it."""
        if not objects:
            raise PimTypeError("no operands supplied")
        first = objects[0].layout
        for obj in objects[1:]:
            if obj.layout.num_elements != first.num_elements:
                raise PimTypeError(
                    f"operand element counts differ: {obj.layout.num_elements} "
                    f"vs {first.num_elements}"
                )
            if obj.layout.layout is not first.layout:
                raise PimTypeError("operand layouts differ (horizontal vs vertical)")
        return first
