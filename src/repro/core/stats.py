"""Statistics tracking: the numbers Listing 3 reports.

The tracker aggregates, per simulated run: data-copy bytes/latency/energy
in each direction, per-command counts with estimated runtime and energy,
background energy, and host-kernel time/energy for PIM+Host benchmarks.
Latencies accumulate in nanoseconds and energies in nanojoules internally;
reports convert to the paper's ms / mJ units.
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing
from collections import OrderedDict

from repro.core.commands import PimCmdKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.events import EventBus

#: Copy-direction name -> StatsTracker attribute holding its bucket.
COPY_DIRECTIONS = {
    "h2d": "host_to_device",
    "d2h": "device_to_host",
    "d2d": "device_to_device",
}


@dataclasses.dataclass
class CmdStats:
    """Accumulated cost of one command signature (e.g. ``add.int32.v``)."""

    count: int = 0
    latency_ns: float = 0.0
    energy_nj: float = 0.0

    def record(self, latency_ns: float, energy_nj: float, count: int = 1) -> None:
        self.count += count
        self.latency_ns += latency_ns
        self.energy_nj += energy_nj


@dataclasses.dataclass(frozen=True)
class EventCounts:
    """Physical-event census: what the modeled hardware actually did.

    Accumulated from the performance models' cost records; the basis of
    the per-benchmark activity analysis (row activations dominate
    bit-serial energy, GDL traffic exposes the bank-level bottleneck).
    """

    row_activations: float = 0.0
    lane_logic_ops: float = 0.0
    alu_word_ops: float = 0.0
    walker_bits: float = 0.0
    gdl_bits: float = 0.0

    def __add__(self, other: "EventCounts") -> "EventCounts":
        return EventCounts(
            row_activations=self.row_activations + other.row_activations,
            lane_logic_ops=self.lane_logic_ops + other.lane_logic_ops,
            alu_word_ops=self.alu_word_ops + other.alu_word_ops,
            walker_bits=self.walker_bits + other.walker_bits,
            gdl_bits=self.gdl_bits + other.gdl_bits,
        )

    def __sub__(self, other: "EventCounts") -> "EventCounts":
        return EventCounts(
            row_activations=self.row_activations - other.row_activations,
            lane_logic_ops=self.lane_logic_ops - other.lane_logic_ops,
            alu_word_ops=self.alu_word_ops - other.alu_word_ops,
            walker_bits=self.walker_bits - other.walker_bits,
            gdl_bits=self.gdl_bits - other.gdl_bits,
        )

    def scaled(self, factor: float) -> "EventCounts":
        return EventCounts(
            row_activations=self.row_activations * factor,
            lane_logic_ops=self.lane_logic_ops * factor,
            alu_word_ops=self.alu_word_ops * factor,
            walker_bits=self.walker_bits * factor,
            gdl_bits=self.gdl_bits * factor,
        )


@dataclasses.dataclass
class CopyStats:
    """Data-movement accounting for one direction."""

    num_bytes: int = 0
    latency_ns: float = 0.0
    energy_nj: float = 0.0

    def record(self, num_bytes: int, latency_ns: float, energy_nj: float) -> None:
        self.num_bytes += num_bytes
        self.latency_ns += latency_ns
        self.energy_nj += energy_nj


@dataclasses.dataclass
class RecordedTrace:
    """A replayable sub-trace: the ``record_*`` calls one code region made.

    Captured by :meth:`StatsTracker.recorded_trace` and re-applied by
    :meth:`StatsTracker.replay_trace`.  Replaying dispatches the *same
    method calls with the same arguments in the same order*, so the
    accumulators advance through the identical sequence of float
    operations -- and an attached bus sees the identical event stream --
    as re-running the region.  Benchmarks whose analytic inner loops
    repeat an identical command sequence (AES mix-columns per column,
    k-means per iteration, histogram per channel) record one repetition
    and replay the rest.
    """

    entries: "list[tuple[str, tuple]]" = dataclasses.field(
        default_factory=list
    )

    def __len__(self) -> int:
        return len(self.entries)


class StatsTracker:
    """Mutable statistics store attached to a device.

    ``bus`` is the optional observability hook: when an
    :class:`repro.obs.events.EventBus` is attached, every recorded
    command/copy/host kernel is also published as an event on the
    simulated timeline.  When ``bus`` is ``None`` (the default) the only
    cost is one attribute check per record call.
    """

    def __init__(self, bus: "EventBus | None" = None) -> None:
        self.bus = bus
        self.commands: "OrderedDict[str, CmdStats]" = OrderedDict()
        self.op_counts: "dict[PimCmdKind, int]" = {}
        self.host_to_device = CopyStats()
        self.device_to_host = CopyStats()
        self.device_to_device = CopyStats()
        self.background_energy_nj = 0.0
        self.host_time_ns = 0.0
        self.host_energy_nj = 0.0
        self.events = EventCounts()
        self._recording: "list[tuple[str, tuple]] | None" = None

    # -- recording ----------------------------------------------------------

    def record_command(
        self,
        kind: PimCmdKind,
        signature: str,
        latency_ns: float,
        energy_nj: float,
        background_energy_nj: float = 0.0,
        count: int = 1,
        events: "EventCounts | None" = None,
    ) -> None:
        self.commands.setdefault(signature, CmdStats()).record(
            latency_ns, energy_nj, count
        )
        self.op_counts[kind] = self.op_counts.get(kind, 0) + count
        self.background_energy_nj += background_energy_nj
        if events is not None:
            self.events = self.events + events
        bus = self.bus
        if bus is not None:
            args = {"count": count, "energy_nj": energy_nj}
            if events is not None:
                args.update(
                    row_activations=events.row_activations,
                    lane_logic_ops=events.lane_logic_ops,
                    alu_word_ops=events.alu_word_ops,
                    walker_bits=events.walker_bits,
                    gdl_bits=events.gdl_bits,
                )
            bus.emit_complete(signature, "command", latency_ns, args)
        if self._recording is not None:
            self._recording.append((
                "record_command",
                (kind, signature, latency_ns, energy_nj,
                 background_energy_nj, count, events),
            ))

    def record_command_batch(
        self,
        kind: PimCmdKind,
        signature: str,
        latency_ns: float,
        energy_nj: float,
        background_energy_nj: float = 0.0,
        count: int = 1,
        events: "EventCounts | None" = None,
    ) -> None:
        """Bill ``count`` back-to-back issues of one command.

        The per-issue arguments are the same a single
        :meth:`record_command` call takes; the accumulators advance by
        iterated addition -- the *same* float operations ``count``
        individual calls would perform -- so the totals are
        bit-identical to the per-call loop (``a + a + a`` is not
        ``3 * a`` at float precision).  That makes this path a drop-in
        batching of existing loops, unlike ``record_command``'s
        pre-multiplied ``repeat`` billing.  The bucket/dict lookups and
        event-census objects are paid once; an attached bus still gets
        one event per issue, preserving the pre-batching stream.
        """
        stats = self.commands.setdefault(signature, CmdStats())
        stats.count += count
        bucket_latency = stats.latency_ns
        bucket_energy = stats.energy_nj
        background = self.background_energy_nj
        for _ in range(count):
            bucket_latency += latency_ns
            bucket_energy += energy_nj
            background += background_energy_nj
        stats.latency_ns = bucket_latency
        stats.energy_nj = bucket_energy
        self.background_energy_nj = background
        self.op_counts[kind] = self.op_counts.get(kind, 0) + count
        if events is not None:
            row = self.events.row_activations
            lane = self.events.lane_logic_ops
            alu = self.events.alu_word_ops
            walker = self.events.walker_bits
            gdl = self.events.gdl_bits
            for _ in range(count):
                row += events.row_activations
                lane += events.lane_logic_ops
                alu += events.alu_word_ops
                walker += events.walker_bits
                gdl += events.gdl_bits
            self.events = EventCounts(
                row_activations=row,
                lane_logic_ops=lane,
                alu_word_ops=alu,
                walker_bits=walker,
                gdl_bits=gdl,
            )
        bus = self.bus
        if bus is not None:
            args = {"count": 1, "energy_nj": energy_nj}
            if events is not None:
                args.update(
                    row_activations=events.row_activations,
                    lane_logic_ops=events.lane_logic_ops,
                    alu_word_ops=events.alu_word_ops,
                    walker_bits=events.walker_bits,
                    gdl_bits=events.gdl_bits,
                )
            for _ in range(count):
                bus.emit_complete(signature, "command", latency_ns, dict(args))
        if self._recording is not None:
            self._recording.append((
                "record_command_batch",
                (kind, signature, latency_ns, energy_nj,
                 background_energy_nj, count, events),
            ))

    def record_copy(
        self, direction: str, num_bytes: int, latency_ns: float, energy_nj: float
    ) -> None:
        attr = COPY_DIRECTIONS.get(direction)
        if attr is None:
            raise ValueError(f"unknown copy direction {direction!r}")
        getattr(self, attr).record(num_bytes, latency_ns, energy_nj)
        bus = self.bus
        if bus is not None:
            bus.emit_complete(
                f"copy.{direction}", "copy", latency_ns,
                {"direction": direction, "bytes": num_bytes,
                 "energy_nj": energy_nj},
            )
        if self._recording is not None:
            self._recording.append(
                ("record_copy", (direction, num_bytes, latency_ns, energy_nj))
            )

    def record_host(
        self, time_ns: float, energy_nj: float, label: str = "kernel"
    ) -> None:
        self.host_time_ns += time_ns
        self.host_energy_nj += energy_nj
        bus = self.bus
        if bus is not None:
            bus.emit_complete(
                f"host.{label}", "host", time_ns, {"energy_nj": energy_nj}
            )
        if self._recording is not None:
            self._recording.append(
                ("record_host", (time_ns, energy_nj, label))
            )

    # -- trace record / replay ----------------------------------------------

    @contextlib.contextmanager
    def recorded_trace(self) -> "typing.Iterator[RecordedTrace]":
        """Capture every ``record_*`` call made inside the ``with`` body.

        The recorded pass itself is billed normally; the returned
        :class:`RecordedTrace` can then be re-applied with
        :meth:`replay_trace`.  Recording does not nest.
        """
        if self._recording is not None:
            raise RuntimeError("a stats trace is already being recorded")
        trace = RecordedTrace()
        self._recording = trace.entries
        try:
            yield trace
        finally:
            self._recording = None

    def replay_trace(self, trace: RecordedTrace, times: int = 1) -> None:
        """Re-apply a recorded trace ``times`` more times.

        Dispatches each captured call back through the same ``record_*``
        method, so totals, per-signature tables, the event census, and
        any attached bus's event stream are bit-identical to running
        the recorded region ``times`` more times.
        """
        if times < 0:
            raise ValueError(f"times must be >= 0, got {times}")
        if self._recording is not None:
            raise RuntimeError("cannot replay while recording a trace")
        for _ in range(times):
            for method_name, args in trace.entries:
                getattr(self, method_name)(*args)

    def reset(self) -> None:
        """Zero every accumulator; the attached bus (if any) is kept."""
        self.commands.clear()
        self.op_counts.clear()
        self.host_to_device = CopyStats()
        self.device_to_host = CopyStats()
        self.device_to_device = CopyStats()
        self.background_energy_nj = 0.0
        self.host_time_ns = 0.0
        self.host_energy_nj = 0.0
        self.events = EventCounts()

    # -- aggregate views ------------------------------------------------------

    @property
    def kernel_time_ns(self) -> float:
        """Total modeled PIM-kernel latency."""
        return sum(stats.latency_ns for stats in self.commands.values())

    @property
    def kernel_energy_nj(self) -> float:
        """Total modeled PIM-kernel energy, excluding background."""
        return sum(stats.energy_nj for stats in self.commands.values())

    @property
    def copy_time_ns(self) -> float:
        return (
            self.host_to_device.latency_ns
            + self.device_to_host.latency_ns
            + self.device_to_device.latency_ns
        )

    @property
    def copy_energy_nj(self) -> float:
        return (
            self.host_to_device.energy_nj
            + self.device_to_host.energy_nj
            + self.device_to_device.energy_nj
        )

    @property
    def copy_bytes(self) -> int:
        return (
            self.host_to_device.num_bytes
            + self.device_to_host.num_bytes
            + self.device_to_device.num_bytes
        )

    @property
    def total_command_count(self) -> int:
        return sum(stats.count for stats in self.commands.values())

    def snapshot(self) -> "StatsSnapshot":
        """Freeze the current totals (used by benchmark phase accounting)."""
        return StatsSnapshot(
            kernel_time_ns=self.kernel_time_ns,
            kernel_energy_nj=self.kernel_energy_nj,
            copy_time_ns=self.copy_time_ns,
            copy_energy_nj=self.copy_energy_nj,
            copy_bytes=self.copy_bytes,
            background_energy_nj=self.background_energy_nj,
            host_time_ns=self.host_time_ns,
            host_energy_nj=self.host_energy_nj,
            events=self.events,
        )


@dataclasses.dataclass(frozen=True)
class StatsSnapshot:
    """Immutable totals at one point in time; supports interval deltas."""

    kernel_time_ns: float = 0.0
    kernel_energy_nj: float = 0.0
    copy_time_ns: float = 0.0
    copy_energy_nj: float = 0.0
    copy_bytes: int = 0
    background_energy_nj: float = 0.0
    host_time_ns: float = 0.0
    host_energy_nj: float = 0.0
    events: EventCounts = dataclasses.field(default_factory=EventCounts)

    def __sub__(self, other: "StatsSnapshot") -> "StatsSnapshot":
        return StatsSnapshot(
            kernel_time_ns=self.kernel_time_ns - other.kernel_time_ns,
            kernel_energy_nj=self.kernel_energy_nj - other.kernel_energy_nj,
            copy_time_ns=self.copy_time_ns - other.copy_time_ns,
            copy_energy_nj=self.copy_energy_nj - other.copy_energy_nj,
            copy_bytes=self.copy_bytes - other.copy_bytes,
            background_energy_nj=self.background_energy_nj - other.background_energy_nj,
            host_time_ns=self.host_time_ns - other.host_time_ns,
            host_energy_nj=self.host_energy_nj - other.host_energy_nj,
            events=self.events - other.events,
        )

    @property
    def total_time_ns(self) -> float:
        return self.kernel_time_ns + self.copy_time_ns + self.host_time_ns

    @property
    def total_energy_nj(self) -> float:
        return (
            self.kernel_energy_nj
            + self.copy_energy_nj
            + self.background_energy_nj
            + self.host_energy_nj
        )
