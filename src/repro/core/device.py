"""The PIM device: command execution, data movement, and accounting.

``PimDevice`` binds together the resource manager, the architecture's
performance model, and the energy model (the structure of Figure 5).  It
runs in one of two modes:

* *functional* -- objects carry numpy shadows and every command computes
  its real result (used by tests and examples; mirrors the artifact's
  functional-verification flow), and
* *analytic* -- objects are shape-only and commands only accrue modeled
  latency/energy (used to run the paper-scale workloads of the evaluation
  without materializing multi-gigabyte vectors).

Either way the modeled numbers are identical, because the performance
model depends only on the command trace and the operand layouts.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.config.device import (
    DeviceConfig,
    PimAllocType,
    PimDataType,
)
from repro.config.power import PowerConfig
from repro.core.commands import PimCmdKind
from repro.core.errors import PimTypeError
from repro.core.object import PimObject
from repro.core.resource import ResourceManager
from repro.core.stats import EventCounts, StatsTracker
from repro.energy.model import EnergyModel
from repro.perf import DataMovementModel, make_perf_model
from repro.perf.base import CommandArgs
from repro.perf.memo import CostPipeline


def _wrap_scalar(scalar: int, dtype: PimDataType):
    """Clamp a Python int into the dtype's range with wraparound."""
    bits = dtype.bits
    if dtype is PimDataType.BOOL:
        return bool(scalar)
    mask = (1 << bits) - 1
    value = int(scalar) & mask
    if dtype.signed and value >= 1 << (bits - 1):
        value -= 1 << bits
    return np.dtype(dtype.numpy_name).type(value)


def _popcount(values: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized per-element population count."""
    unsigned = values.astype(np.uint64) & np.uint64((1 << bits) - 1)
    counts = np.zeros(values.shape, dtype=np.uint64)
    for i in range(bits):
        counts += (unsigned >> np.uint64(i)) & np.uint64(1)
    return counts


class PimDevice:
    """One simulated PIM device instance."""

    def __init__(
        self,
        config: "DeviceConfig | None" = None,
        functional: bool = True,
        power: "PowerConfig | None" = None,
        enforce_capacity: bool = True,
        bus: "typing.Any | None" = None,
        faults: "typing.Any | None" = None,
        vector: bool = False,
    ) -> None:
        self.config = config or DeviceConfig()
        self.functional = functional
        self.vector = vector
        if vector:
            # Vector mode is analytic-only and unobserved: there is no
            # data path to compute with, no per-issue event stream to
            # publish, and no functional state for faults to corrupt
            # (see docs/VECTORIZATION.md "when the scalar path runs").
            if functional:
                raise PimTypeError("vector mode is analytic-only "
                                   "(functional=False required)")
            if bus is not None:
                raise PimTypeError("vector mode cannot stream per-issue "
                                   "events; attach no bus")
            if faults is not None:
                raise PimTypeError("vector mode has no functional data "
                                   "path for fault injection")
        self.resources = ResourceManager(self.config, enforce_capacity)
        self.perf = make_perf_model(self.config)
        self.energy = EnergyModel(self.config, power)
        # The memoized cost pipeline in front of the perf/energy models:
        # identical-shape commands pay the closed-form derivation once
        # (see docs/PERFORMANCE.md §5; REPRO_NO_COST_MEMO=1 disables).
        from repro.arch.registry import arch_for

        self._backend = arch_for(self.config)
        self.pipeline = CostPipeline(self.perf, self.energy, self._backend)
        # ``bus`` is an optional repro.obs EventBus: attaching one makes
        # every command/copy/host record also stream onto the simulated
        # timeline (see docs/OBSERVABILITY.md); None costs nothing.
        if vector:
            from repro.perf.vector import VectorStatsTracker

            self.stats: StatsTracker = VectorStatsTracker(
                pricer=self._price_shapes
            )
        else:
            self.stats = StatsTracker(bus)
        self._signatures: "dict[tuple, str]" = {}
        # Vector-mode call-site cache: maps a call's operand tokens
        # (plus kind/scalar) to its interned (shape, bucket, kind)
        # indices, so a hot loop's issue cost is liveness checks, one
        # dict hit, and one log append.  Tokens intern ``(layout,
        # dtype)`` pairs *by value* (ObjectLayout is a frozen
        # dataclass), so freshly allocated objects with the same
        # geometry reuse the site of every earlier equal-shaped call.
        self._vector_sites: "dict[tuple, tuple[int, int, int, bool]]" = {}
        self._vector_shapes: "dict[tuple, int]" = {}
        self._layout_tokens: "dict[tuple, int]" = {}
        self.data_movement = DataMovementModel(self.config)
        # ``faults`` is an optional repro.faults FaultInjector (or a
        # FaultPlan, wrapped here): seeded, deterministic corruption of
        # the functional data path (see docs/RESILIENCE.md); None costs
        # a single attribute check per hook site.
        if faults is not None and not hasattr(faults, "on_command_dest"):
            from repro.faults.injector import FaultInjector

            faults = FaultInjector(faults)
        self.faults = faults

    def attach_bus(self, bus) -> None:
        """Attach (or replace) the observability event bus."""
        if self.vector and bus is not None:
            raise PimTypeError(
                "vector mode cannot stream per-issue events; attach no bus"
            )
        self.stats.bus = bus

    def _price_shapes(self, shapes):
        """Vector-mode pricer: route the shape batch to the backend."""
        return self._backend.cost_table(self.pipeline, shapes)

    # -- allocation -----------------------------------------------------------

    def alloc(
        self,
        num_elements: int,
        dtype: PimDataType = PimDataType.INT32,
        layout: PimAllocType = PimAllocType.AUTO,
    ) -> PimObject:
        return self.resources.alloc(num_elements, dtype, layout)

    def alloc_associated(
        self, ref: PimObject, dtype: "PimDataType | None" = None
    ) -> PimObject:
        return self.resources.alloc_associated(ref, dtype)

    def free(self, obj: PimObject) -> None:
        self.resources.free(obj)

    # -- data movement ----------------------------------------------------------

    def copy_host_to_device(
        self, values: "np.ndarray | None", obj: PimObject, repeat: int = 1
    ) -> None:
        """Copy a host array into an object; ``values`` may be None in
        analytic mode (only the transfer is modeled).  ``repeat`` models
        that many back-to-back transfers of the same size (analytic bulk
        loops); the data is installed once."""
        obj.require_live()
        if self.functional:
            if values is None:
                raise PimTypeError("functional mode requires host data")
            obj.set_data(values)
            if self.faults is not None:
                self.faults.on_data_install(obj, self.stats.bus)
        num_bytes = obj.nbytes
        latency = self.data_movement.host_transfer_ns(num_bytes)
        energy = self.energy.transfer_energy_nj(num_bytes, "h2d")
        self.stats.record_copy(
            "h2d", num_bytes * repeat, latency * repeat, energy * repeat
        )

    def copy_device_to_host(
        self, obj: PimObject, repeat: int = 1
    ) -> "np.ndarray | None":
        """Copy an object's contents back; returns None in analytic mode."""
        obj.require_live()
        num_bytes = obj.nbytes
        latency = self.data_movement.host_transfer_ns(num_bytes)
        energy = self.energy.transfer_energy_nj(num_bytes, "d2h")
        self.stats.record_copy(
            "d2h", num_bytes * repeat, latency * repeat, energy * repeat
        )
        if self.functional:
            return obj.require_data().copy()
        return None

    def copy_device_to_device(
        self,
        src: PimObject,
        dst: PimObject,
        shift_elements: int = 0,
        pattern: str = "local",
    ) -> None:
        """Device-internal copy (data re-layout between kernels).

        ``shift_elements`` rotates the data by that many positions (the
        in-row shifted copies image kernels use); ``pattern`` selects the
        cost model: "local" for the massively parallel in-subarray row
        copy, "gather" for random inter-core movement serialized over the
        module's internal bus.
        """
        src.require_live()
        dst.require_live()
        if src.num_elements != dst.num_elements:
            raise PimTypeError(
                f"d2d copy size mismatch: {src.num_elements} vs {dst.num_elements}"
            )
        if self.functional:
            data = src.require_data()
            if shift_elements:
                data = np.roll(data, -shift_elements)
            dst.set_data(data.astype(dst.numpy_dtype()))
            if self.faults is not None:
                self.faults.on_data_install(dst, self.stats.bus)
        num_bytes = src.nbytes
        if pattern == "gather":
            latency = self.data_movement.device_gather_ns(num_bytes)
        elif pattern == "local":
            latency = self.data_movement.device_transfer_ns(num_bytes)
        else:
            raise PimTypeError(f"unknown d2d pattern {pattern!r}")
        energy = self.energy.transfer_energy_nj(num_bytes, "d2d")
        self.stats.record_copy("d2d", num_bytes, latency, energy)

    def model_gather(
        self, dst: PimObject, values: "np.ndarray | None" = None,
        num_bytes: "int | None" = None,
    ) -> None:
        """Model a random on-device gather materializing ``dst``.

        Used when the gather's source spans an object of different size
        (e.g. collecting adjacency rows for an edge batch out of a resident
        bitmap).  In functional mode the gathered ``values`` are installed
        directly; the movement is billed at the internal-bus rate.
        """
        dst.require_live()
        if self.functional:
            if values is None:
                raise PimTypeError("functional mode requires gathered values")
            dst.set_data(values)
            if self.faults is not None:
                self.faults.on_data_install(dst, self.stats.bus)
        moved = dst.nbytes if num_bytes is None else num_bytes
        latency = self.data_movement.device_gather_ns(moved)
        energy = self.energy.transfer_energy_nj(moved, "d2d")
        self.stats.record_copy("d2d", moved, latency, energy)

    # -- command execution ---------------------------------------------------

    def execute(
        self,
        kind: PimCmdKind,
        inputs: "typing.Sequence[PimObject]" = (),
        dest: "PimObject | None" = None,
        scalar: "int | None" = None,
        repeat: int = 1,
    ) -> "int | None":
        """Run one PIM command; returns the value for scalar-producing ones.

        ``repeat`` accounts for ``repeat`` back-to-back issues of the same
        command in one call (used by benchmarks whose inner loops would
        otherwise issue millions of identical commands); the functional
        result is computed once, the modeled cost ``repeat`` times.
        """
        if repeat < 1:
            raise PimTypeError(f"repeat must be >= 1, got {repeat}")
        if self.vector:
            return self._vector_issue(kind, inputs, dest, scalar, repeat,
                                      is_batch=False)
        spec, cost, energy, signature = self._prepare(kind, inputs, dest, scalar)
        self.stats.record_command(
            kind,
            signature,
            cost.latency_ns * repeat,
            energy.execution_nj * repeat,
            energy.background_nj * repeat,
            count=repeat,
            events=EventCounts(
                row_activations=cost.row_activations,
                lane_logic_ops=cost.lane_logic_ops,
                alu_word_ops=cost.alu_word_ops,
                walker_bits=cost.walker_bits,
                gdl_bits=cost.gdl_bits,
            ).scaled(repeat),
        )

        if self.functional:
            return self._functional_issue(kind, spec, inputs, dest, scalar, cost)
        if spec.produces_scalar:
            return 0
        return None

    def execute_batch(
        self,
        kind: PimCmdKind,
        inputs: "typing.Sequence[PimObject]" = (),
        dest: "PimObject | None" = None,
        scalar: "int | None" = None,
        count: int = 1,
    ) -> "int | None":
        """Issue the same command ``count`` times back to back.

        Equivalent -- in stats, energy, fault behaviour, and bus event
        stream -- to calling :meth:`execute` ``count`` times with the
        same arguments, but the validation, cost derivation, and stats
        bucket lookup happen once.  Unlike ``repeat=`` (which bills one
        multiplied record), each issue is billed individually, so the
        accumulated floats match the per-call loop bit for bit.  In
        functional mode every issue runs the full compute/fault path and
        the last issue's value is returned.
        """
        if count < 1:
            raise PimTypeError(f"count must be >= 1, got {count}")
        if self.vector:
            return self._vector_issue(kind, inputs, dest, scalar, count,
                                      is_batch=True)
        spec, cost, energy, signature = self._prepare(kind, inputs, dest, scalar)
        self.stats.record_command_batch(
            kind,
            signature,
            cost.latency_ns,
            energy.execution_nj,
            energy.background_nj,
            count=count,
            events=EventCounts(
                row_activations=cost.row_activations,
                lane_logic_ops=cost.lane_logic_ops,
                alu_word_ops=cost.alu_word_ops,
                walker_bits=cost.walker_bits,
                gdl_bits=cost.gdl_bits,
            ),
        )

        if self.functional:
            value: "int | None" = None
            for _ in range(count):
                value = self._functional_issue(
                    kind, spec, inputs, dest, scalar, cost
                )
            return value
        if spec.produces_scalar:
            return 0
        return None

    def _validate(self, kind, inputs, dest, scalar):
        """Validate one command's operands; returns its spec."""
        spec = kind.spec
        if len(inputs) != spec.num_vector_inputs:
            raise PimTypeError(
                f"{kind.name} takes {spec.num_vector_inputs} vector operands, "
                f"got {len(inputs)}"
            )
        if spec.has_scalar and scalar is None:
            raise PimTypeError(f"{kind.name} requires a scalar")
        if not spec.produces_scalar and dest is None:
            raise PimTypeError(f"{kind.name} requires a destination object")
        for obj in inputs:
            obj.require_live()
        if dest is not None:
            dest.require_live()
            self.resources.check_layout_compatible(
                *(list(inputs[-min(2, len(inputs)):]) + [dest])
                if inputs
                else [dest]
            )
        return spec

    def _prepare(self, kind, inputs, dest, scalar):
        """Validate one command and derive its (spec, cost, energy, signature)."""
        spec = self._validate(kind, inputs, dest, scalar)
        anchor = inputs[-1] if inputs else dest  # drives width/sign/signature
        args = CommandArgs(
            kind=kind,
            bits=anchor.bits,
            inputs=tuple(obj.layout for obj in inputs),
            dest=dest.layout if dest is not None else None,
            scalar=scalar,
            signed=anchor.dtype.signed,
        )
        cost, energy = self.pipeline.cost_and_energy(args)
        return spec, cost, energy, self._signature(kind, anchor)

    def _vector_issue(self, kind, inputs, dest, scalar, mult, is_batch):
        """Vector-mode issue: append to the shape histogram, price later.

        Every operand carries a cached small-int token interning its
        ``(layout, dtype)`` pair by value, so the steady-state cost of
        an issue is liveness checks, one dict hit, and one log append
        -- and a freshly allocated object with the geometry of an
        earlier one reuses its call site instead of re-validating.
        Validation and the memo-key derivation run once per distinct
        site; the interned shape indices key on the same tuple the
        scalar cost memo uses, so the histogram has exactly as many
        rows as the memo has shapes.  ``id(kind)`` is a sound key
        component because command kinds are enum singletons that live
        for the whole process.
        """
        tokens = self._layout_tokens
        in_toks = []
        for obj in inputs:
            obj.require_live()
            tok = getattr(obj, "_vector_token", None)
            if tok is None:
                # The layout and dtype are fixed for an object's whole
                # lifetime, so the token can live on the object itself.
                tok = tokens.setdefault((obj.layout, obj.dtype), len(tokens))
                obj._vector_token = tok
            in_toks.append(tok)
        if dest is not None:
            dest.require_live()
            dest_tok = getattr(dest, "_vector_token", None)
            if dest_tok is None:
                dest_tok = tokens.setdefault(
                    (dest.layout, dest.dtype), len(tokens)
                )
                dest._vector_token = dest_tok
        else:
            dest_tok = None
        site_key = (id(kind), scalar, tuple(in_toks), dest_tok)
        site = self._vector_sites.get(site_key)
        if site is None:
            site = self._vector_register(kind, inputs, dest, scalar)
            self._vector_sites[site_key] = site
        shape_idx, bucket_idx, kind_idx, produces_scalar = site
        self.stats.log_command(shape_idx, bucket_idx, kind_idx, mult, is_batch)
        if produces_scalar:
            return 0
        return None

    def _vector_register(self, kind, inputs, dest, scalar):
        """First issue from a call site: validate, intern, dedupe by shape."""
        spec = self._validate(kind, inputs, dest, scalar)
        anchor = inputs[-1] if inputs else dest
        args = CommandArgs(
            kind=kind,
            bits=anchor.bits,
            inputs=tuple(obj.layout for obj in inputs),
            dest=dest.layout if dest is not None else None,
            scalar=scalar,
            signed=anchor.dtype.signed,
        )
        shape_key = (
            args.kind,
            args.bits,
            args.signed,
            self._backend.cost_memo_param(args),
            args.inputs,
            args.dest,
        )
        shape_idx = self._vector_shapes.get(shape_key)
        if shape_idx is None:
            shape_idx = self.stats.register_shape(args)
            self._vector_shapes[shape_key] = shape_idx
        bucket_idx = self.stats.bucket_index(self._signature(kind, anchor))
        kind_idx = self.stats.kind_index(kind)
        return (shape_idx, bucket_idx, kind_idx, spec.produces_scalar)

    def _functional_issue(self, kind, spec, inputs, dest, scalar, cost):
        """One functional issue: fault gate, compute, destination faults."""
        faults = self.faults
        if faults is not None:
            bus = self.stats.bus
            if faults.drops_command(kind.api_name, bus):
                # The command was billed but never committed: the
                # destination keeps its stale contents, and a
                # scalar-producing command reports garbage (0).
                return 0 if spec.produces_scalar else None
            value = self._compute(kind, inputs, dest, scalar)
            if dest is not None:
                faults.on_command_dest(dest, cost.row_activations, bus)
            return value
        return self._compute(kind, inputs, dest, scalar)

    def _signature(self, kind: PimCmdKind, anchor: PimObject) -> str:
        key = (kind, anchor.dtype, anchor.layout.layout)
        signature = self._signatures.get(key)
        if signature is None:
            layout_letter = (
                "v" if anchor.layout.layout is PimAllocType.VERTICAL else "h"
            )
            signature = f"{kind.api_name}.{anchor.dtype.numpy_name}.{layout_letter}"
            self._signatures[key] = signature
        return signature

    # -- functional engine -----------------------------------------------------

    def _compute(
        self,
        kind: PimCmdKind,
        inputs: "typing.Sequence[PimObject]",
        dest: "PimObject | None",
        scalar: "int | None",
    ) -> "int | None":
        with np.errstate(over="ignore"):
            return self._compute_inner(kind, inputs, dest, scalar)

    def _compute_inner(
        self,
        kind: PimCmdKind,
        inputs: "typing.Sequence[PimObject]",
        dest: "PimObject | None",
        scalar: "int | None",
    ) -> "int | None":
        data = [obj.require_data() for obj in inputs]
        k = PimCmdKind

        if kind is k.BROADCAST:
            value = _wrap_scalar(scalar, dest.dtype)
            dest.data = np.full(dest.num_elements, value, dtype=dest.numpy_dtype())
            return None
        if kind is k.REDSUM:
            return int(np.sum(data[0], dtype=np.int64))

        if kind in (k.ADD, k.SUB, k.MUL, k.AND, k.OR, k.XOR, k.XNOR,
                    k.MIN, k.MAX, k.LT, k.GT, k.EQ, k.NE):
            a, b = data
            result = _BINARY_FUNCS[kind](a, b)
        elif kind is k.SELECT:
            cond, a, b = data
            result = np.where(cond.astype(bool), a, b)
        elif kind is k.SCALED_ADD:
            a, b = data
            factor = _wrap_scalar(scalar, inputs[0].dtype)
            result = a * factor + b
        elif kind is k.SAT_ADD_SCALAR:
            dtype_info = np.iinfo(inputs[0].numpy_dtype())
            widened = data[0].astype(np.int64) + int(scalar)
            result = np.clip(widened, dtype_info.min, dtype_info.max)
        elif kind in (k.ADD_SCALAR, k.SUB_SCALAR, k.MUL_SCALAR,
                      k.MIN_SCALAR, k.MAX_SCALAR, k.EQ_SCALAR,
                      k.LT_SCALAR, k.GT_SCALAR, k.AND_SCALAR,
                      k.OR_SCALAR, k.XOR_SCALAR):
            value = _wrap_scalar(scalar, inputs[0].dtype)
            result = _SCALAR_FUNCS[kind](data[0], value)
        elif kind is k.NOT:
            result = np.invert(data[0])
        elif kind is k.ABS:
            result = np.abs(data[0])
        elif kind is k.POPCOUNT:
            result = _popcount(data[0], inputs[0].bits)
        elif kind is k.COPY:
            result = data[0]
        elif kind is k.SHIFT_LEFT:
            result = np.left_shift(data[0], scalar)
        elif kind is k.SHIFT_RIGHT:
            result = np.right_shift(data[0], scalar)
        else:  # pragma: no cover - exhaustive over PimCmdKind
            raise NotImplementedError(f"functional engine lacks {kind}")

        dest.data = np.asarray(result).astype(dest.numpy_dtype())
        return None


_BINARY_FUNCS = {
    PimCmdKind.ADD: np.add,
    PimCmdKind.SUB: np.subtract,
    PimCmdKind.MUL: np.multiply,
    PimCmdKind.AND: np.bitwise_and,
    PimCmdKind.OR: np.bitwise_or,
    PimCmdKind.XOR: np.bitwise_xor,
    PimCmdKind.XNOR: lambda a, b: np.invert(np.bitwise_xor(a, b)),
    PimCmdKind.MIN: np.minimum,
    PimCmdKind.MAX: np.maximum,
    PimCmdKind.LT: np.less,
    PimCmdKind.GT: np.greater,
    PimCmdKind.EQ: np.equal,
    PimCmdKind.NE: np.not_equal,
}

_SCALAR_FUNCS = {
    PimCmdKind.ADD_SCALAR: np.add,
    PimCmdKind.SUB_SCALAR: np.subtract,
    PimCmdKind.MUL_SCALAR: np.multiply,
    PimCmdKind.MIN_SCALAR: np.minimum,
    PimCmdKind.MAX_SCALAR: np.maximum,
    PimCmdKind.EQ_SCALAR: np.equal,
    PimCmdKind.LT_SCALAR: np.less,
    PimCmdKind.GT_SCALAR: np.greater,
    PimCmdKind.AND_SCALAR: np.bitwise_and,
    PimCmdKind.OR_SCALAR: np.bitwise_or,
    PimCmdKind.XOR_SCALAR: np.bitwise_xor,
}
