"""Core simulator: device, objects, resources, commands, and stats."""

from repro.core.commands import CmdSpec, CommandTrace, OpCategory, PimCmdKind
from repro.core.device import PimDevice
from repro.core.errors import (
    PimAllocationError,
    PimConfigError,
    PimError,
    PimInvalidObjectError,
    PimTypeError,
)
from repro.core.layout import ObjectLayout, RowAllocator, plan_layout
from repro.core.object import PimObject
from repro.core.resource import ResourceManager
from repro.core.stats import (
    CmdStats,
    CopyStats,
    EventCounts,
    StatsSnapshot,
    StatsTracker,
)

__all__ = [
    "CmdSpec",
    "CommandTrace",
    "OpCategory",
    "PimCmdKind",
    "PimDevice",
    "PimAllocationError",
    "PimConfigError",
    "PimError",
    "PimInvalidObjectError",
    "PimTypeError",
    "ObjectLayout",
    "RowAllocator",
    "plan_layout",
    "PimObject",
    "ResourceManager",
    "CmdStats",
    "EventCounts",
    "CopyStats",
    "StatsSnapshot",
    "StatsTracker",
]
