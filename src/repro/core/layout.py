"""Data-layout math: how a PIM object maps onto cores and rows.

A PIM data object spans 2-D regions across many PIM cores (Section V-A).
Vertical layout (bit-serial devices) puts one element per column, one bit
per row; horizontal layout (bit-parallel devices) packs elements along the
row.  Objects are spread across as many cores as possible to maximize
parallelism, mirroring PIMeval's allocator.
"""

from __future__ import annotations

import dataclasses
import math

from repro.config.device import DeviceConfig, PimAllocType
from repro.core.errors import PimAllocationError


@dataclasses.dataclass(frozen=True)
class ObjectLayout:
    """Placement of one object on the device.

    ``elements_per_core`` is the maximum over cores; because all cores
    operate in lock-step, it (together with the per-core geometry)
    determines kernel latency.  ``groups_per_core`` counts how many
    full-width batches the core must process: vertical-layout groups of
    ``cols`` elements, or horizontal rows.
    """

    layout: PimAllocType
    num_elements: int
    bits: int
    num_cores_used: int
    elements_per_core: int
    elements_per_group: int
    groups_per_core: int
    rows_per_core: int

    @property
    def total_bits(self) -> int:
        return self.num_elements * self.bits

    @property
    def total_bytes(self) -> int:
        """Host-side footprint of the object (whole bytes per element)."""
        return self.num_elements * max(1, self.bits // 8)


def plan_layout(
    config: DeviceConfig,
    num_elements: int,
    bits: int,
    layout: PimAllocType,
    enforce_capacity: bool = True,
) -> ObjectLayout:
    """Compute the placement of an object on a device.

    Raises :class:`PimAllocationError` when the object cannot fit even
    using every row of every core, unless ``enforce_capacity`` is off
    (the rank-scaling sweep of Figure 12 overcommits the smaller
    configurations, as PIMeval's did).
    """
    if num_elements <= 0:
        raise PimAllocationError(f"num_elements must be positive, got {num_elements}")
    if bits <= 0:
        raise PimAllocationError(f"bits must be positive, got {bits}")
    if layout is PimAllocType.AUTO:
        layout = config.native_layout

    num_cores = config.num_cores
    cols = config.cols_per_core
    rows = config.rows_per_core
    elements_per_core = math.ceil(num_elements / num_cores)
    num_cores_used = math.ceil(num_elements / elements_per_core)

    if layout is PimAllocType.VERTICAL:
        elements_per_group = cols
        groups_per_core = math.ceil(elements_per_core / cols)
        rows_per_core = bits * groups_per_core
    else:
        elements_per_group = max(1, cols // bits)
        groups_per_core = math.ceil(elements_per_core / elements_per_group)
        rows_per_core = groups_per_core

    if enforce_capacity and rows_per_core > rows:
        needed = num_elements * bits
        capacity = num_cores * rows * cols
        raise PimAllocationError(
            f"object of {num_elements} x {bits}-bit elements needs "
            f"{rows_per_core} rows per core but only {rows} exist",
            num_elements=num_elements,
            bits=bits,
            rows_needed=rows_per_core,
            rows_available=rows,
            bits_requested=needed,
            bits_capacity=capacity,
        )

    return ObjectLayout(
        layout=layout,
        num_elements=num_elements,
        bits=bits,
        num_cores_used=num_cores_used,
        elements_per_core=elements_per_core,
        elements_per_group=elements_per_group,
        groups_per_core=groups_per_core,
        rows_per_core=rows_per_core,
    )


class RowAllocator:
    """First-fit interval allocator over the per-core row space.

    PIMeval allocates every object at the same row offsets in all of its
    cores, so a single one-dimensional allocator covers the whole device.
    """

    def __init__(self, num_rows: int, enforce_capacity: bool = True) -> None:
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        self.num_rows = num_rows
        self.enforce_capacity = enforce_capacity
        self._allocated: "dict[int, tuple[int, int]]" = {}  # id -> (start, count)

    @property
    def rows_in_use(self) -> int:
        return sum(count for _, count in self._allocated.values())

    def allocate(self, obj_id: int, count: int) -> int:
        """Reserve ``count`` rows; returns the starting row."""
        if count <= 0:
            raise PimAllocationError(f"row count must be positive, got {count}")
        if obj_id in self._allocated:
            raise PimAllocationError(
                f"object {obj_id} already has rows allocated", obj_id=obj_id
            )
        start = self._find_gap(count)
        if start is None:
            raise PimAllocationError(
                f"cannot allocate {count} rows: {self.rows_in_use} of "
                f"{self.num_rows} in use (fragmented or full)",
                rows_requested=count,
                rows_in_use=self.rows_in_use,
                rows_total=self.num_rows,
            )
        self._allocated[obj_id] = (start, count)
        return start

    def free(self, obj_id: int) -> None:
        if obj_id not in self._allocated:
            raise PimAllocationError(f"object {obj_id} has no allocated rows")
        del self._allocated[obj_id]

    def _find_gap(self, count: int) -> "int | None":
        intervals = sorted(self._allocated.values())
        cursor = 0
        for start, length in intervals:
            if start - cursor >= count:
                return cursor
            cursor = max(cursor, start + length)
        if self.num_rows - cursor >= count or not self.enforce_capacity:
            return cursor
        return None
