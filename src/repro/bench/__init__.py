"""PIMbench: the Table I benchmark suite."""

from repro.bench.common import BenchmarkResult, PimBenchmark
from repro.bench.registry import (
    BENCHMARK_CLASSES,
    BENCHMARKS_BY_KEY,
    all_benchmarks,
    make_benchmark,
)

__all__ = [
    "BenchmarkResult",
    "PimBenchmark",
    "BENCHMARK_CLASSES",
    "BENCHMARKS_BY_KEY",
    "all_benchmarks",
    "make_benchmark",
]
