"""VGG-13/16/19 inference (Table I, Neural Network).

The network is decomposed into per-layer kernels (Section VIII "VGG"):

* convolution -- lowered to accumulation over the 3x3 neighborhood: the
  host builds shifted patch vectors (im2col, a strided re-layout), the
  device accumulates ``pimScaledAdd`` per (output channel, input channel,
  kernel offset); aggregation and padding run on the host,
* ReLU        -- ``max_scalar(0)`` on the device,
* max-pooling -- four host-restrided quadrant vectors reduced with three
  ``max`` commands,
* dense       -- per-output-neuron scaled-add accumulation,
* softmax     -- on the host (floating point, unsupported on PIM).

Images are processed in batches to maximize parallelism.  The frequent
host re-layout between layers bottlenecks PIM execution, yielding
moderate speedups over the CPU while the GPU remains far ahead.

Functional runs use a scaled-down network verified against a numpy
forward pass; paper-scale runs use the real VGG configurations with the
command trace collapsed through ``repeat``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel

#: Convolution plans (output channels per 3x3 layer; 'M' = 2x2 max-pool).
VGG_CONFIGS: "dict[int, list]" = {
    13: [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    16: [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M",
         512, 512, 512, "M"],
    19: [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
         512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}
VGG_DENSE = [4096, 4096, 1000]

#: Representative weight for analytic-mode microprogram costing.
REPRESENTATIVE_WEIGHT = 0x55

KERNEL_OFFSETS = [(dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)]


@dataclasses.dataclass
class _Shape:
    """Spatial state flowing through the network."""

    batch: int
    size: int  # square feature maps
    channels: int

    @property
    def plane_elems(self) -> int:
        return self.batch * self.size * self.size


def _shifted_plane(plane: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Zero-padded shift of a (batch, s, s) activation plane."""
    out = np.zeros_like(plane)
    s = plane.shape[1]
    ys = slice(max(0, -dy), min(s, s - dy))
    xs = slice(max(0, -dx), min(s, s - dx))
    out[:, ys, xs] = plane[:, max(0, dy): min(s, s + dy),
                           max(0, dx): min(s, s + dx)]
    return out


class VggBenchmark(PimBenchmark):
    key = "vgg-16"
    name = "VGG-16"
    domain = "Neural Network"
    execution_type = "PIM + Host"
    depth = 16

    paper_input = "64, 224x224x3 images and 3x3 weights"

    @classmethod
    def default_params(cls):
        return {
            "batch": 2,
            "image_size": 8,
            "conv_plan": [4, "M", 8, "M"],
            "dense_plan": [10],
            "seed": 53,
        }

    @classmethod
    def paper_params(cls):
        return {
            "batch": 64,
            "image_size": 224,
            "conv_plan": VGG_CONFIGS[cls.depth],
            "dense_plan": VGG_DENSE,
            "seed": 53,
        }

    # -- host-side weight/input generation -------------------------------------

    def _make_weights(self, conv_plan, dense_plan, in_channels, features):
        rng = np.random.default_rng(self.params["seed"])
        conv_weights = []
        cin = in_channels
        for entry in conv_plan:
            if entry == "M":
                conv_weights.append(None)
                continue
            conv_weights.append(
                rng.integers(-3, 4, size=(entry, cin, 9)).astype(np.int32)
            )
            cin = entry
        dense_weights = []
        fin = features
        for fout in dense_plan:
            dense_weights.append(
                rng.integers(-3, 4, size=(fout, fin)).astype(np.int32)
            )
            fin = fout
        return conv_weights, dense_weights

    # -- PIM execution ----------------------------------------------------

    def run_pim(self, device: PimDevice, host: HostModel):
        batch = self.params["batch"]
        size = self.params["image_size"]
        conv_plan = list(self.params["conv_plan"])
        dense_plan = list(self.params["dense_plan"])
        shape = _Shape(batch=batch, size=size, channels=3)

        activations = None
        conv_weights = dense_weights = None
        if device.functional:
            rng = np.random.default_rng(self.params["seed"] + 1)
            activations = rng.integers(
                0, 8, size=(3, batch, size, size)
            ).astype(np.int32)
        # Pre-compute the feature count after the conv stack for weights.
        pools = conv_plan.count("M")
        final_channels = next(
            entry for entry in reversed(conv_plan) if entry != "M"
        )
        final_size = size >> pools
        features = final_channels * final_size * final_size
        conv_weights = dense_weights = None
        if device.functional:  # analytic mode never touches weight values
            conv_weights, dense_weights = self._make_weights(
                conv_plan, dense_plan, 3, features
            )

        for idx, entry in enumerate(conv_plan):
            if entry == "M":
                activations = self._max_pool(device, host, shape, activations)
                shape.size //= 2
            else:
                activations = self._conv_layer(
                    device, host, shape, activations,
                    conv_weights[idx] if conv_weights else None, entry,
                )
                shape.channels = entry

        # Flatten: (channels, batch, s, s) -> per-feature batch vectors.
        if device.functional:
            flat = activations.transpose(0, 2, 3, 1).reshape(features, batch)
        else:
            flat = None
        host.run(self._relayout_profile(features * batch))

        logits = flat
        fin = features
        for li, fout in enumerate(dense_plan):
            logits = self._dense_layer(
                device, host, batch, fin, fout, logits,
                dense_weights[li] if dense_weights else None,
            )
            fin = fout
        # Softmax on the host (floating point).
        host.run(KernelProfile(
            "host-softmax", bytes_accessed=8.0 * batch * fin,
            compute_ops=4.0 * batch * fin, compute_efficiency=0.2,
        ))
        if device.functional:
            return {"logits": logits}
        return None

    def _relayout_profile(self, elems: float) -> KernelProfile:
        return KernelProfile(
            name="host-relayout",
            bytes_accessed=8.0 * elems,
            compute_ops=float(elems),
            mem_efficiency=0.3,  # strided gather/scatter
        )

    def _conv_layer(self, device, host, shape, activations, weights, cout):
        cin = shape.channels
        elems = shape.plane_elems
        # Host im2col: build the 9 shifted patch vectors per input channel.
        host.run(self._relayout_profile(float(elems) * cin * 9))
        if device.functional:
            # Stream one patch vector at a time; hold one accumulator per
            # output channel (bounded row footprint on bit-serial devices).
            obj_patch = device.alloc(elems)
            acc_objs = [device.alloc_associated(obj_patch) for _ in range(cout)]
            for obj in acc_objs:
                device.execute(PimCmdKind.BROADCAST, (), obj, scalar=0)
            for ci in range(cin):
                for ki, (dy, dx) in enumerate(KERNEL_OFFSETS):
                    device.copy_host_to_device(
                        _shifted_plane(activations[ci], dy, dx).reshape(-1),
                        obj_patch,
                    )
                    for co in range(cout):
                        device.execute(
                            PimCmdKind.SCALED_ADD, (obj_patch, acc_objs[co]),
                            acc_objs[co], scalar=int(weights[co, ci, ki]),
                        )
            outputs = np.zeros((cout, shape.batch, shape.size, shape.size),
                               dtype=np.int32)
            for co in range(cout):
                device.execute(PimCmdKind.MAX_SCALAR, (acc_objs[co],),
                               acc_objs[co], scalar=0)
                outputs[co] = device.copy_device_to_host(acc_objs[co]).reshape(
                    shape.batch, shape.size, shape.size
                )
            for obj in [obj_patch] + acc_objs:
                device.free(obj)
            return outputs
        obj_patch = device.alloc(elems)
        obj_acc = device.alloc(elems)
        device.copy_host_to_device(None, obj_patch, repeat=cin * 9)
        device.execute(PimCmdKind.BROADCAST, (), obj_acc, scalar=0, repeat=cout)
        device.execute(
            PimCmdKind.SCALED_ADD, (obj_patch, obj_acc), obj_acc,
            scalar=REPRESENTATIVE_WEIGHT, repeat=cout * cin * 9,
        )
        device.execute(PimCmdKind.MAX_SCALAR, (obj_acc,), obj_acc,
                       scalar=0, repeat=cout)
        device.copy_device_to_host(obj_acc, repeat=cout)
        device.free(obj_patch)
        device.free(obj_acc)
        return None

    def _max_pool(self, device, host, shape, activations):
        out_elems = shape.batch * (shape.size // 2) ** 2
        host.run(self._relayout_profile(float(out_elems) * 4 * shape.channels))
        if device.functional:
            outputs = np.zeros(
                (shape.channels, shape.batch, shape.size // 2, shape.size // 2),
                dtype=np.int32,
            )
            quads = [device.alloc(out_elems) for _ in range(4)]
            obj_max = device.alloc(out_elems)
            for ci in range(shape.channels):
                plane = activations[ci]
                quad_data = [
                    plane[:, 0::2, 0::2], plane[:, 0::2, 1::2],
                    plane[:, 1::2, 0::2], plane[:, 1::2, 1::2],
                ]
                for obj, data in zip(quads, quad_data):
                    device.copy_host_to_device(data.reshape(-1), obj)
                device.execute(PimCmdKind.MAX, (quads[0], quads[1]), obj_max)
                device.execute(PimCmdKind.MAX, (obj_max, quads[2]), obj_max)
                device.execute(PimCmdKind.MAX, (obj_max, quads[3]), obj_max)
                outputs[ci] = device.copy_device_to_host(obj_max).reshape(
                    shape.batch, shape.size // 2, shape.size // 2
                )
            for obj in quads + [obj_max]:
                device.free(obj)
            return outputs
        obj_quad = device.alloc(out_elems)
        obj_max = device.alloc_associated(obj_quad)
        device.copy_host_to_device(None, obj_quad, repeat=4 * shape.channels)
        device.execute(PimCmdKind.MAX, (obj_quad, obj_max), obj_max,
                       repeat=3 * shape.channels)
        device.copy_device_to_host(obj_max, repeat=shape.channels)
        device.free(obj_quad)
        device.free(obj_max)
        return None

    def _dense_layer(self, device, host, batch, fin, fout, flat, weights):
        """Fully-connected layer, parallel over output neurons.

        The fout-element weight column of each input feature is streamed
        once; each image accumulates it scaled by its activation, so the
        vector width is fout (thousands) rather than the small batch.
        """
        if device.functional:
            obj_wcol = device.alloc(fout)
            acc_objs = [device.alloc_associated(obj_wcol) for _ in range(batch)]
            for obj in acc_objs:
                device.execute(PimCmdKind.BROADCAST, (), obj, scalar=0)
            for f in range(fin):
                device.copy_host_to_device(weights[:, f], obj_wcol)
                for img in range(batch):
                    device.execute(
                        PimCmdKind.SCALED_ADD, (obj_wcol, acc_objs[img]),
                        acc_objs[img], scalar=int(flat[f, img]),
                    )
            out = np.zeros((fout, batch), dtype=np.int32)
            for img in range(batch):
                out[:, img] = device.copy_device_to_host(acc_objs[img])
            for obj in [obj_wcol] + acc_objs:
                device.free(obj)
            return out
        obj_wcol = device.alloc(fout)
        obj_acc = device.alloc_associated(obj_wcol)
        device.copy_host_to_device(None, obj_wcol, repeat=fin)
        device.execute(PimCmdKind.BROADCAST, (), obj_acc, scalar=0, repeat=batch)
        device.execute(
            PimCmdKind.SCALED_ADD, (obj_wcol, obj_acc), obj_acc,
            scalar=REPRESENTATIVE_WEIGHT, repeat=fin * batch,
        )
        device.copy_device_to_host(obj_acc, repeat=batch)
        device.free(obj_wcol)
        device.free(obj_acc)
        return None

    # -- verification --------------------------------------------------------

    def verify(self, outputs) -> bool:
        batch = self.params["batch"]
        size = self.params["image_size"]
        rng = np.random.default_rng(self.params["seed"] + 1)
        acts = rng.integers(0, 8, size=(3, batch, size, size)).astype(np.int64)
        pools = list(self.params["conv_plan"]).count("M")
        final_channels = next(
            e for e in reversed(self.params["conv_plan"]) if e != "M"
        )
        final_size = size >> pools
        features = final_channels * final_size * final_size
        conv_weights, dense_weights = self._make_weights(
            self.params["conv_plan"], self.params["dense_plan"], 3, features
        )
        for idx, entry in enumerate(self.params["conv_plan"]):
            if entry == "M":
                c, b, s, _ = acts.shape
                acts = np.max(
                    [acts[:, :, 0::2, 0::2], acts[:, :, 0::2, 1::2],
                     acts[:, :, 1::2, 0::2], acts[:, :, 1::2, 1::2]], axis=0,
                )
            else:
                w = conv_weights[idx].astype(np.int64)
                cout = w.shape[0]
                new = np.zeros((cout,) + acts.shape[1:], dtype=np.int64)
                for co in range(cout):
                    for ci in range(acts.shape[0]):
                        for ki, (dy, dx) in enumerate(KERNEL_OFFSETS):
                            new[co] += w[co, ci, ki] * np.stack(
                                [_shifted_plane(acts[ci, bb][None], dy, dx)[0]
                                 for bb in range(acts.shape[1])]
                            )
                acts = np.maximum(new, 0)
        flat = acts.transpose(0, 2, 3, 1).reshape(features, batch)
        logits = flat
        for w in dense_weights:
            logits = w.astype(np.int64) @ logits
        return np.array_equal(outputs["logits"].astype(np.int64), logits)

    # -- baseline profiles ------------------------------------------------------

    def _total_flops(self) -> float:
        batch = self.params["batch"]
        size = self.params["image_size"]
        flops = 0.0
        cin = 3
        s = size
        for entry in self.params["conv_plan"]:
            if entry == "M":
                s //= 2
                continue
            flops += 2.0 * batch * s * s * cin * entry * 9
            cin = entry
        fin = cin * s * s
        for fout in self.params["dense_plan"]:
            flops += 2.0 * batch * fin * fout
            fin = fout
        return flops

    def cpu_profile(self) -> KernelProfile:
        # PyTorch CPU conv: far below peak (im2col materialization, memory-
        # bound early layers, framework overhead).
        return KernelProfile(
            name=f"cpu-{self.key}",
            bytes_accessed=self._total_flops() / 4.0,
            compute_ops=self._total_flops(),
            mem_efficiency=0.6,
            compute_efficiency=0.08,
        )

    def gpu_profile(self) -> KernelProfile:
        return KernelProfile(
            name=f"gpu-{self.key}",
            bytes_accessed=self._total_flops() / 16.0,
            compute_ops=self._total_flops(),
            mem_efficiency=0.6,
            compute_efficiency=0.35,
        )


class Vgg13Benchmark(VggBenchmark):
    key = "vgg-13"
    name = "VGG-13"
    depth = 13


class Vgg16Benchmark(VggBenchmark):
    key = "vgg-16"
    name = "VGG-16"
    depth = 16


class Vgg19Benchmark(VggBenchmark):
    key = "vgg-19"
    name = "VGG-19"
    depth = 19
