"""AES-256 encryption/decryption in ECB mode (Table I, Cryptography).

The state is held as 16 byte-plane objects (plane i holds byte i of every
block), processed with bulk PIM operations exactly as a bit-sliced PIM
implementation would (the paper adopts the gate-level lookup of
Hajihassani et al. [25]):

* AddRoundKey  -- one ``xor_scalar`` per plane (the round-key byte is a
  broadcast constant),
* ShiftRows    -- a pure relabeling of plane handles (byte planes are
  whole objects, so the rotation costs nothing, as in-situ layouts allow),
* MixColumns   -- real GF(2^8) constant multiplications built from
  shift/mul_scalar/xor PIM commands (xtime chains), and
* SubBytes     -- functionally a byte substitution; its PIM cost is
  modeled as the 113-gate Boyar-Peralta bit-sliced S-box circuit (32 AND +
  81 XOR single-bit operations per byte position), issued against
  bit-plane scratch objects.  This is the one step whose functional result
  is applied via the host shadow rather than through gate-by-gate API
  calls; DESIGN.md documents the substitution.

Bit-serial wins among PIM variants (logic-dominated work plus maximal
parallelism) and beats the CPU, while the AES-NI-equipped baselines keep
the GPU ahead -- the Section VIII "AES" finding.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench import aes_reference as ref
from repro.bench.common import PimBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.core.object import PimObject
from repro.host.model import HostModel

#: Boyar-Peralta bit-sliced AES S-box circuit size (gates per byte).
SBOX_AND_GATES = 32
SBOX_XOR_GATES = 81


class _PlaneState:
    """The 16 byte planes plus scratch objects of one AES computation."""

    def __init__(self, device: PimDevice, num_blocks: int) -> None:
        self.device = device
        base = device.alloc(num_blocks, PimDataType.UINT8)
        self.planes = [base] + [
            device.alloc_associated(base) for _ in range(15)
        ]
        # One _gf_multiple can hold up to 7 temporaries live at once (the
        # result plus three xtime stages of two temps each); a pool of 8
        # cycled slots guarantees no clobbering within one call chain.
        self.scratch = [device.alloc_associated(base) for _ in range(8)]
        self.bit_scratch = [
            device.alloc_associated(base, PimDataType.BOOL) for _ in range(3)
        ]
        if device.functional:
            # Scratch contents are don't-cares; give them zero shadows so
            # the functional engine can run the modeled gate traffic.
            for obj in self.scratch:
                obj.set_data(np.zeros(num_blocks, dtype=np.uint8))
            for obj in self.bit_scratch:
                obj.set_data(np.zeros(num_blocks, dtype=bool))
        self._scratch_cursor = 0

    def temp(self) -> PimObject:
        obj = self.scratch[self._scratch_cursor]
        self._scratch_cursor = (self._scratch_cursor + 1) % len(self.scratch)
        return obj

    def free_all(self) -> None:
        for obj in self.planes + self.scratch + self.bit_scratch:
            self.device.free(obj)


def _gf_multiple(state: _PlaneState, plane: PimObject, factor: int) -> PimObject:
    """Multiply a byte plane by a small GF(2^8) constant with PIM ops.

    Builds the result from xtime chains (shift, high-bit extract,
    conditional 0x1B reduction, xor), returning a scratch object -- or the
    input itself for factor 1.
    """
    device = state.device
    if factor == 1:
        return plane
    result: "PimObject | None" = None
    power = plane
    remaining = factor
    while remaining:
        if remaining & 1:
            if result is None:
                result = state.temp()
                device.execute(PimCmdKind.COPY, (power,), result)
            else:
                device.execute(PimCmdKind.XOR, (result, power), result)
        remaining >>= 1
        if remaining:
            power = _xtime(state, power)
    assert result is not None
    return result


def _xtime(state: _PlaneState, plane: PimObject) -> PimObject:
    """GF(2^8) doubling of a byte plane: (x << 1) ^ (0x1B if x & 0x80)."""
    device = state.device
    shifted = state.temp()
    device.execute(PimCmdKind.SHIFT_LEFT, (plane,), shifted, scalar=1)
    reduction = state.temp()
    device.execute(PimCmdKind.SHIFT_RIGHT, (plane,), reduction, scalar=7)
    device.execute(PimCmdKind.MUL_SCALAR, (reduction,), reduction, scalar=0x1B)
    device.execute(PimCmdKind.XOR, (shifted, reduction), shifted)
    return shifted


def _add_round_key(state: _PlaneState, round_key: np.ndarray) -> None:
    for i, plane in enumerate(state.planes):
        state.device.execute(
            PimCmdKind.XOR_SCALAR, (plane,), plane, scalar=int(round_key[i])
        )


def _sub_bytes(state: _PlaneState, table: np.ndarray) -> None:
    """Byte substitution: bit-sliced gate cost + host-shadow functional
    application (see module docstring)."""
    device = state.device
    b0, b1, b2 = state.bit_scratch
    device.execute(PimCmdKind.AND, (b0, b1), b2, repeat=SBOX_AND_GATES * 16)
    device.execute(PimCmdKind.XOR, (b0, b1), b2, repeat=SBOX_XOR_GATES * 16)
    if device.functional:
        for plane in state.planes:
            plane.data = table[plane.require_data()]


def _shift_rows(state: _PlaneState, inverse: bool) -> None:
    """Rotate the state rows by relabeling the plane handles."""
    new_planes = list(state.planes)
    for r in range(1, 4):
        for c in range(4):
            src_c = (c + r) % 4 if not inverse else (c - r) % 4
            new_planes[4 * c + r] = state.planes[4 * src_c + r]
    state.planes = new_planes


def _mix_one_column(
    state: _PlaneState, matrix: "list[list[int]]", c: int
) -> None:
    device = state.device
    column = [state.planes[4 * c + r] for r in range(4)]
    outputs = []
    for r in range(4):
        acc: "PimObject | None" = None
        for k in range(4):
            term = _gf_multiple(state, column[k], matrix[r][k])
            if acc is None:
                acc = device.alloc_associated(column[0])
                device.execute(PimCmdKind.COPY, (term,), acc)
            else:
                device.execute(PimCmdKind.XOR, (acc, term), acc)
        outputs.append(acc)
    for r in range(4):
        device.execute(PimCmdKind.COPY, (outputs[r],), column[r])
        device.free(outputs[r])


def _mix_columns(state: _PlaneState, matrix: "list[list[int]]") -> None:
    if state.device.functional:
        for c in range(4):
            _mix_one_column(state, matrix, c)
        return
    # Analytic mode: the four columns issue the identical command sequence
    # (the MIX rows are rotations of one another and every plane shares the
    # same associated layout), so record column 0 and replay the other
    # three (docs/PERFORMANCE.md §5).
    stats = state.device.stats
    with stats.recorded_trace() as trace:
        _mix_one_column(state, matrix, 0)
    stats.replay_trace(trace, times=3)


class AesEncryptBenchmark(PimBenchmark):
    key = "aes-enc"
    name = "AES-Encryption"
    domain = "Cryptography"
    execution_type = "PIM"
    random_access = True
    paper_input = "1,035,544,320 Bytes"
    decrypt = False

    @classmethod
    def default_params(cls):
        return {"num_bytes": 512, "seed": 17}

    @classmethod
    def paper_params(cls):
        return {"num_bytes": 1_035_544_320, "seed": 17}

    def _round_keys(self) -> np.ndarray:
        rng = np.random.default_rng(self.params["seed"])
        key = rng.integers(0, 256, size=32, dtype=np.uint8).tobytes()
        return ref.expand_key(key)

    def run_pim(self, device: PimDevice, host: HostModel):
        num_bytes = self.params["num_bytes"]
        num_blocks = num_bytes // ref.BLOCK_BYTES
        if num_blocks == 0:
            raise ValueError("input must be at least one 16-byte block")
        round_keys = self._round_keys()
        blocks = None
        if device.functional:
            rng = np.random.default_rng(self.params["seed"] + 1)
            blocks = rng.integers(
                0, 256, size=(num_blocks, ref.BLOCK_BYTES), dtype=np.uint8
            )
        state = _PlaneState(device, num_blocks)
        for i, plane in enumerate(state.planes):
            device.copy_host_to_device(
                blocks[:, i] if blocks is not None else None, plane
            )
        if self.decrypt:
            self._decrypt(state, round_keys)
        else:
            self._encrypt(state, round_keys)
        result = None
        if device.functional:
            result = np.stack(
                [device.copy_device_to_host(p) for p in state.planes], axis=1
            )
        else:
            for plane in state.planes:
                device.copy_device_to_host(plane)
        state.free_all()
        if device.functional:
            return {"blocks": blocks, "round_keys": round_keys, "result": result}
        return None

    def _encrypt(self, state: _PlaneState, round_keys: np.ndarray) -> None:
        box = ref.sbox()
        _add_round_key(state, round_keys[0])
        for rnd in range(1, ref.NUM_ROUNDS):
            _sub_bytes(state, box)
            _shift_rows(state, inverse=False)
            _mix_columns(state, ref.MIX)
            _add_round_key(state, round_keys[rnd])
        _sub_bytes(state, box)
        _shift_rows(state, inverse=False)
        _add_round_key(state, round_keys[ref.NUM_ROUNDS])

    def _decrypt(self, state: _PlaneState, round_keys: np.ndarray) -> None:
        box = ref.inv_sbox()
        _add_round_key(state, round_keys[ref.NUM_ROUNDS])
        for rnd in range(ref.NUM_ROUNDS - 1, 0, -1):
            _shift_rows(state, inverse=True)
            _sub_bytes(state, box)
            _add_round_key(state, round_keys[rnd])
            _mix_columns(state, ref.INV_MIX)
        _shift_rows(state, inverse=True)
        _sub_bytes(state, box)
        _add_round_key(state, round_keys[0])

    def verify(self, outputs) -> bool:
        transform = ref.decrypt_blocks if self.decrypt else ref.encrypt_blocks
        expected = transform(outputs["blocks"], outputs["round_keys"])
        return np.array_equal(outputs["result"], expected)

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_bytes"]
        # OpenSSL with AES-NI: ~1.4 cycles/byte/core -> ~45 GB/s across the
        # 16-core EPYC; compute-bound (efficiency 45/475 of int peak).
        return KernelProfile(
            name="cpu-aes",
            bytes_accessed=2.0 * n,
            compute_ops=float(n),
            mem_efficiency=0.8,
            compute_efficiency=0.095,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_bytes"]
        # Tuned GPU AES kernels sustain several hundred GB/s.
        return KernelProfile(
            name="gpu-aes",
            bytes_accessed=2.0 * n,
            compute_ops=float(n),
            mem_efficiency=0.8,
            compute_efficiency=0.02,
        )


class AesDecryptBenchmark(AesEncryptBenchmark):
    key = "aes-dec"
    name = "AES-Decryption"
    decrypt = True
