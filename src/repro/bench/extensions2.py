"""Further extension kernels: transitive closure and PCA.

Section II lists "transitive closure from the IRAM suite" and "Principal
Component Analysis (PCA) ... from Phoenix" among the kernels PIMbench is
being extended with; both are implemented here against the portable API.

* **Transitive Closure** -- Floyd-Warshall over the packed adjacency
  bitmap: for every pivot k, rows that reach k OR-in row k.  The per-pivot
  step is fully data-parallel on PIM (a strided column gather, a
  row-k broadcast, one select and one OR over the whole n x W bitmap).
* **PCA** -- the 2-D principal component from the covariance sums
  (five multiplies + reductions on PIM, a closed-form 2x2
  eigen-decomposition on the host), the natural extension of the linear
  regression kernel.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.graphs import random_graph
from repro.workloads.points import clustered_points

WORD_BITS = 32


class TransitiveClosureBenchmark(PimBenchmark):
    key = "transitive"
    name = "Transitive Closure"
    domain = "Graph"
    execution_type = "PIM"
    random_access = True
    paper_input = "extension kernel (not in Table I)"

    @classmethod
    def default_params(cls):
        return {"num_nodes": 48, "num_edges": 96, "seed": 71}

    @classmethod
    def paper_params(cls):
        return {"num_nodes": 8_192, "num_edges": 131_072, "seed": 71}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_nodes"]
        words = math.ceil(n / WORD_BITS)
        graph = None
        matrix = None
        if device.functional:
            graph = random_graph(n, self.params["num_edges"],
                                 seed=self.params["seed"])
            matrix = np.zeros((n, words), dtype=np.uint32)
            for u, v in graph.edges():  # directed closure of both arcs
                matrix[u, v // WORD_BITS] |= np.uint32(1 << (v % WORD_BITS))
                matrix[v, u // WORD_BITS] |= np.uint32(1 << (u % WORD_BITS))
            for v in range(n):  # reflexive closure
                matrix[v, v // WORD_BITS] |= np.uint32(1 << (v % WORD_BITS))

        obj_m = device.alloc(n * words, PimDataType.UINT32)
        obj_colbit = device.alloc(n, PimDataType.UINT32)
        obj_reach = device.alloc_associated(obj_colbit, PimDataType.BOOL)
        obj_rowk = device.alloc_associated(obj_m)
        obj_sel = device.alloc_associated(obj_m)
        obj_zero = device.alloc_associated(obj_m)
        obj_mask = device.alloc_associated(obj_m, PimDataType.BOOL)
        device.copy_host_to_device(
            matrix.reshape(-1) if matrix is not None else None, obj_m
        )
        device.execute(PimCmdKind.BROADCAST, (), obj_zero, scalar=0)
        for k in range(n):
            word, bit = k // WORD_BITS, k % WORD_BITS
            # Gather column word `word` of every row (strided on-device
            # gather), then test the pivot bit: reach[i] = A[i][k].
            column = None
            if device.functional:
                column = obj_m.require_data().reshape(n, words)[:, word].copy()
            device.model_gather(obj_colbit, column)
            device.execute(
                PimCmdKind.AND_SCALAR, (obj_colbit,), obj_colbit,
                scalar=1 << bit,
            )
            device.execute(
                PimCmdKind.EQ_SCALAR, (obj_colbit,), obj_reach,
                scalar=1 << bit,
            )
            # Broadcast row k across all rows and the reach mask across
            # all words of each row (on-device replication).
            rowk_tiled = mask_tiled = None
            if device.functional:
                data = obj_m.require_data().reshape(n, words)
                rowk_tiled = np.tile(data[k], n)
                mask_tiled = np.repeat(obj_reach.require_data(), words)
            device.model_gather(obj_rowk, rowk_tiled)
            device.model_gather(obj_mask, mask_tiled)
            # A[i] |= reach[i] ? A[k] : 0
            device.execute(
                PimCmdKind.SELECT, (obj_mask, obj_rowk, obj_zero), obj_sel
            )
            device.execute(PimCmdKind.OR, (obj_m, obj_sel), obj_m)
        closure = device.copy_device_to_host(obj_m)
        for obj in (obj_m, obj_colbit, obj_reach, obj_rowk, obj_sel,
                    obj_zero, obj_mask):
            device.free(obj)
        if device.functional:
            return {
                "graph": graph,
                "closure": closure.reshape(n, words),
                "num_nodes": n,
            }
        return None

    def verify(self, outputs) -> bool:
        import networkx as nx
        graph = outputs["graph"]
        closure = outputs["closure"]
        n = outputs["num_nodes"]
        components = {
            node: component
            for component in nx.connected_components(graph)
            for node in component
        }
        for u in range(n):
            for v in range(n):
                expected = v in components.get(u, {u}) or u == v
                actual = bool(closure[u, v // WORD_BITS] >> (v % WORD_BITS) & 1)
                if expected != actual:
                    return False
        return True

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_nodes"]
        words = math.ceil(n / WORD_BITS)
        # Bit-parallel Floyd-Warshall: n^2 word-OR operations over rows.
        work = float(n) * n * words
        return KernelProfile(
            name="cpu-transitive",
            bytes_accessed=8.0 * work,
            compute_ops=2.0 * work,
            mem_efficiency=0.6,
            compute_efficiency=0.4,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_nodes"]
        words = math.ceil(n / WORD_BITS)
        work = float(n) * n * words
        return KernelProfile(
            name="gpu-transitive",
            bytes_accessed=8.0 * work,
            compute_ops=2.0 * work,
            mem_efficiency=0.6,
            compute_efficiency=0.4,
        )


class PcaBenchmark(PimBenchmark):
    key = "pca"
    name = "PCA"
    domain = "Unsupervised Learning"
    execution_type = "PIM + Host"
    paper_input = "extension kernel (not in Table I)"

    @classmethod
    def default_params(cls):
        return {"num_points": 8192, "seed": 73}

    @classmethod
    def paper_params(cls):
        return {"num_points": 268_435_456, "seed": 73}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_points"]
        points = None
        if device.functional:
            points, _ = clustered_points(n, 3, seed=self.params["seed"],
                                         spread=400)
        obj_x = device.alloc(n)
        obj_y = device.alloc_associated(obj_x)
        obj_tmp = device.alloc_associated(obj_x)
        device.copy_host_to_device(
            points[:, 0] if points is not None else None, obj_x
        )
        device.copy_host_to_device(
            points[:, 1] if points is not None else None, obj_y
        )
        sum_x = device.execute(PimCmdKind.REDSUM, (obj_x,))
        sum_y = device.execute(PimCmdKind.REDSUM, (obj_y,))
        device.execute(PimCmdKind.MUL, (obj_x, obj_x), obj_tmp)
        sum_xx = device.execute(PimCmdKind.REDSUM, (obj_tmp,))
        device.execute(PimCmdKind.MUL, (obj_y, obj_y), obj_tmp)
        sum_yy = device.execute(PimCmdKind.REDSUM, (obj_tmp,))
        device.execute(PimCmdKind.MUL, (obj_x, obj_y), obj_tmp)
        sum_xy = device.execute(PimCmdKind.REDSUM, (obj_tmp,))
        # Host: assemble the 2x2 covariance and eigen-decompose it.
        host.run(KernelProfile(
            "host-eigen-2x2", bytes_accessed=64.0, compute_ops=32.0,
        ))
        for obj in (obj_x, obj_y, obj_tmp):
            device.free(obj)
        if device.functional:
            cov = _covariance(n, sum_x, sum_y, sum_xx, sum_yy, sum_xy)
            return {"points": points, "component": _principal_axis(cov)}
        return None

    def verify(self, outputs) -> bool:
        points = outputs["points"].astype(np.float64)
        centered = points - points.mean(axis=0)
        cov = centered.T @ centered / len(points)
        _, vecs = np.linalg.eigh(cov)
        expected = vecs[:, -1]
        produced = outputs["component"]
        alignment = abs(float(np.dot(expected, produced)))
        return alignment > 0.999

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_points"]
        return KernelProfile(
            name="cpu-pca",
            bytes_accessed=8.0 * n,
            compute_ops=9.0 * n,
            mem_efficiency=0.8,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_points"]
        return KernelProfile(
            name="gpu-pca",
            bytes_accessed=8.0 * n,
            compute_ops=9.0 * n,
            mem_efficiency=0.8,
        )


def _covariance(n, sum_x, sum_y, sum_xx, sum_yy, sum_xy) -> np.ndarray:
    mean_x, mean_y = sum_x / n, sum_y / n
    return np.array([
        [sum_xx / n - mean_x**2, sum_xy / n - mean_x * mean_y],
        [sum_xy / n - mean_x * mean_y, sum_yy / n - mean_y**2],
    ])


def _principal_axis(cov: np.ndarray) -> np.ndarray:
    values, vectors = np.linalg.eigh(cov)
    return vectors[:, int(np.argmax(values))]
