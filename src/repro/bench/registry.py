"""Registry of the PIMbench suite (Table I order)."""

from __future__ import annotations

import typing

from repro.bench.aes import AesDecryptBenchmark, AesEncryptBenchmark
from repro.bench.axpy import AxpyBenchmark
from repro.bench.brightness import BrightnessBenchmark
from repro.bench.common import PimBenchmark
from repro.bench.downsample import DownsampleBenchmark
from repro.bench.filterbykey import FilterByKeyBenchmark
from repro.bench.gemm import GemmBenchmark
from repro.bench.gemv import GemvBenchmark
from repro.bench.histogram import HistogramBenchmark
from repro.bench.kmeans import KMeansBenchmark
from repro.bench.knn import KnnBenchmark
from repro.bench.linreg import LinearRegressionBenchmark
from repro.bench.radixsort import RadixSortBenchmark
from repro.bench.triangle import TriangleCountBenchmark
from repro.bench.vecadd import VectorAddBenchmark
from repro.bench.vgg import Vgg13Benchmark, Vgg16Benchmark, Vgg19Benchmark

#: The 18 benchmarks of Table I, in the paper's figure order.
BENCHMARK_CLASSES: "tuple[type[PimBenchmark], ...]" = (
    VectorAddBenchmark,
    AxpyBenchmark,
    GemvBenchmark,
    GemmBenchmark,
    RadixSortBenchmark,
    AesEncryptBenchmark,
    AesDecryptBenchmark,
    TriangleCountBenchmark,
    FilterByKeyBenchmark,
    HistogramBenchmark,
    BrightnessBenchmark,
    DownsampleBenchmark,
    KnnBenchmark,
    LinearRegressionBenchmark,
    KMeansBenchmark,
    Vgg13Benchmark,
    Vgg16Benchmark,
    Vgg19Benchmark,
)

BENCHMARKS_BY_KEY: "dict[str, type[PimBenchmark]]" = {
    cls.key: cls for cls in BENCHMARK_CLASSES
}


def make_benchmark(
    key: str, paper_scale: bool = False, **overrides: typing.Any
) -> PimBenchmark:
    """Instantiate a benchmark by key at functional or paper scale."""
    cls = BENCHMARKS_BY_KEY.get(key)
    if cls is None:
        raise KeyError(
            f"unknown benchmark {key!r}; known: {sorted(BENCHMARKS_BY_KEY)}"
        )
    params = cls.paper_params() if paper_scale else cls.default_params()
    params.update(overrides)
    return cls(**params)


def all_benchmarks(paper_scale: bool = False) -> "list[PimBenchmark]":
    """One instance of every Table I benchmark."""
    return [make_benchmark(cls.key, paper_scale) for cls in BENCHMARK_CLASSES]
