"""Matrix-Matrix Multiplication / GEMM (Table I, Linear Algebra).

Implemented as batched GEMV (Section VIII "GEMM"): the output matrix is a
flat column-major vector of R x C elements; for each inner index k, the
replicated A column and the segment-broadcast B row are streamed in and
combined with one multiply plus one accumulate.  GEMM is compute-intensive
and streams O(K) full-output-size operand vectors, so no PIM variant does
well -- only Fulcrum beats the CPU, and only with data movement excluded,
matching the paper's finding.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.vectors import random_int_matrix


class GemmBenchmark(PimBenchmark):
    key = "gemm"
    name = "GEMM"
    domain = "Linear Algebra"
    execution_type = "PIM"
    paper_input = "23,521 x 4,096 and 4,096 x 512 32-bit INT"

    @classmethod
    def default_params(cls):
        return {"m": 24, "k": 12, "n": 8, "seed": 5}

    @classmethod
    def paper_params(cls):
        return {"m": 23_521, "k": 4_096, "n": 512, "seed": 5}

    def run_pim(self, device: PimDevice, host: HostModel):
        m, k, n = self.params["m"], self.params["k"], self.params["n"]
        a = b = None
        if device.functional:
            a = random_int_matrix(m, k, seed=self.params["seed"], low=-20, high=20)
            b = random_int_matrix(k, n, seed=self.params["seed"] + 1, low=-20, high=20)
        out_elems = m * n
        obj_a = device.alloc(out_elems)  # A column tiled across output columns
        obj_b = device.alloc_associated(obj_a)  # B row broadcast per segment
        obj_tmp = device.alloc_associated(obj_a)
        obj_acc = device.alloc_associated(obj_a)
        device.execute(PimCmdKind.BROADCAST, (), obj_acc, scalar=0)
        if device.functional:
            for kk in range(k):
                device.copy_host_to_device(np.tile(a[:, kk], n), obj_a)
                device.copy_host_to_device(np.repeat(b[kk, :], m), obj_b)
                device.execute(PimCmdKind.MUL, (obj_a, obj_b), obj_tmp)
                device.execute(PimCmdKind.ADD, (obj_tmp, obj_acc), obj_acc)
        else:
            device.copy_host_to_device(None, obj_a, repeat=k)
            device.copy_host_to_device(None, obj_b, repeat=k)
            device.execute(PimCmdKind.MUL, (obj_a, obj_b), obj_tmp, repeat=k)
            device.execute(PimCmdKind.ADD, (obj_tmp, obj_acc), obj_acc, repeat=k)
        result = device.copy_device_to_host(obj_acc)
        for obj in (obj_a, obj_b, obj_tmp, obj_acc):
            device.free(obj)
        if device.functional:
            return {"a": a, "b": b, "result": result}
        return None

    def verify(self, outputs) -> bool:
        a, b = outputs["a"], outputs["b"]
        expected = (a.astype(np.int64) @ b.astype(np.int64)).astype(np.int32)
        produced = outputs["result"].reshape(b.shape[1], a.shape[0]).T
        return np.array_equal(produced, expected)

    def cpu_profile(self) -> KernelProfile:
        m, k, n = self.params["m"], self.params["k"], self.params["n"]
        # OpenBLAS sgemm: compute bound at good fraction of peak.
        return KernelProfile(
            name="cpu-gemm",
            bytes_accessed=4.0 * (m * k + k * n + m * n),
            compute_ops=2.0 * m * k * n,
            compute_efficiency=0.6,
        )

    def gpu_profile(self) -> KernelProfile:
        m, k, n = self.params["m"], self.params["k"], self.params["n"]
        # cuBLAS sgemm approaches peak for these shapes.
        return KernelProfile(
            name="gpu-gemm",
            bytes_accessed=4.0 * (m * k + k * n + m * n),
            compute_ops=2.0 * m * k * n,
            compute_efficiency=0.7,
        )
