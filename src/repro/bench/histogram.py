"""Histogram (Table I, Image Processing; modeled after Phoenix).

Computes the distribution of RGB values of a 24-bit bitmap.  To avoid
random access on the PIM side, each color channel is traversed
sequentially for each of the 256 possible values using the equality
operation plus a reduction (Section VIII "Histogram").  The 768 reductions
make reduction the limiting factor -- all PIM variants beat the CPU but
lose to the GPU.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.images import channel_planes, synthetic_image

NUM_LEVELS = 256
NUM_CHANNELS = 3


class HistogramBenchmark(PimBenchmark):
    key = "histogram"
    name = "Histogram"
    domain = "Image Processing"
    execution_type = "PIM"
    paper_input = "1.4 x 10^9 bytes, 24-bit .bmp"

    @classmethod
    def default_params(cls):
        return {"width": 64, "height": 48, "seed": 29}

    @classmethod
    def paper_params(cls):
        # 1.4e9 bytes of 24-bit pixels ~= 466M pixels per channel.
        return {"width": 24_320, "height": 19_200, "seed": 29}

    def run_pim(self, device: PimDevice, host: HostModel):
        width, height = self.params["width"], self.params["height"]
        num_pixels = width * height
        image = planes = None
        if device.functional:
            image = synthetic_image(width, height, seed=self.params["seed"])
            planes = channel_planes(image)
        obj_chan = device.alloc(num_pixels, PimDataType.UINT8)
        obj_mask = device.alloc_associated(obj_chan, PimDataType.BOOL)
        hist = np.zeros((NUM_CHANNELS, NUM_LEVELS), dtype=np.int64)
        def one_channel(channel: int) -> None:
            device.copy_host_to_device(
                planes[channel] if planes is not None else None, obj_chan
            )
            if device.functional:
                for level in range(NUM_LEVELS):
                    device.execute(
                        PimCmdKind.EQ_SCALAR, (obj_chan,), obj_mask, scalar=level
                    )
                    hist[channel, level] = device.execute(
                        PimCmdKind.REDSUM, (obj_mask,)
                    )
            else:
                device.execute(
                    PimCmdKind.EQ_SCALAR, (obj_chan,), obj_mask,
                    scalar=0x55, repeat=NUM_LEVELS,
                )
                device.execute(PimCmdKind.REDSUM, (obj_mask,), repeat=NUM_LEVELS)

        if device.functional:
            for channel in range(NUM_CHANNELS):
                one_channel(channel)
        else:
            # Analytic channels are indistinguishable (same transfer, same
            # two repeated commands), so record channel 0 and replay the
            # other two (docs/PERFORMANCE.md §5).
            with device.stats.recorded_trace() as trace:
                one_channel(0)
            device.stats.replay_trace(trace, times=NUM_CHANNELS - 1)
        device.free(obj_chan)
        device.free(obj_mask)
        if device.functional:
            return {"image": image, "hist": hist}
        return None

    def verify(self, outputs) -> bool:
        image = outputs["image"]
        for channel in range(NUM_CHANNELS):
            expected = np.bincount(
                image[:, :, channel].reshape(-1), minlength=NUM_LEVELS
            )
            if not np.array_equal(outputs["hist"][channel], expected):
                return False
        return True

    def cpu_profile(self) -> KernelProfile:
        n = self.params["width"] * self.params["height"] * NUM_CHANNELS
        # Phoenix-style streaming scan with table increments (the increments
        # serialize on cache lines, hence the modest compute efficiency).
        return KernelProfile(
            name="cpu-histogram",
            bytes_accessed=float(n),
            compute_ops=2.0 * n,
            mem_efficiency=0.7,
            compute_efficiency=0.12,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["width"] * self.params["height"] * NUM_CHANNELS
        # CUB histogram: shared-memory privatization keeps it near streaming.
        return KernelProfile(
            name="gpu-histogram",
            bytes_accessed=float(n),
            compute_ops=2.0 * n,
            mem_efficiency=0.7,
            compute_efficiency=0.2,
        )
