"""Linear Regression (Table I, Supervised Learning; from Phoenix).

Least-squares fit of y = b0 + b1*x over 2-D integer points: PIM computes
the four sums (Sx, Sy, Sxy, Sxx) with two multiplications and four
reduction sums; the host solves the 2x2 normal equations.  The high
reduction-to-multiplication ratio makes bit-serial and Fulcrum comparable,
and all three variants beat the CPU and GPU (Section VIII "Linear
Regression").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.points import linear_points


class LinearRegressionBenchmark(PimBenchmark):
    key = "linreg"
    name = "Linear Regression"
    domain = "Supervised Learning"
    execution_type = "PIM"
    paper_input = "1,500,000,000 2D points"

    @classmethod
    def default_params(cls):
        return {"num_points": 8192, "seed": 43}

    @classmethod
    def paper_params(cls):
        return {"num_points": 1_500_000_000, "seed": 43}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_points"]
        x = y = None
        if device.functional:
            x, y = linear_points(n, seed=self.params["seed"])
        obj_x = device.alloc(n)
        obj_y = device.alloc_associated(obj_x)
        obj_tmp = device.alloc_associated(obj_x)
        device.copy_host_to_device(x, obj_x)
        device.copy_host_to_device(y, obj_y)
        sum_x = device.execute(PimCmdKind.REDSUM, (obj_x,))
        sum_y = device.execute(PimCmdKind.REDSUM, (obj_y,))
        device.execute(PimCmdKind.MUL, (obj_x, obj_y), obj_tmp)
        sum_xy = device.execute(PimCmdKind.REDSUM, (obj_tmp,))
        device.execute(PimCmdKind.MUL, (obj_x, obj_x), obj_tmp)
        sum_xx = device.execute(PimCmdKind.REDSUM, (obj_tmp,))
        for obj in (obj_x, obj_y, obj_tmp):
            device.free(obj)
        if device.functional:
            denom = n * sum_xx - sum_x * sum_x
            slope = (n * sum_xy - sum_x * sum_y) / denom
            intercept = (sum_y - slope * sum_x) / n
            return {"x": x, "y": y, "slope": slope, "intercept": intercept}
        return None

    def verify(self, outputs) -> bool:
        x = outputs["x"].astype(np.float64)
        y = outputs["y"].astype(np.float64)
        n = len(x)
        denom = n * np.dot(x, x) - x.sum() ** 2
        slope = (n * np.dot(x, y) - x.sum() * y.sum()) / denom
        intercept = (y.sum() - slope * x.sum()) / n
        return (
            abs(slope - outputs["slope"]) < 1e-9
            and abs(intercept - outputs["intercept"]) < 1e-9
        )

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_points"]
        return KernelProfile(
            name="cpu-linreg",
            bytes_accessed=8.0 * n,
            compute_ops=6.0 * n,
            mem_efficiency=0.85,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_points"]
        return KernelProfile(
            name="gpu-linreg",
            bytes_accessed=8.0 * n,
            compute_ops=6.0 * n,
            mem_efficiency=0.8,
        )
