"""Extension kernels beyond Table I.

Section II and IX list kernels PIMbench is being extended with; two are
implemented here to exercise the API's extensibility claim:

* **Prefix Sum** (related to the scan kernels of PrIM/InSituBench): a
  Hillis-Steele scan built from shifted on-device copies, boundary-masked
  selects, and additions -- log2(n) PIM steps.
* **String Match** (from Phoenix, and the DRAM-CAM associative-search
  use case): slide the pattern over the text with one shifted copy,
  scalar equality match, and AND per pattern byte -- the conditional
  match-update style DRAM-AP's associative gates target.

Both register in ``EXTENSION_BENCHMARKS`` (kept apart from the Table I
suite so the figure regenerations stay faithful to the paper).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel


class PrefixSumBenchmark(PimBenchmark):
    key = "prefixsum"
    name = "Prefix Sum"
    domain = "Linear Algebra"
    execution_type = "PIM"
    paper_input = "extension kernel (not in Table I)"

    @classmethod
    def default_params(cls):
        return {"num_elements": 4096, "seed": 61}

    @classmethod
    def paper_params(cls):
        return {"num_elements": 67_108_864, "seed": 61}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_elements"]
        values = None
        if device.functional:
            rng = np.random.default_rng(self.params["seed"])
            values = rng.integers(-100, 100, n).astype(np.int32)
        obj_acc = device.alloc(n)
        obj_shift = device.alloc_associated(obj_acc)
        obj_zero = device.alloc_associated(obj_acc)
        obj_mask = device.alloc_associated(obj_acc, PimDataType.BOOL)
        device.copy_host_to_device(values, obj_acc)
        device.execute(PimCmdKind.BROADCAST, (), obj_zero, scalar=0)
        step = 1
        while step < n:
            # acc[i] += acc[i - step], with the first `step` lanes masked.
            device.copy_device_to_device(obj_acc, obj_shift,
                                         shift_elements=-step)
            valid = None
            if device.functional:
                valid = np.arange(n) >= step
            device.copy_host_to_device(valid, obj_mask)
            device.execute(
                PimCmdKind.SELECT, (obj_mask, obj_shift, obj_zero), obj_shift
            )
            device.execute(PimCmdKind.ADD, (obj_acc, obj_shift), obj_acc)
            step *= 2
        result = device.copy_device_to_host(obj_acc)
        for obj in (obj_acc, obj_shift, obj_zero, obj_mask):
            device.free(obj)
        if device.functional:
            return {"values": values, "result": result}
        return None

    def verify(self, outputs) -> bool:
        with np.errstate(over="ignore"):
            expected = np.cumsum(outputs["values"], dtype=np.int32)
        return np.array_equal(outputs["result"], expected)

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_elements"]
        return KernelProfile(
            name="cpu-prefixsum",
            bytes_accessed=8.0 * n,
            compute_ops=float(n),
            mem_efficiency=0.7,  # sequential dependency limits vectorization
            compute_efficiency=0.2,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_elements"]
        # CUB device scan: a few streaming passes.
        return KernelProfile(
            name="gpu-prefixsum",
            bytes_accessed=12.0 * n,
            compute_ops=2.0 * n,
            mem_efficiency=0.7,
        )


class StringMatchBenchmark(PimBenchmark):
    key = "stringmatch"
    name = "String Match"
    domain = "Database"
    execution_type = "PIM + Host"
    paper_input = "extension kernel (not in Table I)"

    @classmethod
    def default_params(cls):
        return {"text_length": 16384, "pattern_length": 6, "seed": 67}

    @classmethod
    def paper_params(cls):
        return {"text_length": 1_073_741_824, "pattern_length": 16, "seed": 67}

    def _make_text(self, n: int, m: int):
        """Random text over a small alphabet, seeded with real matches."""
        rng = np.random.default_rng(self.params["seed"])
        text = rng.integers(97, 101, n).astype(np.uint8)  # 'a'..'d'
        pattern = rng.integers(97, 101, m).astype(np.uint8)
        for start in rng.integers(0, n - m, 20):  # plant occurrences
            text[start:start + m] = pattern
        return text, pattern

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["text_length"]
        m = self.params["pattern_length"]
        text = pattern = None
        if device.functional:
            text, pattern = self._make_text(n, m)
        obj_text = device.alloc(n, PimDataType.UINT8)
        obj_shift = device.alloc_associated(obj_text)
        obj_hits = device.alloc_associated(obj_text, PimDataType.BOOL)
        obj_match = device.alloc_associated(obj_text, PimDataType.BOOL)
        device.copy_host_to_device(text, obj_text)
        for j in range(m):
            byte = int(pattern[j]) if pattern is not None else 97 + (j % 4)
            device.copy_device_to_device(obj_text, obj_shift, shift_elements=j)
            device.execute(
                PimCmdKind.EQ_SCALAR, (obj_shift,), obj_match, scalar=byte
            )
            if j == 0:
                device.execute(PimCmdKind.COPY, (obj_match,), obj_hits)
            else:
                device.execute(PimCmdKind.AND, (obj_hits, obj_match), obj_hits)
        # Mask the wrap-around tail, then count and fetch the positions.
        tail_valid = None
        if device.functional:
            tail_valid = np.arange(n) <= n - m
        device.copy_host_to_device(tail_valid, obj_match)
        device.execute(PimCmdKind.AND, (obj_hits, obj_match), obj_hits)
        count = device.execute(PimCmdKind.REDSUM, (obj_hits,))
        bitmap = device.copy_device_to_host(obj_hits)
        host.run(KernelProfile(
            "host-bitmap-walk", bytes_accessed=n / 8.0, compute_ops=n / 8.0,
            mem_efficiency=0.8, compute_efficiency=0.3,
        ))
        for obj in (obj_text, obj_shift, obj_hits, obj_match):
            device.free(obj)
        if device.functional:
            positions = np.flatnonzero(bitmap)
            return {
                "text": text, "pattern": pattern,
                "count": count, "positions": positions,
            }
        return None

    def verify(self, outputs) -> bool:
        text = outputs["text"].tobytes()
        pattern = outputs["pattern"].tobytes()
        expected = []
        start = text.find(pattern)
        while start != -1:
            expected.append(start)
            start = text.find(pattern, start + 1)
        return (
            outputs["count"] == len(expected)
            and np.array_equal(outputs["positions"], expected)
        )

    def cpu_profile(self) -> KernelProfile:
        n = self.params["text_length"]
        # memmem-style scan: near streaming with per-byte compares.
        return KernelProfile(
            name="cpu-stringmatch",
            bytes_accessed=float(n),
            compute_ops=2.0 * n,
            mem_efficiency=0.8,
            compute_efficiency=0.3,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["text_length"]
        return KernelProfile(
            name="gpu-stringmatch",
            bytes_accessed=float(n),
            compute_ops=2.0 * n,
            mem_efficiency=0.7,
            compute_efficiency=0.2,
        )


def _all_extensions():
    from repro.bench.extensions2 import PcaBenchmark, TransitiveClosureBenchmark

    return (
        PrefixSumBenchmark,
        StringMatchBenchmark,
        TransitiveClosureBenchmark,
        PcaBenchmark,
    )


EXTENSION_BENCHMARKS = _all_extensions()
