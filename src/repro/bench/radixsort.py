"""Radix Sort (Table I, Sort; from the InSituBench follow-on work).

LSD radix sort over 8-bit digits using counting sort per pass: the
*counting* phase runs on PIM (digit extraction with shift/mask, then one
equality-match plus reduction per bucket), while the *sorting* phase --
the data reshuffle -- runs on the host because these PIM architectures
have no shuffle support (Section VIII "Radix Sort").  The host scatter
dominates, so PIM shows only a slight speedup over the CPU and loses
badly to the GPU's CUB radix sort.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.core.commands import PimCmdKind
from repro.config.device import PimDataType
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.vectors import random_int_vector

DIGIT_BITS = 8
NUM_BUCKETS = 1 << DIGIT_BITS


class RadixSortBenchmark(PimBenchmark):
    key = "radixsort"
    name = "Radix Sort"
    domain = "Sort"
    execution_type = "PIM + Host"
    random_access = True
    paper_input = "67,108,864 32-bit INT"

    @classmethod
    def default_params(cls):
        return {"num_elements": 2048, "seed": 13}

    @classmethod
    def paper_params(cls):
        return {"num_elements": 67_108_864, "seed": 13}

    def _host_scatter_profile(self, n: int) -> KernelProfile:
        # Stable scatter of n records to bucket offsets: streaming read,
        # scattered write (low effective bandwidth).
        return KernelProfile(
            name="host-scatter",
            bytes_accessed=8.0 * n,
            compute_ops=2.0 * n,
            mem_efficiency=0.15,
            compute_efficiency=0.3,
        )

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_elements"]
        num_passes = 32 // DIGIT_BITS
        keys = None
        if device.functional:
            keys = random_int_vector(
                n, seed=self.params["seed"], low=0, high=1 << 31
            ).astype(np.int32)
        current = keys
        obj_keys = device.alloc(n)
        obj_digit = device.alloc_associated(obj_keys)
        obj_mask = device.alloc_associated(obj_keys, PimDataType.BOOL)
        for p in range(num_passes):
            # PIM counting phase: extract the digit, then histogram it.
            with self.phase(device, f"count:pass{p}"):
                device.copy_host_to_device(current, obj_keys)
                device.execute(
                    PimCmdKind.SHIFT_RIGHT, (obj_keys,), obj_digit,
                    scalar=p * DIGIT_BITS,
                )
                device.execute(
                    PimCmdKind.AND_SCALAR, (obj_digit,), obj_digit,
                    scalar=NUM_BUCKETS - 1,
                )
                counts = np.zeros(NUM_BUCKETS, dtype=np.int64)
                if device.functional:
                    for bucket in range(NUM_BUCKETS):
                        device.execute(
                            PimCmdKind.EQ_SCALAR, (obj_digit,), obj_mask,
                            scalar=bucket,
                        )
                        counts[bucket] = device.execute(
                            PimCmdKind.REDSUM, (obj_mask,)
                        )
                else:
                    device.execute(
                        PimCmdKind.EQ_SCALAR, (obj_digit,), obj_mask,
                        scalar=0x55, repeat=NUM_BUCKETS,
                    )
                    device.execute(
                        PimCmdKind.REDSUM, (obj_mask,), repeat=NUM_BUCKETS
                    )
            # Host sorting phase: prefix-sum the counts and scatter.
            with self.phase(device, f"scatter:pass{p}"):
                host.run(self._host_scatter_profile(n))
            if device.functional:
                digits = (current >> (p * DIGIT_BITS)) & (NUM_BUCKETS - 1)
                offsets = np.zeros(NUM_BUCKETS, dtype=np.int64)
                offsets[1:] = np.cumsum(counts)[:-1]
                order = np.argsort(digits, kind="stable")
                current = current[order]
        for obj in (obj_keys, obj_digit, obj_mask):
            device.free(obj)
        if device.functional:
            return {"keys": keys, "result": current}
        return None

    def verify(self, outputs) -> bool:
        return np.array_equal(outputs["result"], np.sort(outputs["keys"]))

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_elements"]
        num_passes = 32 // DIGIT_BITS
        # Counting scan (streaming) plus scatter (scattered writes) per pass.
        scan = KernelProfile(
            "cpu-radix-count", bytes_accessed=4.0 * n, compute_ops=2.0 * n,
            mem_efficiency=0.8, compute_efficiency=0.4,
        )
        scatter = self._host_scatter_profile(n)
        return (scan + scatter).scaled(num_passes)

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_elements"]
        # CUB device radix sort: near-streaming bandwidth for all passes.
        return KernelProfile(
            name="gpu-radix",
            bytes_accessed=8.0 * n * (32 // DIGIT_BITS),
            compute_ops=4.0 * n,
            mem_efficiency=0.6,
        )
