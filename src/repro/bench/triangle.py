"""Triangle Count (Table I, Graph).

For every edge (u, v), the number of common neighbors is the population
count of ``adj_row[u] AND adj_row[v]`` over the packed adjacency bitmap;
summing over all edges counts each triangle three times [69].  The bitmap
rows for each edge batch are gathered on the host (the random-access part)
and streamed to the device, where a single AND + POPCOUNT + REDSUM chain
processes the whole batch -- so the kernel is fast (AND is native,
especially for bit-serial) but the gather-driven data movement erases the
win, exactly the Section VIII "Triangle Count" finding.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark, ceil_div
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.graphs import adjacency_bitmap, count_triangles_reference, random_graph

WORD_BITS = 32


class TriangleCountBenchmark(PimBenchmark):
    key = "tricount"
    name = "Triangle Count"
    domain = "Graph"
    execution_type = "PIM"
    random_access = True
    paper_input = "227,320 nodes and 1,628,268 edges"

    @classmethod
    def default_params(cls):
        return {"num_nodes": 96, "num_edges": 600, "seed": 19, "num_chunks": 2}

    @classmethod
    def paper_params(cls):
        return {
            "num_nodes": 227_320,
            "num_edges": 1_628_268,
            "seed": 19,
            "num_chunks": 8,
        }

    def run_pim(self, device: PimDevice, host: HostModel):
        nodes = self.params["num_nodes"]
        edges = self.params["num_edges"]
        chunks = self.params["num_chunks"]
        words_per_row = math.ceil(nodes / WORD_BITS)

        graph = bitmap = edge_list = None
        if device.functional:
            graph = random_graph(nodes, edges, seed=self.params["seed"])
            bitmap = adjacency_bitmap(graph, WORD_BITS)
            edge_list = np.array(graph.edges(), dtype=np.int64)
            edges = len(edge_list)

        # The packed adjacency bitmap is resident on the device; per-edge
        # row pairs are gathered device-internally (the random-access part,
        # serialized over the module's internal bus).
        obj_bitmap = device.alloc(nodes * words_per_row, PimDataType.UINT32)
        device.copy_host_to_device(
            bitmap.reshape(-1) if bitmap is not None else None, obj_bitmap
        )
        if edges == 0:  # edgeless graph: nothing to intersect
            device.free(obj_bitmap)
            if device.functional:
                return {"graph": graph, "triangles": 0}
            return None
        edges_per_chunk = ceil_div(edges, chunks)
        chunk_elems = edges_per_chunk * words_per_row
        obj_u = device.alloc(chunk_elems, PimDataType.UINT32)
        obj_v = device.alloc_associated(obj_u)
        obj_and = device.alloc_associated(obj_u)
        obj_pop = device.alloc_associated(obj_u)
        total = 0
        for c in range(chunks):
            start = c * edges_per_chunk
            count = min(edges_per_chunk, edges - start)
            if count <= 0:
                break
            rows_u = rows_v = None
            if device.functional:
                batch = edge_list[start:start + count]
                rows_u = _pad(bitmap[batch[:, 0]].reshape(-1), chunk_elems)
                rows_v = _pad(bitmap[batch[:, 1]].reshape(-1), chunk_elems)
            device.model_gather(obj_u, rows_u)
            device.model_gather(obj_v, rows_v)
            device.execute(PimCmdKind.AND, (obj_u, obj_v), obj_and)
            device.execute(PimCmdKind.POPCOUNT, (obj_and,), obj_pop)
            total += device.execute(PimCmdKind.REDSUM, (obj_pop,)) or 0
        for obj in (obj_bitmap, obj_u, obj_v, obj_and, obj_pop):
            device.free(obj)
        if device.functional:
            return {"graph": graph, "triangles": total // 3}
        return None

    def verify(self, outputs) -> bool:
        return outputs["triangles"] == count_triangles_reference(outputs["graph"])

    def cpu_profile(self) -> KernelProfile:
        edges = self.params["num_edges"]
        nodes = self.params["num_nodes"]
        avg_degree = 2.0 * edges / nodes
        # GAPBS set-intersection: ~avg_degree comparisons per edge with
        # scattered neighbor-list reads.
        work = edges * avg_degree
        return KernelProfile(
            name="cpu-tricount",
            bytes_accessed=8.0 * work,
            compute_ops=2.0 * work,
            mem_efficiency=0.3,
            compute_efficiency=0.3,
        )

    def gpu_profile(self) -> KernelProfile:
        edges = self.params["num_edges"]
        nodes = self.params["num_nodes"]
        work = edges * (2.0 * edges / nodes)
        # Gunrock: same algorithmic work at higher bandwidth utilization.
        return KernelProfile(
            name="gpu-tricount",
            bytes_accessed=8.0 * work,
            compute_ops=2.0 * work,
            mem_efficiency=0.5,
            compute_efficiency=0.3,
        )


def _pad(values: np.ndarray, size: int) -> np.ndarray:
    if len(values) == size:
        return values
    padded = np.zeros(size, dtype=values.dtype)
    padded[: len(values)] = values
    return padded
