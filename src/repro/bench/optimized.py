"""Architecture-optimized benchmark variants (Section IX).

The paper's portability methodology deliberately runs one implementation
everywhere and flags the cost: "the implementation may not fully exploit
architecture-specific optimizations ... architecture-specific PIM API
calls may help".  This module carries the optimized counterparts used to
quantify that remark; each pairs with a Table I benchmark and computes
bit-identical results.
"""

from __future__ import annotations

import numpy as np

from repro.bench.brightness import BrightnessBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.images import synthetic_image


class BrightnessFusedBenchmark(BrightnessBenchmark):
    """Brightness via the fused saturating add (one command, not two).

    Halves the bit-serial row traffic relative to the portable
    min-then-add implementation; the baselines and verification are
    inherited unchanged, so results compare apples-to-apples.
    """

    key = "brightness-fused"
    name = "Brightness (fused)"

    def run_pim(self, device: PimDevice, host: HostModel):
        width, height = self.params["width"], self.params["height"]
        delta = self.params["delta"]
        if not 0 <= delta <= 255:
            raise ValueError(f"delta must be a byte value, got {delta}")
        n = width * height * 3
        image = flat = None
        if device.functional:
            image = synthetic_image(width, height, seed=self.params["seed"])
            flat = image.reshape(-1)
        obj = device.alloc(n, PimDataType.UINT8)
        device.copy_host_to_device(flat, obj)
        device.execute(PimCmdKind.SAT_ADD_SCALAR, (obj,), obj, scalar=delta)
        result = device.copy_device_to_host(obj)
        device.free(obj)
        if device.functional:
            return {"image": image, "delta": delta, "result": result}
        return None


class VggChannelBatchedBenchmark:
    """Channel-batched convolution: the architecture-tuned VGG mapping.

    The portable VGG issues one ``pimScaledAdd`` per (output channel,
    input channel, kernel offset) -- millions of commands whose vectors
    under-fill the device in deep layers.  This variant folds the output
    channels into the vector dimension: per (input channel, kernel
    offset) it replicates the patch across the Cout segments (an
    on-device broadcast) and multiplies by a per-segment weight vector
    (each core receives one constant from the command stream, the
    Section V-C broadcast semantics), cutting the command count by Cout.

    Not part of the Table I figures; used by ``optimization_gains`` to
    quantify the portability cost the paper's Section IX discusses.
    """

    def __init__(self, batch: int = 2, image_size: int = 8,
                 conv_plan=None, seed: int = 53) -> None:
        self.batch = batch
        self.image_size = image_size
        self.conv_plan = conv_plan if conv_plan is not None else [4, "M", 8, "M"]
        self.seed = seed

    @classmethod
    def paper_scale(cls) -> "VggChannelBatchedBenchmark":
        from repro.bench.vgg import VGG_CONFIGS

        return cls(batch=64, image_size=224, conv_plan=VGG_CONFIGS[16])

    def run_conv_stack(self, device: PimDevice):
        """Run the convolution stack; returns activations (functional)."""
        from repro.bench.vgg import KERNEL_OFFSETS, _shifted_plane

        rng = np.random.default_rng(self.seed)
        size = self.image_size
        cin = 3
        acts = None
        if device.functional:
            rng_in = np.random.default_rng(self.seed + 1)
            acts = rng_in.integers(
                0, 8, size=(cin, self.batch, size, size)
            ).astype(np.int64)
        for entry in self.conv_plan:
            if entry == "M":
                if device.functional:
                    acts = np.max(
                        [acts[:, :, 0::2, 0::2], acts[:, :, 0::2, 1::2],
                         acts[:, :, 1::2, 0::2], acts[:, :, 1::2, 1::2]],
                        axis=0,
                    )
                size //= 2
                continue
            cout = entry
            plane_elems = self.batch * size * size
            total = plane_elems * cout
            weights = rng.integers(-3, 4, size=(cout, cin, 9)).astype(np.int64)
            obj_patch = device.alloc(total)
            obj_weight = device.alloc_associated(obj_patch)
            obj_tmp = device.alloc_associated(obj_patch)
            obj_acc = device.alloc_associated(obj_patch)
            device.execute(PimCmdKind.BROADCAST, (), obj_acc, scalar=0)
            for ci in range(cin):
                for ki, (dy, dx) in enumerate(KERNEL_OFFSETS):
                    patch = wvec = None
                    if device.functional:
                        shifted = _shifted_plane(acts[ci], dy, dx).reshape(-1)
                        patch = np.tile(shifted, cout)
                        wvec = np.repeat(weights[:, ci, ki], plane_elems)
                    # Patch replicated over the Cout segments on-device;
                    # the weight is a per-core constant from the command
                    # stream (charged as its Cout words of traffic).
                    device.model_gather(obj_patch, patch,
                                        num_bytes=plane_elems * 4)
                    device.model_gather(obj_weight, wvec, num_bytes=cout * 4)
                    device.execute(PimCmdKind.MUL, (obj_patch, obj_weight),
                                   obj_tmp)
                    device.execute(PimCmdKind.ADD, (obj_tmp, obj_acc), obj_acc)
            device.execute(PimCmdKind.MAX_SCALAR, (obj_acc,), obj_acc, scalar=0)
            if device.functional:  # the device already applied ReLU
                acts = obj_acc.require_data().astype(np.int64).reshape(
                    cout, self.batch, size, size
                )
            for obj in (obj_patch, obj_weight, obj_tmp, obj_acc):
                device.free(obj)
            cin = cout
        return acts

    def reference_conv_stack(self) -> np.ndarray:
        """Numpy reference of the same stack (same weight stream)."""
        from repro.bench.vgg import KERNEL_OFFSETS, _shifted_plane

        rng = np.random.default_rng(self.seed)
        size = self.image_size
        cin = 3
        rng_in = np.random.default_rng(self.seed + 1)
        acts = rng_in.integers(
            0, 8, size=(cin, self.batch, size, size)
        ).astype(np.int64)
        for entry in self.conv_plan:
            if entry == "M":
                acts = np.max(
                    [acts[:, :, 0::2, 0::2], acts[:, :, 0::2, 1::2],
                     acts[:, :, 1::2, 0::2], acts[:, :, 1::2, 1::2]], axis=0,
                )
                size //= 2
                continue
            cout = entry
            weights = rng.integers(-3, 4, size=(cout, cin, 9)).astype(np.int64)
            new = np.zeros((cout, self.batch, size, size), dtype=np.int64)
            for co in range(cout):
                for ci in range(cin):
                    for ki, (dy, dx) in enumerate(KERNEL_OFFSETS):
                        for b in range(self.batch):
                            new[co, b] += weights[co, ci, ki] * _shifted_plane(
                                acts[ci, b][None], dy, dx
                            )[0]
            acts = np.maximum(new, 0)
            cin = cout
        return acts


OPTIMIZED_BENCHMARKS = (BrightnessFusedBenchmark,)


def optimization_gains(
    num_ranks: int = 32, include_vgg: bool = True
) -> "dict[str, dict[str, float]]":
    """Kernel-time gain of each optimized variant over its portable twin.

    Returns ``{variant_key: {device_value: gain}}``.
    """
    from repro.config.presets import PAPER_DEVICE_TYPES, make_device_config

    gains: "dict[str, dict[str, float]]" = {}
    pairs = [(BrightnessFusedBenchmark, BrightnessBenchmark)]
    for optimized_cls, portable_cls in pairs:
        per_device = {}
        for device_type in PAPER_DEVICE_TYPES:
            times = {}
            for cls in (optimized_cls, portable_cls):
                device = PimDevice(
                    make_device_config(device_type, num_ranks),
                    functional=False,
                )
                bench = cls(**cls.paper_params())
                bench.run(device)
                times[cls] = device.stats.kernel_time_ns
            per_device[device_type.value] = (
                times[portable_cls] / times[optimized_cls]
            )
        gains[optimized_cls.key] = per_device

    if not include_vgg:  # the VGG pair simulates six paper-scale runs
        return gains

    # VGG: portable per-output-channel conv stack vs the channel-batched
    # mapping (conv stack only; the dense/pool structure is shared).
    from repro.bench.vgg import Vgg16Benchmark

    per_device = {}
    for device_type in PAPER_DEVICE_TYPES:
        portable = PimDevice(
            make_device_config(device_type, num_ranks), functional=False
        )
        Vgg16Benchmark(**Vgg16Benchmark.paper_params()).run(portable)
        optimized = PimDevice(
            make_device_config(device_type, num_ranks), functional=False,
        )
        VggChannelBatchedBenchmark.paper_scale().run_conv_stack(optimized)
        per_device[device_type.value] = (
            portable.stats.kernel_time_ns / optimized.stats.kernel_time_ns
        )
    gains["vgg-channel-batched"] = per_device
    return gains
