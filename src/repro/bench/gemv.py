"""Matrix-Vector Multiplication / GEMV (Table I, Linear Algebra).

y = M @ x, computed column-at-a-time: each matrix column is streamed to
the device and accumulated with ``pimScaledAdd`` using the corresponding
x element as the scalar.  Fulcrum's single-cycle multiply makes it the
winner; bit-serial suffers its quadratic multiplication (Section VIII
"GEMV").  The paper's chosen problem leaves bit-serial and Fulcrum
under-utilized (Section IX), which the row-granular models reproduce.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.vectors import random_int_matrix, random_int_vector

#: Scalar stand-in for microprogram costing in analytic mode: 16 of 32
#: bits set, the expected popcount of a random multiplier.
REPRESENTATIVE_SCALAR = 0x55555555


class GemvBenchmark(PimBenchmark):
    key = "gemv"
    name = "GEMV"
    domain = "Linear Algebra"
    execution_type = "PIM"
    paper_input = "2,352,160 x 8,192 32-bit INT"

    @classmethod
    def default_params(cls):
        return {"num_rows": 96, "num_cols": 24, "seed": 3}

    @classmethod
    def paper_params(cls):
        return {"num_rows": 2_352_160, "num_cols": 8_192, "seed": 3}

    def run_pim(self, device: PimDevice, host: HostModel):
        rows, cols = self.params["num_rows"], self.params["num_cols"]
        matrix = x = None
        if device.functional:
            matrix = random_int_matrix(rows, cols, seed=self.params["seed"])
            x = random_int_vector(cols, seed=self.params["seed"] + 1, low=-50, high=50)
        obj_col = device.alloc(rows)
        obj_acc = device.alloc_associated(obj_col)
        device.execute(PimCmdKind.BROADCAST, (), obj_acc, scalar=0)
        if device.functional:
            for j in range(cols):
                device.copy_host_to_device(matrix[:, j], obj_col)
                device.execute(
                    PimCmdKind.SCALED_ADD, (obj_col, obj_acc), obj_acc,
                    scalar=int(x[j]),
                )
        else:
            device.copy_host_to_device(None, obj_col, repeat=cols)
            device.execute(
                PimCmdKind.SCALED_ADD, (obj_col, obj_acc), obj_acc,
                scalar=REPRESENTATIVE_SCALAR, repeat=cols,
            )
        result = device.copy_device_to_host(obj_acc)
        device.free(obj_col)
        device.free(obj_acc)
        if device.functional:
            return {"matrix": matrix, "x": x, "result": result}
        return None

    def verify(self, outputs) -> bool:
        expected = outputs["matrix"].astype(np.int64) @ outputs["x"].astype(np.int64)
        return np.array_equal(outputs["result"], expected.astype(np.int32))

    def cpu_profile(self) -> KernelProfile:
        rows, cols = self.params["num_rows"], self.params["num_cols"]
        # OpenBLAS sgemv streams the matrix once; memory bound.
        return KernelProfile(
            name="cpu-gemv",
            bytes_accessed=4.0 * rows * cols,
            compute_ops=2.0 * rows * cols,
            mem_efficiency=0.8,
        )

    def gpu_profile(self) -> KernelProfile:
        rows, cols = self.params["num_rows"], self.params["num_cols"]
        return KernelProfile(
            name="gpu-gemv",
            bytes_accessed=4.0 * rows * cols,
            compute_ops=2.0 * rows * cols,
            mem_efficiency=0.8,
        )
