"""K-Nearest Neighbors (Table I, Supervised Learning).

Batched KNN inference with Manhattan distance: the per-query distance
vector (|x - qx| + |y - qy|) is computed on PIM with subtract/abs/add;
the top-k selection and majority classification run on the host because
PIM lacks shuffle support (Section VIII "KNN").  The host selection phase
dominates, leaving modest overall speedups.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.points import labeled_points_2d


class KnnBenchmark(PimBenchmark):
    key = "knn"
    name = "KNN"
    domain = "Supervised Learning"
    execution_type = "PIM + Host"
    random_access = True
    paper_input = "6,710,886 2D data points"

    @classmethod
    def default_params(cls):
        return {"num_points": 2048, "num_queries": 8, "k": 5,
                "num_classes": 4, "seed": 41}

    @classmethod
    def paper_params(cls):
        return {"num_points": 6_710_886, "num_queries": 64, "k": 5,
                "num_classes": 4, "seed": 41}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_points"]
        num_queries = self.params["num_queries"]
        k = self.params["k"]
        points = labels = queries = None
        if device.functional:
            points, labels = labeled_points_2d(
                n, self.params["num_classes"], seed=self.params["seed"]
            )
            rng = np.random.default_rng(self.params["seed"] + 1)
            queries = points[rng.integers(0, n, size=num_queries)] + rng.integers(
                -5, 6, size=(num_queries, 2)
            ).astype(np.int32)
        obj_x = device.alloc(n)
        obj_y = device.alloc_associated(obj_x)
        obj_dx = device.alloc_associated(obj_x)
        obj_dy = device.alloc_associated(obj_x)
        with self.phase(device, "load"):
            device.copy_host_to_device(
                points[:, 0] if points is not None else None, obj_x
            )
            device.copy_host_to_device(
                points[:, 1] if points is not None else None, obj_y
            )
        predictions = []
        for q in range(num_queries):
            qx = int(queries[q, 0]) if queries is not None else 123
            qy = int(queries[q, 1]) if queries is not None else 456
            with self.phase(device, "distance"):
                device.execute(PimCmdKind.SUB_SCALAR, (obj_x,), obj_dx, scalar=qx)
                device.execute(PimCmdKind.ABS, (obj_dx,), obj_dx)
                device.execute(PimCmdKind.SUB_SCALAR, (obj_y,), obj_dy, scalar=qy)
                device.execute(PimCmdKind.ABS, (obj_dy,), obj_dy)
                device.execute(PimCmdKind.ADD, (obj_dx, obj_dy), obj_dx)
                distances = device.copy_device_to_host(obj_dx)
            # Host: top-k partial selection plus majority vote.
            with self.phase(device, "select"):
                host.run(self._select_profile(n, k))
            if device.functional:
                nearest = np.argpartition(distances, k)[:k]
                votes = np.bincount(labels[nearest],
                                    minlength=self.params["num_classes"])
                predictions.append(int(np.argmax(votes)))
        for obj in (obj_x, obj_y, obj_dx, obj_dy):
            device.free(obj)
        if device.functional:
            return {
                "points": points,
                "labels": labels,
                "queries": queries,
                "k": k,
                "predictions": np.array(predictions),
            }
        return None

    def _select_profile(self, n: int, k: int) -> KernelProfile:
        return KernelProfile(
            name="host-topk",
            bytes_accessed=4.0 * n,
            compute_ops=float(n + k * 16),
            mem_efficiency=0.6,
            compute_efficiency=0.25,
        )

    def verify(self, outputs) -> bool:
        points = outputs["points"].astype(np.int64)
        labels = outputs["labels"]
        k = outputs["k"]
        for q, query in enumerate(outputs["queries"].astype(np.int64)):
            dist = np.abs(points - query).sum(axis=1)
            nearest = np.argpartition(dist, k)[:k]
            votes = np.bincount(labels[nearest],
                                minlength=self.params["num_classes"])
            if int(np.argmax(votes)) != outputs["predictions"][q]:
                return False
        return True

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_points"]
        q = self.params["num_queries"]
        # Per query: distance scan (8 bytes + 4 ops per point) + selection.
        return KernelProfile(
            name="cpu-knn",
            bytes_accessed=12.0 * n * q,
            compute_ops=5.0 * n * q,
            mem_efficiency=0.7,
            compute_efficiency=0.3,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_points"]
        q = self.params["num_queries"]
        return KernelProfile(
            name="gpu-knn",
            bytes_accessed=12.0 * n * q,
            compute_ops=5.0 * n * q,
            mem_efficiency=0.6,
            compute_efficiency=0.3,
        )
