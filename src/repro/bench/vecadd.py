"""Vector Addition (Table I, Linear Algebra; adapted from PrIM).

Element-wise z = x + y.  The paper's ideal bit-serial candidate: addition
is linear in bit width, so the row-wide bit-slice parallelism dominates
and bit-serial shows the largest speedups (Section VIII "Vector
Addition").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.vectors import random_int_vector


class VectorAddBenchmark(PimBenchmark):
    key = "vecadd"
    name = "Vector Addition"
    domain = "Linear Algebra"
    execution_type = "PIM"
    paper_input = "2,035,544,320 32-bit INT"

    @classmethod
    def default_params(cls):
        return {"num_elements": 4096, "seed": 7}

    @classmethod
    def paper_params(cls):
        return {"num_elements": 2_035_544_320, "seed": 7}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_elements"]
        x = y = None
        if device.functional:
            x = random_int_vector(n, seed=self.params["seed"])
            y = random_int_vector(n, seed=self.params["seed"] + 1)
        obj_x = device.alloc(n)
        obj_y = device.alloc_associated(obj_x)
        obj_z = device.alloc_associated(obj_x)
        with self.phase(device, "load"):
            device.copy_host_to_device(x, obj_x)
            device.copy_host_to_device(y, obj_y)
        with self.phase(device, "kernel"):
            device.execute(PimCmdKind.ADD, (obj_x, obj_y), obj_z)
        with self.phase(device, "readback"):
            result = device.copy_device_to_host(obj_z)
        for obj in (obj_x, obj_y, obj_z):
            device.free(obj)
        if device.functional:
            return {"x": x, "y": y, "result": result}
        return None

    def verify(self, outputs) -> bool:
        expected = outputs["x"] + outputs["y"]
        return np.array_equal(outputs["result"], expected)

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_elements"]
        # STREAM-class kernel: two loads, one store per element.
        return KernelProfile(
            name="cpu-vecadd",
            bytes_accessed=12.0 * n,
            compute_ops=float(n),
            mem_efficiency=0.85,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_elements"]
        return KernelProfile(
            name="gpu-vecadd",
            bytes_accessed=12.0 * n,
            compute_ops=float(n),
            mem_efficiency=0.85,
        )
