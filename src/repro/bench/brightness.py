"""Brightness (Table I, Image Processing; modeled after SIMDRAM's).

Adds a coefficient to every RGB byte with saturation: computed as
``min(pixel, 255 - delta) + delta`` so the addition can never wrap,
using the min and add PIM operations the paper describes.  Pure
streaming element-wise work: every PIM variant beats both CPU and GPU,
in time and in energy (Section VIII "Brightness").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.images import synthetic_image


class BrightnessBenchmark(PimBenchmark):
    key = "brightness"
    name = "Brightness"
    domain = "Image Processing"
    execution_type = "PIM"
    paper_input = "1.4 x 10^9 bytes, 24-bit .bmp"

    @classmethod
    def default_params(cls):
        return {"width": 64, "height": 48, "delta": 40, "seed": 31}

    @classmethod
    def paper_params(cls):
        return {"width": 24_320, "height": 19_200, "delta": 40, "seed": 31}

    def run_pim(self, device: PimDevice, host: HostModel):
        width, height = self.params["width"], self.params["height"]
        delta = self.params["delta"]
        if not 0 <= delta <= 255:
            raise ValueError(f"delta must be a byte value, got {delta}")
        n = width * height * 3
        image = None
        flat = None
        if device.functional:
            image = synthetic_image(width, height, seed=self.params["seed"])
            flat = image.reshape(-1)
        obj = device.alloc(n, PimDataType.UINT8)
        device.copy_host_to_device(flat, obj)
        device.execute(PimCmdKind.MIN_SCALAR, (obj,), obj, scalar=255 - delta)
        device.execute(PimCmdKind.ADD_SCALAR, (obj,), obj, scalar=delta)
        result = device.copy_device_to_host(obj)
        device.free(obj)
        if device.functional:
            return {"image": image, "delta": delta, "result": result}
        return None

    def verify(self, outputs) -> bool:
        expected = np.clip(
            outputs["image"].reshape(-1).astype(np.int32) + outputs["delta"],
            0, 255,
        ).astype(np.uint8)
        return np.array_equal(outputs["result"], expected)

    def cpu_profile(self) -> KernelProfile:
        n = self.params["width"] * self.params["height"] * 3
        return KernelProfile(
            name="cpu-brightness",
            bytes_accessed=2.0 * n,
            compute_ops=2.0 * n,
            mem_efficiency=0.85,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["width"] * self.params["height"] * 3
        return KernelProfile(
            name="gpu-brightness",
            bytes_accessed=2.0 * n,
            compute_ops=2.0 * n,
            mem_efficiency=0.85,
        )
