"""Filter-By-Key (Table I, Database; related to PrIM/InSituBench scans).

Scan a key column for records under a predicate (~1% selectivity): the
predicate evaluates on the DRAM side, producing a match bitmap, which the
host must then fetch and walk to gather the selected records.  The gather
is the bottleneck -- 31% of the CPU baseline's runtime but ~99% of the PIM
runtime (Section VIII "Filter-By-Key"), so PIM gains only a small speedup
over the CPU and none over the GPU.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.tables import key_value_table


class FilterByKeyBenchmark(PimBenchmark):
    key = "filter"
    name = "Filter-By-Key"
    domain = "Database"
    execution_type = "PIM + Host"
    paper_input = "1,073,741,824 key-value pairs"

    @classmethod
    def default_params(cls):
        return {"num_records": 8192, "selectivity": 0.01, "seed": 23}

    @classmethod
    def paper_params(cls):
        return {"num_records": 1_073_741_824, "selectivity": 0.01, "seed": 23}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_records"]
        selectivity = self.params["selectivity"]
        workload = None
        keys = None
        threshold = 10_000
        if device.functional:
            workload = key_value_table(n, selectivity, seed=self.params["seed"])
            keys = workload.keys
            threshold = workload.threshold
        obj_keys = device.alloc(n)
        obj_mask = device.alloc_associated(obj_keys, PimDataType.BOOL)
        # The table column is resident in the PIM module (the in-memory
        # scan use case); only the result bitmap moves, so data movement
        # stays negligible and the host gather dominates (Figure 7).
        if device.functional:
            obj_keys.set_data(keys)
        device.execute(
            PimCmdKind.LT_SCALAR, (obj_keys,), obj_mask, scalar=threshold
        )
        num_matches = device.execute(PimCmdKind.REDSUM, (obj_mask,))
        mask = device.copy_device_to_host(obj_mask)
        if not device.functional:
            num_matches = int(n * selectivity)
        # Host gather: walk the bitmap and collect matching records.
        host.run(self._gather_profile(n, num_matches))
        selected = None
        if device.functional:
            selected = keys[mask.astype(bool)]
        device.free(obj_keys)
        device.free(obj_mask)
        if device.functional:
            return {
                "workload": workload,
                "selected": selected,
                "num_matches": num_matches,
            }
        return None

    def _gather_profile(self, n: int, matches: int) -> KernelProfile:
        # Bitmap scan: word-at-a-time with bit tricks (a few ops per
        # 64-bit word), then scattered record reads for the matches.
        scan = KernelProfile(
            "host-bitmap-scan", bytes_accessed=n / 8.0, compute_ops=n / 8.0,
            mem_efficiency=0.8, compute_efficiency=0.3,
        )
        gather = KernelProfile(
            "host-record-gather", bytes_accessed=8.0 * matches,
            compute_ops=float(matches), mem_efficiency=0.05,
        )
        return scan + gather

    def verify(self, outputs) -> bool:
        workload = outputs["workload"]
        expected = workload.keys[workload.keys < workload.threshold]
        return (
            outputs["num_matches"] == len(expected)
            and np.array_equal(outputs["selected"], expected)
        )

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_records"]
        matches = int(n * self.params["selectivity"])
        # Predicate scan over the key column, then the same gather.
        scan = KernelProfile(
            "cpu-filter-scan", bytes_accessed=4.0 * n, compute_ops=float(n),
            mem_efficiency=0.8, compute_efficiency=0.4,
        )
        gather = KernelProfile(
            "cpu-record-gather", bytes_accessed=8.0 * matches,
            compute_ops=float(matches), mem_efficiency=0.05,
        )
        return scan + gather

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_records"]
        matches = int(n * self.params["selectivity"])
        # Thrust copy_if: scan plus compaction at high bandwidth.
        return KernelProfile(
            name="gpu-filter",
            bytes_accessed=4.0 * n + 8.0 * matches,
            compute_ops=2.0 * n,
            mem_efficiency=0.6,
        )
