"""K-means clustering (Table I, Unsupervised Learning; from Phoenix).

Lloyd iterations with Manhattan distance over 2-D integer points.  The
random-access assignment step is restructured for PIM with bitmasks
(Section VIII "K-means"): per centroid, distances are computed with
subtract/abs/add; a running elementwise minimum gives each point's best
distance; equality against it yields the centroid's membership mask; and
masked reductions (select + reduction sum) produce the per-cluster sums
the host divides to update centroids.  Simple ops only, so all three PIM
variants achieve large gains over CPU and GPU.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.points import clustered_points


class KMeansBenchmark(PimBenchmark):
    key = "kmeans"
    name = "K-means"
    domain = "Unsupervised Learning"
    execution_type = "PIM"
    random_access = True
    paper_input = "67,108,864 2D data, k = 20"

    @classmethod
    def default_params(cls):
        return {"num_points": 4096, "k": 4, "iterations": 4, "seed": 47}

    @classmethod
    def paper_params(cls):
        return {"num_points": 67_108_864, "k": 20, "iterations": 10, "seed": 47}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_points"]
        k = self.params["k"]
        iterations = self.params["iterations"]
        points = None
        centroids = np.zeros((k, 2), dtype=np.int64)
        if device.functional:
            points, _ = clustered_points(n, k, seed=self.params["seed"])
            centroids = points[:k].astype(np.int64).copy()  # first-k init

        obj_x = device.alloc(n)
        obj_y = device.alloc_associated(obj_x)
        obj_zero = device.alloc_associated(obj_x)
        obj_dx = device.alloc_associated(obj_x)
        obj_dy = device.alloc_associated(obj_x)
        obj_best = device.alloc_associated(obj_x)
        obj_mask = device.alloc_associated(obj_x, PimDataType.BOOL)
        obj_sel = device.alloc_associated(obj_x)
        dist_objs = [device.alloc_associated(obj_x) for _ in range(k)]
        device.copy_host_to_device(points[:, 0] if points is not None else None, obj_x)
        device.copy_host_to_device(points[:, 1] if points is not None else None, obj_y)
        device.execute(PimCmdKind.BROADCAST, (), obj_zero, scalar=0)

        def one_iteration() -> None:
            for c in range(k):
                if device.functional:
                    cx, cy = int(centroids[c, 0]), int(centroids[c, 1])
                else:
                    # Representative nonzero coordinates so the bit-serial
                    # scalar microprograms are costed for typical values.
                    cx, cy = 0x1235 + c, 0x2B67 + c
                device.execute(PimCmdKind.SUB_SCALAR, (obj_x,), obj_dx, scalar=cx)
                device.execute(PimCmdKind.ABS, (obj_dx,), obj_dx)
                device.execute(PimCmdKind.SUB_SCALAR, (obj_y,), obj_dy, scalar=cy)
                device.execute(PimCmdKind.ABS, (obj_dy,), obj_dy)
                device.execute(PimCmdKind.ADD, (obj_dx, obj_dy), dist_objs[c])
                if c == 0:
                    device.execute(PimCmdKind.COPY, (dist_objs[c],), obj_best)
                else:
                    device.execute(PimCmdKind.MIN, (obj_best, dist_objs[c]), obj_best)
            for c in range(k):
                device.execute(PimCmdKind.EQ, (dist_objs[c], obj_best), obj_mask)
                count = device.execute(PimCmdKind.REDSUM, (obj_mask,))
                device.execute(PimCmdKind.SELECT, (obj_mask, obj_x, obj_zero), obj_sel)
                sum_x = device.execute(PimCmdKind.REDSUM, (obj_sel,))
                device.execute(PimCmdKind.SELECT, (obj_mask, obj_y, obj_zero), obj_sel)
                sum_y = device.execute(PimCmdKind.REDSUM, (obj_sel,))
                if device.functional and count:
                    centroids[c, 0] = sum_x // count
                    centroids[c, 1] = sum_y // count
            # Host: divide the k sums to produce new centroids.
            host.run(KernelProfile(
                "host-centroid-update", bytes_accessed=32.0 * k,
                compute_ops=4.0 * k,
            ))

        if device.functional:
            for _ in range(iterations):
                one_iteration()
        else:
            # Analytic iterations issue the identical command sequence
            # (the representative scalars don't change between Lloyd
            # rounds), so record the first iteration and replay the rest
            # (docs/PERFORMANCE.md §5).
            with device.stats.recorded_trace() as trace:
                one_iteration()
            device.stats.replay_trace(trace, times=iterations - 1)
        for obj in [obj_x, obj_y, obj_zero, obj_dx, obj_dy, obj_best,
                    obj_mask, obj_sel] + dist_objs:
            device.free(obj)
        if device.functional:
            return {"points": points, "centroids": centroids}
        return None

    def verify(self, outputs) -> bool:
        """Re-run the same masked-update semantics on the host and compare."""
        points = outputs["points"].astype(np.int64)
        k = self.params["k"]
        centroids = points[:k].copy()
        for _ in range(self.params["iterations"]):
            dists = np.stack(
                [np.abs(points - centroids[c]).sum(axis=1) for c in range(k)]
            )
            best = dists.min(axis=0)
            new = centroids.copy()
            for c in range(k):
                mask = dists[c] == best  # ties join every matching cluster
                count = int(mask.sum())
                if count:
                    new[c] = points[mask].sum(axis=0) // count
            centroids = new
        return np.array_equal(outputs["centroids"], centroids)

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_points"]
        k = self.params["k"]
        iters = self.params["iterations"]
        # Assignment is k distance evaluations per point per iteration.
        return KernelProfile(
            name="cpu-kmeans",
            bytes_accessed=8.0 * n * iters,
            compute_ops=6.0 * n * k * iters,
            mem_efficiency=0.7,
            compute_efficiency=0.4,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_points"]
        k = self.params["k"]
        iters = self.params["iterations"]
        # Library k-means launches k distance kernels per iteration plus
        # atomics-heavy reductions, landing far below the ALU peak.
        return KernelProfile(
            name="gpu-kmeans",
            bytes_accessed=8.0 * n * iters,
            compute_ops=6.0 * n * k * iters,
            mem_efficiency=0.6,
            compute_efficiency=0.035,
        )
