"""Image Down Sampling (Table I, Image Processing).

Box filtering for uncompressed bitmaps: every output pixel is the average
of a 2x2 input box, computed with three additions and a right shift by two
(Section VIII "Image Downsampling").  The host restrides each channel into
four quadrant vectors (top-left/top-right/bottom-left/bottom-right of each
box) that are streamed to the device as 16-bit elements so the 4-way sum
cannot overflow.  All three PIM variants beat both baselines.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.config.device import PimDataType
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.images import box_downsample_reference, synthetic_image


class DownsampleBenchmark(PimBenchmark):
    key = "downsample"
    name = "Image Down Sampling"
    domain = "Image Processing"
    execution_type = "PIM"
    paper_input = "1.4 x 10^9 bytes, 24-bit .bmp"

    @classmethod
    def default_params(cls):
        return {"width": 64, "height": 48, "seed": 37}

    @classmethod
    def paper_params(cls):
        return {"width": 24_320, "height": 19_200, "seed": 37}

    def run_pim(self, device: PimDevice, host: HostModel):
        width, height = self.params["width"], self.params["height"]
        if width % 2 or height % 2:
            raise ValueError("box downsampling requires even dimensions")
        num_pixels = width * height
        out_pixels = (width // 2) * (height // 2)
        image = None
        if device.functional:
            image = synthetic_image(width, height, seed=self.params["seed"])
        obj_plane = device.alloc(num_pixels, PimDataType.INT16)
        obj_shift = device.alloc_associated(obj_plane)
        obj_sum = device.alloc_associated(obj_plane)
        obj_out = device.alloc(out_pixels, PimDataType.INT16)
        outputs = []
        for channel in range(3):
            plane = None
            if device.functional:
                plane = image[:, :, channel].astype(np.int16).reshape(-1)
            device.copy_host_to_device(plane, obj_plane)
            # Horizontal pair sum: plane + plane shifted left by one pixel,
            # then vertical pair sum via a one-row shift -- both shifts are
            # local in-subarray row copies.
            device.copy_device_to_device(obj_plane, obj_shift, shift_elements=1)
            device.execute(PimCmdKind.ADD, (obj_plane, obj_shift), obj_sum)
            device.copy_device_to_device(obj_sum, obj_shift, shift_elements=width)
            device.execute(PimCmdKind.ADD, (obj_sum, obj_shift), obj_sum)
            device.execute(PimCmdKind.SHIFT_RIGHT, (obj_sum,), obj_sum, scalar=2)
            # Compact the even-position results into the output object
            # (a strided on-device gather), then return it to the host.
            gathered = None
            if device.functional:
                full = obj_sum.require_data().reshape(height, width)
                gathered = full[0::2, 0::2].reshape(-1)
            device.model_gather(obj_out, gathered)
            outputs.append(device.copy_device_to_host(obj_out))
        for obj in (obj_plane, obj_shift, obj_sum, obj_out):
            device.free(obj)
        if device.functional:
            out = np.stack(
                [o.reshape(height // 2, width // 2) for o in outputs], axis=2
            ).astype(np.uint8)
            return {"image": image, "result": out}
        return None

    def verify(self, outputs) -> bool:
        expected = box_downsample_reference(outputs["image"])
        return np.array_equal(outputs["result"], expected)

    def cpu_profile(self) -> KernelProfile:
        n = self.params["width"] * self.params["height"] * 3
        return KernelProfile(
            name="cpu-downsample",
            bytes_accessed=1.25 * n,
            compute_ops=float(n),
            mem_efficiency=0.5,  # 2x2 box reads are stride-2
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["width"] * self.params["height"] * 3
        return KernelProfile(
            name="gpu-downsample",
            bytes_accessed=1.25 * n,
            compute_ops=float(n),
            mem_efficiency=0.5,
        )
