"""Host reference implementation of AES-256 in ECB mode.

A vectorized numpy implementation used to verify the PIM AES benchmark
(Section V-E functional verification) and to seed its round keys.  All
tables are generated from first principles (GF(2^8) arithmetic with the
AES polynomial 0x11B), so correctness is checked structurally by tests
against the FIPS-197 known values (S-box[0x00] = 0x63, etc.).
"""

from __future__ import annotations

import functools

import numpy as np

AES_POLY = 0x11B
NUM_ROUNDS = 14  # AES-256
KEY_WORDS = 8  # Nk for a 256-bit key
BLOCK_BYTES = 16


def gf_mul(a: int, b: int) -> int:
    """GF(2^8) product under the AES polynomial (Russian peasant)."""
    product = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            product ^= a
        a <<= 1
        if a & 0x100:
            a ^= AES_POLY
        b >>= 1
    return product


@functools.lru_cache(maxsize=1)
def gf_inverse_table() -> "tuple[int, ...]":
    """Multiplicative inverses in GF(2^8), with inverse(0) := 0."""
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inverse[x] = y
                break
    return tuple(inverse)


def _affine(x: int) -> int:
    """The AES S-box affine transform over GF(2)."""
    result = 0x63
    for shift in range(5):  # x ^ rotl1 ^ rotl2 ^ rotl3 ^ rotl4
        rotated = ((x << shift) | (x >> (8 - shift))) & 0xFF
        result ^= rotated
    return result


@functools.lru_cache(maxsize=1)
def sbox() -> np.ndarray:
    """The AES S-box as a 256-entry uint8 lookup table."""
    inverse = gf_inverse_table()
    return np.array([_affine(inverse[x]) for x in range(256)], dtype=np.uint8)


@functools.lru_cache(maxsize=1)
def inv_sbox() -> np.ndarray:
    """The inverse S-box."""
    forward = sbox()
    table = np.zeros(256, dtype=np.uint8)
    table[forward] = np.arange(256, dtype=np.uint8)
    return table


def expand_key(key: "bytes | np.ndarray") -> np.ndarray:
    """AES-256 key schedule; returns (NUM_ROUNDS + 1, 16) round keys."""
    key = np.frombuffer(bytes(key), dtype=np.uint8)
    if key.size != 4 * KEY_WORDS:
        raise ValueError(f"AES-256 needs a 32-byte key, got {key.size} bytes")
    box = sbox()
    words = [key[4 * i: 4 * i + 4].copy() for i in range(KEY_WORDS)]
    rcon = 1
    total_words = 4 * (NUM_ROUNDS + 1)
    for i in range(KEY_WORDS, total_words):
        temp = words[i - 1].copy()
        if i % KEY_WORDS == 0:
            temp = np.roll(temp, -1)
            temp = box[temp]
            temp[0] ^= rcon
            rcon = gf_mul(rcon, 2)
        elif i % KEY_WORDS == 4:
            temp = box[temp]
        words.append(words[i - KEY_WORDS] ^ temp)
    flat = np.concatenate(words)
    return flat.reshape(NUM_ROUNDS + 1, BLOCK_BYTES)


def _to_state(blocks: np.ndarray) -> np.ndarray:
    """(n, 16) byte blocks -> (n, 4, 4) states; state[:, r, c] = byte 4c+r."""
    return blocks.reshape(-1, 4, 4).transpose(0, 2, 1)


def _from_state(state: np.ndarray) -> np.ndarray:
    return state.transpose(0, 2, 1).reshape(-1, BLOCK_BYTES)


def _shift_rows(state: np.ndarray) -> np.ndarray:
    out = state.copy()
    for r in range(1, 4):
        out[:, r, :] = np.roll(state[:, r, :], -r, axis=1)
    return out


def _inv_shift_rows(state: np.ndarray) -> np.ndarray:
    out = state.copy()
    for r in range(1, 4):
        out[:, r, :] = np.roll(state[:, r, :], r, axis=1)
    return out


def _xtime(x: np.ndarray) -> np.ndarray:
    return (np.left_shift(x, 1) ^ np.where(x & 0x80, 0x1B, 0)).astype(np.uint8)


def _gf_mul_vec(x: np.ndarray, factor: int) -> np.ndarray:
    """Multiply a byte array by a small constant in GF(2^8)."""
    result = np.zeros_like(x)
    power = x.copy()
    while factor:
        if factor & 1:
            result ^= power
        power = _xtime(power)
        factor >>= 1
    return result


def _mix_columns(state: np.ndarray, matrix: "list[list[int]]") -> np.ndarray:
    out = np.zeros_like(state)
    for r in range(4):
        for k in range(4):
            out[:, r, :] ^= _gf_mul_vec(state[:, k, :], matrix[r][k])
    return out


MIX = [[2, 3, 1, 1], [1, 2, 3, 1], [1, 1, 2, 3], [3, 1, 1, 2]]
INV_MIX = [[14, 11, 13, 9], [9, 14, 11, 13], [13, 9, 14, 11], [11, 13, 9, 14]]


def encrypt_blocks(blocks: np.ndarray, round_keys: np.ndarray) -> np.ndarray:
    """ECB-encrypt (n, 16) uint8 blocks with expanded round keys."""
    box = sbox()
    state = _to_state(blocks.astype(np.uint8) ^ round_keys[0])
    for rnd in range(1, NUM_ROUNDS):
        state = box[state]
        state = _shift_rows(state)
        state = _mix_columns(state, MIX)
        state = _to_state(_from_state(state) ^ round_keys[rnd])
    state = box[state]
    state = _shift_rows(state)
    return _from_state(state) ^ round_keys[NUM_ROUNDS]


def decrypt_blocks(blocks: np.ndarray, round_keys: np.ndarray) -> np.ndarray:
    """ECB-decrypt (n, 16) uint8 blocks with expanded round keys."""
    box = inv_sbox()
    state = _to_state(blocks.astype(np.uint8) ^ round_keys[NUM_ROUNDS])
    for rnd in range(NUM_ROUNDS - 1, 0, -1):
        state = _inv_shift_rows(state)
        state = box[state]
        state = _to_state(_from_state(state) ^ round_keys[rnd])
        state = _mix_columns(state, INV_MIX)
    state = _inv_shift_rows(state)
    state = box[state]
    return _from_state(state) ^ round_keys[0]
