"""PIMbench framework: the benchmark base class and result records.

Each benchmark (Table I) is a class that issues PIM API calls against a
device, models its host-side phases through :class:`repro.host.HostModel`,
and declares roofline profiles for the CPU and GPU baselines.  A benchmark
runs in two regimes:

* *functional* (small inputs): real data flows through the device and the
  result is verified against a host reference -- the paper's functional-
  verification methodology (Section V-E), and
* *analytic* (Table I paper-scale inputs): the same command trace is
  issued without materializing data, yielding the modeled runtime/energy
  used by the figure-regeneration harnesses.
"""

from __future__ import annotations

import abc
import dataclasses
import math
import typing

from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuModel
from repro.baselines.roofline import KernelProfile
from repro.config.device import PimDeviceType
from repro.core.commands import OpCategory
from repro.core.device import PimDevice
from repro.core.stats import StatsSnapshot
from repro.host.model import HostModel
from repro.obs.spans import device_bus, span


@dataclasses.dataclass(frozen=True)
class BenchmarkResult:
    """Everything the experiment harnesses need from one benchmark run."""

    benchmark: str
    device_type: PimDeviceType
    stats: StatsSnapshot
    op_counts: "dict[OpCategory, int]"
    cpu_time_ns: float
    cpu_energy_nj: float
    gpu_time_ns: float
    gpu_energy_nj: float
    verified: "bool | None"  # None in analytic mode

    # -- paper comparison metrics (artifact appendix D) ----------------------

    @property
    def pim_total_time_ns(self) -> float:
        """Kernel + host + data-copy: the CPU-comparison runtime."""
        return self.stats.total_time_ns

    @property
    def pim_kernel_host_time_ns(self) -> float:
        """Kernel + host only: the GPU-comparison runtime (PCIe factored out)."""
        return self.stats.kernel_time_ns + self.stats.host_time_ns

    @property
    def speedup_cpu_total(self) -> float:
        """Figure 9 "Kernel + Data Movement" bar."""
        return self.cpu_time_ns / self.pim_total_time_ns

    @property
    def speedup_cpu_kernel(self) -> float:
        """Figure 9 "Kernel" bar (host time still counts; copies do not)."""
        return self.cpu_time_ns / self.pim_kernel_host_time_ns

    @property
    def speedup_gpu(self) -> float:
        """Figure 10a bar."""
        return self.gpu_time_ns / self.pim_kernel_host_time_ns

    @property
    def pim_total_energy_nj(self) -> float:
        """Kernel + copy + background + host energy (CPU comparison)."""
        return self.stats.total_energy_nj

    @property
    def pim_kernel_host_energy_nj(self) -> float:
        """Energy with copies (and CPU idle) factored out (GPU comparison)."""
        return (
            self.stats.kernel_energy_nj
            + self.stats.background_energy_nj
            + self.stats.host_energy_nj
        )

    @property
    def energy_reduction_cpu(self) -> float:
        """Figure 11 bar."""
        return self.cpu_energy_nj / self.pim_total_energy_nj

    @property
    def energy_reduction_gpu(self) -> float:
        """Figure 10b bar."""
        return self.gpu_energy_nj / self.pim_kernel_host_energy_nj

    @property
    def breakdown(self) -> "dict[str, float]":
        """Figure 7: percentage of time in data movement / host / kernel."""
        total = self.pim_total_time_ns
        if total <= 0:
            return {"data_movement": 0.0, "host": 0.0, "kernel": 0.0}
        return {
            "data_movement": 100.0 * self.stats.copy_time_ns / total,
            "host": 100.0 * self.stats.host_time_ns / total,
            "kernel": 100.0 * self.stats.kernel_time_ns / total,
        }

    def to_dict(self) -> dict:
        """JSON-friendly record of the run (for archiving suite results)."""
        return {
            "benchmark": self.benchmark,
            "device": self.device_type.value,
            "verified": self.verified,
            "kernel_time_ms": self.stats.kernel_time_ns / 1e6,
            "copy_time_ms": self.stats.copy_time_ns / 1e6,
            "host_time_ms": self.stats.host_time_ns / 1e6,
            "pim_energy_mj": self.pim_total_energy_nj / 1e6,
            "copy_bytes": self.stats.copy_bytes,
            "op_counts": {cat.value: n for cat, n in self.op_counts.items()},
            "speedup_cpu_total": self.speedup_cpu_total,
            "speedup_cpu_kernel": self.speedup_cpu_kernel,
            "speedup_gpu": self.speedup_gpu,
            "energy_reduction_cpu": self.energy_reduction_cpu,
            "energy_reduction_gpu": self.energy_reduction_gpu,
            "breakdown": self.breakdown,
            "events": {
                "row_activations": self.stats.events.row_activations,
                "lane_logic_ops": self.stats.events.lane_logic_ops,
                "alu_word_ops": self.stats.events.alu_word_ops,
                "gdl_bits": self.stats.events.gdl_bits,
            },
        }


class PimBenchmark(abc.ABC):
    """Base class of every PIMbench application."""

    #: Short identifier (e.g. ``vecadd``) used by the registry.
    key: str = ""
    #: Display name matching the paper's figures (e.g. ``Vector Addition``).
    name: str = ""
    #: Table I domain (e.g. ``Linear Algebra``).
    domain: str = ""
    #: Table I execution type: ``PIM`` or ``PIM + Host``.
    execution_type: str = "PIM"
    #: Table I memory access pattern flags.
    sequential_access: bool = True
    random_access: bool = False
    #: Table I input description.
    paper_input: str = ""

    def __init__(self, **params: typing.Any) -> None:
        merged = dict(self.default_params())
        unknown = set(params) - set(merged)
        if unknown:
            raise TypeError(f"{type(self).__name__}: unknown params {sorted(unknown)}")
        merged.update(params)
        self.params = merged

    # -- parameterization ------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def default_params(cls) -> "dict[str, typing.Any]":
        """Small functional-mode parameters (tests, examples)."""

    @classmethod
    @abc.abstractmethod
    def paper_params(cls) -> "dict[str, typing.Any]":
        """The Table I evaluation input sizes."""

    # -- execution -------------------------------------------------------------

    @abc.abstractmethod
    def run_pim(self, device: PimDevice, host: HostModel) -> "typing.Any":
        """Issue the benchmark's PIM command trace; return outputs for
        verification (functional mode) or None."""

    def verify(self, outputs: typing.Any) -> bool:
        """Check functional outputs against the host reference."""
        raise NotImplementedError(f"{type(self).__name__} has no verifier")

    # -- observability -----------------------------------------------------

    def phase(self, device: "PimDevice | typing.Any", name: str):
        """Span bracketing one phase of this benchmark's execution.

        A no-op context manager when the device carries no event bus, so
        benchmarks can annotate phases unconditionally.
        """
        return span(f"phase:{name}", device_bus(device))

    # -- baseline profiles ------------------------------------------------------

    @abc.abstractmethod
    def cpu_profile(self) -> KernelProfile:
        """Roofline profile of the tuned CPU baseline."""

    @abc.abstractmethod
    def gpu_profile(self) -> KernelProfile:
        """Roofline profile of the tuned GPU baseline."""

    # -- harness ------------------------------------------------------------

    def run(
        self,
        device: PimDevice,
        cpu: "CpuModel | None" = None,
        gpu: "GpuModel | None" = None,
    ) -> BenchmarkResult:
        """Execute on a device and package the comparison metrics."""
        cpu = cpu or CpuModel()
        gpu = gpu or GpuModel()
        host = HostModel(device, cpu)
        before = device.stats.snapshot()
        ops_before = dict(device.stats.op_counts)
        with span(f"bench:{self.key}", device_bus(device),
                  {"name": self.name, "execution": self.execution_type}):
            outputs = self.run_pim(device, host)
        delta = device.stats.snapshot() - before
        op_counts: "dict[OpCategory, int]" = {}
        for kind, count in device.stats.op_counts.items():
            extra = count - ops_before.get(kind, 0)
            if extra:
                op_counts[kind.category] = op_counts.get(kind.category, 0) + extra

        verified: "bool | None" = None
        if device.functional and outputs is not None:
            verified = bool(self.verify(outputs))

        cpu_time, cpu_energy = cpu.run(self.cpu_profile())
        gpu_time, gpu_energy = gpu.run(self.gpu_profile())
        return BenchmarkResult(
            benchmark=self.name,
            device_type=device.config.device_type,
            stats=delta,
            op_counts=op_counts,
            cpu_time_ns=cpu_time,
            cpu_energy_nj=cpu_energy,
            gpu_time_ns=gpu_time,
            gpu_energy_nj=gpu_energy,
            verified=verified,
        )


def chunked(total: int, chunk: int) -> "typing.Iterator[tuple[int, int]]":
    """Yield (start, length) windows covering ``range(total)``."""
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    for start in range(0, total, chunk):
        yield start, min(chunk, total - start)


def ceil_div(a: int, b: int) -> int:
    return math.ceil(a / b)
