"""AXPY (Table I, Linear Algebra; collected from InSituBench).

y = a * x + y through ``pimScaledAdd`` (the Listing 1 kernel).  The mix of
one multiplication and one addition favors the bit-parallel Fulcrum
device: bit-serial pays its quadratic multiplication latency and
bank-level pays the narrow GDL (Section VIII "AXPY").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.roofline import KernelProfile
from repro.bench.common import PimBenchmark
from repro.core.commands import PimCmdKind
from repro.core.device import PimDevice
from repro.host.model import HostModel
from repro.workloads.vectors import random_int_vector


class AxpyBenchmark(PimBenchmark):
    key = "axpy"
    name = "AXPY"
    domain = "Linear Algebra"
    execution_type = "PIM"
    paper_input = "16,777,216 32-bit INT"

    @classmethod
    def default_params(cls):
        return {"num_elements": 4096, "scale": 5, "seed": 11}

    @classmethod
    def paper_params(cls):
        return {"num_elements": 16_777_216, "scale": 5, "seed": 11}

    def run_pim(self, device: PimDevice, host: HostModel):
        n = self.params["num_elements"]
        scale = self.params["scale"]
        x = y = None
        if device.functional:
            x = random_int_vector(n, seed=self.params["seed"])
            y = random_int_vector(n, seed=self.params["seed"] + 1)
        obj_x = device.alloc(n)
        obj_y = device.alloc_associated(obj_x)
        device.copy_host_to_device(x, obj_x)
        device.copy_host_to_device(y, obj_y)
        device.execute(PimCmdKind.SCALED_ADD, (obj_x, obj_y), obj_y, scalar=scale)
        result = device.copy_device_to_host(obj_y)
        device.free(obj_x)
        device.free(obj_y)
        if device.functional:
            return {"x": x, "y": y, "scale": scale, "result": result}
        return None

    def verify(self, outputs) -> bool:
        expected = outputs["x"] * outputs["scale"] + outputs["y"]
        return np.array_equal(outputs["result"], expected)

    def cpu_profile(self) -> KernelProfile:
        n = self.params["num_elements"]
        return KernelProfile(
            name="cpu-axpy",
            bytes_accessed=12.0 * n,
            compute_ops=2.0 * n,
            mem_efficiency=0.85,
        )

    def gpu_profile(self) -> KernelProfile:
        n = self.params["num_elements"]
        return KernelProfile(
            name="gpu-axpy",
            bytes_accessed=12.0 * n,
            compute_ops=2.0 * n,
            mem_efficiency=0.85,
        )
