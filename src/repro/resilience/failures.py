"""Structured failure records and the end-of-run failure summary.

A failed suite cell degrades into a :class:`CellFailure` -- taxonomy
kind, PimStatus code, exception type/message, attempt count, and (for
raised errors) the worker traceback -- carried through
:class:`repro.engine.ExecutionResult` instead of aborting the run.
"""

from __future__ import annotations

import dataclasses
import traceback as traceback_mod
import typing

from repro.core.errors import (
    FailureKind,
    PimError,
    PimStatus,
    classify_exception,
    status_of,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.cells import CellSpec


@dataclasses.dataclass(frozen=True)
class CellFailure:
    """Why one cell ultimately failed (after all retries)."""

    kind: FailureKind
    status: PimStatus
    error_type: str
    message: str
    attempts: int
    traceback: str = ""
    context: "tuple[tuple[str, typing.Any], ...]" = ()

    @property
    def transient(self) -> bool:
        return self.kind.transient

    def to_dict(self) -> "dict[str, typing.Any]":
        return {
            "kind": self.kind.value,
            "status": self.status.value,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "context": dict(self.context),
        }

    def brief(self) -> str:
        """One-line description for tables and logs."""
        detail = f": {self.message}" if self.message else ""
        return (
            f"{self.kind.value} after {self.attempts} attempt(s) "
            f"[{self.error_type}]{detail}"
        )


def failure_from_exception(
    exc: BaseException, attempts: int, with_traceback: bool = True
) -> CellFailure:
    """Package an exception into a :class:`CellFailure` record."""
    context: "tuple[tuple[str, typing.Any], ...]" = ()
    if isinstance(exc, PimError):
        context = tuple(sorted(exc.context.items()))
    tb = ""
    if with_traceback and exc.__traceback__ is not None:
        tb = "".join(
            traceback_mod.format_exception(type(exc), exc, exc.__traceback__)
        )
    return CellFailure(
        kind=classify_exception(exc),
        status=status_of(exc),
        error_type=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
        traceback=tb,
        context=context,
    )


def skipped_failure(reason: str = "fail-fast stopped the run") -> CellFailure:
    """The record for a cell never attempted because of ``--fail-fast``."""
    return CellFailure(
        kind=FailureKind.SKIPPED,
        status=PimStatus.ERR_RUNTIME,
        error_type="Skipped",
        message=reason,
        attempts=0,
    )


def format_failure_summary(
    failures: "dict[CellSpec, CellFailure]",
) -> str:
    """The end-of-run failure table the CLI prints.

    One row per failed cell: which (benchmark, device) it was, the
    taxonomy kind, attempts consumed, and the terminal error.
    """
    if not failures:
        return "All cells completed."
    lines = [
        f"=== {len(failures)} cell(s) failed ===",
        f"{'benchmark':<14s} {'device':<12s} {'kind':<9s} "
        f"{'attempts':>8s}  error",
    ]
    for spec, failure in failures.items():
        detail = failure.message.splitlines()[0] if failure.message else ""
        if len(detail) > 60:
            detail = detail[:57] + "..."
        lines.append(
            f"{spec.benchmark_key:<14s} "
            f"{spec.device_type.display_name:<12s} "
            f"{failure.kind.value:<9s} {failure.attempts:>8d}  "
            f"{failure.error_type}: {detail}"
        )
    return "\n".join(lines)
