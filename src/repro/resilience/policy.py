"""Retry/timeout policy: how hard the engine fights for each cell.

The policy is plain data (frozen, picklable) so it can cross process
boundaries and be embedded in reports.  Backoff delays are exponential
with *deterministic* jitter: the jitter fraction is derived from a
SHA-256 over ``(cell key, attempt)``, so two runs of the same suite
sleep identically -- reproducibility extends to the failure path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os

from repro.core.errors import PimConfigError

#: Environment variable supplying the default per-cell timeout in seconds
#: (CLI ``--cell-timeout`` overrides it; unset means no timeout).
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
#: Environment variable supplying the default retry budget (CLI
#: ``--max-retries`` overrides it; unset means no retries).
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"


def deterministic_jitter(key: str, attempt: int) -> float:
    """A stable jitter fraction in ``[0, 1)`` for (cell key, attempt).

    Hash-derived rather than random so retried runs are bit-for-bit
    repeatable; distinct cells still spread their retries out in time.
    """
    digest = hashlib.sha256(f"{key}#{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats a failing or slow cell.

    ``max_retries`` bounds *re*-tries: a cell runs at most
    ``max_retries + 1`` times.  ``cell_timeout_s`` is a wall-clock budget
    per attempt; setting it forces worker-process isolation even for
    serial runs (a hung in-process cell cannot be interrupted).
    ``fail_fast`` stops scheduling new work after the first cell
    exhausts its budget; cells never attempted are reported as
    ``SKIPPED``.
    """

    max_retries: int = 0
    cell_timeout_s: "float | None" = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter_fraction: float = 0.1
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError(
                f"cell_timeout_s must be positive, got {self.cell_timeout_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    @property
    def needs_isolation(self) -> bool:
        """Whether cells must run in worker processes regardless of jobs.

        A timeout can only be enforced on work the parent can abandon,
        which means a separate process.
        """
        return self.cell_timeout_s is not None

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based) of cell ``key``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        return base * (1.0 + self.jitter_fraction * deterministic_jitter(key, attempt))

    @classmethod
    def from_env(
        cls,
        max_retries: "int | None" = None,
        cell_timeout_s: "float | None" = None,
        fail_fast: bool = False,
    ) -> "RetryPolicy":
        """Policy from explicit values, falling back to the environment.

        Mirrors :func:`repro.engine.resolve_jobs`: an explicit argument
        beats ``$REPRO_MAX_RETRIES`` / ``$REPRO_CELL_TIMEOUT``, which
        beat the do-nothing defaults.  An unparseable environment value
        raises a *coded* :class:`~repro.core.errors.PimConfigError`
        (status ``ERR_CONFIG``) naming the variable, so callers that
        catch the taxonomy -- the CLI, the serve admission path -- can
        surface it structurally instead of as a bare ``ValueError``.
        """
        if max_retries is None:
            env = os.environ.get(MAX_RETRIES_ENV, "").strip()
            if env:
                try:
                    max_retries = int(env)
                except ValueError:
                    raise PimConfigError(
                        f"{MAX_RETRIES_ENV} must be an integer, got {env!r}",
                        env_var=MAX_RETRIES_ENV, value=env,
                    ) from None
            else:
                max_retries = 0
        if cell_timeout_s is None:
            env = os.environ.get(CELL_TIMEOUT_ENV, "").strip()
            if env:
                try:
                    cell_timeout_s = float(env)
                except ValueError:
                    raise PimConfigError(
                        f"{CELL_TIMEOUT_ENV} must be a number, got {env!r}",
                        env_var=CELL_TIMEOUT_ENV, value=env,
                    ) from None
        return cls(
            max_retries=max_retries,
            cell_timeout_s=cell_timeout_s,
            fail_fast=fail_fast,
        )
