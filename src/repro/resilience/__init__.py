"""repro.resilience: fault-tolerant execution for the experiment engine.

The cross-cutting robustness layer of the reproduction.  Three pieces:

* :class:`RetryPolicy` -- per-cell wall-clock timeouts, bounded retries
  with exponential backoff and *deterministic* jitter, and fail-fast
  semantics, consumed by :func:`repro.engine.run_cells`;
* :class:`CellFailure` -- the structured record a failed suite cell
  degrades into (taxonomy kind, status code, attempts, traceback)
  instead of killing the whole run; and
* :func:`format_failure_summary` -- the end-of-run table the CLI prints
  when any cell ultimately failed.

Deterministic fault *injection* into the simulated device lives in the
sibling :mod:`repro.faults` package; the taxonomy itself
(:class:`repro.core.errors.FailureKind`, the ``PimStatus`` codes) lives
in :mod:`repro.core.errors`.  See ``docs/RESILIENCE.md`` for the whole
contract.

Quick start::

    from repro.engine import CellSpec, run_cells
    from repro.resilience import RetryPolicy

    policy = RetryPolicy(max_retries=2, cell_timeout_s=30.0)
    execution = run_cells(specs, jobs=4, policy=policy)
    if not execution.ok:
        print(format_failure_summary(execution.failures))
"""

from repro.resilience.failures import (
    CellFailure,
    failure_from_exception,
    format_failure_summary,
    skipped_failure,
)
from repro.resilience.policy import (
    CELL_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    RetryPolicy,
    deterministic_jitter,
)

__all__ = [
    "CELL_TIMEOUT_ENV",
    "CellFailure",
    "MAX_RETRIES_ENV",
    "RetryPolicy",
    "deterministic_jitter",
    "failure_from_exception",
    "format_failure_summary",
    "skipped_failure",
]
