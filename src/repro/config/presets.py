"""Preset configurations reproducing Table II of the paper.

The evaluation uses 32GB-per-rank-group DDR4 modules with 32 ranks, 128
banks per rank, 32 subarrays per bank, and 8192-bit local row buffers for
all three PIM variants; the variants differ only in where the processing
elements sit.  The CPU and GPU baselines are an AMD EPYC 9124 and an NVIDIA
A100.  The Listing 3 artifact output additionally shows the 4-rank default
configuration used by the quickstart, which we expose as well.
"""

from __future__ import annotations

import dataclasses

from repro.config.device import DeviceConfig, PimDeviceType
from repro.config.dram import DramGeometry, DramSpec


@dataclasses.dataclass(frozen=True)
class CpuSpec:
    """Table II CPU baseline: AMD EPYC 9124."""

    name: str = "AMD EPYC 9124"
    num_cores: int = 16
    freq_ghz: float = 3.71
    tdp_w: float = 200.0
    mem_bandwidth_gbps: float = 460.8
    simd_width_bits: int = 256  # AVX2-class vector units

    @property
    def peak_int32_ops_per_ns(self) -> float:
        """Peak 32-bit integer throughput (ops per nanosecond)."""
        lanes = self.simd_width_bits // 32
        return self.num_cores * self.freq_ghz * lanes


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """Table II GPU baseline: NVIDIA A100 80GB."""

    name: str = "NVIDIA A100"
    tdp_w: float = 300.0
    mem_bandwidth_gbps: float = 1935.0
    peak_fp32_tflops: float = 19.5

    @property
    def peak_ops_per_ns(self) -> float:
        """Peak 32-bit throughput in ops per nanosecond."""
        return self.peak_fp32_tflops * 1e3


def paper_geometry(num_ranks: int = 32) -> DramGeometry:
    """The DRAM geometry used throughout the evaluation (Table II)."""
    return DramGeometry(
        num_ranks=num_ranks,
        banks_per_rank=128,
        subarrays_per_bank=32,
        rows_per_subarray=1024,
        cols_per_subarray=8192,
        gdl_width_bits=128,
    )


def make_device_config(
    device_type: PimDeviceType, num_ranks: int = 32, **geometry_overrides: int
) -> DeviceConfig:
    """Build a device configuration for one of the three PIM variants."""
    geometry = paper_geometry(num_ranks)
    if geometry_overrides:
        geometry = geometry.scaled(**geometry_overrides)
    return DeviceConfig(device_type=device_type, dram=DramSpec(geometry=geometry))


def _backend_config(name: str, num_ranks: int) -> DeviceConfig:
    """Delegate a named preset to its architecture backend."""
    from repro.arch.registry import resolve_backend

    return resolve_backend(name).make_config(num_ranks)


def bitserial_config(num_ranks: int = 32) -> DeviceConfig:
    """Table II "Bit-serial" row: DRAM-AP subarray-level bit-serial PIM."""
    return _backend_config("bitserial", num_ranks)


def fulcrum_config(num_ranks: int = 32) -> DeviceConfig:
    """Table II "Fulcrum" row: subarray-level bit-parallel PIM."""
    return _backend_config("fulcrum", num_ranks)


def bank_level_config(num_ranks: int = 32) -> DeviceConfig:
    """Table II "Bank-level PIM" row."""
    return _backend_config("bank", num_ranks)


#: The three variants evaluated in the paper's figures (enum order is
#: figure order).
PAPER_DEVICE_TYPES = tuple(t for t in PimDeviceType if t.in_paper_evaluation)


def all_pim_configs(num_ranks: int = 32) -> "dict[PimDeviceType, DeviceConfig]":
    """The three evaluated PIM variants, keyed by device type."""
    return {
        device_type: make_device_config(device_type, num_ranks)
        for device_type in PAPER_DEVICE_TYPES
    }


def analog_bitserial_config(num_ranks: int = 32) -> DeviceConfig:
    """The analog (TRA) bit-serial extension variant (Section IX)."""
    return _backend_config("analog", num_ranks)


CPU_BASELINE = CpuSpec()
GPU_BASELINE = GpuSpec()

# The artifact's quickstart (Listing 3) runs with 4 ranks.
LISTING3_NUM_RANKS = 4
