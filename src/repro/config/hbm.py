"""HBM configuration preset (Section IX future work).

The paper notes its modeling approach "should be easily extensible to
High Bandwidth Memory (HBM)", while cautioning that "conclusions about
which PIM architecture is best might change with HBM".  This preset
provides that extension point: an HBM2e-class stack modeled through the
same geometry/timing records --

* far higher external bandwidth (16 pseudo-channels at ~25.6 GB/s each
  per stack, ~410 GB/s aggregate for one stack, sweepable by stack count),
* a wider internal data path (the paper notes the GDL "for HBM it is
  wider"), and
* more banks with fewer, smaller subarrays per bank (HBM banks are
  smaller than DDR4's).

The tradeoff shift the paper anticipates falls out of the model: the
bank-level variant gains the most (its GDL bottleneck relaxes and its
bank count rises), while bit-serial gains mainly on data movement.
"""

from __future__ import annotations

import typing

from repro.config.device import DeviceConfig
from repro.config.dram import DramGeometry, DramSpec, DramTiming

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.base import DeviceTypeLike


def hbm_timing() -> DramTiming:
    """HBM2e-class timing: similar core timing, per-pseudo-channel BW."""
    return DramTiming(
        row_read_ns=28.5,
        row_write_ns=43.5,
        tccd_ns=2.0,
        tras_ns=33.0,
        trp_ns=14.0,
        rank_bandwidth_gbps=25.6,  # one pseudo-channel
    )


def hbm_geometry(num_stacks: int = 4) -> DramGeometry:
    """One HBM stack = 16 pseudo-channels ("ranks" in PIMeval's terms).

    Per pseudo-channel: 32 banks of 16 subarrays, 1024x4096 cells, with a
    256-bit internal data path.
    """
    return DramGeometry(
        num_ranks=16 * num_stacks,
        banks_per_rank=32,
        subarrays_per_bank=16,
        rows_per_subarray=1024,
        cols_per_subarray=4096,
        gdl_width_bits=256,
        chips_per_rank=1,  # a pseudo-channel spans one die slice
    )


def hbm_device_config(
    device_type: "DeviceTypeLike", num_stacks: int = 4
) -> DeviceConfig:
    """A PIM device built on HBM stacks instead of DDR4 ranks."""
    return DeviceConfig(
        device_type=device_type,
        dram=DramSpec(geometry=hbm_geometry(num_stacks), timing=hbm_timing()),
    )
