"""DRAM geometry and timing parameters.

The paper (Section III and the artifact's Listing 3) fixes a DDR4
organization: each rank is built from 8 x8 chips, each chip holds 16 banks
(so PIMeval counts 128 banks per rank), each bank is divided into 32
subarrays, and each subarray is a 1024-row by 8192-column matrix of cells
within one chip.  Timing numbers come from the Listing 3 report: a row read
into the local row buffer takes 28.5 ns, a row write takes 43.5 ns, tCCD is
3 ns, and one rank sustains 25.6 GB/s.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DramTiming:
    """Timing of the DRAM operations PIM models are built from.

    All durations are in nanoseconds, matching the units the PIMeval
    artifact reports in its parameter dump.
    """

    row_read_ns: float = 28.5
    row_write_ns: float = 43.5
    tccd_ns: float = 3.0
    tras_ns: float = 32.0
    trp_ns: float = 14.0
    rank_bandwidth_gbps: float = 25.6

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value <= 0:
                raise ValueError(f"{field.name} must be positive, got {value}")

    @property
    def rank_bandwidth_bytes_per_ns(self) -> float:
        """Rank bandwidth converted to bytes per nanosecond."""
        return self.rank_bandwidth_gbps  # 1 GB/s == 1 byte/ns


@dataclasses.dataclass(frozen=True)
class DramGeometry:
    """Hierarchical organization of the PIM memory module.

    ``banks_per_rank`` counts chip-level banks across the whole rank the way
    PIMeval does (16 banks/chip x 8 chips = 128), because each chip-level
    bank/subarray hosts its own processing element.
    """

    num_ranks: int = 32
    banks_per_rank: int = 128
    subarrays_per_bank: int = 32
    rows_per_subarray: int = 1024
    cols_per_subarray: int = 8192
    gdl_width_bits: int = 128
    chips_per_rank: int = 8
    #: Memory channels serving the module.  None reproduces PIMeval's
    #: stated simplification (every rank an independent channel); an
    #: integer caps host-transfer parallelism at that many channels, the
    #: refinement Section V-C defers to DRAMsim3 integration.
    num_channels: "int | None" = None

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value is None:
                continue
            if value <= 0:
                raise ValueError(f"{field.name} must be positive, got {value}")
        if self.banks_per_rank % self.chips_per_rank:
            raise ValueError(
                "banks_per_rank must be a multiple of chips_per_rank, got "
                f"{self.banks_per_rank} / {self.chips_per_rank}"
            )

    @property
    def num_banks(self) -> int:
        """Total bank count across all ranks."""
        return self.num_ranks * self.banks_per_rank

    @property
    def num_subarrays(self) -> int:
        """Total subarray count across all ranks."""
        return self.num_banks * self.subarrays_per_bank

    @property
    def subarray_bits(self) -> int:
        """Capacity of one subarray in bits."""
        return self.rows_per_subarray * self.cols_per_subarray

    @property
    def total_capacity_bytes(self) -> int:
        """Total module capacity in bytes."""
        return self.num_subarrays * self.subarray_bits // 8

    @property
    def transfer_parallelism(self) -> int:
        """Independent links for host transfers: ranks, or the channel cap."""
        if self.num_channels is None:
            return self.num_ranks
        return min(self.num_ranks, self.num_channels)

    @property
    def aggregate_bandwidth_gbps(self) -> float:
        """Host<->PIM bandwidth with ranks treated as independent channels.

        The paper notes PIMeval does not yet distinguish channels from
        ranks, so every rank contributes its full bandwidth by default;
        setting ``num_channels`` restores the sharing.
        """
        return self.transfer_parallelism * DramTiming().rank_bandwidth_gbps

    def scaled(self, **overrides: int) -> "DramGeometry":
        """Return a copy with the given fields replaced.

        Used by the sensitivity experiments (Figure 6, 12, 13) that sweep
        rank, bank, and column counts.
        """
        return dataclasses.replace(self, **overrides)


@dataclasses.dataclass(frozen=True)
class DramSpec:
    """Bundle of geometry plus timing; the full memory-module description."""

    geometry: DramGeometry = dataclasses.field(default_factory=DramGeometry)
    timing: DramTiming = dataclasses.field(default_factory=DramTiming)

    @property
    def transfer_bandwidth_bytes_per_ns(self) -> float:
        """Aggregate host<->device bandwidth in bytes/ns."""
        return (
            self.geometry.transfer_parallelism
            * self.timing.rank_bandwidth_bytes_per_ns
        )

    def data_transfer_ns(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` between host and device."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return num_bytes / self.transfer_bandwidth_bytes_per_ns
