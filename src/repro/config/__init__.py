"""Configuration layer: DRAM geometry/timing, device types, power params."""

from repro.config.device import (
    DeviceConfig,
    PimAllocType,
    PimArchParams,
    PimDataType,
    PimDeviceType,
)
from repro.config.dram import DramGeometry, DramSpec, DramTiming
from repro.config.power import (
    ComputeEnergyParams,
    HostPowerParams,
    MicronPowerParams,
    PowerConfig,
)
from repro.config.presets import (
    CPU_BASELINE,
    PAPER_DEVICE_TYPES,
    GPU_BASELINE,
    CpuSpec,
    GpuSpec,
    all_pim_configs,
    analog_bitserial_config,
    bank_level_config,
    bitserial_config,
    fulcrum_config,
    make_device_config,
    paper_geometry,
)

__all__ = [
    "DeviceConfig",
    "PimAllocType",
    "PimArchParams",
    "PimDataType",
    "PimDeviceType",
    "DramGeometry",
    "DramSpec",
    "DramTiming",
    "ComputeEnergyParams",
    "HostPowerParams",
    "MicronPowerParams",
    "PowerConfig",
    "CPU_BASELINE",
    "PAPER_DEVICE_TYPES",
    "GPU_BASELINE",
    "CpuSpec",
    "GpuSpec",
    "all_pim_configs",
    "analog_bitserial_config",
    "bank_level_config",
    "bitserial_config",
    "fulcrum_config",
    "make_device_config",
    "paper_geometry",
]
