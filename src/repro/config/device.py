"""PIM device types, data types, and the device configuration record.

These mirror PIMeval's ``PIM_DEVICE_*`` simulation targets and
``PIM_INT*`` data types, restricted to the digital architectures the paper
evaluates: subarray-level bit-serial (DRAM-AP / BITSIMD_V_AP), subarray-level
bit-parallel (Fulcrum), and bank-level bit-parallel.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.config.dram import DramSpec


#: Where an architecture's processing elements sit.  The traits below
#: (and :class:`DeviceConfig`'s core/row arithmetic) dispatch on this
#: declarative scope instead of on enum identity, so plug-in device
#: types (:class:`ArchDeviceType`) participate in the same arithmetic.
CORE_SCOPE_SUBARRAY = "subarray"
CORE_SCOPE_SUBARRAY_GROUP = "subarray-group"
CORE_SCOPE_BANK = "bank"

_CORE_SCOPES = (
    CORE_SCOPE_SUBARRAY, CORE_SCOPE_SUBARRAY_GROUP, CORE_SCOPE_BANK
)


class PimDeviceType(enum.Enum):
    """The three digital PIM architectures of the paper, plus the analog
    bit-serial (TRA) variant PIMeval is being extended with (Section IX).

    Architectures beyond these four are *not* added here: a plug-in
    backend declares an :class:`ArchDeviceType` instead and registers
    through :mod:`repro.arch`, so a new variant never edits this enum.
    """

    BITSIMD_V_AP = "bit-serial"
    FULCRUM = "fulcrum"
    BANK_LEVEL = "bank-level"
    ANALOG_BITSIMD_V = "analog-bit-serial"

    @property
    def display_name(self) -> str:
        """Label used in the paper's figures."""
        return _DISPLAY_NAMES[self]

    @property
    def core_scope(self) -> str:
        """DRAM structure each processing element is attached to."""
        return _CORE_SCOPE[self]

    @property
    def is_bit_serial(self) -> bool:
        return self in (
            PimDeviceType.BITSIMD_V_AP, PimDeviceType.ANALOG_BITSIMD_V
        )

    @property
    def is_analog(self) -> bool:
        """Whether compute uses charge sharing (TRA) rather than logic."""
        return self is PimDeviceType.ANALOG_BITSIMD_V

    @property
    def is_subarray_level(self) -> bool:
        return self.core_scope != CORE_SCOPE_BANK

    @property
    def in_paper_evaluation(self) -> bool:
        """Whether the variant appears in the paper's figures."""
        return self is not PimDeviceType.ANALOG_BITSIMD_V


_DISPLAY_NAMES = {
    PimDeviceType.BITSIMD_V_AP: "Bit-Serial",
    PimDeviceType.FULCRUM: "Fulcrum",
    PimDeviceType.BANK_LEVEL: "Bank-level",
    PimDeviceType.ANALOG_BITSIMD_V: "Analog Bit-Serial",
}

_CORE_SCOPE = {
    PimDeviceType.BITSIMD_V_AP: CORE_SCOPE_SUBARRAY,
    PimDeviceType.FULCRUM: CORE_SCOPE_SUBARRAY_GROUP,
    PimDeviceType.BANK_LEVEL: CORE_SCOPE_BANK,
    PimDeviceType.ANALOG_BITSIMD_V: CORE_SCOPE_SUBARRAY,
}


@dataclasses.dataclass(frozen=True)
class ArchDeviceType:
    """A plug-in device type: the enum-member surface, minus the enum.

    Backends registered through :mod:`repro.arch` that model an
    architecture outside the paper's four declare one of these instead
    of extending :class:`PimDeviceType` -- the whole point of the
    registry is that a new variant touches no shared module.  Instances
    are frozen (hashable: usable as suite-result and cache-spec keys)
    and picklable, so they travel to engine worker processes.

    ``value``/``name`` mirror the enum member attributes every consumer
    already reads (``value`` is the stable string identity; ``name`` the
    uppercase report label); the trait fields mirror the enum
    properties.
    """

    value: str
    name: str
    display_name: str
    core_scope: str = CORE_SCOPE_BANK
    bit_serial: bool = False
    analog: bool = False
    paper_evaluation: bool = False

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("a device type needs a non-empty value")
        if self.core_scope not in _CORE_SCOPES:
            raise ValueError(
                f"core_scope must be one of {_CORE_SCOPES}, "
                f"got {self.core_scope!r}"
            )

    @property
    def is_bit_serial(self) -> bool:
        return self.bit_serial

    @property
    def is_analog(self) -> bool:
        return self.analog

    @property
    def is_subarray_level(self) -> bool:
        return self.core_scope != CORE_SCOPE_BANK

    @property
    def in_paper_evaluation(self) -> bool:
        return self.paper_evaluation


class PimDataType(enum.Enum):
    """Element data types supported by the PIM API."""

    INT8 = ("int8", 8, True)
    INT16 = ("int16", 16, True)
    INT32 = ("int32", 32, True)
    INT64 = ("int64", 64, True)
    UINT8 = ("uint8", 8, False)
    UINT16 = ("uint16", 16, False)
    UINT32 = ("uint32", 32, False)
    UINT64 = ("uint64", 64, False)
    BOOL = ("bool", 1, False)

    def __init__(self, numpy_name: str, bits: int, signed: bool) -> None:
        self.numpy_name = numpy_name
        self.bits = bits
        self.signed = signed

    @property
    def bytes(self) -> int:
        """Storage size in bytes (bool is packed one element per byte)."""
        return max(1, self.bits // 8)

    @classmethod
    def from_bits(cls, bits: int, signed: bool = True) -> "PimDataType":
        """Look up the integer type with the given width."""
        for dtype in cls:
            if dtype.bits == bits and dtype.signed == signed and dtype is not cls.BOOL:
                return dtype
        if bits == 1:
            return cls.BOOL
        raise ValueError(f"no PIM data type with {bits} bits (signed={signed})")


class PimAllocType(enum.Enum):
    """Allocation strategies, mirroring PIMeval's ``PIM_ALLOC_*``.

    ``AUTO`` picks the layout native to the simulation target: vertical for
    bit-serial devices and horizontal for bit-parallel ones.
    """

    AUTO = "auto"
    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"


@dataclasses.dataclass(frozen=True)
class PimArchParams:
    """Architecture-specific processing-element parameters (Table II)."""

    # Bit-serial: registers per sense-amp lane.
    bitserial_num_registers: int = 4
    # Fulcrum: ALU word width, clock, walkers, subarrays aggregated per core.
    fulcrum_alu_bits: int = 32
    fulcrum_alu_freq_mhz: float = 164.0
    fulcrum_num_walkers: int = 3
    fulcrum_subarrays_per_core: int = 2
    # Bank-level: ALPU width and clock; GDL width lives in DramGeometry.
    bank_alu_bits: int = 64
    bank_alu_freq_mhz: float = 164.0
    bank_num_walkers: int = 3

    def __post_init__(self) -> None:
        if self.fulcrum_alu_bits not in (32, 64):
            raise ValueError("Fulcrum ALU must be 32 or 64 bits wide")
        if self.bank_alu_bits not in (32, 64, 128):
            raise ValueError("bank-level ALPU must be 32, 64, or 128 bits wide")
        if self.fulcrum_subarrays_per_core < 1:
            raise ValueError("fulcrum_subarrays_per_core must be >= 1")

    @property
    def fulcrum_cycle_ns(self) -> float:
        return 1e3 / self.fulcrum_alu_freq_mhz

    @property
    def bank_cycle_ns(self) -> float:
        return 1e3 / self.bank_alu_freq_mhz


@dataclasses.dataclass(frozen=True)
class DeviceConfig:
    """Complete description of a simulated PIM device.

    ``device_type`` is a :class:`PimDeviceType` member for the paper's
    architectures or an :class:`ArchDeviceType` for plug-in backends;
    either way all dispatch below reads declarative traits
    (``core_scope``, ``is_bit_serial``), never enum identity.
    """

    device_type: "PimDeviceType | ArchDeviceType" = PimDeviceType.BITSIMD_V_AP
    dram: DramSpec = dataclasses.field(default_factory=DramSpec)
    arch: PimArchParams = dataclasses.field(default_factory=PimArchParams)

    @property
    def num_cores(self) -> int:
        """Number of PIM cores the device exposes.

        Subarray scope: one core per subarray.  Subarray-group scope
        (Fulcrum): one core per ``fulcrum_subarrays_per_core``
        subarrays.  Bank scope: one core per bank.
        """
        geometry = self.dram.geometry
        scope = self.device_type.core_scope
        if scope == CORE_SCOPE_SUBARRAY:
            return geometry.num_subarrays
        if scope == CORE_SCOPE_SUBARRAY_GROUP:
            return geometry.num_subarrays // self.arch.fulcrum_subarrays_per_core
        return geometry.num_banks

    @property
    def rows_per_core(self) -> int:
        geometry = self.dram.geometry
        scope = self.device_type.core_scope
        if scope == CORE_SCOPE_SUBARRAY:
            return geometry.rows_per_subarray
        if scope == CORE_SCOPE_SUBARRAY_GROUP:
            return geometry.rows_per_subarray * self.arch.fulcrum_subarrays_per_core
        return geometry.rows_per_subarray * geometry.subarrays_per_bank

    @property
    def cols_per_core(self) -> int:
        return self.dram.geometry.cols_per_subarray

    @property
    def native_layout(self) -> PimAllocType:
        """Layout chosen by ``PIM_ALLOC_AUTO`` on this device."""
        if self.device_type.is_bit_serial:
            return PimAllocType.VERTICAL
        return PimAllocType.HORIZONTAL

    @property
    def label(self) -> str:
        """Short human label for this configuration (trace process names)."""
        return (
            f"{self.device_type.display_name} "
            f"x{self.dram.geometry.num_ranks} ranks"
        )

    def with_geometry(self, **overrides: int) -> "DeviceConfig":
        """Copy of this config with modified DRAM geometry (for sweeps)."""
        geometry = self.dram.geometry.scaled(**overrides)
        return dataclasses.replace(
            self, dram=dataclasses.replace(self.dram, geometry=geometry)
        )
