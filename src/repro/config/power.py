"""Power-model parameters.

The paper derives PIM energy from the Micron DDR4 power model (TN-40-07):
read/write burst power from Equation 1, activate-precharge energy from
Equation 2, plus background power while subarrays are active.  ALU energies
come from RTL models the authors reference without publishing numbers; the
constants here are chosen so the paper's published absolute anchors
(13.26 mJ bit-serial vector-add PIM energy, 0.0042 mJ Fulcrum vector-add at
4 ranks in Listing 3) are matched to within tens of percent; see DESIGN.md.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class MicronPowerParams:
    """IDD currents and supply voltage for one x8 DDR4-3200 chip.

    Values are representative data-sheet numbers (Micron TN-40-07 example
    calculations use the same structure).  Currents are in amperes, voltage
    in volts, times in nanoseconds.
    """

    vdd: float = 1.2
    idd0: float = 0.0491  # one-bank activate-precharge current
    idd2n: float = 0.037  # precharge standby
    idd3n: float = 0.044  # active standby
    idd4r: float = 0.150  # burst read
    idd4w: float = 0.145  # burst write
    io_pj_per_byte: float = 25.0  # I/O driver + termination energy

    def __post_init__(self) -> None:
        if not self.idd4r > self.idd3n > self.idd2n > 0:
            raise ValueError("expected IDD4R > IDD3N > IDD2N > 0")

    def read_power_w(self) -> float:
        """Equation 1: burst read power above active standby, one chip."""
        return self.vdd * (self.idd4r - self.idd3n)

    def write_power_w(self) -> float:
        """Equation 1 analogue for writes, one chip."""
        return self.vdd * (self.idd4w - self.idd3n)

    def activate_precharge_energy_nj(self, tras_ns: float, trp_ns: float) -> float:
        """Equation 2: energy of one activate-precharge cycle, one chip.

        AP = VDD * (IDD0*(tRAS+tRP) - (IDD3N*tRAS + IDD2N*tRP)), with the
        currents in amps and times in ns this yields nanojoules directly.
        """
        gross = self.idd0 * (tras_ns + trp_ns)
        standby = self.idd3n * tras_ns + self.idd2n * trp_ns
        return self.vdd * (gross - standby)

    def background_power_w(self) -> float:
        """Active-standby minus precharge-standby power for one chip.

        Section V-D(iii): the background power attributed to each
        simultaneously-active subarray.
        """
        return self.vdd * (self.idd3n - self.idd2n)


@dataclasses.dataclass(frozen=True)
class ComputeEnergyParams:
    """Per-operation energies of the PIM logic, in picojoules.

    ``bitserial_logic_pj`` is the energy of one bit-serial micro-op across a
    single sense-amp lane (a handful of gates).  The ALU values cover one
    word-wide operation of the Fulcrum / bank-level ALPU, derived to match
    the paper's anchors.  ``gdl_transfer_pj_per_bit`` scales the intra-bank
    global-data-line transfer energy, which the paper bases on LISA data.
    """

    bitserial_logic_pj: float = 0.0077
    fulcrum_alu_op_pj: float = 3.2
    bank_alu_op_pj: float = 4.8
    walker_latch_pj_per_bit: float = 0.001
    # Long global wires spanning the bank: ~2 pJ/bit, scaled from the
    # LISA-based data the paper cites for intra-bank movement.
    gdl_transfer_pj_per_bit: float = 2.0


@dataclasses.dataclass(frozen=True)
class HostPowerParams:
    """Host-side power assumptions from Section V-D."""

    cpu_tdp_w: float = 200.0  # EPYC 9124 TDP, used for host-kernel energy
    cpu_idle_w: float = 10.0  # representative idle power while PIM runs
    gpu_tdp_w: float = 300.0  # A100 TDP


@dataclasses.dataclass(frozen=True)
class PowerConfig:
    """All power-model inputs bundled together."""

    micron: MicronPowerParams = dataclasses.field(default_factory=MicronPowerParams)
    compute: ComputeEnergyParams = dataclasses.field(default_factory=ComputeEnergyParams)
    host: HostPowerParams = dataclasses.field(default_factory=HostPowerParams)
