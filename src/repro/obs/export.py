"""Chrome trace-event export: open a suite run in Perfetto.

Converts the event stream into the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev: one *process* per
device configuration (the suite runner labels them), one *thread* track
per phase/category, ``B``/``E`` pairs for spans, ``X`` complete events
for commands/copies/host kernels.  Timestamps are the simulated timeline
converted to microseconds (the format's unit); each event also carries
the simulator's wall-clock overhead in ``args.wall_us``.

``validate_chrome_trace`` checks the invariants the viewers rely on
(``ph``/``ts``/``pid``/``tid`` on every event, matched span pairs) and is
used by the test suite and the CLI before writing a file.
"""

from __future__ import annotations

import json
import typing

from repro.obs.events import (
    ObsEvent,
    PH_BEGIN,
    PH_COMPLETE,
    PH_COUNTER,
    PH_END,
    PH_INSTANT,
)
from repro.obs.sinks import Sink

_VALID_PH = {PH_COMPLETE, PH_BEGIN, PH_END, PH_INSTANT, PH_COUNTER, "M"}


class _IdAllocator:
    """Stable small-integer ids for process/track names."""

    def __init__(self, first: int = 1) -> None:
        self._ids: "dict[str, int]" = {}
        self._next = first

    def __call__(self, name: str) -> int:
        ident = self._ids.get(name)
        if ident is None:
            ident = self._ids[name] = self._next
            self._next += 1
        return ident

    def items(self):
        return self._ids.items()


def to_chrome_trace(events: "typing.Iterable[ObsEvent]") -> dict:
    """Build a Trace Event Format payload from a stream of events."""
    pid_of = _IdAllocator()
    tid_of: "dict[int, _IdAllocator]" = {}
    trace_events: "list[dict]" = []

    for event in events:
        pid = pid_of(event.process)
        tracks = tid_of.setdefault(pid, _IdAllocator())
        tid = tracks(event.track)
        record: "dict[str, typing.Any]" = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts_ns / 1e3,  # trace-event timestamps are in us
            "pid": pid,
            "tid": tid,
        }
        args = dict(event.args) if event.args else {}
        if event.ph == PH_COMPLETE:
            record["dur"] = event.dur_ns / 1e3
        elif event.ph == PH_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.ph != PH_COUNTER:
            args["wall_us"] = event.wall_us
        record["args"] = args
        trace_events.append(record)

    metadata: "list[dict]" = []
    for process, pid in pid_of.items():
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": process},
        })
        for track, tid in tid_of[pid].items():
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": track},
            })
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"timeline": "simulated", "source": "repro.obs"},
    }


def validate_chrome_trace(payload: dict) -> dict:
    """Check trace-event invariants; returns the payload or raises."""
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace payload must be a dict with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    open_spans: "dict[tuple, list[str]]" = {}
    for i, event in enumerate(events):
        for field in ("ph", "ts", "pid", "tid", "name"):
            if field not in event:
                raise ValueError(f"traceEvents[{i}] missing {field!r}")
        ph = event["ph"]
        if ph not in _VALID_PH:
            raise ValueError(f"traceEvents[{i}] has unknown ph {ph!r}")
        if ph == PH_COMPLETE and "dur" not in event:
            raise ValueError(f"traceEvents[{i}] is 'X' but has no dur")
        key = (event["pid"], event["tid"])
        if ph == PH_BEGIN:
            open_spans.setdefault(key, []).append(event["name"])
        elif ph == PH_END:
            stack = open_spans.get(key)
            if not stack:
                raise ValueError(
                    f"traceEvents[{i}]: 'E' for {event['name']!r} "
                    "with no open span on its track"
                )
            stack.pop()
    dangling = {k: v for k, v in open_spans.items() if v}
    if dangling:
        raise ValueError(f"unclosed spans at end of trace: {dangling}")
    return payload


class ChromeTraceSink(Sink):
    """Accumulates events and writes a Chrome/Perfetto trace on close."""

    def __init__(self, path: "str | None" = None) -> None:
        self.path = path
        self.events: "list[ObsEvent]" = []

    def handle(self, event: ObsEvent) -> None:
        self.events.append(event)

    def to_payload(self) -> dict:
        return to_chrome_trace(self.events)

    def dumps(self) -> str:
        return json.dumps(self.to_payload())

    def write(self, path: "str | None" = None) -> str:
        """Validate and write the trace; returns the path written."""
        target = path or self.path
        if target is None:
            raise ValueError("no output path given for Chrome trace")
        payload = validate_chrome_trace(self.to_payload())
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return target

    def close(self) -> None:
        if self.path is not None and self.events:
            self.write()
