"""Cross-process cell telemetry: where each cell's resources went.

The interesting counters of a parallel run -- cost-memo hits, commands
simulated, wall/CPU seconds, peak RSS, injected faults -- are born
inside ProcessPool workers and die with them unless something carries
them home.  :class:`CellTelemetry` is that carrier: one frozen record
per executed cell, captured in the worker by
:func:`repro.engine.cells.run_cell` (via :class:`TelemetryCapture`),
pickled back alongside the existing RecordingSink payload, and folded
into the parent's :func:`~repro.obs.metrics.global_registry` with
:meth:`~repro.obs.metrics.MetricsRegistry.merge` -- in spec order, so
the merged counters are deterministic for any ``--jobs`` value.

Two read paths exist on the parent side:

* the **registry counters** (``telemetry.*``, ``cost_memo.*``,
  ``fault.*``) for aggregate views -- the OpenMetrics exposition and the
  run report render these; and
* the **telemetry log** (:func:`telemetry_log`), the ordered per-cell
  table the run report's ``cells`` section is built from.

A cell served from the disk cache carries the telemetry of the run that
originally produced it, marked ``from_cache=True``: its command and
memo counts are exact (they are deterministic), while its wall/CPU/RSS
figures describe the original simulation, not the cache read.
"""

from __future__ import annotations

import dataclasses
import time
import typing

from repro.obs.metrics import MetricsRegistry

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - e.g. Windows
    _resource = None


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 where unknown).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalized here so
    telemetry compares across platforms.
    """
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return int(peak)


@dataclasses.dataclass(frozen=True)
class CellTelemetry:
    """Resource accounting for one executed experiment cell.

    ``wall_s``/``cpu_s`` time the simulation itself (excluding engine
    scheduling); ``peak_rss_kb`` is the executing process's high-water
    mark *after* the cell ran -- in an isolated worker that is the
    cell's own footprint, in a serial run it is the parent's cumulative
    peak.  ``memo_*`` mirror the cost pipeline's counters
    (:class:`repro.perf.memo.CostPipeline`); ``commands_simulated`` is
    the op-census total (the machine-independent figure selfbench
    reports).  ``attempt`` is the 1-based try that finally succeeded.
    """

    benchmark: str
    device: str
    num_ranks: int
    attempt: int = 1
    wall_s: float = 0.0
    cpu_s: float = 0.0
    peak_rss_kb: int = 0
    commands_simulated: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_shapes: int = 0
    faults_injected: "tuple[tuple[str, int], ...]" = ()
    from_cache: bool = False
    #: Whether the cell ran through the vectorized histogram-pricing
    #: engine (docs/VECTORIZATION.md).  ``commands_simulated`` still
    #: counts every modeled issue -- histogram-priced commands are in
    #: the op census exactly like scalar ones.  Defaulted so telemetry
    #: pickled by older cache entries reads back as scalar.
    vector: bool = False
    #: Whether the cell's totals were synthesized by the sweep-level
    #: matrix pricer (:mod:`repro.dse.batch`) from a shared pricing plan
    #: rather than by running the benchmark.  Batched cells are always
    #: ``vector=True``; per-cell fallbacks (functional, observed, fault
    #: cells) report ``batched=False``.  Defaulted so older pickled
    #: telemetry reads back as per-cell.
    batched: bool = False

    def to_dict(self) -> "dict[str, object]":
        """JSON-friendly record (the run report's ``cells`` rows)."""
        return {
            "benchmark": self.benchmark,
            "device": self.device,
            "num_ranks": self.num_ranks,
            "attempt": self.attempt,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "commands_simulated": self.commands_simulated,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_shapes": self.memo_shapes,
            "faults_injected": {name: n for name, n in self.faults_injected},
            "from_cache": self.from_cache,
            "vector": self.vector,
            "batched": self.batched,
        }

    @property
    def memo_lookups(self) -> int:
        return self.memo_hits + self.memo_misses

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of cost lookups served from the memo (0.0 when idle)."""
        lookups = self.memo_lookups
        return self.memo_hits / lookups if lookups else 0.0

    def contribute(self, scratch: MetricsRegistry) -> None:
        """Add this cell's contribution to a registry in place.

        The single code path for "what a cell contributes" whether it
        ran serially, in a worker, or came from the cache; both
        :meth:`as_metrics_snapshot` and the batched fold in
        :func:`merge_cell_telemetry` route through it (via
        :meth:`contribute_many`, which hoists the per-name registry
        lookups out of the per-cell loop).
        """
        self.contribute_many(scratch, (self,))

    @staticmethod
    def contribute_many(
        scratch: MetricsRegistry,
        telemetries: "typing.Iterable[CellTelemetry]",
    ) -> int:
        """Fold many cells into a registry; returns how many folded.

        Instrument objects are resolved once per call, not once per
        cell -- a sweep merges thousands of records whose name set is
        fixed.  Per-cell increment/observe order is unchanged, so the
        folded snapshot is identical to chaining :meth:`contribute`.
        """
        cells = scratch.counter("telemetry.cells")
        commands = scratch.counter("telemetry.commands_simulated")
        memo_hits = scratch.counter("cost_memo.hits")
        memo_misses = scratch.counter("cost_memo.misses")
        rss = scratch.gauge("telemetry.peak_rss_kb")
        wall = scratch.histogram("telemetry.cell_wall_s")
        folded = 0
        for telemetry in telemetries:
            cells.inc()
            commands.inc(telemetry.commands_simulated)
            memo_hits.inc(telemetry.memo_hits)
            memo_misses.inc(telemetry.memo_misses)
            if telemetry.from_cache:
                scratch.counter("telemetry.cells_from_cache").inc()
            if telemetry.attempt > 1:
                scratch.counter("telemetry.retry_attempts").inc(
                    telemetry.attempt - 1
                )
            for name, count in telemetry.faults_injected:
                scratch.counter(f"fault.{name}.injected").inc(count)
            rss.set(telemetry.peak_rss_kb)
            wall.observe(telemetry.wall_s)
            folded += 1
        return folded

    def as_metrics_snapshot(self) -> "dict[str, dict]":
        """This cell as a mergeable registry snapshot.

        Built through a scratch :class:`MetricsRegistry` so the bucket
        layout and record shapes are exactly the ones
        :meth:`MetricsRegistry.merge` expects.
        """
        scratch = MetricsRegistry()
        self.contribute(scratch)
        return scratch.snapshot()


class TelemetryCapture:
    """Times one cell run; construct before, :meth:`finish` after."""

    def __init__(self) -> None:
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def finish(
        self,
        benchmark: str,
        device: str,
        num_ranks: int,
        attempt: int = 1,
        commands_simulated: int = 0,
        memo_hits: int = 0,
        memo_misses: int = 0,
        memo_shapes: int = 0,
        faults_injected: "tuple[tuple[str, int], ...] | None" = None,
        vector: bool = False,
        batched: bool = False,
    ) -> CellTelemetry:
        return CellTelemetry(
            benchmark=benchmark,
            device=device,
            num_ranks=num_ranks,
            attempt=attempt,
            wall_s=time.perf_counter() - self._wall0,
            cpu_s=time.process_time() - self._cpu0,
            peak_rss_kb=peak_rss_kb(),
            commands_simulated=commands_simulated,
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            memo_shapes=memo_shapes,
            faults_injected=tuple(faults_injected or ()),
            vector=vector,
            batched=batched,
        )


#: Process-wide, spec-ordered log of every cell the engine completed
#: (including cache hits).  The run report's per-cell table reads it; it
#: spans run_cells calls so a figure driver's multiple suites all land
#: in one report.
_TELEMETRY_LOG: "list[CellTelemetry]" = []


def record_cell_telemetry(telemetry: CellTelemetry) -> None:
    """Append one cell's record to the process-wide log (engine-side)."""
    _TELEMETRY_LOG.append(telemetry)


def telemetry_log() -> "tuple[CellTelemetry, ...]":
    """Every cell recorded in this process, in completion (spec) order."""
    return tuple(_TELEMETRY_LOG)


def clear_telemetry_log() -> None:
    """Drop the log (tests and long-lived services)."""
    _TELEMETRY_LOG.clear()


def merge_cell_telemetry(
    registry: MetricsRegistry,
    telemetries: "typing.Iterable[CellTelemetry]",
    log: bool = True,
) -> int:
    """Fold per-cell records into a registry; returns how many merged.

    The engine calls this once per :func:`~repro.engine.engine.run_cells`
    with the outcomes in spec order, which makes the aggregation
    deterministic for any worker count.  ``log=True`` also appends each
    record to the process-wide :func:`telemetry_log`.

    All records fold into one scratch registry (in the given order)
    which merges into ``registry`` once -- one sorted-merge pass per
    call instead of one per cell, with the same deterministic result
    for any worker count.
    """
    scratch = MetricsRegistry()
    if log:
        telemetries = list(telemetries)
        _TELEMETRY_LOG.extend(telemetries)
    merged = CellTelemetry.contribute_many(scratch, telemetries)
    if merged:
        registry.merge(scratch.snapshot())
    return merged
