"""OpenMetrics / Prometheus text exposition of a metrics registry.

:func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry` into
the OpenMetrics text format (the ``/metrics`` wire format Prometheus
scrapes and the contract a future ``repro serve`` endpoint will speak).
The registry's dotted names map onto metric families:

* structured names become labeled families -- ``cmd.<sig>.count`` is
  exposed as ``repro_cmd_count_total{signature="<sig>"}``,
  ``copy.<dir>.bytes`` as ``repro_copy_bytes_total{direction="<dir>"}``,
  ``fault.<name>.injected`` as ``repro_fault_injected_total{fault="..."}``
  -- so one family aggregates across signatures/directions the way a
  scraper expects;
* every other dotted name flattens to an escaped family name
  (``cache.hits`` -> ``repro_cache_hits_total``).

Correctness rules implemented here (and pinned by the golden-file
test):

* family names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* label values escape backslash, double-quote, and newline;
* counters carry the ``_total`` suffix; histograms expose cumulative
  ``_bucket{le="..."}`` series (log2 upper bounds, ``le="0.0"`` for
  non-positive observations) plus ``_sum``/``_count``;
* output is sorted -- families lexicographically, samples by label --
  so the exposition is byte-stable; the final line is ``# EOF``.
"""

from __future__ import annotations

import re
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: Default family-name prefix (the "namespace" in Prometheus terms).
DEFAULT_PREFIX = "repro"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Structured registry-name patterns -> (family suffix, label key).
#: ``cmd.<value>.<field>`` exposes field families labeled by signature.
_FAMILY_RULES = (
    ("cmd.", ("count", "latency_ns", "energy_nj"), "cmd", "signature"),
    ("copy.", ("bytes", "latency_ns"), "copy", "direction"),
    ("fault.", ("injected",), "fault", "fault"),
)


def sanitize_name(name: str) -> str:
    """A legal OpenMetrics metric/family name for an arbitrary string."""
    cleaned = _NAME_BAD_CHARS.sub("_", name.replace(".", "_"))
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition-format rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value (integral floats without the trailing .0)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _classify(name: str) -> "tuple[str, dict[str, str]]":
    """Map a registry name to ``(family suffix, labels)``."""
    for prefix, fields, family, label_key in _FAMILY_RULES:
        if not name.startswith(prefix):
            continue
        body = name[len(prefix):]
        value, _, field = body.rpartition(".")
        if value and field in fields:
            return f"{family}_{field}", {label_key: value}
    return sanitize_name(name), {}


def _labels_text(labels: "dict[str, str]") -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_name(key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_labels(
    labels: "dict[str, str]", extra: "dict[str, str]"
) -> "dict[str, str]":
    merged = dict(labels)
    merged.update(extra)
    return merged


def _histogram_lines(
    family: str, labels: "dict[str, str]", record: dict
) -> "list[str]":
    """Cumulative le-bucket series + _sum/_count for one histogram."""
    buckets = record.get("buckets") or {}
    nonpos = int(buckets.get("nonpos", 0))
    log2_buckets = sorted(
        (int(key), int(tally))
        for key, tally in buckets.items()
        if key != "nonpos"
    )
    lines = []
    cumulative = nonpos
    if nonpos:
        lines.append(
            f"{family}_bucket"
            f"{_labels_text(_merge_labels(labels, {'le': '0.0'}))}"
            f" {cumulative}"
        )
    for exponent, tally in log2_buckets:
        cumulative += tally
        upper = repr(2.0 ** (exponent + 1))
        lines.append(
            f"{family}_bucket"
            f"{_labels_text(_merge_labels(labels, {'le': upper}))}"
            f" {cumulative}"
        )
    lines.append(
        f"{family}_bucket"
        f"{_labels_text(_merge_labels(labels, {'le': '+Inf'}))}"
        f" {int(record.get('count', 0))}"
    )
    lines.append(
        f"{family}_sum{_labels_text(labels)} "
        f"{_format_value(record.get('sum', 0.0))}"
    )
    lines.append(
        f"{family}_count{_labels_text(labels)} {int(record.get('count', 0))}"
    )
    return lines


def render(registry: "MetricsRegistry", prefix: str = DEFAULT_PREFIX) -> str:
    """The registry as OpenMetrics exposition text (ends with ``# EOF``)."""
    # family -> (type, [(sort key, sample line or (labels, record))...])
    families: "dict[str, tuple[str, list]]" = {}
    for name, record in registry.snapshot().items():
        suffix, labels = _classify(name)
        family = sanitize_name(f"{prefix}_{suffix}") if prefix else suffix
        kind = record["kind"]
        known = families.setdefault(family, (kind, []))
        if known[0] != kind:
            raise ValueError(
                f"metric family {family!r} mixes kinds "
                f"{known[0]!r} and {kind!r} (from registry name {name!r})"
            )
        sort_key = tuple(sorted(labels.items()))
        known[1].append((sort_key, labels, record))

    lines: "list[str]" = []
    for family in sorted(families):
        kind, samples = families[family]
        lines.append(f"# TYPE {family} {kind}")
        for _, labels, record in sorted(samples, key=lambda item: item[0]):
            if kind == "histogram":
                lines.extend(_histogram_lines(family, labels, record))
            elif kind == "counter":
                lines.append(
                    f"{family}_total{_labels_text(labels)} "
                    f"{_format_value(record['value'])}"
                )
            else:  # gauge
                lines.append(
                    f"{family}{_labels_text(labels)} "
                    f"{_format_value(record['value'])}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    path: str, registry: "MetricsRegistry", prefix: str = DEFAULT_PREFIX
) -> str:
    """Render and write the exposition; returns the path written."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render(registry, prefix=prefix))
    return path
