"""The JSON run report: one archivable artifact per invocation.

``repro run/suite/figure/profile --report out.json`` bundles everything
needed to attribute a run's numbers after the fact:

* an **environment stamp** (interpreter, platform, CPU count, relevant
  ``REPRO_*`` knobs) so two reports are comparable,
* the merged **metrics snapshot** (sorted-name order, the same records
  the OpenMetrics exposition renders), and
* the per-cell **telemetry table** (:mod:`repro.obs.telemetry`), the
  spec-ordered resource accounting that survived the worker processes.

The schema is versioned; consumers should ignore unknown keys.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
import typing

from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.telemetry import CellTelemetry, telemetry_log

#: Version of the report payload layout.
REPORT_SCHEMA = 1

#: Environment variables worth stamping into a report (set ones only).
_ENV_KEYS = (
    "REPRO_JOBS",
    "REPRO_CACHE_DIR",
    "REPRO_NO_COST_MEMO",
    "REPRO_MAX_RETRIES",
    "REPRO_CELL_TIMEOUT",
    "REPRO_VECTOR_CHECK",
)


def environment_stamp() -> "dict[str, object]":
    """Where and how this process ran (the report's provenance block)."""
    stamp: "dict[str, object]" = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
        "argv": list(sys.argv),
    }
    env = {key: os.environ[key] for key in _ENV_KEYS if key in os.environ}
    if env:
        stamp["env"] = env
    return stamp


def build_run_report(
    registry: "MetricsRegistry | None" = None,
    cells: "typing.Sequence[CellTelemetry] | None" = None,
    extra: "dict[str, object] | None" = None,
) -> "dict[str, object]":
    """Assemble the report payload (defaults to the process-wide state)."""
    registry = registry if registry is not None else global_registry()
    cells = cells if cells is not None else telemetry_log()
    report: "dict[str, object]" = {
        "schema": REPORT_SCHEMA,
        "generated_unix_s": round(time.time(), 3),
        "environment": environment_stamp(),
        "metrics": registry.snapshot(),
        "cells": [cell.to_dict() for cell in cells],
    }
    if extra:
        report["extra"] = dict(extra)
    return report


def write_run_report(
    path: str,
    registry: "MetricsRegistry | None" = None,
    cells: "typing.Sequence[CellTelemetry] | None" = None,
    extra: "dict[str, object] | None" = None,
) -> str:
    """Build and write a report; returns the path written."""
    report = build_run_report(registry=registry, cells=cells, extra=extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path
