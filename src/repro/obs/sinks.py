"""Pluggable event sinks: where the event stream goes.

Three built-ins cover the common cases:

* :class:`RingBufferSink` -- bounded in-memory buffer, for tests and for
  interactive "what just happened" inspection without unbounded growth;
* :class:`JsonlSink` -- streams one JSON object per event to a file or
  file-like, the machine-readable feed for external analysis;
* :class:`CallbackSink` -- adapts any callable, for ad-hoc wiring.

The Chrome-trace exporter (:mod:`repro.obs.export`) and the metrics
aggregator (:mod:`repro.obs.metrics`) are sinks too.
"""

from __future__ import annotations

import collections
import json
import typing

from repro.obs.events import ObsEvent


class Sink:
    """Base class: receives every event published on a bus."""

    def handle(self, event: ObsEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; default is a no-op."""


class RingBufferSink(Sink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer: "collections.deque[ObsEvent]" = collections.deque(
            maxlen=capacity
        )
        self.total_seen = 0

    def handle(self, event: ObsEvent) -> None:
        self._buffer.append(event)
        self.total_seen += 1

    @property
    def events(self) -> "list[ObsEvent]":
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class RecordingSink(Sink):
    """Unbounded in-order event recorder.

    The experiment engine attaches one to each worker process's local
    bus: the worker simulates against a fresh clock, and the parent
    replays the recorded events onto its own bus in simulated-time
    order (see :mod:`repro.engine.engine`).  Unlike
    :class:`RingBufferSink` nothing is ever dropped, because a replay
    with missing events would break the simulated-clock bookkeeping.
    """

    def __init__(self) -> None:
        self.events: "list[ObsEvent]" = []

    def handle(self, event: ObsEvent) -> None:
        self.events.append(event)


class JsonlSink(Sink):
    """Streams events as JSON Lines to ``path`` or an open file-like.

    When constructed with a path the file is owned (opened lazily,
    closed by :meth:`close`); a file-like passed in is left open.
    """

    def __init__(self, target: "str | typing.IO[str]") -> None:
        if isinstance(target, str):
            self._path: "str | None" = target
            self._file: "typing.IO[str] | None" = None
        else:
            self._path = None
            self._file = target
        self.num_events = 0

    def handle(self, event: ObsEvent) -> None:
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
        self._file.write(json.dumps(event.to_dict()) + "\n")
        self.num_events += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self._path is not None:
                self._file.close()
                self._file = None


class CallbackSink(Sink):
    """Forwards each event to an arbitrary callable."""

    def __init__(self, callback: "typing.Callable[[ObsEvent], None]") -> None:
        self.callback = callback

    def handle(self, event: ObsEvent) -> None:
        self.callback(event)
