"""Hierarchical spans over the simulated timeline.

A span brackets a region of simulated work (a benchmark, a phase inside
it, one suite cell).  Because the event bus owns the simulated clock, a
span's duration is simply "everything the bus saw between enter and
exit" -- commands, copies, host kernels, and nested spans alike -- which
is exactly the phase accounting the benchmarks already do with
``StatsSnapshot`` deltas, but streamed instead of aggregated.

Usage::

    from repro.obs import span

    with span("phase:training", bus):
        ...  # every command issued here lands on the "phase:training" track

``span`` is a no-op (and allocation-free) when ``bus`` is ``None`` or has
no sinks, so instrumented code costs nothing un-observed.
"""

from __future__ import annotations

import contextlib
import typing

from repro.obs.events import EventBus, SpanHandle  # noqa: F401  (re-export)


def device_bus(device) -> "EventBus | None":
    """The bus attached to a device's stats tracker, if any.

    Works for ``PimDevice`` and anything forwarding ``.stats`` to one
    (``TraceRecorder`` does).
    """
    stats = getattr(device, "stats", None)
    if stats is None:
        return None
    return getattr(stats, "bus", None)


@contextlib.contextmanager
def span(
    name: str,
    bus: "EventBus | None",
    args: "dict[str, typing.Any] | None" = None,
) -> "typing.Iterator[SpanHandle | None]":
    """Context manager opening a hierarchical span on ``bus``.

    Yields the :class:`SpanHandle` (or ``None`` when unobserved).
    """
    if bus is None or not bus.active:
        yield None
        return
    handle = bus.begin_span(name, args)
    try:
        yield handle
    finally:
        bus.end_span(handle)


def device_span(device, name: str, args: "dict | None" = None):
    """``span`` resolved against whatever bus the device carries."""
    return span(name, device_bus(device), args)
