"""Event model and event bus: the spine of the observability layer.

Every instrumented site in the simulator (command dispatch, copy paths,
host kernels, spans, trace recording) publishes :class:`ObsEvent` records
into an :class:`EventBus`.  Events are stamped on the **simulated**
timeline -- the cumulative modeled nanoseconds the bus has seen so far --
plus the wall-clock time the simulator itself has spent (``wall_us``), so
a trace shows both where modeled time goes and where simulation time
goes.

The bus owns the simulated clock.  The analytic model is serial (kernel,
copy, and host latencies simply accumulate), so advancing a single cursor
by each event's duration reproduces the per-run timeline exactly, and
concatenates naturally across the many device instances of a suite run.

Design constraint: with no bus attached the hot paths must pay only a
single ``is None`` check (see ``StatsTracker.record_command``); with a
bus attached but no sinks subscribed, ``emit_*`` still advances the clock
but constructs no event objects.
"""

from __future__ import annotations

import dataclasses
import time
import typing

#: Event phases, mirroring the Chrome trace-event ``ph`` field.
PH_COMPLETE = "X"
PH_BEGIN = "B"
PH_END = "E"
PH_INSTANT = "i"
PH_COUNTER = "C"

#: Default track (Chrome ``tid``) per event category, used when no span
#: is active.  Under a span, events land on the span's own track so the
#: exported timeline shows one track per phase.
DEFAULT_TRACKS = {
    "command": "commands",
    "copy": "copies",
    "host": "host",
    "span": "phases",
    "trace": "api",
    "counter": "counters",
    "engine": "engine",
    "fault": "faults",
}


@dataclasses.dataclass(frozen=True)
class ObsEvent:
    """One observability event on the simulated timeline.

    ``ts_ns``/``dur_ns`` are simulated (modeled) nanoseconds; ``wall_us``
    is the wall-clock microseconds the simulator had spent when the event
    was emitted (simulator overhead, not modeled time).
    """

    name: str
    cat: str
    ph: str
    ts_ns: float
    dur_ns: float = 0.0
    track: str = "sim"
    process: str = "repro"
    wall_us: float = 0.0
    args: "dict[str, typing.Any] | None" = None

    def to_dict(self) -> dict:
        """JSON-friendly record (used by the JSONL sink)."""
        record = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts_ns": self.ts_ns,
            "track": self.track,
            "process": self.process,
            "wall_us": self.wall_us,
        }
        if self.dur_ns:
            record["dur_ns"] = self.dur_ns
        if self.args:
            record["args"] = self.args
        return record


@dataclasses.dataclass
class SpanHandle:
    """Bookkeeping for one open span (returned by ``EventBus.begin_span``)."""

    name: str
    path: str
    depth: int
    t0_ns: float
    wall0_us: float


class EventBus:
    """Publishes events to subscribed sinks; owns the simulated clock.

    ``now_ns`` is the cumulative modeled time of everything emitted so
    far.  ``process`` labels subsequent events (the suite runner sets it
    to the device label before each benchmark/architecture run so the
    exported trace gets one process group per configuration).
    """

    def __init__(self, process: str = "repro") -> None:
        self.sinks: "list" = []
        self.now_ns = 0.0
        self.process = process
        self._wall_t0 = time.perf_counter()
        self._span_stack: "list[SpanHandle]" = []

    # -- lifecycle ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when at least one sink is subscribed."""
        return bool(self.sinks)

    def subscribe(self, sink):
        """Attach a sink; returns it for chaining."""
        self.sinks.append(sink)
        return sink

    def unsubscribe(self, sink) -> None:
        self.sinks.remove(sink)

    def close(self) -> None:
        """Close every sink (flushes file-backed ones)."""
        for sink in self.sinks:
            sink.close()

    # -- clocks -------------------------------------------------------------

    def wall_us(self) -> float:
        """Wall-clock microseconds since the bus was created."""
        return (time.perf_counter() - self._wall_t0) * 1e6

    def advance(self, dur_ns: float) -> float:
        """Move the simulated clock forward; returns the interval start."""
        start = self.now_ns
        self.now_ns = start + dur_ns
        return start

    # -- emission -----------------------------------------------------------

    def current_track(self) -> "str | None":
        """Track of the innermost open span, if any."""
        if self._span_stack:
            return self._span_stack[-1].name
        return None

    def emit(self, event: ObsEvent) -> None:
        for sink in self.sinks:
            sink.handle(event)

    def emit_complete(
        self,
        name: str,
        cat: str,
        dur_ns: float,
        args: "dict | None" = None,
        track: "str | None" = None,
    ) -> None:
        """Emit a duration event and advance the simulated clock."""
        start = self.advance(dur_ns)
        if not self.sinks:
            return
        self.emit(ObsEvent(
            name=name,
            cat=cat,
            ph=PH_COMPLETE,
            ts_ns=start,
            dur_ns=dur_ns,
            track=track or self.current_track() or DEFAULT_TRACKS.get(cat, "sim"),
            process=self.process,
            wall_us=self.wall_us(),
            args=args,
        ))

    def emit_instant(
        self,
        name: str,
        cat: str,
        args: "dict | None" = None,
        track: "str | None" = None,
    ) -> None:
        """Emit a zero-duration marker at the current simulated time."""
        if not self.sinks:
            return
        self.emit(ObsEvent(
            name=name,
            cat=cat,
            ph=PH_INSTANT,
            ts_ns=self.now_ns,
            track=track or self.current_track() or DEFAULT_TRACKS.get(cat, "sim"),
            process=self.process,
            wall_us=self.wall_us(),
            args=args,
        ))

    def emit_counter(self, name: str, values: "dict[str, float]") -> None:
        """Emit a counter sample (rendered as a counter track)."""
        if not self.sinks:
            return
        self.emit(ObsEvent(
            name=name,
            cat="counter",
            ph=PH_COUNTER,
            ts_ns=self.now_ns,
            track=DEFAULT_TRACKS["counter"],
            process=self.process,
            wall_us=self.wall_us(),
            args=dict(values),
        ))

    # -- spans --------------------------------------------------------------

    def begin_span(self, name: str, args: "dict | None" = None) -> SpanHandle:
        """Open a hierarchical span at the current simulated time."""
        parent = self._span_stack[-1].path if self._span_stack else ""
        handle = SpanHandle(
            name=name,
            path=f"{parent}/{name}" if parent else name,
            depth=len(self._span_stack),
            t0_ns=self.now_ns,
            wall0_us=self.wall_us(),
        )
        if self.sinks:
            self.emit(ObsEvent(
                name=name,
                cat="span",
                ph=PH_BEGIN,
                ts_ns=handle.t0_ns,
                track=DEFAULT_TRACKS["span"],
                process=self.process,
                wall_us=handle.wall0_us,
                args=dict(args, path=handle.path) if args else {"path": handle.path},
            ))
        self._span_stack.append(handle)
        return handle

    def end_span(self, handle: SpanHandle) -> None:
        """Close a span; emits its end with simulated and wall durations."""
        while self._span_stack and self._span_stack[-1] is not handle:
            # Tolerate mismatched exits (an inner span leaked): unwind to
            # the handle rather than corrupting the stack permanently.
            self._span_stack.pop()
        if self._span_stack:
            self._span_stack.pop()
        if self.sinks:
            wall = self.wall_us()
            self.emit(ObsEvent(
                name=handle.name,
                cat="span",
                ph=PH_END,
                ts_ns=self.now_ns,
                track=DEFAULT_TRACKS["span"],
                process=self.process,
                wall_us=wall,
                args={
                    "path": handle.path,
                    "sim_dur_ns": self.now_ns - handle.t0_ns,
                    "wall_dur_us": wall - handle.wall0_us,
                },
            ))
