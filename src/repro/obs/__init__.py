"""repro.obs: observability for the simulation stack.

Simulated-timeline event tracing, hierarchical spans, a metrics
registry, and pluggable sinks including a Chrome/Perfetto trace-event
exporter.  See ``docs/OBSERVABILITY.md`` for the tour.

Quick start::

    from repro.obs import EventBus, ChromeTraceSink, MetricsSink, span

    bus = EventBus()
    trace = bus.subscribe(ChromeTraceSink("out.json"))
    metrics = bus.subscribe(MetricsSink())
    device = PimDevice(config, bus=bus)
    with span("phase:kernel", bus):
        ...  # issue PIM commands
    bus.close()  # writes out.json
"""

from repro.obs.events import DEFAULT_TRACKS, EventBus, ObsEvent, SpanHandle
from repro.obs.export import (
    ChromeTraceSink,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    CommandHotspot,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    global_registry,
    hottest_commands,
    record_event_counts,
)
from repro.obs.openmetrics import render as render_openmetrics
from repro.obs.openmetrics import write_openmetrics
from repro.obs.report import (
    build_run_report,
    environment_stamp,
    write_run_report,
)
from repro.obs.telemetry import (
    CellTelemetry,
    TelemetryCapture,
    clear_telemetry_log,
    merge_cell_telemetry,
    record_cell_telemetry,
    telemetry_log,
)
from repro.obs.sinks import (
    CallbackSink,
    JsonlSink,
    RecordingSink,
    RingBufferSink,
    Sink,
)
from repro.obs.spans import device_bus, device_span, span

__all__ = [
    "DEFAULT_TRACKS",
    "EventBus",
    "ObsEvent",
    "SpanHandle",
    "ChromeTraceSink",
    "to_chrome_trace",
    "validate_chrome_trace",
    "CommandHotspot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "global_registry",
    "hottest_commands",
    "record_event_counts",
    "CallbackSink",
    "JsonlSink",
    "RecordingSink",
    "RingBufferSink",
    "Sink",
    "device_bus",
    "device_span",
    "span",
    "render_openmetrics",
    "write_openmetrics",
    "build_run_report",
    "environment_stamp",
    "write_run_report",
    "CellTelemetry",
    "TelemetryCapture",
    "clear_telemetry_log",
    "merge_cell_telemetry",
    "record_cell_telemetry",
    "telemetry_log",
]
