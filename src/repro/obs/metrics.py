"""Counters, gauges, histograms, and the registry that holds them.

The metrics layer aggregates the event stream into named scalars the way
the paper's activity analysis aggregates :class:`EventCounts`: row
activations, GDL bits, ALU word ops, copy traffic, per-command-signature
cost.  :class:`MetricsSink` subscribes a registry to an event bus so the
aggregation happens online, one pass, no event retention.

Naming convention (dotted, Prometheus-ish):

* ``commands.issued`` / ``commands.latency_ns`` / ``commands.energy_nj``
* ``cmd.<signature>.count`` / ``.latency_ns`` / ``.energy_nj``
* ``events.row_activations`` etc. (the EventCounts census)
* ``copy.<dir>.bytes`` / ``copy.<dir>.latency_ns``
* ``host.time_ns`` / ``host.energy_nj``
"""

from __future__ import annotations

import dataclasses
import json
import math
import typing
from collections import OrderedDict

from repro.obs.events import ObsEvent
from repro.obs.sinks import Sink

#: EventCounts fields forwarded from command events into counters.
EVENT_COUNT_FIELDS = (
    "row_activations",
    "lane_logic_ops",
    "alu_word_ops",
    "walker_bits",
    "gdl_bits",
)


class Counter:
    """Monotonically increasing scalar."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def to_record(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-write-wins scalar."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_record(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Log2-bucketed distribution (count / sum / min / max / buckets).

    Bucket ``b`` counts observations in ``[2**b, 2**(b+1))``; bucket
    ``None`` counts non-positive observations.
    """

    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: "dict[int | None, int]" = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        bucket = int(math.floor(math.log2(value))) if value > 0 else None
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_record(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {
                str(b) if b is not None else "nonpos": n
                for b, n in sorted(
                    self.buckets.items(),
                    key=lambda item: (item[0] is None, item[0] or 0),
                )
            },
        }


class MetricsRegistry:
    """Name-keyed store of metrics, in creation order."""

    def __init__(self) -> None:
        self._metrics: "OrderedDict[str, Counter | Gauge | Histogram]" = (
            OrderedDict()
        )

    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {factory.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> "list[str]":
        return list(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (default when absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        return metric.value

    def clear(self) -> None:
        """Drop every metric (tests and long-lived services)."""
        self._metrics.clear()

    def snapshot(self) -> "dict[str, dict]":
        """All metrics as JSON-friendly records, in sorted-name order.

        Sorted (not creation) order makes reports, the JSONL dump, and
        the OpenMetrics exposition byte-stable across runs whose metric
        *creation* order differs (worker scheduling, cache hits).
        """
        return {
            name: dict(self._metrics[name].to_record(), kind=self._metrics[name].kind)
            for name in sorted(self._metrics)
        }

    def to_jsonl(self) -> str:
        """One JSON object per metric, newline separated, sorted by name."""
        lines = [
            json.dumps(dict(record, name=name))
            for name, record in self.snapshot().items()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def merge(self, snapshot: "dict[str, dict]") -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Per-class semantics (the cross-process aggregation contract):

        * **counter** -- values sum (each side counted disjoint work);
        * **gauge** -- last write wins (the merged snapshot is newer);
        * **histogram** -- counts, sums, and per-bucket tallies add;
          min/max widen.  An empty histogram merges as a no-op so it
          cannot corrupt the target's min/max.

        Names are processed in sorted order; combined with the engine's
        spec-ordered merge loop this makes the merged registry
        deterministic regardless of worker scheduling.
        """
        for name in sorted(snapshot):
            record = snapshot[name]
            kind = record.get("kind", "counter")
            if kind == "counter":
                self.counter(name).inc(float(record.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).set(float(record.get("value", 0.0)))
            elif kind == "histogram":
                hist = self.histogram(name)
                count = int(record.get("count", 0))
                if count == 0:
                    continue
                hist.count += count
                hist.total += float(record.get("sum", 0.0))
                if record.get("min") is not None:
                    hist.min = min(hist.min, float(record["min"]))
                if record.get("max") is not None:
                    hist.max = max(hist.max, float(record["max"]))
                for bucket_key, tally in (record.get("buckets") or {}).items():
                    bucket = None if bucket_key == "nonpos" else int(bucket_key)
                    hist.buckets[bucket] = hist.buckets.get(bucket, 0) + int(tally)
            else:
                raise ValueError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry for engine-side health counters.

    Hosts metrics that exist outside any single simulation's bus --
    ``cache.corrupt_entries``, for instance, is incremented on cache
    reads that happen before a device (and its bus) exists.  Tests can
    read it without plumbing a registry through the engine.
    """
    return _GLOBAL_REGISTRY


class MetricsSink(Sink):
    """Feeds a registry from the event stream (commands, copies, host)."""

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry or MetricsRegistry()

    def handle(self, event: ObsEvent) -> None:
        registry = self.registry
        args = event.args or {}
        if event.cat == "command":
            count = args.get("count", 1)
            energy = args.get("energy_nj", 0.0)
            registry.counter("commands.issued").inc(count)
            registry.counter("commands.latency_ns").inc(event.dur_ns)
            registry.counter("commands.energy_nj").inc(energy)
            prefix = f"cmd.{event.name}"
            registry.counter(f"{prefix}.count").inc(count)
            registry.counter(f"{prefix}.latency_ns").inc(event.dur_ns)
            registry.counter(f"{prefix}.energy_nj").inc(energy)
            registry.histogram("command.latency_ns").observe(event.dur_ns)
            for field in EVENT_COUNT_FIELDS:
                amount = args.get(field, 0.0)
                if amount:
                    registry.counter(f"events.{field}").inc(amount)
        elif event.cat == "copy":
            direction = args.get("direction", "unknown")
            registry.counter(f"copy.{direction}.bytes").inc(
                args.get("bytes", 0)
            )
            registry.counter(f"copy.{direction}.latency_ns").inc(event.dur_ns)
            registry.counter("copy.total_bytes").inc(args.get("bytes", 0))
        elif event.cat == "host":
            registry.counter("host.time_ns").inc(event.dur_ns)
            registry.counter("host.energy_nj").inc(args.get("energy_nj", 0.0))
        elif event.cat == "engine":
            # cell.retry:<benchmark> / cell.failed:<benchmark>
            what = event.name.split(":", 1)[0]
            registry.counter(f"{what.replace('cell.', 'engine.')}").inc()
        elif event.cat == "fault":
            # fault.stuck_bit / fault.bit_flip / fault.dropped_command
            registry.counter(f"{event.name}.injected").inc()
        elif event.cat == "counter":
            # Counter-track samples (e.g. the per-cell cost_memo track):
            # last sample wins, mirroring what the Perfetto UI shows at
            # the end of the timeline.
            for key, value in args.items():
                registry.gauge(f"counter.{event.name}.{key}").set(value)
        registry.gauge("sim.now_ns").set(event.ts_ns + event.dur_ns)


@dataclasses.dataclass(frozen=True)
class CommandHotspot:
    """Aggregate cost of one command signature (for the top-N table)."""

    signature: str
    count: float
    latency_ns: float
    energy_nj: float


def hottest_commands(
    registry: MetricsRegistry, top_n: int = 10
) -> "list[CommandHotspot]":
    """Top-N command signatures by accumulated modeled latency."""
    signatures: "dict[str, dict[str, float]]" = {}
    for name in registry.names():
        if not name.startswith("cmd."):
            continue
        base, _, field = name.rpartition(".")
        signature = base[len("cmd."):]
        if field not in ("count", "latency_ns", "energy_nj"):
            continue
        signatures.setdefault(signature, {})[field] = registry.value(name)
    hotspots = [
        CommandHotspot(
            signature=sig,
            count=fields.get("count", 0.0),
            latency_ns=fields.get("latency_ns", 0.0),
            energy_nj=fields.get("energy_nj", 0.0),
        )
        for sig, fields in signatures.items()
    ]
    hotspots.sort(key=lambda h: h.latency_ns, reverse=True)
    return hotspots[:top_n]


def record_event_counts(
    registry: MetricsRegistry, events: typing.Any, prefix: str = "events"
) -> None:
    """Fold an :class:`EventCounts` census directly into counters.

    Used when stats were accumulated without a bus attached (e.g. a
    finished run) but a metrics view is still wanted.
    """
    for field in EVENT_COUNT_FIELDS:
        amount = getattr(events, field, 0.0)
        if amount:
            registry.counter(f"{prefix}.{field}").inc(amount)
