"""Closed-loop load generation against a live ``repro serve``.

``repro bench-serve`` drives the server the way the serving traces in
the PIM literature drive an accelerator: a fixed fleet of closed-loop
workers (each sends, waits, sends again) paced to a target aggregate
QPS, with a controllable **duplicate ratio** -- the fraction of
requests that name one hot cell instead of drawing from a distinct-cell
pool.  Duplicates are what make coalescing and caching measurable;
overload legs push the target QPS past capacity with a small queue
limit, which is what makes shedding measurable.

Each leg yields a :class:`LegReport`: latency percentiles (p50/p95/p99
over *successful* requests), shed and coalesce rates, and the maximum
queue depth a background sampler observed.  Reports serialize into the
``BENCH_PR*.json`` schema (``schema: 1``, ``runs: [...]``) with
``commands_per_s`` carrying achieved QPS, so the existing
``repro selfbench --check`` regression gate can gate serving
throughput with zero new tooling; the serving-specific fields ride
along as extra keys the gate ignores.
"""

from __future__ import annotations

import dataclasses
import json
import random
import threading
import time
import typing

from repro.serve.client import ServeClient

#: Shed/refusal codes counted as "shed" (pressure, not failure).
SHED_CODES = frozenset(
    {"ERR_OVERLOAD", "ERR_QUOTA", "ERR_DRAINING", "ERR_CIRCUIT_OPEN"}
)


def percentile(sorted_values: "typing.Sequence[float]", q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    rank = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclasses.dataclass(frozen=True)
class LoadLeg:
    """One benchmark leg's shape."""

    name: str
    duration_s: float = 5.0
    target_qps: float = 20.0
    concurrency: int = 4
    #: Fraction of requests naming the single hot cell (the coalescing
    #: and cache-hit driver); the rest draw from ``distinct_cells``
    #: rank variants, which is the cold/warm mix knob.
    duplicate_ratio: float = 0.8
    distinct_cells: int = 4
    benchmark: str = "vecadd"
    device: str = "bank"
    ranks: int = 32
    deadline_s: "float | None" = None
    vector: bool = False
    seed: int = 0


@dataclasses.dataclass
class LegReport:
    """What one leg measured."""

    name: str
    duration_s: float
    sent: int
    ok: int
    shed: int
    failed: int
    p50_s: float
    p95_s: float
    p99_s: float
    achieved_qps: float
    shed_rate: float
    coalesce_rate: float
    cache_hit_count: int
    max_queue_depth: int
    codes: "dict[str, int]"

    def to_run_dict(self) -> "dict[str, object]":
        """A BENCH-schema run record (gate-able by selfbench --check)."""
        return {
            "run": self.name,
            "wall_s": round(self.duration_s, 4),
            "commands_simulated": self.ok,
            "commands_per_s": round(self.achieved_qps, 3),
            "p50_s": round(self.p50_s, 5),
            "p95_s": round(self.p95_s, 5),
            "p99_s": round(self.p99_s, 5),
            "sent": self.sent,
            "shed": self.shed,
            "failed": self.failed,
            "shed_rate": round(self.shed_rate, 4),
            "coalesce_rate": round(self.coalesce_rate, 4),
            "cache_hits": self.cache_hit_count,
            "max_queue_depth": self.max_queue_depth,
            "codes": dict(sorted(self.codes.items())),
        }


class _QueueDepthSampler(threading.Thread):
    """Samples ``/statusz`` queue depth while a leg runs."""

    def __init__(
        self, make_client: "typing.Callable[[], ServeClient]",
        interval_s: float = 0.05,
    ) -> None:
        super().__init__(daemon=True)
        self._make_client = make_client
        self._interval_s = interval_s
        self._halt = threading.Event()
        self.max_depth = 0

    def run(self) -> None:
        with self._make_client() as client:
            while not self._halt.is_set():
                try:
                    status, payload = client.get_json("/statusz")
                    if status == 200:
                        self.max_depth = max(
                            self.max_depth, int(payload.get("inflight", 0))
                        )
                except (OSError, ValueError):
                    client.close()
                self._halt.wait(self._interval_s)

    def stop(self) -> int:
        self._halt.set()
        self.join(timeout=2.0)
        return self.max_depth


def _request_body(leg: LoadLeg, rng: random.Random) -> bytes:
    """The next request a worker sends (hot cell or a distinct variant)."""
    if rng.random() < leg.duplicate_ratio:
        ranks = leg.ranks
    else:
        # Distinct cells come from varying the rank count -- each is a
        # different cache key, so these are the cold/working-set part.
        ranks = leg.ranks + 1 + rng.randrange(max(1, leg.distinct_cells))
    fields: "dict[str, object]" = {
        "benchmark": leg.benchmark,
        "device": leg.device,
        "ranks": ranks,
        "vector": leg.vector,
    }
    if leg.deadline_s is not None:
        fields["deadline_s"] = leg.deadline_s
    return json.dumps(fields).encode("utf-8")


def run_leg(
    make_client: "typing.Callable[[], ServeClient]",
    leg: LoadLeg,
) -> LegReport:
    """Drive one closed-loop leg and measure it.

    ``make_client`` builds one connection per worker thread (plus one
    for the queue-depth sampler); the coalesce/cache tallies come from
    the server's ``/statusz`` deltas around the leg.
    """
    lock = threading.Lock()
    latencies: "list[float]" = []
    codes: "dict[str, int]" = {}
    tallies = {"sent": 0, "ok": 0, "shed": 0, "failed": 0}
    per_worker_qps = leg.target_qps / max(1, leg.concurrency)
    pace_s = 1.0 / per_worker_qps if per_worker_qps > 0 else 0.0
    stop_at = time.monotonic() + leg.duration_s

    def worker(index: int) -> None:
        rng = random.Random((leg.seed << 16) ^ index)
        with make_client() as client:
            next_send = time.monotonic()
            while True:
                now = time.monotonic()
                if now >= stop_at:
                    return
                if pace_s and now < next_send:
                    time.sleep(min(next_send - now, stop_at - now))
                    if time.monotonic() >= stop_at:
                        return
                next_send = max(next_send + pace_s, time.monotonic())
                body = _request_body(leg, rng)
                begin = time.monotonic()
                try:
                    status, _, raw = client.request("POST", "/v1/cell", body)
                    payload = json.loads(raw.decode("utf-8"))
                except (OSError, ValueError) as exc:
                    with lock:
                        tallies["sent"] += 1
                        tallies["failed"] += 1
                        codes[type(exc).__name__] = (
                            codes.get(type(exc).__name__, 0) + 1
                        )
                    client.close()
                    continue
                elapsed = time.monotonic() - begin
                code = str(payload.get("code", "OK" if status == 200 else "?"))
                with lock:
                    tallies["sent"] += 1
                    codes[code] = codes.get(code, 0) + 1
                    if status == 200:
                        tallies["ok"] += 1
                        latencies.append(elapsed)
                    elif code in SHED_CODES:
                        tallies["shed"] += 1
                    else:
                        tallies["failed"] += 1

    with make_client() as probe:
        _, before = probe.get_json("/statusz")
    sampler = _QueueDepthSampler(make_client)
    sampler.start()
    begin = time.monotonic()
    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(leg.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - begin
    max_depth = sampler.stop()
    with make_client() as probe:
        _, after = probe.get_json("/statusz")

    def delta(field: str) -> int:
        return max(0, int(after.get(field, 0)) - int(before.get(field, 0)))

    def counter_delta(name: str) -> int:
        before_c = before.get("counters") or {}
        after_c = after.get("counters") or {}
        return max(
            0, int(after_c.get(name, 0) or 0) - int(before_c.get(name, 0) or 0)
        )

    latencies.sort()
    sent = tallies["sent"]
    report = LegReport(
        name=leg.name,
        duration_s=wall,
        sent=sent,
        ok=tallies["ok"],
        shed=tallies["shed"],
        failed=tallies["failed"],
        p50_s=percentile(latencies, 0.50),
        p95_s=percentile(latencies, 0.95),
        p99_s=percentile(latencies, 0.99),
        achieved_qps=tallies["ok"] / wall if wall > 0 else 0.0,
        shed_rate=tallies["shed"] / sent if sent else 0.0,
        coalesce_rate=delta("coalesced") / sent if sent else 0.0,
        cache_hit_count=counter_delta("serve.cache_hits"),
        max_queue_depth=max(max_depth, int(after.get("max_inflight", 0))),
        codes=codes,
    )
    return report


def bench_payload(reports: "typing.Sequence[LegReport]") -> "dict[str, object]":
    """The archivable BENCH_PR8.json payload."""
    return {"schema": 1, "runs": [r.to_run_dict() for r in reports]}


def format_reports(reports: "typing.Sequence[LegReport]") -> str:
    """The human-readable table ``repro bench-serve`` prints."""
    lines = [
        f"{'leg':<18s} {'sent':>6s} {'ok':>6s} {'shed':>6s} {'qps':>8s} "
        f"{'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s} "
        f"{'coalesce':>9s} {'maxdepth':>9s}"
    ]
    for r in reports:
        lines.append(
            f"{r.name:<18s} {r.sent:>6d} {r.ok:>6d} {r.shed:>6d} "
            f"{r.achieved_qps:>8.1f} {r.p50_s * 1e3:>8.1f} "
            f"{r.p95_s * 1e3:>8.1f} {r.p99_s * 1e3:>8.1f} "
            f"{r.coalesce_rate:>9.2%} {r.max_queue_depth:>9d}"
        )
    return "\n".join(lines)
