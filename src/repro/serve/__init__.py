"""repro.serve: the long-running, fault-tolerant evaluation service.

Every CLI query today pays interpreter start-up, numpy import, registry
construction, and engine spin-up before the first command is priced.
``repro serve`` keeps all of that warm in one process -- the
ArchBackend registry, the cost-memo tables, the vectorized pricer, and
the persistent :class:`~repro.engine.cache.DiskCache` -- and answers
evaluation requests over JSON/HTTP on a TCP port or a unix socket.

Robustness is the contract, not a bolt-on (docs/SERVING.md):

* **admission control** -- a bounded queue with explicit load shedding
  (``ERR_OVERLOAD`` + a retry-after hint) and per-tenant token-bucket
  quotas, so overload degrades into fast rejections instead of
  unbounded latency;
* **single-flight coalescing** -- concurrent identical cells (keyed by
  the engine's content-addressed cache key) cost one execution;
* **deadlines** -- per-request budgets enforced while queued and while
  executing, reusing PR 3's :class:`~repro.resilience.RetryPolicy`
  machinery and fault taxonomy;
* **circuit breaking** -- a backend that keeps failing is opened for a
  cooldown and probed half-open before traffic returns;
* **watchdog-supervised workers** -- warm worker processes
  (:class:`~repro.engine.warm.WarmExecutor`) that are killed and
  respawned on hang or crash, with retries absorbing the loss;
* **graceful drain** -- SIGTERM/SIGINT stops admission, finishes or
  cleanly rejects in-flight work, flushes telemetry, and exits 0.

Every response payload is byte-identical to what a direct
:func:`~repro.engine.run_cells` call produces for the same spec -- the
service changes *when* and *whether* work runs, never its numbers.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.protocol import (
    ERROR_HTTP_STATUS,
    CellRequest,
    ServeError,
    canonical_json,
    error_payload,
    result_payload,
)
from repro.serve.service import EvaluationService, ServiceConfig
from repro.serve.singleflight import SingleFlight

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BreakerState",
    "CellRequest",
    "CircuitBreaker",
    "ERROR_HTTP_STATUS",
    "EvaluationService",
    "ServeError",
    "ServiceConfig",
    "SingleFlight",
    "TokenBucket",
    "canonical_json",
    "error_payload",
    "result_payload",
]
