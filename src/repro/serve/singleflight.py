"""Single-flight coalescing: concurrent identical cells cost one run.

The serving workload that motivates this (HBM-PIMulator's LLM-serving
traces) is duplicate-heavy: many concurrent queries name the same
(benchmark, device, ranks, mode) cell.  Identity is the engine's
content-addressed cache key -- the same key the
:class:`~repro.engine.cache.DiskCache` uses -- so "identical" here
means *provably the same numbers*, not merely the same request text.

A flight is a real :class:`asyncio.Task`, detached from any one
request: the first caller for a key creates it (the *leader*), later
callers attach to it (*followers*, tallied as coalesced), and every
waiter awaits it through a shield.  That structure is what lets a
request's deadline abandon its wait without killing the shared work --
the flight runs to completion, the cache still gets the result, and
other waiters are unaffected.  Failures propagate to every waiter, and
the key is cleared when the flight settles so a retry after failure
starts a fresh flight.
"""

from __future__ import annotations

import asyncio
import typing

T = typing.TypeVar("T")


class SingleFlight:
    """Keyed coalescing of concurrent awaitables (asyncio, single loop)."""

    def __init__(self) -> None:
        self._inflight: "dict[str, asyncio.Task]" = {}
        self.coalesced = 0
        self.flights = 0

    @property
    def inflight_keys(self) -> "tuple[str, ...]":
        return tuple(self._inflight)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def flight(
        self,
        key: str,
        factory: "typing.Callable[[], typing.Awaitable[T]]",
    ) -> "tuple[asyncio.Task, bool]":
        """The shared task for ``key``, creating it if none is in flight.

        Returns ``(task, leader)``; ``leader`` says whether this call
        actually started the work.  Await the task through
        ``asyncio.shield`` so abandoning one waiter (deadline, client
        disconnect) never cancels the shared execution.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            return existing, False
        task = asyncio.get_running_loop().create_task(factory())
        self._inflight[key] = task
        self.flights += 1
        task.add_done_callback(lambda t, k=key: self._settle(k, t))
        return task, True

    def _settle(self, key: str, task: "asyncio.Task") -> None:
        self._inflight.pop(key, None)
        if not task.cancelled():
            # Mark the exception retrieved: with zero surviving waiters
            # (every client timed out), the loop would otherwise log a
            # "never retrieved" warning at shutdown.
            task.exception()

    async def run(
        self,
        key: str,
        factory: "typing.Callable[[], typing.Awaitable[T]]",
    ) -> "tuple[T, bool]":
        """Execute ``factory`` once per concurrent ``key``.

        Returns ``(result, leader)``.  Exceptions raised by the factory
        propagate to the leader and every follower.
        """
        task, leader = self.flight(key, factory)
        return await asyncio.shield(task), leader

    def cancel_all(self) -> int:
        """Cancel every in-flight task (forced-drain path)."""
        cancelled = 0
        for task in list(self._inflight.values()):
            if not task.done():
                task.cancel()
                cancelled += 1
        return cancelled
