"""The evaluation service: admission, execution, and degradation glue.

:class:`EvaluationService` is the transport-independent heart of
``repro serve``; the HTTP layer (``repro.serve.http``) only parses
requests off sockets and writes this class's ``(status, payload)``
answers back.  One request flows through:

1. **admission** (:class:`~repro.serve.admission.AdmissionController`)
   -- drain, tenant quota, and bounded-queue gates, cheapest first;
2. **circuit breaker** (:class:`~repro.serve.breaker.CircuitBreaker`)
   -- keyed by backend, so a sick device model fails fast;
3. **cache key** -- the engine's content-addressed
   :func:`~repro.engine.cache.cell_cache_key` of the *undecorated*
   spec, which is also the coalescing identity;
4. **single flight** (:class:`~repro.serve.singleflight.SingleFlight`)
   -- concurrent identical cells share one execution task;
5. **the flight itself** -- disk-cache probe, then warm-slot execution
   under the PR 3 :class:`~repro.resilience.policy.RetryPolicy`
   (watchdog timeout per attempt, deterministic backoff between), then
   a cache write-back.

Deadlines are enforced on the *wait*, never on the *work*: a request
that blows its budget abandons the shared flight through a shield and
gets ``ERR_DEADLINE``, while the flight runs on -- followers still get
their answer and the cache still gets the entry.

The byte-identity contract (tested end-to-end): success payloads are
rendered by :func:`~repro.serve.protocol.result_payload` from the
undecorated spec, so a cached, coalesced, retried, or chaos-disrupted
evaluation returns exactly the bytes a direct ``run_cells`` would.
"""

from __future__ import annotations

import asyncio
import concurrent.futures.process
import dataclasses
import time
import typing

from repro.core.errors import PimTimeoutError, PimWorkerCrashError
from repro.engine.cache import DiskCache, cell_cache_key
from repro.engine.warm import WarmExecutor, WarmSlot
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.resilience.failures import failure_from_exception
from repro.resilience.policy import RetryPolicy
from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_CELL_FAILED,
    ERR_DEADLINE,
    ERR_DRAINING,
    ERR_INTERNAL,
    ERR_OVERLOAD,
    ERR_QUOTA,
    CellRequest,
    ServeError,
    error_payload,
    result_payload,
)
from repro.serve.singleflight import SingleFlight

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cells import CellOutcome, CellSpec
    from repro.faults.chaos import ChaosPolicy

#: Which refusal code increments which shed counter.
_SHED_COUNTERS = {
    ERR_DRAINING: "shed.draining",
    ERR_QUOTA: "shed.quota",
    ERR_OVERLOAD: "shed.overload",
}


def _default_policy() -> RetryPolicy:
    """Serving defaults: a watchdog is mandatory (a hung worker must be
    killed, not waited on), and transient faults get two retries."""
    return RetryPolicy(max_retries=2, cell_timeout_s=60.0)


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything an :class:`EvaluationService` needs decided up front."""

    workers: int = 2
    queue_limit: int = 64
    quota_rps: "float | None" = None
    quota_burst: "float | None" = None
    default_deadline_s: float = 30.0
    policy: RetryPolicy = dataclasses.field(default_factory=_default_policy)
    use_cache: bool = True
    cache_dir: "str | None" = None
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 10.0
    chaos: "ChaosPolicy | None" = None
    drain_grace_s: float = 20.0


class _CellExecutionError(Exception):
    """A flight's terminal failure, carrying the PR 3 failure record."""

    def __init__(self, failure) -> None:
        super().__init__(failure.brief())
        self.failure = failure


class EvaluationService:
    """The warm, fault-tolerant evaluator behind every transport."""

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry if registry is not None else global_registry()
        self.admission = AdmissionController(
            queue_limit=self.config.queue_limit,
            quota_rate=self.config.quota_rps,
            quota_burst=self.config.quota_burst,
            workers=self.config.workers,
        )
        self.flights = SingleFlight()
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.executor = WarmExecutor(self.config.workers)
        self.cache: "DiskCache | None" = (
            DiskCache(self.config.cache_dir) if self.config.use_cache else None
        )
        self._slots: "asyncio.Queue[WarmSlot] | None" = None
        self._flight_seq = 0
        self.started = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Spawn and warm every worker; build the asyncio slot queue."""
        self._slots = asyncio.Queue()
        for slot in self.executor.slots:
            self._slots.put_nowait(slot)
        await asyncio.to_thread(self.executor.warm_up)
        self.registry.gauge("serve.workers").set(self.executor.workers)
        self.registry.gauge("serve.draining").set(0.0)
        self.started = True

    async def drain(self, grace_s: "float | None" = None) -> int:
        """Graceful shutdown: stop admitting, let in-flight work finish.

        Waits up to the grace budget for the backlog to clear; whatever
        is still running then is cancelled (those clients get a clean
        ``ERR_DRAINING`` refusal, not a dropped connection).  Finally
        kills every worker and flushes the cache usage ledger.  Returns
        the number of flights that had to be force-cancelled.
        """
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        self.admission.draining = True
        self.registry.gauge("serve.draining").set(1.0)
        deadline = time.monotonic() + max(0.0, grace)
        while self.admission.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        forced = 0
        if self.admission.inflight > 0:
            forced = self.flights.cancel_all()
            hard_stop = time.monotonic() + 2.0
            while self.admission.inflight > 0 and time.monotonic() < hard_stop:
                await asyncio.sleep(0.02)
        await asyncio.to_thread(self.executor.shutdown)
        if self.cache is not None:
            await asyncio.to_thread(self.cache.flush_usage)
        return forced

    # -- the request path -------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(f"serve.{name}").inc(amount)

    def _refusal(self, exc: ServeError) -> "tuple[int, dict]":
        return exc.http_status, error_payload(
            exc.code, str(exc), retry_after_s=exc.retry_after_s, **exc.context
        )

    async def evaluate(self, body: bytes) -> "tuple[int, dict]":
        """One request, body bytes in, ``(http_status, payload)`` out.

        Never raises for request-shaped problems -- every refusal is a
        coded payload.  (Programming errors still surface, as
        ``ERR_INTERNAL``.)
        """
        started = time.monotonic()
        self._count("requests")
        try:
            request = CellRequest.from_json(body)
        except ServeError as exc:
            self._count("bad_requests")
            return self._refusal(exc)
        try:
            self.admission.admit(request.tenant)
        except ServeError as exc:
            self._count(_SHED_COUNTERS.get(exc.code, "shed.other"))
            return self._refusal(exc)
        self.registry.gauge("serve.queue_depth").set(self.admission.inflight)
        try:
            return await self._evaluate_admitted(request, started)
        finally:
            self.admission.finish()
            elapsed = time.monotonic() - started
            self.admission.observe_service_time(elapsed)
            self.registry.gauge("serve.queue_depth").set(self.admission.inflight)
            self.registry.histogram("serve.latency_s").observe(elapsed)

    async def _evaluate_admitted(
        self, request: CellRequest, started: float
    ) -> "tuple[int, dict]":
        try:
            spec = request.to_spec()
        except ServeError as exc:
            self._count("bad_requests")
            return self._refusal(exc)
        backend_key = str(
            getattr(spec.device_type, "value", spec.device_type)
        )
        try:
            self.breaker.check(backend_key)
        except ServeError as exc:
            self._count("shed.breaker")
            return self._refusal(exc)
        try:
            key = await asyncio.to_thread(cell_cache_key, spec)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # An unknown benchmark (or broken params) surfaces here,
            # where the spec is first materialized; it is the client's
            # mistake, not the backend's, so the breaker is untouched.
            self.breaker.record_success(backend_key)
            self._count("bad_requests")
            return self._refusal(
                ServeError(
                    ERR_BAD_REQUEST,
                    f"cannot resolve cell: {type(exc).__name__}: {exc}",
                )
            )
        task, leader = self.flights.flight(
            key,
            lambda: self._execute_flight(
                spec, key, request.no_cache, backend_key
            ),
        )
        if not leader:
            self._count("coalesced")
        deadline = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        remaining = deadline - (time.monotonic() - started)
        try:
            if remaining <= 0:
                raise asyncio.TimeoutError
            payload = await asyncio.wait_for(
                asyncio.shield(task), timeout=remaining
            )
        except asyncio.TimeoutError:
            self._count("deadline_exceeded")
            return self._refusal(
                ServeError(
                    ERR_DEADLINE,
                    f"request exceeded its {deadline:g}s deadline "
                    "(the evaluation continues for other waiters)",
                )
            )
        except asyncio.CancelledError:
            if self.admission.draining:
                # drain() force-cancelled the flight: refuse cleanly.
                self._count("shed.draining")
                return self._refusal(
                    ServeError(
                        ERR_DRAINING,
                        "server drained before the cell finished",
                        retry_after_s=1.0,
                    )
                )
            raise
        except _CellExecutionError as exc:
            return self._refusal(
                ServeError(
                    ERR_CELL_FAILED,
                    exc.failure.brief(),
                    failure=exc.failure.to_dict(),
                )
            )
        except ServeError as exc:
            return self._refusal(exc)
        except Exception as exc:  # noqa: BLE001 - last-resort containment
            self._count("internal_errors")
            return self._refusal(
                ServeError(ERR_INTERNAL, f"{type(exc).__name__}: {exc}")
            )
        self._count("ok")
        return 200, payload

    # -- flight execution -------------------------------------------------

    async def _execute_flight(
        self,
        spec: "CellSpec",
        key: str,
        no_cache: bool,
        backend_key: str,
    ) -> dict:
        """Run one coalesced flight to a canonical success payload."""
        cache = self.cache if not no_cache else None
        if cache is not None:
            outcome = await asyncio.to_thread(cache.get, key)
            if outcome is not None and outcome.error is None:
                self._count("cache_hits")
                self.breaker.record_success(backend_key)
                return result_payload(spec, outcome)
        self._flight_seq += 1
        exec_spec = spec
        chaos = self.config.chaos
        if chaos is not None and chaos.active:
            # Decorate AFTER the cache key: chaos changes how the
            # worker dies, never what the cell computes or caches.
            exec_spec = chaos.decorate(spec, self._flight_seq)
            if exec_spec is not spec:
                self._count("chaos_injected")
        policy = self.config.policy
        attempt = 0
        while True:
            attempt += 1
            try:
                outcome = await self._run_attempt(exec_spec, attempt)
                break
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - taxonomy decides below
                if attempt < policy.max_attempts:
                    self._count("retries")
                    delay = policy.backoff_s(key, attempt)
                    if delay > 0:
                        await asyncio.sleep(delay)
                    continue
                self.breaker.record_failure(backend_key)
                self._count("cell_failures")
                raise _CellExecutionError(
                    failure_from_exception(exc, attempt)
                ) from exc
        self._count("executed")
        self.breaker.record_success(backend_key)
        if cache is not None and outcome.error is None:
            await asyncio.to_thread(cache.put, key, outcome)
        return result_payload(spec, outcome)

    async def _run_attempt(
        self, spec: "CellSpec", attempt: int
    ) -> "CellOutcome":
        """One attempt on one warm slot, under the watchdog.

        A watchdog timeout or a worker crash kills and respawns the
        slot (one spawn, not a poisoned pool) and re-raises as the
        taxonomy's coded error so the retry loop can classify it.
        """
        assert self._slots is not None, "EvaluationService.start() not called"
        slot = await self._slots.get()
        try:
            future = slot.submit(spec, attempt=attempt)
            wrapped = asyncio.wrap_future(future)
            timeout = self.config.policy.cell_timeout_s
            try:
                return await asyncio.wait_for(
                    asyncio.shield(wrapped), timeout=timeout
                )
            except asyncio.TimeoutError:
                _consume(wrapped)
                await self._respawn(slot)
                raise PimTimeoutError(
                    f"cell exceeded the {timeout:g}s serve watchdog",
                    timeout_s=timeout,
                    attempt=attempt,
                ) from None
            except concurrent.futures.process.BrokenProcessPool as exc:
                await self._respawn(slot)
                raise PimWorkerCrashError(
                    "worker process died while evaluating the cell",
                    attempt=attempt,
                ) from exc
        finally:
            if slot.alive:
                self._slots.put_nowait(slot)

    async def _respawn(self, slot: WarmSlot) -> None:
        self._count("worker_respawns")
        await asyncio.to_thread(slot.respawn)

    # -- introspection ----------------------------------------------------

    def status(self) -> dict:
        """The ``/statusz`` record (also what the load generator reads)."""
        return {
            "draining": self.admission.draining,
            "inflight": self.admission.inflight,
            "max_inflight": self.admission.max_inflight,
            "queue_limit": self.admission.queue_limit,
            "workers": self.executor.workers,
            "worker_respawns": self.executor.respawns,
            "flights": self.flights.flights,
            "coalesced": self.flights.coalesced,
            "service_time_ewma_s": round(
                self.admission.service_time_ewma_s, 6
            ),
            "counters": {
                name: self.registry.value(name)
                for name in self.registry.names()
                if (name.startswith("serve.") or name.startswith("cache."))
                and self.registry[name].kind != "histogram"
            },
        }


def _consume(future: "asyncio.Future") -> None:
    """Mark an abandoned future's eventual exception as retrieved."""

    def _eat(f: "asyncio.Future") -> None:
        if not f.cancelled():
            f.exception()

    future.add_done_callback(_eat)
