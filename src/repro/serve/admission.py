"""Admission control: bounded queueing, load shedding, tenant quotas.

The degradation philosophy (docs/SERVING.md): under pressure the
service must refuse *fast and informatively*, never queue without
bound.  Three gates run, cheapest first, before a request may touch the
execution path:

1. **drain** -- a draining server admits nothing new;
2. **tenant quota** -- a token bucket per tenant (capacity = burst,
   refill = steady-state rate); an empty bucket sheds with
   ``ERR_QUOTA`` and the exact time until a token exists;
3. **queue bound** -- at most ``queue_limit`` admitted-but-unfinished
   requests; beyond it the request sheds with ``ERR_OVERLOAD`` and a
   retry-after derived from the observed service time (an EWMA), so the
   hint tracks the workload instead of being a constant.

Everything takes an injectable monotonic clock, so the tests are exact
rather than sleep-based.  All state mutation happens on the event loop
thread -- no locks.
"""

from __future__ import annotations

import dataclasses
import time
import typing

from repro.serve.protocol import (
    ERR_DRAINING,
    ERR_OVERLOAD,
    ERR_QUOTA,
    ServeError,
)

Clock = typing.Callable[[], float]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, up to ``burst`` stored."""

    def __init__(
        self, rate: float, burst: float, clock: "Clock | None" = None
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock or time.monotonic
        self._tokens = self.burst
        self._stamp = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_take(self, tokens: float = 1.0) -> "float | None":
        """Take ``tokens`` if available; else the wait until they are.

        Returns ``None`` on success, otherwise the number of seconds
        after which the same ``try_take`` would succeed (the
        ``retry_after_s`` hint).
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return None
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    """Why a request was admitted (for telemetry/labels)."""

    tenant: str
    queue_depth: int


class AdmissionController:
    """The three-gate admission path plus the load-tracking it needs.

    ``queue_limit`` bounds admitted-but-unfinished requests (queued
    *and* executing -- the client-visible backlog).  ``admit`` either
    returns an :class:`AdmissionDecision` or raises a coded
    :class:`ServeError`; callers must pair every successful ``admit``
    with exactly one ``finish``.
    """

    def __init__(
        self,
        queue_limit: int = 64,
        quota_rate: "float | None" = None,
        quota_burst: "float | None" = None,
        clock: "Clock | None" = None,
        workers: int = 1,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.queue_limit = queue_limit
        self.quota_rate = quota_rate
        self.quota_burst = (
            quota_burst if quota_burst is not None
            else (quota_rate if quota_rate else None)
        )
        self.workers = max(1, workers)
        self._clock = clock or time.monotonic
        self._buckets: "dict[str, TokenBucket]" = {}
        self.inflight = 0
        self.max_inflight = 0
        self.draining = False
        #: EWMA of observed service seconds (seeds at 50 ms: roughly a
        #: warm small-cell evaluation; converges within a few requests).
        self.service_time_ewma_s = 0.05

    # -- load tracking ----------------------------------------------------

    def observe_service_time(self, seconds: float) -> None:
        """Fold one completed request's duration into the EWMA."""
        if seconds >= 0:
            self.service_time_ewma_s += 0.2 * (
                seconds - self.service_time_ewma_s
            )

    def retry_after_hint(self) -> float:
        """Seconds a shed client should wait before retrying.

        The backlog ahead of a hypothetical re-arrival is the current
        queue depth; it drains at ``workers / service_time`` requests
        per second.  Clamped to a floor so the hint never tells a client
        to hammer.
        """
        drain_rate = self.workers / max(self.service_time_ewma_s, 1e-6)
        return max(0.05, self.inflight / drain_rate)

    # -- the gates --------------------------------------------------------

    def _bucket(self, tenant: str) -> "TokenBucket | None":
        if self.quota_rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.quota_rate, self.quota_burst or self.quota_rate,
                clock=self._clock,
            )
        return bucket

    def admit(self, tenant: str = "default") -> AdmissionDecision:
        """Run the gates; admit or raise a coded refusal."""
        if self.draining:
            raise ServeError(
                ERR_DRAINING,
                "server is draining and admits no new work",
                retry_after_s=1.0,
            )
        bucket = self._bucket(tenant)
        if bucket is not None:
            wait = bucket.try_take()
            if wait is not None:
                raise ServeError(
                    ERR_QUOTA,
                    f"tenant {tenant!r} is over its request quota "
                    f"({self.quota_rate:g}/s, burst {self.quota_burst:g})",
                    retry_after_s=wait,
                    tenant=tenant,
                )
        if self.inflight >= self.queue_limit:
            raise ServeError(
                ERR_OVERLOAD,
                f"admission queue is full ({self.inflight} in flight, "
                f"limit {self.queue_limit})",
                retry_after_s=self.retry_after_hint(),
                queue_depth=self.inflight,
            )
        self.inflight += 1
        self.max_inflight = max(self.max_inflight, self.inflight)
        return AdmissionDecision(tenant=tenant, queue_depth=self.inflight)

    def finish(self) -> None:
        """Release one admitted request's queue slot."""
        if self.inflight <= 0:
            raise RuntimeError("finish() without a matching admit()")
        self.inflight -= 1
