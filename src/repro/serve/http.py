"""The transport: stdlib asyncio HTTP/1.1 over TCP and unix sockets.

Deliberately tiny -- request-line + headers + ``Content-Length`` body,
keep-alive connections, no chunked encoding, no TLS -- because the
clients are the repo's own tools (``repro.serve.client``, the load
generator, the CI smoke script) and the contract that matters lives a
layer down in :class:`~repro.serve.service.EvaluationService`.  Routes:

* ``POST /v1/cell``  -- evaluate one cell (the JSON body is a
  :class:`~repro.serve.protocol.CellRequest`);
* ``GET /metrics``   -- OpenMetrics exposition of the process registry
  (the same :func:`repro.obs.openmetrics.render` CI already scrapes);
* ``GET /healthz``   -- liveness: 200 while the process can answer;
* ``GET /readyz``    -- readiness: 200 only when warmed and not
  draining (a draining server fails readiness first, so an external
  balancer stops sending work before the socket closes);
* ``GET /statusz``   -- JSON service introspection (queue depth,
  coalesce/shed tallies; what the load generator samples).

Shutdown is the drain contract from docs/SERVING.md: SIGTERM/SIGINT
flips readiness, stops admission, lets in-flight requests finish (or
cleanly refuses them after the grace budget), flushes telemetry, and
exits 0.
"""

from __future__ import annotations

import asyncio
import dataclasses
import signal
import typing

from repro.obs.openmetrics import render
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    canonical_json,
    error_payload,
)
from repro.serve.service import EvaluationService

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Refuse bodies beyond this size before reading them (a request names a
#: cell; it has no business being large).
MAX_BODY_BYTES = 1 << 20

#: OpenMetrics text media type (what the exposition spec mandates).
OPENMETRICS_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


@dataclasses.dataclass
class _Request:
    method: str
    path: str
    headers: "dict[str, str]"
    body: bytes


def _response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: "tuple[tuple[str, str], ...]" = (),
    keep_alive: bool = True,
) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


async def _read_request(
    reader: "asyncio.StreamReader",
) -> "_Request | None":
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ValueError(f"malformed request line: {request_line!r}")
    method, path = parts[0].upper(), parts[1]
    headers: "dict[str, str]" = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValueError(f"request body of {length} bytes exceeds the limit")
    body = await reader.readexactly(length) if length else b""
    return _Request(method=method, path=path, headers=headers, body=body)


class ServeApp:
    """Routes + connection handling around one :class:`EvaluationService`."""

    def __init__(self, service: EvaluationService) -> None:
        self.service = service
        self.connections = 0

    async def handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ValueError as exc:
                    body = canonical_json(
                        error_payload(ERR_BAD_REQUEST, str(exc))
                    )
                    writer.write(
                        _response_bytes(400, body, keep_alive=False)
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, body, content_type, extra = await self.dispatch(
                    request
                )
                writer.write(
                    _response_bytes(
                        status,
                        body,
                        content_type=content_type,
                        extra_headers=extra,
                        keep_alive=keep_alive,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # the client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def dispatch(
        self, request: _Request
    ) -> "tuple[int, bytes, str, tuple[tuple[str, str], ...]]":
        """Route one request; returns (status, body, content-type, headers)."""
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/v1/cell":
            if method != "POST":
                return self._json(
                    405,
                    error_payload(
                        ERR_BAD_REQUEST, f"{method} not allowed; POST /v1/cell"
                    ),
                )
            try:
                status, payload = await self.service.evaluate(request.body)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - keep the server alive
                return self._json(
                    500,
                    error_payload(
                        ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                    ),
                )
            extra: "tuple[tuple[str, str], ...]" = ()
            retry_after = payload.get("retry_after_s")
            if isinstance(retry_after, (int, float)):
                extra = (("Retry-After", f"{max(retry_after, 0.0):.3f}"),)
            return status, canonical_json(payload), "application/json", extra
        if path == "/metrics":
            text = render(self.service.registry)
            return 200, text.encode("utf-8"), OPENMETRICS_TYPE, ()
        if path == "/healthz":
            return self._json(200, {"status": "ok"})
        if path == "/readyz":
            ready = self.service.started and not self.service.admission.draining
            return self._json(
                200 if ready else 503,
                {
                    "status": "ready" if ready else "unready",
                    "draining": self.service.admission.draining,
                    "started": self.service.started,
                },
            )
        if path == "/statusz":
            return self._json(200, self.service.status())
        return self._json(
            404,
            error_payload(ERR_BAD_REQUEST, f"no route for {method} {path}"),
        )

    @staticmethod
    def _json(
        status: int, payload: dict
    ) -> "tuple[int, bytes, str, tuple[tuple[str, str], ...]]":
        return status, canonical_json(payload), "application/json", ()


async def run_server(
    service: EvaluationService,
    host: "str | None" = None,
    port: int = 0,
    socket_path: "str | None" = None,
    ready_callback: "typing.Callable[[list[str]], None] | None" = None,
    install_signal_handlers: bool = True,
    stop_event: "asyncio.Event | None" = None,
) -> int:
    """Serve until SIGTERM/SIGINT (or ``stop_event``), then drain.

    Binds TCP (when ``host`` is given) and/or a unix socket (when
    ``socket_path`` is given); at least one is required.
    ``ready_callback`` fires once listening, with human-readable
    endpoint strings -- the CLI prints them, tests parse them.  Returns
    the process exit code (0 for a clean drain).
    """
    if host is None and socket_path is None:
        raise ValueError("need a TCP host or a unix socket path to serve on")
    await service.start()
    app = ServeApp(service)
    stop = stop_event or asyncio.Event()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platform without signal support; rely on stop_event
    servers: "list[asyncio.base_events.Server]" = []
    endpoints: "list[str]" = []
    try:
        if host is not None:
            tcp = await asyncio.start_server(
                app.handle_connection, host=host, port=port
            )
            servers.append(tcp)
            for sock in tcp.sockets:
                bound_host, bound_port = sock.getsockname()[:2]
                endpoints.append(f"http://{bound_host}:{bound_port}")
        if socket_path is not None:
            unix = await asyncio.start_unix_server(
                app.handle_connection, path=socket_path
            )
            servers.append(unix)
            endpoints.append(f"unix:{socket_path}")
        if ready_callback is not None:
            ready_callback(endpoints)
        await stop.wait()
        # Drain: close the listeners first (no new connections), then
        # let the service finish its backlog within the grace budget.
        for server in servers:
            server.close()
        await service.drain()
        for server in servers:
            await server.wait_closed()
    finally:
        for server in servers:
            server.close()
    return 0
