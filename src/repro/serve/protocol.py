"""The wire contract: request parsing, canonical payloads, error codes.

One rule anchors everything here: **a served result is byte-identical
to a direct engine run**.  :func:`result_payload` is the single
serializer both sides share -- the server renders its responses through
it, and the equivalence tests render a local
:class:`~repro.engine.cells.CellOutcome` through the very same function
and compare bytes.  ``canonical_json`` (sorted keys, minimal
separators) makes the encoding deterministic; the simulation itself is
deterministic by the engine's contract, so equal specs yield equal
bytes.

Service-level refusals are *coded*, mirroring the PR 3 fault taxonomy:
every error body carries ``code`` (an ``ERR_*`` string), a
human-readable ``error`` message, and -- for pressure-induced refusals
-- a ``retry_after_s`` hint, so a well-behaved client can back off
instead of hammering an overloaded server.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.core.errors import PimConfigError

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cells import CellOutcome, CellSpec

#: Service refusal codes (the admission/degradation taxonomy).
ERR_BAD_REQUEST = "ERR_BAD_REQUEST"
ERR_OVERLOAD = "ERR_OVERLOAD"
ERR_QUOTA = "ERR_QUOTA"
ERR_DEADLINE = "ERR_DEADLINE"
ERR_CIRCUIT_OPEN = "ERR_CIRCUIT_OPEN"
ERR_DRAINING = "ERR_DRAINING"
ERR_CELL_FAILED = "ERR_CELL_FAILED"
ERR_INTERNAL = "ERR_INTERNAL"

#: HTTP status each refusal code maps to.  429 for pressure the client
#: can relieve by backing off, 503 for states the server will leave on
#: its own (drain, open breaker), 504 for blown deadlines.
ERROR_HTTP_STATUS = {
    ERR_BAD_REQUEST: 400,
    ERR_OVERLOAD: 429,
    ERR_QUOTA: 429,
    ERR_DEADLINE: 504,
    ERR_CIRCUIT_OPEN: 503,
    ERR_DRAINING: 503,
    ERR_CELL_FAILED: 500,
    ERR_INTERNAL: 500,
}


class ServeError(Exception):
    """A coded service refusal (never a simulation error)."""

    def __init__(
        self,
        code: str,
        message: str,
        retry_after_s: "float | None" = None,
        **context: object,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s
        self.context = context

    @property
    def http_status(self) -> int:
        return ERROR_HTTP_STATUS.get(self.code, 500)


def canonical_json(payload: object) -> bytes:
    """Deterministic JSON bytes: sorted keys, minimal separators."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


@dataclasses.dataclass(frozen=True)
class CellRequest:
    """One parsed ``POST /v1/cell`` body.

    Field semantics mirror ``repro run``: ``paper_scale`` selects the
    analytic path (``functional`` is its complement, exactly as the CLI
    builds its :class:`~repro.engine.cells.CellSpec`), ``vector`` opts
    into histogram pricing, ``tenant`` names the quota bucket, and
    ``deadline_s`` overrides the server's default request budget.
    """

    benchmark: str
    device: str
    ranks: int = 32
    paper_scale: bool = True
    vector: bool = False
    tenant: str = "default"
    deadline_s: "float | None" = None
    no_cache: bool = False

    @classmethod
    def from_json(cls, body: bytes) -> "CellRequest":
        """Parse and validate a request body; raises :class:`ServeError`."""
        try:
            raw = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(
                ERR_BAD_REQUEST, f"request body is not JSON: {exc}"
            ) from None
        if not isinstance(raw, dict):
            raise ServeError(
                ERR_BAD_REQUEST,
                f"request body must be a JSON object, got {type(raw).__name__}",
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ServeError(
                ERR_BAD_REQUEST,
                f"unknown request fields {unknown}; known: {sorted(known)}",
            )
        benchmark = raw.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            raise ServeError(
                ERR_BAD_REQUEST, "'benchmark' (string) is required"
            )
        device = raw.get("device")
        if not isinstance(device, str) or not device:
            raise ServeError(ERR_BAD_REQUEST, "'device' (string) is required")
        ranks = raw.get("ranks", 32)
        if not isinstance(ranks, int) or isinstance(ranks, bool) or ranks < 1:
            raise ServeError(
                ERR_BAD_REQUEST, f"'ranks' must be a positive int, got {ranks!r}"
            )
        deadline_s = raw.get("deadline_s")
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
                raise ServeError(
                    ERR_BAD_REQUEST,
                    f"'deadline_s' must be a positive number, got {deadline_s!r}",
                )
            deadline_s = float(deadline_s)
        tenant = raw.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ServeError(
                ERR_BAD_REQUEST, f"'tenant' must be a non-empty string"
            )
        for flag in ("paper_scale", "vector", "no_cache"):
            if flag in raw and not isinstance(raw[flag], bool):
                raise ServeError(
                    ERR_BAD_REQUEST, f"'{flag}' must be a boolean"
                )
        return cls(
            benchmark=benchmark,
            device=device,
            ranks=ranks,
            paper_scale=raw.get("paper_scale", True),
            vector=raw.get("vector", False),
            tenant=tenant,
            deadline_s=deadline_s,
            no_cache=raw.get("no_cache", False),
        )

    def to_spec(self) -> "CellSpec":
        """The engine cell this request names (device resolved through
        the architecture registry, exactly like ``repro run``)."""
        from repro.arch import resolve_backend
        from repro.engine.cells import CellSpec

        try:
            backend = resolve_backend(self.device)
        except PimConfigError as exc:
            raise ServeError(
                ERR_BAD_REQUEST, f"unknown device {self.device!r}: {exc}"
            ) from None
        vector = self.vector and self.paper_scale
        return CellSpec(
            benchmark_key=self.benchmark,
            device_type=backend.device_type,
            num_ranks=self.ranks,
            paper_scale=self.paper_scale,
            functional=not self.paper_scale,
            vector=vector,
        )


def result_payload(spec: "CellSpec", outcome: "CellOutcome") -> dict:
    """The canonical success payload for one evaluated cell.

    Built from the spec identity plus the outcome's
    :meth:`~repro.bench.common.BenchmarkResult.to_dict` record -- the
    same serialization the suite archive uses.  Deliberately excludes
    anything execution-dependent (attempt counts, wall times, cache
    provenance), so a retried, coalesced, cache-served, or chaos-ridden
    execution produces the same bytes as a pristine direct run.
    """
    result = outcome.result
    assert result is not None, "result_payload requires a successful outcome"
    return {
        "status": "ok",
        "benchmark": spec.benchmark_key,
        "device": str(getattr(spec.device_type, "value", spec.device_type)),
        "num_ranks": spec.num_ranks,
        "paper_scale": spec.paper_scale,
        "vector": spec.vector,
        "result": result.to_dict(),
    }


def error_payload(
    code: str,
    message: str,
    retry_after_s: "float | None" = None,
    **extra: object,
) -> dict:
    """The canonical refusal/failure payload."""
    payload: "dict[str, object]" = {
        "status": "error",
        "code": code,
        "error": message,
    }
    if retry_after_s is not None:
        payload["retry_after_s"] = round(retry_after_s, 3)
    payload.update(extra)
    return payload
