"""Per-backend circuit breaking with half-open probing.

A backend whose cells keep dying -- a broken plug-in, a perf model that
hangs, a poisoned cache directory -- must not be allowed to soak up
worker slots, watchdog kills, and retry budgets while healthy backends
starve.  After ``failure_threshold`` *consecutive* failures the
backend's circuit opens: requests for it are refused instantly with
``ERR_CIRCUIT_OPEN`` and a retry-after equal to the remaining cooldown.
When the cooldown lapses the circuit goes **half-open**: exactly one
probe request is admitted; its success closes the circuit (and resets
the failure count), its failure re-opens it for another full cooldown.

Only *execution* failures count (the PR 3 taxonomy's ERROR / TIMEOUT /
CRASH); admission refusals never trip a breaker -- shedding is the
server protecting itself, not evidence the backend is sick.
"""

from __future__ import annotations

import enum
import time
import typing

from repro.serve.protocol import ERR_CIRCUIT_OPEN, ServeError

Clock = typing.Callable[[], float]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class _Circuit:
    """One key's breaker state machine."""

    def __init__(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_out = False
        self.opens = 0


class CircuitBreaker:
    """Keyed circuit breakers (one state machine per backend id)."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 10.0,
        clock: "Clock | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock or time.monotonic
        self._circuits: "dict[str, _Circuit]" = {}

    def _circuit(self, key: str) -> _Circuit:
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = self._circuits[key] = _Circuit()
        return circuit

    def state(self, key: str) -> BreakerState:
        return self._circuit(key).state

    def opens(self, key: str) -> int:
        return self._circuit(key).opens

    def check(self, key: str) -> None:
        """Gate one request; raises :class:`ServeError` while open.

        An open circuit whose cooldown has lapsed transitions to
        half-open and admits this caller as the probe; concurrent
        requests during the probe are still refused.
        """
        circuit = self._circuit(key)
        if circuit.state is BreakerState.CLOSED:
            return
        now = self._clock()
        if circuit.state is BreakerState.OPEN:
            remaining = circuit.opened_at + self.cooldown_s - now
            if remaining > 0:
                raise ServeError(
                    ERR_CIRCUIT_OPEN,
                    f"circuit for backend {key!r} is open "
                    f"({circuit.consecutive_failures} consecutive failures)",
                    retry_after_s=remaining,
                    backend=key,
                )
            circuit.state = BreakerState.HALF_OPEN
            circuit.probe_out = False
        # HALF_OPEN: one probe at a time.
        if circuit.probe_out:
            raise ServeError(
                ERR_CIRCUIT_OPEN,
                f"circuit for backend {key!r} is half-open and its probe "
                "is still in flight",
                retry_after_s=self.cooldown_s / 2,
                backend=key,
            )
        circuit.probe_out = True

    def record_success(self, key: str) -> None:
        circuit = self._circuit(key)
        circuit.consecutive_failures = 0
        circuit.probe_out = False
        circuit.state = BreakerState.CLOSED

    def record_failure(self, key: str) -> None:
        circuit = self._circuit(key)
        circuit.consecutive_failures += 1
        circuit.probe_out = False
        if (
            circuit.state is BreakerState.HALF_OPEN
            or circuit.consecutive_failures >= self.failure_threshold
        ):
            circuit.state = BreakerState.OPEN
            circuit.opened_at = self._clock()
            circuit.opens += 1
