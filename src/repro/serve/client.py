"""A minimal blocking client for ``repro serve`` (stdlib only).

Used by the equivalence tests, the CI smoke script, and the load
generator's worker threads.  Speaks exactly the dialect the server
speaks: HTTP/1.1 with ``Content-Length`` bodies over TCP or a unix
socket, keep-alive by default (one persistent connection per client
instance; the load generator runs one client per closed-loop worker).
Thread-compatible, not thread-safe -- give each thread its own client.
"""

from __future__ import annotations

import json
import socket
import typing


class ServeClientError(ConnectionError):
    """The server hung up or answered gibberish."""


class ServeClient:
    """One persistent connection to a running ``repro serve``."""

    def __init__(
        self,
        socket_path: "str | None" = None,
        host: "str | None" = None,
        port: "int | None" = None,
        timeout: float = 60.0,
    ) -> None:
        if socket_path is None and (host is None or port is None):
            raise ValueError("need socket_path or host+port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: "socket.socket | None" = None

    # -- connection management -------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        return sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the wire ---------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: "bytes | None" = None,
        _retried: bool = False,
    ) -> "tuple[int, dict[str, str], bytes]":
        """One round trip; returns ``(status, headers, body_bytes)``.

        A dead keep-alive connection (the server restarted, an idle
        timeout fired) is retried once on a fresh socket.
        """
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: repro-serve\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("ascii")
        sock = self._connect()
        try:
            sock.sendall(head + payload)
            return self._read_response(sock)
        except (ConnectionError, socket.timeout, OSError):
            self.close()
            if _retried:
                raise
            return self.request(method, path, body, _retried=True)

    def _read_response(
        self, sock: socket.socket
    ) -> "tuple[int, dict[str, str], bytes]":
        fh = sock.makefile("rb")
        try:
            status_line = fh.readline()
            if not status_line:
                raise ServeClientError("server closed the connection")
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ServeClientError(f"bad status line: {status_line!r}")
            status = int(parts[1])
            headers: "dict[str, str]" = {}
            while True:
                line = fh.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            body = fh.read(length) if length else b""
            if len(body) != length:
                raise ServeClientError(
                    f"truncated body: wanted {length}, got {len(body)}"
                )
            if headers.get("connection", "").lower() == "close":
                self.close()
            return status, headers, body
        finally:
            fh.close()

    # -- conveniences ------------------------------------------------------

    def cell(self, **fields: object) -> "tuple[int, dict, bytes]":
        """POST one cell request; returns (status, payload, raw bytes).

        The raw bytes are what byte-identity tests compare; the decoded
        payload is for everything else.
        """
        body = json.dumps(fields).encode("utf-8")
        status, _, raw = self.request("POST", "/v1/cell", body)
        return status, json.loads(raw.decode("utf-8")), raw

    def get_json(self, path: str) -> "tuple[int, dict]":
        status, _, raw = self.request("GET", path)
        return status, json.loads(raw.decode("utf-8"))

    def metrics_text(self) -> str:
        status, _, raw = self.request("GET", "/metrics")
        if status != 200:
            raise ServeClientError(f"/metrics answered {status}")
        return raw.decode("utf-8")

    def wait_ready(self, attempts: int = 100, delay_s: float = 0.1) -> None:
        """Poll ``/readyz`` until the server reports ready."""
        import time

        last: "BaseException | None" = None
        for _ in range(attempts):
            try:
                status, _ = self.get_json("/readyz")
                if status == 200:
                    return
            except (OSError, ValueError, ServeClientError) as exc:
                last = exc
                self.close()
            time.sleep(delay_s)
        raise ServeClientError(
            f"server never became ready after {attempts} attempts"
        ) from last
