"""Key-value tables for the filter-by-key database benchmark.

The paper scans 2^30 key-value pairs selecting ~1% of records.  The
generator controls the selectivity of a less-than predicate precisely so
that host-gather cost modeling is stable.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class FilterWorkload:
    """A column of keys plus the predicate threshold hitting the target
    selectivity."""

    keys: np.ndarray
    threshold: int
    selectivity: float


def key_value_table(
    num_records: int, selectivity: float = 0.01, seed: int = 0, key_range: int = 1 << 20
) -> FilterWorkload:
    """Uniform keys with a threshold selecting ~``selectivity`` of them."""
    if not 0 < selectivity < 1:
        raise ValueError(f"selectivity must be in (0, 1), got {selectivity}")
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, key_range, size=num_records).astype(np.int32)
    threshold = int(selectivity * key_range)
    return FilterWorkload(keys=keys, threshold=threshold, selectivity=selectivity)
