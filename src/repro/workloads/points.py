"""2-D point sets for the KNN, k-means, and linear-regression benchmarks."""

from __future__ import annotations

import numpy as np


def clustered_points(
    num_points: int, num_clusters: int, seed: int = 0, spread: int = 50,
    span: int = 10_000,
) -> "tuple[np.ndarray, np.ndarray]":
    """Integer 2-D points around random cluster centers.

    Returns ``(points, labels)`` where points has shape (n, 2) int32 and
    labels gives the generating cluster of each point.
    """
    if num_points <= 0 or num_clusters <= 0:
        raise ValueError("num_points and num_clusters must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.integers(-span, span, size=(num_clusters, 2))
    labels = rng.integers(0, num_clusters, size=num_points)
    noise = rng.integers(-spread, spread + 1, size=(num_points, 2))
    points = (centers[labels] + noise).astype(np.int32)
    return points, labels.astype(np.int32)


def linear_points(
    num_points: int, slope: float = 3.0, intercept: float = 40.0,
    noise: int = 10, seed: int = 0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Integer (x, y) samples from a noisy line, for linear regression."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 1000, size=num_points).astype(np.int32)
    eps = rng.integers(-noise, noise + 1, size=num_points)
    y = (slope * x + intercept + eps).astype(np.int32)
    return x, y


def labeled_points_2d(
    num_points: int, num_classes: int, seed: int = 0
) -> "tuple[np.ndarray, np.ndarray]":
    """Classified 2-D points for KNN (cluster id doubles as the label)."""
    points, labels = clustered_points(num_points, num_classes, seed=seed)
    return points, labels % num_classes
