"""Synthetic workload generators matching the Table I inputs."""

from repro.workloads.graphs import (
    adjacency_bitmap,
    count_triangles_reference,
    random_graph,
)
from repro.workloads.images import (
    box_downsample_reference,
    channel_planes,
    synthetic_image,
)
from repro.workloads.points import clustered_points, labeled_points_2d, linear_points
from repro.workloads.tables import FilterWorkload, key_value_table
from repro.workloads.vectors import random_int_matrix, random_int_vector

__all__ = [
    "adjacency_bitmap",
    "count_triangles_reference",
    "random_graph",
    "box_downsample_reference",
    "channel_planes",
    "synthetic_image",
    "clustered_points",
    "labeled_points_2d",
    "linear_points",
    "FilterWorkload",
    "key_value_table",
    "random_int_matrix",
    "random_int_vector",
]
