"""Synthetic 24-bit bitmap images for the image-processing benchmarks.

The paper's histogram/brightness/downsampling benchmarks read 24-bit .bmp
files (~1.4 GB); this generator produces an equivalent random RGB raster
directly, preserving the per-channel value distribution the kernels see.
"""

from __future__ import annotations

import numpy as np


def synthetic_image(width: int, height: int, seed: int = 0) -> np.ndarray:
    """Random RGB image of shape (height, width, 3), dtype uint8."""
    if width <= 0 or height <= 0:
        raise ValueError("image dimensions must be positive")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(height, width, 3)).astype(np.uint8)


def channel_planes(image: np.ndarray) -> "list[np.ndarray]":
    """Split an (H, W, 3) image into three flat channel vectors."""
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected an (H, W, 3) image, got shape {image.shape}")
    return [image[:, :, c].reshape(-1).copy() for c in range(3)]


def box_downsample_reference(image: np.ndarray) -> np.ndarray:
    """Host reference 2x2 box filter: output is half size, averaged."""
    height, width = image.shape[:2]
    if height % 2 or width % 2:
        raise ValueError("reference downsampling requires even dimensions")
    blocks = (
        image[0::2, 0::2].astype(np.uint16)
        + image[0::2, 1::2]
        + image[1::2, 0::2]
        + image[1::2, 1::2]
    )
    return (blocks >> 2).astype(np.uint8)
