"""Synthetic vector and matrix inputs for the linear-algebra benchmarks."""

from __future__ import annotations

import numpy as np


def random_int_vector(
    num_elements: int,
    seed: int = 0,
    low: int = -1000,
    high: int = 1000,
    dtype: str = "int32",
) -> np.ndarray:
    """Uniform random integer vector (the Table I 32-bit INT inputs)."""
    if num_elements <= 0:
        raise ValueError(f"num_elements must be positive, got {num_elements}")
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=num_elements).astype(dtype)


def random_int_matrix(
    num_rows: int,
    num_cols: int,
    seed: int = 0,
    low: int = -100,
    high: int = 100,
    dtype: str = "int32",
) -> np.ndarray:
    """Uniform random integer matrix, row-major."""
    if num_rows <= 0 or num_cols <= 0:
        raise ValueError("matrix dimensions must be positive")
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=(num_rows, num_cols)).astype(dtype)
