"""Synthetic graphs for the triangle-counting benchmark.

The paper evaluates on a 227,320-node / 1,628,268-edge graph; tests use
small random graphs verified against networkx's triangle count.  The
PIM algorithm operates on a packed adjacency bitmap (one bit per vertex
pair), so this module also provides the bit-packing.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np


def random_graph(num_nodes: int, num_edges: int, seed: int = 0) -> nx.Graph:
    """Random simple undirected graph with exactly the requested edges."""
    if num_edges > num_nodes * (num_nodes - 1) // 2:
        raise ValueError("more edges requested than a simple graph allows")
    return nx.gnm_random_graph(num_nodes, num_edges, seed=seed)


def adjacency_bitmap(graph: nx.Graph, word_bits: int = 32) -> np.ndarray:
    """Pack the adjacency matrix into words: shape (n, ceil(n/word_bits)).

    Bit j of word w in row i is set when edge (i, w*word_bits + j) exists.
    """
    n = graph.number_of_nodes()
    words_per_row = math.ceil(n / word_bits)
    bitmap = np.zeros((n, words_per_row), dtype=np.uint32)
    for u, v in graph.edges():
        bitmap[u, v // word_bits] |= np.uint32(1 << (v % word_bits))
        bitmap[v, u // word_bits] |= np.uint32(1 << (u % word_bits))
    return bitmap


def count_triangles_reference(graph: nx.Graph) -> int:
    """Host reference: total triangle count of the graph."""
    return sum(nx.triangles(graph).values()) // 3
