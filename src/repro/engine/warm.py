"""Reusable warm executor: worker processes that outlive one cell.

:func:`~repro.engine.engine.run_cells` pays a process spawn per cell
attempt -- the right trade for a batch run, where spawn cost is noise
next to simulation time and per-attempt pools give surgical crash
attribution.  A long-running service cannot afford that: every request
would re-import numpy and re-build the registry.  :class:`WarmExecutor`
keeps a fixed set of single-worker pools alive across cells, so the
interpreter, the arch registry, and the cost-memo tables stay hot in
each worker, while preserving the engine's isolation story:

* each slot is a **single-worker** pool, so a crash or a hang breaks
  exactly one slot and is attributable to exactly one cell;
* a hung or crashed slot is **killed and respawned** (the watchdog's
  move), costing one spawn instead of poisoning the executor;
* the worker entry point is the engine's own ``_worker``, so a cell run
  through a warm slot is byte-identical to one run by ``run_cells``.

The class is synchronous and thread-safe-by-construction (each slot is
owned by one caller at a time; acquisition goes through a lock-free
queue).  ``repro.serve`` wraps it with asyncio.
"""

from __future__ import annotations

import concurrent.futures
import queue
import typing

from repro.engine.engine import _kill_pool, _worker

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cells import CellOutcome, CellSpec


class WarmSlot:
    """One persistent single-worker pool, killable and respawnable."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.respawns = 0
        self.cells_run = 0
        self._pool: "concurrent.futures.ProcessPoolExecutor | None" = (
            concurrent.futures.ProcessPoolExecutor(max_workers=1)
        )

    def submit(
        self, spec: "CellSpec", attempt: int = 1, record_events: bool = False
    ) -> "concurrent.futures.Future[CellOutcome]":
        """Run one cell attempt on this slot's warm worker."""
        if self._pool is None:
            raise RuntimeError(f"warm slot {self.index} is shut down")
        self.cells_run += 1
        return self._pool.submit(_worker, spec, record_events, attempt, True)

    def warm_up(self) -> None:
        """Force the worker process to exist (pools spawn lazily)."""
        if self._pool is not None:
            self._pool.submit(int).result()

    def respawn(self) -> None:
        """Kill the (possibly hung) worker and stand up a fresh pool.

        The kill must come first: a plain shutdown would join a hung
        worker forever.  Safe to call on a healthy slot too.
        """
        if self._pool is None:
            raise RuntimeError(f"warm slot {self.index} is shut down")
        self.respawns += 1
        _kill_pool(self._pool)
        self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=1)

    def shutdown(self) -> None:
        """Kill the worker and retire the slot permanently."""
        if self._pool is not None:
            _kill_pool(self._pool)
            self._pool = None

    @property
    def alive(self) -> bool:
        return self._pool is not None


class WarmExecutor:
    """A fixed fleet of :class:`WarmSlot` workers with checkout semantics.

    Callers :meth:`acquire` a slot (blocking until one is free), submit
    work on it, and :meth:`release` it back -- or :meth:`respawn` it
    first if the worker hung or died.  The checkout discipline is what
    makes hang attribution exact: a slot serves one cell at a time.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.slots = [WarmSlot(i) for i in range(workers)]
        self._free: "queue.SimpleQueue[WarmSlot]" = queue.SimpleQueue()
        for slot in self.slots:
            self._free.put(slot)

    @property
    def workers(self) -> int:
        return len(self.slots)

    @property
    def respawns(self) -> int:
        return sum(slot.respawns for slot in self.slots)

    def warm_up(self) -> None:
        """Spawn every worker process up front (service start, not first
        request, should pay the import cost)."""
        for slot in self.slots:
            slot.warm_up()

    def acquire(self, timeout: "float | None" = None) -> WarmSlot:
        """Check out a free slot (raises ``queue.Empty`` on timeout)."""
        if timeout is None:
            return self._free.get()
        return self._free.get(timeout=timeout)

    def release(self, slot: WarmSlot) -> None:
        """Return a checked-out slot to the free pool."""
        if slot.alive:
            self._free.put(slot)

    def shutdown(self) -> None:
        """Kill every worker process.  Idempotent."""
        for slot in self.slots:
            slot.shutdown()

    def worker_pids(self) -> "list[int]":
        """PIDs of the currently live worker processes (for drain tests)."""
        pids = []
        for slot in self.slots:
            pool = slot._pool
            if pool is not None:
                pids.extend(getattr(pool, "_processes", {}).keys())
        return pids
