"""Persistent, content-addressed result store for experiment cells.

Each entry is one :class:`~repro.engine.cells.CellOutcome`, stored under
a SHA-256 key derived from *everything that determines the numbers*:

* the resolved device configuration (every DRAM geometry/timing field
  and architecture parameter, not just the preset name),
* the benchmark key plus its fully-merged parameter dict (so paper-scale
  and functional-scale runs are distinct entries),
* the execution mode flags (functional, enforce_capacity),
* the :func:`repro.engine.version.model_version` stamp, which hashes
  the model source files the cell depends on.

Because the key is content-addressed there is no invalidation protocol:
editing a perf model changes the stamp, which changes the key, and the
stale entry is simply never looked up again (``repro cache clear``
reclaims the space).  A corrupted or truncated entry is treated as a
miss: the engine warns, deletes the file, and re-simulates.

The store root resolves, in order: an explicit ``cache_dir`` argument,
the ``REPRO_CACHE_DIR`` environment variable, then
``$XDG_CACHE_HOME/repro`` (default ``~/.cache/repro``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import time
import typing
import warnings

from repro.engine.cells import CellOutcome, CellSpec
from repro.engine.version import model_version, vector_stamp

try:  # pragma: no cover - fcntl is POSIX-only
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - e.g. Windows
    _fcntl = None

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: How long :meth:`DiskCache.flush_usage` waits for the ledger lock
#: before falling back to an unlocked best-effort write.
USAGE_LOCK_WAIT_S = 2.0

#: Polling interval while waiting for the ledger lock.
_USAGE_LOCK_POLL_S = 0.01


class _UsageLock:
    """Advisory ``fcntl`` lock on the usage ledger, with a bounded wait.

    A serve process and a CLI run racing on the same cache directory
    both read-modify-write ``usage.json``; without mutual exclusion one
    side's increments are silently lost (or, worse, a reader observes a
    torn rename window).  The lock file sits *next to* the ledger so the
    atomic-rename protocol on the ledger itself is unchanged.

    The wait is bounded (``USAGE_LOCK_WAIT_S``): a peer that died while
    holding nothing more than an advisory lock must not wedge telemetry
    flushes forever, so on timeout -- or on platforms without ``fcntl``
    -- the caller proceeds unlocked, degrading to the historical
    best-effort behaviour.  ``held`` reports which mode was used.
    """

    def __init__(self, path: pathlib.Path, wait_s: float = USAGE_LOCK_WAIT_S):
        self.path = path
        self.wait_s = wait_s
        self.held = False
        self._fh: "typing.IO[bytes] | None" = None

    def __enter__(self) -> "_UsageLock":
        if _fcntl is None:
            return self
        try:
            self._fh = open(self.path, "ab")
        except OSError:
            return self
        deadline = time.monotonic() + self.wait_s
        while True:
            try:
                _fcntl.flock(self._fh, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
                self.held = True
                return self
            except OSError:
                if time.monotonic() >= deadline:
                    self._fh.close()
                    self._fh = None
                    return self
                time.sleep(_USAGE_LOCK_POLL_S)

    def __exit__(self, *exc_info: object) -> None:
        if self._fh is not None:
            try:
                if self.held:
                    _fcntl.flock(self._fh, _fcntl.LOCK_UN)
            finally:
                self._fh.close()
                self._fh = None
        self.held = False


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg).expanduser() if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


def _canonical(value: typing.Any) -> typing.Any:
    """JSON-stable form of key material (enums by value, dicts sorted)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "value"):  # enums
        return value.value
    return repr(value)


#: Memoized cell keys, keyed on ``(spec, model_version, vector_stamp)``.
#: A spec is frozen and its config/params derive from it alone, so the
#: only inputs that can change within a process are the stamps -- which
#: are part of the memo key, so schema bumps and source edits still
#: produce fresh keys.  Bounded: a sweep touches thousands of specs.
_KEY_MEMO: "dict[typing.Hashable, str]" = {}
_KEY_MEMO_MAX = 8192


def cell_cache_key(spec: CellSpec) -> str:
    """Content hash identifying one cell's result on disk.

    The documented cache-key contract (docs/PERFORMANCE.md) is exactly
    the ``material`` dict below.
    """
    stamp = model_version(spec.device_type, spec.benchmark_key)
    vec = vector_stamp() if spec.vector else None
    memo_key = (spec, stamp, vec)
    cached = _KEY_MEMO.get(memo_key)
    if cached is not None:
        return cached
    config = spec.device_config()
    bench = spec.make_benchmark()
    material = {
        "model_version": stamp,
        "benchmark": spec.benchmark_key,
        "params": _canonical(bench.params),
        "device_config": _canonical(config),
        "functional": spec.functional,
        "enforce_capacity": spec.enforce_capacity,
    }
    if spec.fault_plan is not None:
        # Only present when set, so fault-free keys (the overwhelmingly
        # common case) are unchanged from the pre-fault-injection format.
        material["fault_plan"] = _canonical(spec.fault_plan)
    if spec.vector:
        # Same only-when-set rule: scalar keys are unchanged from the
        # pre-vector format, and vectorized cells carry the vector
        # engine's own source digest so the two paths never share an
        # entry (docs/VECTORIZATION.md "cache-stamp versioning").
        material["vector"] = vec
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    key = hashlib.sha256(blob.encode()).hexdigest()
    if len(_KEY_MEMO) < _KEY_MEMO_MAX:
        _KEY_MEMO[memo_key] = key
    return key


class DiskCache:
    """File-per-entry pickle store under a cache root.

    Entries live at ``<root>/cells/<key[:2]>/<key>.pkl`` (the two-char
    fan-out keeps directories small on full-sweep workloads).  Writes
    are atomic (temp file + rename) so a crashed or parallel run never
    leaves a half-written entry behind for the next reader.
    """

    #: Usage-ledger fields accumulated per session and merged on flush.
    USAGE_FIELDS = ("hits", "misses", "writes", "corrupt")

    def __init__(self, root: "str | os.PathLike | None" = None) -> None:
        self.root = pathlib.Path(root).expanduser() if root else default_cache_dir()
        self._session_usage = dict.fromkeys(self.USAGE_FIELDS, 0)

    @property
    def cells_dir(self) -> pathlib.Path:
        return self.root / "cells"

    @property
    def plans_dir(self) -> pathlib.Path:
        """Root of the pricing-plan store (:mod:`repro.perf.plans`).

        Plans live beside the cell entries but in their own namespace:
        a plan is keyed by its *own* ``plan_stamp()`` digest, so plan
        layout changes can never collide with (or poison) a cell key.
        """
        return self.root / "plans"

    @property
    def usage_path(self) -> pathlib.Path:
        return self.root / "usage.json"

    @property
    def usage_lock_path(self) -> pathlib.Path:
        return self.root / "usage.lock"

    def path_for(self, key: str) -> pathlib.Path:
        return self.cells_dir / key[:2] / f"{key}.pkl"

    def plan_path_for(self, key: str) -> pathlib.Path:
        return self.plans_dir / key[:2] / f"{key}.pkl"

    def get_plan(self, key: str) -> "typing.Any | None":
        """Load a persisted :class:`~repro.perf.plans.PricingPlan`.

        Same degradation contract as :meth:`get`: a corrupted entry
        warns, is deleted, and reads as a miss (the sweep recompiles).
        """
        from repro.perf.plans import PricingPlan

        path = self.plan_path_for(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as fh:
                plan = pickle.load(fh)
            if not isinstance(plan, PricingPlan):
                raise pickle.UnpicklingError(
                    f"expected PricingPlan, found {type(plan).__name__}"
                )
            return plan
        except Exception as exc:  # noqa: BLE001 - corruption degrades to a miss
            from repro.obs.metrics import global_registry

            global_registry().counter("cache.corrupt_entries").inc()
            warnings.warn(
                f"corrupted plan entry at {path}: "
                f"{type(exc).__name__}: {exc}; recompiling",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put_plan(self, key: str, plan: "typing.Any") -> None:
        """Atomically persist one pricing plan."""
        path = self.plan_path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(plan, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def _count(self, field: str) -> None:
        """Tally one usage event (global registry + session ledger)."""
        from repro.obs.metrics import global_registry

        global_registry().counter(f"cache.{field}").inc()
        self._session_usage[field] += 1

    def get(self, key: str) -> "CellOutcome | None":
        """Load an entry; a corrupted one warns, is deleted, and misses."""
        path = self.path_for(key)
        if not path.exists():
            self._count("misses")
            return None
        try:
            with open(path, "rb") as fh:
                outcome = pickle.load(fh)
            if not isinstance(outcome, CellOutcome):
                raise pickle.UnpicklingError(
                    f"expected CellOutcome, found {type(outcome).__name__}"
                )
            self._count("hits")
            return outcome
        except Exception as exc:  # noqa: BLE001 - any corruption degrades to a miss
            from repro.obs.metrics import global_registry

            global_registry().counter("cache.corrupt_entries").inc()
            self._session_usage["corrupt"] += 1
            warnings.warn(
                f"corrupted cache entry at {path}: "
                f"{type(exc).__name__}: {exc}; re-simulating",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, outcome: CellOutcome) -> None:
        """Atomically persist an entry (event streams are stripped)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(outcome.without_events(), fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._count("writes")

    def usage(self) -> "dict[str, int]":
        """Lifetime usage counters from the on-disk ledger (all zero when
        absent or unreadable)."""
        totals = dict.fromkeys(self.USAGE_FIELDS, 0)
        try:
            with open(self.usage_path, "r", encoding="utf-8") as fh:
                stored = json.load(fh)
            for field in self.USAGE_FIELDS:
                totals[field] = int(stored.get(field, 0))
        except (OSError, ValueError):
            pass
        return totals

    def flush_usage(self) -> "dict[str, int]":
        """Merge this session's tallies into the lifetime ledger.

        The read-modify-write runs under an advisory ``fcntl`` lock
        (:class:`_UsageLock`) so a serve process and a CLI run racing on
        the same cache directory serialize their merges instead of each
        losing the other's increments.  The lock wait is bounded: on
        timeout (or where ``fcntl`` does not exist) the write degrades
        to the historical best-effort behaviour -- telemetry may lose an
        increment, the file is never corrupted (writes stay atomic:
        temp + rename).  Returns the merged totals; the session tallies
        reset.  The engine calls this once per ``run_cells``.
        """
        if not any(self._session_usage.values()):
            return self.usage()
        session = self._session_usage
        self._session_usage = dict.fromkeys(self.USAGE_FIELDS, 0)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:  # read-only cache roots lose telemetry, not results
            totals = self.usage()
            for field in self.USAGE_FIELDS:
                totals[field] += session[field]
            return totals
        with _UsageLock(self.usage_lock_path):
            totals = self.usage()
            for field in self.USAGE_FIELDS:
                totals[field] += session[field]
            try:
                tmp = self.usage_path.with_suffix(f".tmp.{os.getpid()}")
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(dict(totals, schema=1), fh)
                os.replace(tmp, self.usage_path)
            except OSError:
                pass
        return totals

    def entries(self) -> "list[tuple[str, int, float]]":
        """Every stored entry as ``(key, bytes, mtime)``, sorted by key."""
        found = []
        if not self.cells_dir.exists():
            return found
        for path in sorted(self.cells_dir.rglob("*.pkl")):
            try:
                stat = path.stat()
            except OSError:  # racing delete
                continue
            found.append((path.stem, stat.st_size, stat.st_mtime))
        return found

    def clear(self) -> int:
        """Delete every entry (cells and plans); returns how many."""
        removed = 0
        for root in (self.cells_dir, self.plans_dir):
            if not root.exists():
                continue
            for path in sorted(root.rglob("*.pkl")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> "tuple[int, int]":
        """(entry count, total bytes) currently stored."""
        count = size = 0
        if not self.cells_dir.exists():
            return count, size
        for path in self.cells_dir.rglob("*.pkl"):
            count += 1
            size += path.stat().st_size
        return count, size
