"""Experiment cells: the unit of work the engine schedules and caches.

A *cell* is one (benchmark, device configuration) simulation -- one bar
of one figure.  :class:`CellSpec` pins down everything that determines a
cell's numbers (benchmark key and parameter scale, device type, DRAM
geometry, capacity enforcement, functional vs analytic mode), which
makes it both the fan-out unit for the process pool and the identity the
disk cache is keyed on.  :class:`CellOutcome` is everything a run
produces: the :class:`~repro.bench.common.BenchmarkResult` the figure
harnesses consume, the full per-command stats table (so ``repro run``
can re-render a Listing-3 report from a cache hit), and -- when the run
was observed -- the recorded event stream for parent-side replay.
"""

from __future__ import annotations

import dataclasses
import os
import time
import typing

from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuModel
from repro.bench.common import BenchmarkResult, PimBenchmark
from repro.bench.registry import BENCHMARKS_BY_KEY
from repro.config.device import DeviceConfig
from repro.core.device import PimDevice
from repro.core.errors import PimFaultInjectionError
from repro.core.stats import StatsTracker
from repro.faults.models import (
    FaultPlan,
    WorkerCrashFault,
    WorkerExceptionFault,
    WorkerHangFault,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arch.base import DeviceTypeLike
    from repro.obs.events import EventBus, ObsEvent
    from repro.obs.telemetry import CellTelemetry
    from repro.resilience.failures import CellFailure


def resolve_benchmark_class(key: str) -> "type[PimBenchmark]":
    """Benchmark class for a key, searching Table I then the extensions."""
    cls = BENCHMARKS_BY_KEY.get(key)
    if cls is not None:
        return cls
    from repro.bench.extensions import EXTENSION_BENCHMARKS

    for ext in EXTENSION_BENCHMARKS:
        if ext.key == key:
            return ext
    known = sorted(BENCHMARKS_BY_KEY) + sorted(e.key for e in EXTENSION_BENCHMARKS)
    raise KeyError(f"unknown benchmark {key!r}; known: {known}")


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """Immutable identity of one suite cell.

    ``geometry_overrides`` is a sorted tuple of (field, value) pairs so
    the spec stays hashable and order-insensitive.
    """

    benchmark_key: str
    device_type: "DeviceTypeLike"
    num_ranks: int = 32
    paper_scale: bool = True
    functional: bool = False
    enforce_capacity: bool = True
    geometry_overrides: "tuple[tuple[str, int], ...]" = ()
    #: Optional seeded fault plan (see :mod:`repro.faults`): device
    #: faults corrupt the functional simulation; engine faults attack
    #: the worker itself (chaos-testing the resilience layer).  Part of
    #: the cell's cache identity.
    fault_plan: "FaultPlan | None" = None
    #: Vectorized histogram pricing (see docs/VECTORIZATION.md): compile
    #: the analytic run into a shape histogram and price it in one numpy
    #: pass.  Totals are byte-identical to the scalar path by contract;
    #: the flag still stamps the cache key (with the vector engine's own
    #: source digest) so the two paths never share cache entries.
    #: Ignored -- with a scalar fallback -- for functional, observed, or
    #: device-fault cells, which need the per-issue path.
    vector: bool = False

    def __hash__(self) -> int:
        """Field-tuple hash (what ``@dataclass`` generates), cached.

        A sweep hashes every cell spec dozens of times -- the outcome
        index, the batch grouping maps, the cache-key memo -- and the
        generated hash re-walks all nine fields (including the derived
        device type's own dataclass hash) on each call.  The cache
        lives in ``__dict__`` so ``==``/``hash`` semantics and the
        frozen contract are untouched; ``__getstate__`` drops it so a
        pickled spec never carries one process's string-hash salt into
        another (hash randomization is per-process).
        """
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((
                self.benchmark_key, self.device_type, self.num_ranks,
                self.paper_scale, self.functional, self.enforce_capacity,
                self.geometry_overrides, self.fault_plan, self.vector,
            ))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> "dict[str, object]":
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    @staticmethod
    def normalize_overrides(
        overrides: "dict[str, int] | None",
    ) -> "tuple[tuple[str, int], ...]":
        return tuple(sorted((overrides or {}).items()))

    def device_config(self) -> DeviceConfig:
        from repro.arch.registry import arch_for

        return arch_for(self.device_type).make_config(
            self.num_ranks, **dict(self.geometry_overrides)
        )

    def make_benchmark(self) -> PimBenchmark:
        cls = resolve_benchmark_class(self.benchmark_key)
        params = cls.paper_params() if self.paper_scale else cls.default_params()
        return cls(**params)


@dataclasses.dataclass
class CellOutcome:
    """Everything one cell run produced -- or why it produced nothing.

    ``tracker`` is the device's full :class:`StatsTracker` (bus
    detached): richer than ``result.stats`` because it keeps the
    per-command-signature table and per-direction copy stats that the
    Listing-3 report renders.  ``events`` is only populated when the
    cell ran in a worker under observation; it is never written to the
    disk cache (profiled runs bypass it).

    A cell that raised, hung past its timeout, or whose worker died
    becomes ``CellOutcome.failure(error)``: ``result``/``tracker`` are
    ``None`` and ``error`` holds the structured
    :class:`~repro.resilience.failures.CellFailure`.  Failed outcomes
    are never cached.  ``faults_injected`` tallies deliberate
    corruptions when the cell ran under a fault plan.
    """

    result: "BenchmarkResult | None"
    tracker: "StatsTracker | None"
    sim_dur_ns: float = 0.0
    events: "tuple[ObsEvent, ...] | None" = None
    error: "CellFailure | None" = None
    faults_injected: "tuple[tuple[str, int], ...] | None" = None
    #: Per-cell resource accounting captured where the cell actually ran
    #: (see :mod:`repro.obs.telemetry`).  Persisted in the disk cache;
    #: entries written before telemetry existed read back as ``None``.
    telemetry: "CellTelemetry | None" = None

    @classmethod
    def failure(cls, error: "CellFailure") -> "CellOutcome":
        """The outcome of a cell that ultimately failed."""
        return cls(result=None, tracker=None, error=error)

    @property
    def ok(self) -> bool:
        return self.error is None

    def require_result(self) -> BenchmarkResult:
        """The result, or a re-raise of the failure for strict callers."""
        if self.error is not None:
            raise CellExecutionError(self.error)
        assert self.result is not None
        return self.result

    def without_events(self) -> "CellOutcome":
        if self.events is None:
            return self
        return dataclasses.replace(self, events=None)


class CellExecutionError(RuntimeError):
    """Raised by strict callers when a cell's structured failure must
    surface as an exception (e.g. library use of ``run_suite``)."""

    def __init__(self, error: "CellFailure") -> None:
        super().__init__(error.brief())
        self.error = error


def _apply_engine_faults(spec: CellSpec, attempt: int, isolated: bool) -> None:
    """Fire the worker-level chaos faults of a cell's plan, if any.

    Runs before the simulation so a hang/crash models a worker that
    never produced a result.  ``attempt`` is 1-based; transient faults
    stop firing once ``attempt`` exceeds their budget.
    """
    if spec.fault_plan is None:
        return
    for fault in spec.fault_plan.engine_faults:
        if isinstance(fault, WorkerHangFault):
            if fault.fail_attempts is None or attempt <= fault.fail_attempts:
                time.sleep(fault.seconds)
        elif isinstance(fault, WorkerExceptionFault):
            if attempt <= fault.fail_attempts:
                raise PimFaultInjectionError(
                    fault.message,
                    benchmark=spec.benchmark_key, attempt=attempt,
                )
        elif isinstance(fault, WorkerCrashFault):
            if attempt <= fault.fail_attempts:
                if not isolated:
                    raise PimFaultInjectionError(
                        "WorkerCrashFault requires process isolation "
                        "(it would kill this process)",
                        benchmark=spec.benchmark_key,
                    )
                os._exit(fault.exit_code)


def run_cell(
    spec: CellSpec,
    bus: "EventBus | None" = None,
    record_events: bool = False,
    attempt: int = 1,
    isolated: bool = False,
) -> CellOutcome:
    """Simulate one cell from scratch.

    ``bus`` streams events live onto an existing parent bus (the serial
    path).  ``record_events`` instead builds a private bus whose events
    are captured into the outcome for later replay (the worker path).
    The two are mutually exclusive.  ``attempt`` is the 1-based try
    number (retries pass 2, 3, ...) -- transient injected faults key off
    it; ``isolated`` tells the cell it runs in a disposable worker
    process, which hard-crash faults require.
    """
    _apply_engine_faults(spec, attempt, isolated)
    from repro.obs.telemetry import TelemetryCapture

    capture = TelemetryCapture()
    if record_events:
        if bus is not None:
            raise ValueError("record_events and a live bus are exclusive")
        from repro.obs import EventBus, RecordingSink

        config = spec.device_config()
        bus = EventBus(process=config.label)
        recorder = bus.subscribe(RecordingSink())
    else:
        config = spec.device_config()
        recorder = None

    injector = None
    if spec.fault_plan is not None and spec.fault_plan.device_faults:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(spec.fault_plan)

    # Vector mode needs the pure analytic path: a functional run has a
    # real data path, an observed run needs per-issue events, and device
    # faults hook the functional engine -- all fall back to the scalar
    # path (docs/VECTORIZATION.md "when the scalar path still runs").
    # The numbers are identical either way; only the speed differs.
    vector_active = (
        spec.vector
        and not spec.functional
        and bus is None
        and injector is None
    )
    bench = spec.make_benchmark()
    device = PimDevice(
        config,
        functional=spec.functional,
        enforce_capacity=spec.enforce_capacity,
        bus=bus,
        faults=injector,
        vector=vector_active,
    )
    result = bench.run(device, CpuModel(), GpuModel())
    tracker = device.stats
    if vector_active:
        from repro.perf.vector import vector_check_enabled, verify_equivalence

        if vector_check_enabled():
            # Strict equivalence mode: re-run the cell through the
            # scalar path and bit-compare every accumulator and the
            # serialized result (the suite-JSON payload).
            scalar_device = PimDevice(
                spec.device_config(),
                functional=spec.functional,
                enforce_capacity=spec.enforce_capacity,
            )
            scalar_result = spec.make_benchmark().run(
                scalar_device, CpuModel(), GpuModel()
            )
            verify_equivalence(
                tracker,
                scalar_device.stats,
                result,
                scalar_result,
                label=(
                    f"{spec.benchmark_key} on "
                    f"{getattr(spec.device_type, 'value', spec.device_type)}"
                ),
            )
        # Drop the logs and the (unpicklable) pricer: the sealed tracker
        # is a plain bag of totals that can cross process and disk-cache
        # boundaries exactly like a scalar tracker.
        tracker.seal()
    memo_hits, memo_misses, memo_shapes = device.pipeline.stats()
    if bus is not None and bus.active:
        # Perfetto counter track: the memo's cumulative hit/miss totals
        # at the cell boundary, so hit rates are visible on the timeline
        # (one sample per cell; the track lives under the device's
        # process group).  Emitted identically on the serial and the
        # worker/replay path, preserving stream byte-identity.
        lookups = memo_hits + memo_misses
        bus.emit_counter("cost_memo", {
            "hits": float(memo_hits),
            "misses": float(memo_misses),
            "hit_rate_pct": 100.0 * memo_hits / lookups if lookups else 0.0,
        })
    tracker.bus = None  # the tracker outlives the run; never the bus
    faults_injected = injector.counts() if injector is not None else None
    return CellOutcome(
        result=result,
        tracker=tracker,
        sim_dur_ns=result.stats.total_time_ns,
        events=tuple(recorder.events) if recorder is not None else None,
        faults_injected=faults_injected,
        telemetry=capture.finish(
            benchmark=spec.benchmark_key,
            device=str(getattr(spec.device_type, "value", spec.device_type)),
            num_ranks=spec.num_ranks,
            attempt=attempt,
            commands_simulated=int(sum(result.op_counts.values())),
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            memo_shapes=memo_shapes,
            faults_injected=faults_injected,
            vector=vector_active,
        ),
    )
