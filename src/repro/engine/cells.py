"""Experiment cells: the unit of work the engine schedules and caches.

A *cell* is one (benchmark, device configuration) simulation -- one bar
of one figure.  :class:`CellSpec` pins down everything that determines a
cell's numbers (benchmark key and parameter scale, device type, DRAM
geometry, capacity enforcement, functional vs analytic mode), which
makes it both the fan-out unit for the process pool and the identity the
disk cache is keyed on.  :class:`CellOutcome` is everything a run
produces: the :class:`~repro.bench.common.BenchmarkResult` the figure
harnesses consume, the full per-command stats table (so ``repro run``
can re-render a Listing-3 report from a cache hit), and -- when the run
was observed -- the recorded event stream for parent-side replay.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuModel
from repro.bench.common import BenchmarkResult, PimBenchmark
from repro.bench.registry import BENCHMARKS_BY_KEY
from repro.config.device import DeviceConfig, PimDeviceType
from repro.config.presets import make_device_config
from repro.core.device import PimDevice
from repro.core.stats import StatsTracker

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.events import EventBus, ObsEvent


def resolve_benchmark_class(key: str) -> "type[PimBenchmark]":
    """Benchmark class for a key, searching Table I then the extensions."""
    cls = BENCHMARKS_BY_KEY.get(key)
    if cls is not None:
        return cls
    from repro.bench.extensions import EXTENSION_BENCHMARKS

    for ext in EXTENSION_BENCHMARKS:
        if ext.key == key:
            return ext
    known = sorted(BENCHMARKS_BY_KEY) + sorted(e.key for e in EXTENSION_BENCHMARKS)
    raise KeyError(f"unknown benchmark {key!r}; known: {known}")


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """Immutable identity of one suite cell.

    ``geometry_overrides`` is a sorted tuple of (field, value) pairs so
    the spec stays hashable and order-insensitive.
    """

    benchmark_key: str
    device_type: PimDeviceType
    num_ranks: int = 32
    paper_scale: bool = True
    functional: bool = False
    enforce_capacity: bool = True
    geometry_overrides: "tuple[tuple[str, int], ...]" = ()

    @staticmethod
    def normalize_overrides(
        overrides: "dict[str, int] | None",
    ) -> "tuple[tuple[str, int], ...]":
        return tuple(sorted((overrides or {}).items()))

    def device_config(self) -> DeviceConfig:
        return make_device_config(
            self.device_type, self.num_ranks, **dict(self.geometry_overrides)
        )

    def make_benchmark(self) -> PimBenchmark:
        cls = resolve_benchmark_class(self.benchmark_key)
        params = cls.paper_params() if self.paper_scale else cls.default_params()
        return cls(**params)


@dataclasses.dataclass
class CellOutcome:
    """Everything one cell run produced.

    ``tracker`` is the device's full :class:`StatsTracker` (bus
    detached): richer than ``result.stats`` because it keeps the
    per-command-signature table and per-direction copy stats that the
    Listing-3 report renders.  ``events`` is only populated when the
    cell ran in a worker under observation; it is never written to the
    disk cache (profiled runs bypass it).
    """

    result: BenchmarkResult
    tracker: StatsTracker
    sim_dur_ns: float
    events: "tuple[ObsEvent, ...] | None" = None

    def without_events(self) -> "CellOutcome":
        if self.events is None:
            return self
        return dataclasses.replace(self, events=None)


def run_cell(
    spec: CellSpec,
    bus: "EventBus | None" = None,
    record_events: bool = False,
) -> CellOutcome:
    """Simulate one cell from scratch.

    ``bus`` streams events live onto an existing parent bus (the serial
    path).  ``record_events`` instead builds a private bus whose events
    are captured into the outcome for later replay (the worker path).
    The two are mutually exclusive.
    """
    if record_events:
        if bus is not None:
            raise ValueError("record_events and a live bus are exclusive")
        from repro.obs import EventBus, RecordingSink

        config = spec.device_config()
        bus = EventBus(process=config.label)
        recorder = bus.subscribe(RecordingSink())
    else:
        config = spec.device_config()
        recorder = None

    bench = spec.make_benchmark()
    device = PimDevice(
        config,
        functional=spec.functional,
        enforce_capacity=spec.enforce_capacity,
        bus=bus,
    )
    result = bench.run(device, CpuModel(), GpuModel())
    tracker = device.stats
    tracker.bus = None  # the tracker outlives the run; never the bus
    return CellOutcome(
        result=result,
        tracker=tracker,
        sim_dur_ns=result.stats.total_time_ns,
        events=tuple(recorder.events) if recorder is not None else None,
    )
