"""repro.engine: parallel experiment execution with persistent caching.

The layer between the figure/table drivers and the simulator: it fans
suite cells out across worker processes, memoizes every cell result in
a content-addressed on-disk store keyed by the device
configuration, benchmark parameters, and a model-version stamp, and
keeps observed runs' event streams correct by replaying worker-recorded
events onto the parent bus in simulated-time order.

See ``docs/PERFORMANCE.md`` for the caching contract and the measured
speedups.

Quick start::

    from repro.arch import device_type_for
    from repro.engine import CellSpec, run_cells

    specs = [CellSpec("vecadd", device_type_for("fulcrum"), num_ranks=32)]
    execution = run_cells(specs, jobs=4)
    result = execution.outcome(specs[0]).result
"""

from repro.engine.cache import (
    CACHE_DIR_ENV,
    DiskCache,
    cell_cache_key,
    default_cache_dir,
)
from repro.engine.cells import (
    CellExecutionError,
    CellOutcome,
    CellSpec,
    resolve_benchmark_class,
    run_cell,
)
from repro.engine.engine import (
    JOBS_ENV,
    ExecutionResult,
    resolve_jobs,
    run_cells,
)
from repro.engine.version import CACHE_SCHEMA, model_version

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CellExecutionError",
    "CellOutcome",
    "CellSpec",
    "DiskCache",
    "ExecutionResult",
    "JOBS_ENV",
    "cell_cache_key",
    "default_cache_dir",
    "model_version",
    "resolve_benchmark_class",
    "resolve_jobs",
    "run_cell",
    "run_cells",
]
