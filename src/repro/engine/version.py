"""Model-version stamps: what ties a cached result to the code that made it.

A disk-cached :class:`~repro.engine.cells.CellOutcome` is only valid
while the model code that produced it is unchanged.  Rather than caching
blindly (stale results after an edit) or hashing the whole tree (every
edit flushes everything), each cell's cache key embeds a *stamp* built
from exactly the source files that can change that cell's numbers:

* a **common** group every cell depends on -- configs, the device core,
  energy models, host/baseline models, data-movement, workload
  generators, and the shared benchmark plumbing;
* a **per-device** group -- the sources the architecture's backend
  declares via :attr:`repro.arch.ArchBackend.stamp_sources` (the perf
  model, plus the microcode library for the bit-serial variants, whose
  costs come from microprogram lengths);
* a **per-benchmark** group -- the module defining the benchmark class.

Editing ``perf/fulcrum.py`` therefore invalidates Fulcrum cells and
nothing else; editing ``bench/vecadd.py`` invalidates vecadd cells only.
``CACHE_SCHEMA`` is the manual escape hatch: bump it to flush every
entry at once (e.g. when the cached payload layout changes).

The full contract is documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import pathlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.base import DeviceTypeLike

#: Payload/layout version of the on-disk cache.  Bumping it invalidates
#: every cached entry regardless of source hashes.
CACHE_SCHEMA = 1

#: Root of the ``repro`` package (source files are hashed relative to it).
_REPRO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Package directories whose every ``*.py`` feeds the common stamp.
_COMMON_PACKAGES = (
    "config", "core", "energy", "host", "baselines", "workloads",
)

#: Individual files in the common stamp: shared model plumbing that is
#: not architecture- or benchmark-specific.
_COMMON_FILES = (
    "perf/__init__.py",
    "perf/base.py",
    "perf/datamovement.py",
    "bench/common.py",
    "bench/optimized.py",
    "bench/aes_reference.py",
)

def _iter_source_files(entry: str) -> "list[pathlib.Path]":
    """Resolve one group entry (file or package dir) to sorted files."""
    path = _REPRO_ROOT / entry
    if path.is_dir():
        return sorted(path.glob("*.py"))
    if path.is_file():
        return [path]
    # A curated file that no longer exists is a schema change in itself:
    # fold its absence into the digest rather than failing.
    return []


@functools.lru_cache(maxsize=None)
def _digest_entries(entries: "tuple[str, ...]") -> str:
    """SHA-256 over the (relative path, contents) of every listed source.

    An entry containing ``=`` is a *pseudo-entry* -- literal content a
    backend wants folded into its stamp rather than a file to read.
    Parametric backends (``repro.arch.parametric``) use this to stamp
    ``knobs=<digest>``, giving every generated design point its own
    model version.  Real source paths never contain ``=``, so every
    hand-written backend's digest is byte-identical to before
    pseudo-entries existed.
    """
    sha = hashlib.sha256()
    for entry in entries:
        if "=" in entry:
            sha.update(entry.encode())
            sha.update(b"\0")
            continue
        for path in _iter_source_files(entry):
            sha.update(str(path.relative_to(_REPRO_ROOT)).encode())
            sha.update(b"\0")
            sha.update(path.read_bytes())
            sha.update(b"\0")
    return sha.hexdigest()


@functools.lru_cache(maxsize=None)
def _benchmark_source(benchmark_key: str) -> str:
    """Relative path of the module defining a benchmark class."""
    from repro.engine.cells import resolve_benchmark_class

    cls = resolve_benchmark_class(benchmark_key)
    path = pathlib.Path(inspect.getfile(cls)).resolve()
    try:
        return str(path.relative_to(_REPRO_ROOT))
    except ValueError:  # class defined outside repro (user extension)
        return str(path)


def model_version(device_type: "DeviceTypeLike", benchmark_key: str) -> str:
    """The stamp embedded in one cell's cache key.

    Format: ``schema-common-device-bench`` with 12-hex-digit digests, so
    a cache-miss diagnosis can see *which* group moved.  The per-device
    group comes from the architecture backend's declared
    ``stamp_sources``, so a plug-in backend's cells are invalidated by
    edits to *its* sources and nothing else.
    """
    from repro.arch.registry import arch_for

    common = _digest_entries(_COMMON_PACKAGES + _COMMON_FILES)
    device = _digest_entries(arch_for(device_type).stamp_entries())
    bench = _digest_entries((_benchmark_source(benchmark_key),))
    return (
        f"{CACHE_SCHEMA}-{common[:12]}-{device[:12]}-{bench[:12]}"
    )


def vector_stamp() -> str:
    """Digest of the vectorized pricing engine's own sources.

    Folded into the cache key only for ``vector=True`` cells: editing
    ``repro/perf/vector.py`` invalidates exactly the vectorized entries
    (scalar keys never contain it), and vectorized and scalar results
    can never share a cache entry even though their totals are
    byte-identical by contract -- a belt-and-braces guard so a vector
    bug cannot poison scalar results, or vice versa.
    """
    return _digest_entries(("perf/vector.py",))[:12]


def plan_stamp() -> str:
    """Digest of the sweep-level batched pricing sources.

    Folded into every :mod:`repro.perf.plans` plan-cache key (never into
    per-cell keys): editing the plan extractor (``perf/plans.py``), the
    matrix pricer (``dse/batch.py``), or the histogram engine itself
    (``perf/vector.py``) invalidates exactly the persisted pricing
    plans.  Per-cell cache keys are untouched by those edits unless
    ``vector_stamp()`` moved too, so a plan-layout change can never
    poison per-cell results.
    """
    return _digest_entries(
        ("perf/vector.py", "perf/plans.py", "dse/batch.py")
    )[:12]


def clear_stamp_caches() -> None:
    """Drop memoized digests (tests use this after simulating an edit)."""
    _digest_entries.cache_clear()
    _benchmark_source.cache_clear()
